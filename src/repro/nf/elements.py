"""Click-style packet-processing elements.

Each element contributes one resource demand per packet as a function of
the traffic profile. Elements are the vocabulary NFs are assembled from;
the mapping of traffic attributes to demands encodes *why* NFs are
sensitive to particular attributes (e.g. a hash table's working set
grows with the flow count — the mechanism behind the paper's Fig. 6a).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.nic.spec import COMPRESSION, REGEX
from repro.nic.workload import Resource, StageDemand
from repro.traffic.profile import TrafficProfile

#: Instructions retired per CPU cycle for straight-line NF code.
_INSTRUCTIONS_PER_CYCLE = 1.4


class Element(abc.ABC):
    """One processing block using a single resource type."""

    def __init__(self, name: str) -> None:
        if not name:
            raise ConfigurationError("element name must be non-empty")
        self.name = name

    @abc.abstractmethod
    def demand(self, profile: TrafficProfile) -> StageDemand:
        """Per-packet resource demand under ``profile``."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}({self.name!r})"


@dataclass(frozen=True)
class _CyclesSpec:
    base: float = 0.0
    per_byte: float = 0.0

    def at(self, packet_size: int) -> float:
        return self.base + self.per_byte * packet_size


class PacketIo(Element):
    """RX/TX ring handling and packet descriptor management (CPU)."""

    def __init__(self, cycles: float = 900.0, name: str = "packet-io") -> None:
        super().__init__(name)
        if cycles <= 0:
            raise ConfigurationError("PacketIo cycles must be positive")
        self._cycles = cycles

    def demand(self, profile: TrafficProfile) -> StageDemand:
        return StageDemand(
            name=self.name,
            resource=Resource.CPU,
            cycles_pp=self._cycles,
            instructions_pp=self._cycles * _INSTRUCTIONS_PER_CYCLE,
        )


class HeaderParse(Element):
    """L2-L4 header parsing and classification arithmetic (CPU)."""

    def __init__(
        self,
        cycles: float = 500.0,
        cycles_per_byte: float = 0.0,
        name: str = "parse",
    ) -> None:
        super().__init__(name)
        if cycles < 0 or cycles_per_byte < 0:
            raise ConfigurationError("HeaderParse cycles must be >= 0")
        self._cycles = _CyclesSpec(cycles, cycles_per_byte)

    def demand(self, profile: TrafficProfile) -> StageDemand:
        cycles = self._cycles.at(profile.packet_size)
        return StageDemand(
            name=self.name,
            resource=Resource.CPU,
            cycles_pp=cycles,
            instructions_pp=cycles * _INSTRUCTIONS_PER_CYCLE,
        )


class HashTable(Element):
    """Per-flow state table (MEMORY): working set grows with flows.

    ``entry_bytes * flow_count + base_bytes`` resident bytes,
    ``reads_pp``/``writes_pp`` references per packet (bucket probe plus
    entry update), modest MLP because lookups are pointer-chasing.
    """

    def __init__(
        self,
        name: str,
        entry_bytes: float,
        reads_pp: float,
        writes_pp: float,
        base_bytes: float = 128 * 1024,
        cycles: float = 300.0,
        mlp: float = 3.0,
    ) -> None:
        super().__init__(name)
        if entry_bytes <= 0:
            raise ConfigurationError("entry_bytes must be positive")
        if reads_pp < 0 or writes_pp < 0 or base_bytes < 0 or cycles < 0:
            raise ConfigurationError("HashTable demands must be >= 0")
        self._entry_bytes = entry_bytes
        self._reads_pp = reads_pp
        self._writes_pp = writes_pp
        self._base_bytes = base_bytes
        self._cycles = cycles
        self._mlp = mlp

    def demand(self, profile: TrafficProfile) -> StageDemand:
        return StageDemand(
            name=self.name,
            resource=Resource.MEMORY,
            cycles_pp=self._cycles,
            instructions_pp=self._cycles * _INSTRUCTIONS_PER_CYCLE,
            reads_pp=self._reads_pp,
            writes_pp=self._writes_pp,
            wss_bytes=self._entry_bytes * profile.flow_count + self._base_bytes,
            mlp=self._mlp,
        )


class FixedTable(Element):
    """Fixed-size lookup structure (MEMORY): LPM trie, ACL ruleset."""

    def __init__(
        self,
        name: str,
        wss_bytes: float,
        reads_pp: float,
        writes_pp: float = 0.0,
        cycles: float = 250.0,
        mlp: float = 2.5,
    ) -> None:
        super().__init__(name)
        if wss_bytes < 0 or reads_pp < 0 or writes_pp < 0 or cycles < 0:
            raise ConfigurationError("FixedTable demands must be >= 0")
        self._wss_bytes = wss_bytes
        self._reads_pp = reads_pp
        self._writes_pp = writes_pp
        self._cycles = cycles
        self._mlp = mlp

    def demand(self, profile: TrafficProfile) -> StageDemand:
        return StageDemand(
            name=self.name,
            resource=Resource.MEMORY,
            cycles_pp=self._cycles,
            instructions_pp=self._cycles * _INSTRUCTIONS_PER_CYCLE,
            reads_pp=self._reads_pp,
            writes_pp=self._writes_pp,
            wss_bytes=self._wss_bytes,
            mlp=self._mlp,
        )


class PacketCopy(Element):
    """Payload move/rewrite (MEMORY): references scale with packet size.

    Used by encapsulation (IPTunnel) and buffering (IPComp) stages —
    the mechanism that makes those NFs packet-size sensitive. Copies are
    streaming accesses, so MLP is high.
    """

    def __init__(
        self,
        name: str,
        bytes_fraction: float = 1.0,
        wss_bytes: float = 256 * 1024,
        cycles: float = 150.0,
        mlp: float = 8.0,
    ) -> None:
        super().__init__(name)
        if not 0.0 < bytes_fraction <= 2.0:
            raise ConfigurationError("bytes_fraction must be in (0, 2]")
        self._bytes_fraction = bytes_fraction
        self._wss_bytes = wss_bytes
        self._cycles = cycles
        self._mlp = mlp

    def demand(self, profile: TrafficProfile) -> StageDemand:
        lines = self._bytes_fraction * profile.packet_size / 64.0
        return StageDemand(
            name=self.name,
            resource=Resource.MEMORY,
            cycles_pp=self._cycles,
            instructions_pp=self._cycles * _INSTRUCTIONS_PER_CYCLE,
            reads_pp=lines,
            writes_pp=lines,
            wss_bytes=self._wss_bytes,
            mlp=self._mlp,
        )


class RegexScan(Element):
    """Payload scan on the regex accelerator.

    One request per packet covering ``payload_fraction`` of the payload;
    matches follow the profile's MTBR.
    """

    def __init__(
        self,
        name: str = "regex-scan",
        payload_fraction: float = 1.0,
        complexity: float = 1.0,
    ) -> None:
        super().__init__(name)
        if not 0.0 < payload_fraction <= 1.0:
            raise ConfigurationError("payload_fraction must be in (0, 1]")
        if complexity <= 0:
            raise ConfigurationError("complexity must be positive")
        self._payload_fraction = payload_fraction
        self._complexity = complexity

    def demand(self, profile: TrafficProfile) -> StageDemand:
        scanned = self._payload_fraction * profile.payload_bytes
        matches = scanned * profile.mtbr / 1e6 * self._complexity
        return StageDemand(
            name=self.name,
            resource=Resource.ACCELERATOR,
            accelerator=REGEX,
            requests_pp=1.0,
            bytes_per_request=scanned,
            matches_per_request=matches,
        )


class CompressStage(Element):
    """Payload (de)compression on the compression accelerator."""

    def __init__(self, name: str = "compress", payload_fraction: float = 1.0) -> None:
        super().__init__(name)
        if not 0.0 < payload_fraction <= 1.0:
            raise ConfigurationError("payload_fraction must be in (0, 1]")
        self._payload_fraction = payload_fraction

    def demand(self, profile: TrafficProfile) -> StageDemand:
        return StageDemand(
            name=self.name,
            resource=Resource.ACCELERATOR,
            accelerator=COMPRESSION,
            requests_pp=1.0,
            bytes_per_request=self._payload_fraction * profile.payload_bytes,
            matches_per_request=0.0,
        )
