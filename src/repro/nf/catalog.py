"""The NF catalog — paper Table 1 plus the Pensando Firewall (Table 9).

Every entry records the accelerators the NF uses, the framework the
paper implements it in, whether its performance depends on traffic
attributes (the "T" column of Table 1) and *which* attributes those are.
Demands are calibrated so solo throughputs land in the ranges the
paper's figures show (roughly 0.4 - 2.5 Mpps on two BlueField-2 cores).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.errors import ConfigurationError
from repro.nf.elements import (
    CompressStage,
    FixedTable,
    HashTable,
    HeaderParse,
    PacketCopy,
    PacketIo,
    RegexScan,
)
from repro.nf.framework import NetworkFunction
from repro.nic.workload import ExecutionPattern

_PIPELINE = ExecutionPattern.PIPELINE
_RTC = ExecutionPattern.RUN_TO_COMPLETION


@dataclass(frozen=True)
class NfDescriptor:
    """Catalog metadata for one NF (the paper's Table 1 row)."""

    name: str
    display_name: str
    framework: str
    accelerators: tuple[str, ...]
    traffic_sensitive: bool
    sensitive_attributes: tuple[str, ...]
    builder: Callable[[], NetworkFunction] = field(repr=False)

    def build(self) -> NetworkFunction:
        """Instantiate the NF."""
        return self.builder()


def _flowstats() -> NetworkFunction:
    """Per-flow packet/byte statistics (header-only, flow-count bound)."""
    return NetworkFunction(
        name="flowstats",
        framework="click",
        pattern=_RTC,
        elements=(
            PacketIo(cycles=1100.0),
            HeaderParse(cycles=600.0),
            HashTable(
                "flow-stats-table",
                entry_bytes=128.0,
                reads_pp=16.0,
                writes_pp=6.0,
                base_bytes=128 * 1024,
                cycles=500.0,
                mlp=3.0,
            ),
        ),
    )


def _iprouter() -> NetworkFunction:
    """IPv4 longest-prefix-match forwarding over a fixed FIB."""
    return NetworkFunction(
        name="iprouter",
        framework="click",
        pattern=_RTC,
        elements=(
            PacketIo(cycles=1000.0),
            HeaderParse(cycles=450.0),
            FixedTable(
                "lpm-fib",
                wss_bytes=2 * 1024 * 1024,
                reads_pp=7.0,
                cycles=400.0,
                mlp=2.5,
            ),
        ),
    )


def _iptunnel() -> NetworkFunction:
    """IP-in-IP encapsulation: copies payload, packet-size sensitive."""
    return NetworkFunction(
        name="iptunnel",
        framework="click",
        pattern=_PIPELINE,
        elements=(
            PacketIo(cycles=900.0),
            HeaderParse(cycles=400.0),
            PacketCopy(
                "encapsulate",
                bytes_fraction=2.0,
                wss_bytes=3 * 1024 * 1024,
                cycles=250.0,
                mlp=4.0,
            ),
        ),
    )


def _nat() -> NetworkFunction:
    """Stateful source NAT with a per-flow mapping table."""
    return NetworkFunction(
        name="nat",
        framework="click",
        pattern=_RTC,
        elements=(
            PacketIo(cycles=1000.0),
            HeaderParse(cycles=550.0),
            HashTable(
                "nat-mapping",
                entry_bytes=160.0,
                reads_pp=12.0,
                writes_pp=8.0,
                base_bytes=256 * 1024,
                cycles=600.0,
                mlp=3.0,
            ),
        ),
    )


def _flowmonitor() -> NetworkFunction:
    """Per-flow monitoring + payload inspection (regex accelerator)."""
    return NetworkFunction(
        name="flowmonitor",
        framework="click",
        pattern=_PIPELINE,
        elements=(
            PacketIo(cycles=900.0),
            HeaderParse(cycles=400.0),
            HashTable(
                "monitor-table",
                entry_bytes=96.0,
                reads_pp=18.0,
                writes_pp=6.0,
                base_bytes=128 * 1024,
                cycles=400.0,
                mlp=2.5,
            ),
            RegexScan("payload-inspect", payload_fraction=0.5),
        ),
    )


def _nids() -> NetworkFunction:
    """Signature-based intrusion detection (regex accelerator)."""
    return NetworkFunction(
        name="nids",
        framework="click",
        pattern=_RTC,
        elements=(
            PacketIo(cycles=900.0),
            HeaderParse(cycles=600.0),
            FixedTable(
                "signature-index",
                wss_bytes=1024 * 1024,
                reads_pp=6.0,
                cycles=350.0,
                mlp=2.5,
            ),
            HashTable(
                "connection-state",
                entry_bytes=64.0,
                reads_pp=5.0,
                writes_pp=2.0,
                base_bytes=128 * 1024,
                cycles=250.0,
                mlp=3.0,
            ),
            RegexScan("signature-scan", payload_fraction=0.6),
        ),
    )


def _ipcomp_gateway() -> NetworkFunction:
    """IPComp gateway: inspect then compress (regex + compression)."""
    return NetworkFunction(
        name="ipcomp",
        framework="click",
        pattern=_PIPELINE,
        elements=(
            PacketIo(cycles=900.0),
            HeaderParse(cycles=400.0),
            PacketCopy(
                "staging-buffer",
                bytes_fraction=0.5,
                wss_bytes=512 * 1024,
                cycles=200.0,
                mlp=8.0,
            ),
            RegexScan("policy-scan", payload_fraction=0.4),
            CompressStage("ipcomp-deflate", payload_fraction=1.0),
        ),
    )


def _acl() -> NetworkFunction:
    """Stateless access control list (lightweight, traffic-insensitive)."""
    return NetworkFunction(
        name="acl",
        framework="dpdk",
        pattern=_RTC,
        elements=(
            PacketIo(cycles=800.0),
            HeaderParse(cycles=450.0),
            FixedTable(
                "acl-trie",
                wss_bytes=512 * 1024,
                reads_pp=4.0,
                cycles=300.0,
                mlp=2.5,
            ),
        ),
    )


def _flowclassifier() -> NetworkFunction:
    """Flow classification into service classes (per-flow table)."""
    return NetworkFunction(
        name="flowclassifier",
        framework="dpdk",
        pattern=_PIPELINE,
        elements=(
            PacketIo(cycles=800.0),
            HeaderParse(cycles=500.0),
            HashTable(
                "class-table",
                entry_bytes=64.0,
                reads_pp=10.0,
                writes_pp=3.0,
                base_bytes=128 * 1024,
                cycles=400.0,
                mlp=3.0,
            ),
        ),
    )


def _flowtracker() -> NetworkFunction:
    """Connection tracking with per-flow timestamps/state."""
    return NetworkFunction(
        name="flowtracker",
        framework="doca",
        pattern=_RTC,
        elements=(
            PacketIo(cycles=900.0),
            HeaderParse(cycles=450.0),
            HashTable(
                "tracker-table",
                entry_bytes=128.0,
                reads_pp=12.0,
                writes_pp=6.0,
                base_bytes=128 * 1024,
                cycles=450.0,
                mlp=3.0,
            ),
        ),
    )


def _packetfilter() -> NetworkFunction:
    """DOCA packet filter with payload pattern matching (regex)."""
    return NetworkFunction(
        name="packetfilter",
        framework="doca",
        pattern=_RTC,
        elements=(
            PacketIo(cycles=800.0),
            HeaderParse(cycles=350.0),
            FixedTable(
                "filter-rules",
                wss_bytes=128 * 1024,
                reads_pp=3.0,
                cycles=200.0,
                mlp=2.5,
            ),
            RegexScan("filter-scan", payload_fraction=0.5),
        ),
    )


def _firewall() -> NetworkFunction:
    """Pensando firewall: hardware flow-table walk + metadata update.

    The Table 9 generalisation NF; runs on the Pensando NIC profile.
    """
    return NetworkFunction(
        name="firewall",
        framework="pensando",
        pattern=_RTC,
        elements=(
            PacketIo(cycles=700.0),
            HeaderParse(cycles=400.0),
            HashTable(
                "flow-walk-table",
                entry_bytes=128.0,
                reads_pp=14.0,
                writes_pp=5.0,
                base_bytes=256 * 1024,
                cycles=500.0,
                mlp=3.0,
            ),
        ),
    )


#: All catalogued NFs by name.
NF_CATALOG: dict[str, NfDescriptor] = {
    d.name: d
    for d in (
        NfDescriptor(
            "flowstats", "FlowStats", "click", (), True, ("flow_count",), _flowstats
        ),
        NfDescriptor("iprouter", "IPRouter", "click", (), False, (), _iprouter),
        NfDescriptor(
            "iptunnel", "IPTunnel", "click", (), True, ("packet_size",), _iptunnel
        ),
        NfDescriptor("nat", "NAT", "click", (), True, ("flow_count",), _nat),
        NfDescriptor(
            "flowmonitor",
            "FlowMonitor",
            "click",
            ("regex",),
            True,
            ("flow_count", "mtbr"),
            _flowmonitor,
        ),
        NfDescriptor(
            "nids", "NIDS", "click", ("regex",), True, ("mtbr",), _nids
        ),
        NfDescriptor(
            "ipcomp",
            "IPComp Gateway",
            "click",
            ("regex", "compression"),
            True,
            ("packet_size", "mtbr"),
            _ipcomp_gateway,
        ),
        NfDescriptor("acl", "ACL", "dpdk", (), False, (), _acl),
        NfDescriptor(
            "flowclassifier",
            "FlowClassifier",
            "dpdk",
            (),
            True,
            ("flow_count",),
            _flowclassifier,
        ),
        NfDescriptor(
            "flowtracker",
            "FlowTracker",
            "doca",
            (),
            True,
            ("flow_count",),
            _flowtracker,
        ),
        NfDescriptor(
            "packetfilter",
            "PacketFilter",
            "doca",
            ("regex",),
            True,
            ("mtbr",),
            _packetfilter,
        ),
        NfDescriptor(
            "firewall",
            "Firewall",
            "pensando",
            (),
            True,
            ("flow_count",),
            _firewall,
        ),
    )
}

#: The nine NFs of the BlueField-2 evaluation (Table 2 rows).
EVALUATION_NF_NAMES: tuple[str, ...] = (
    "acl",
    "nids",
    "iptunnel",
    "iprouter",
    "flowclassifier",
    "flowtracker",
    "flowstats",
    "flowmonitor",
    "nat",
)


def make_nf(name: str) -> NetworkFunction:
    """Instantiate a catalogued NF by name."""
    try:
        return NF_CATALOG[name].build()
    except KeyError:
        raise ConfigurationError(
            f"unknown NF {name!r}; known: {sorted(NF_CATALOG)}"
        ) from None


def all_nf_names(include_pensando: bool = False) -> list[str]:
    """Names of all catalogued NFs (BlueField-2 ones by default)."""
    names = [n for n in NF_CATALOG if n != "firewall"]
    if include_pensando:
        names.append("firewall")
    return names


def traffic_sensitive_nf_names() -> list[str]:
    """NFs whose performance depends on traffic attributes (Table 5/8)."""
    return [
        d.name
        for d in NF_CATALOG.values()
        if d.traffic_sensitive and d.name != "firewall"
    ]
