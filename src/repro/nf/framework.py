"""NetworkFunction: an element chain plus an execution pattern.

Binding an NF to a traffic profile compiles it to the simulator's
:class:`~repro.nic.workload.WorkloadDemand`. Adjacent stages of the same
resource class are merged (a "stage" in the paper's sense is a block
using a single resource, §4.2), so an NF written as
``[PacketIo, HeaderParse, HashTable, RegexScan]`` compiles to the
three-stage pipeline ``CPU -> MEMORY -> REGEX``.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from repro.errors import ConfigurationError
from repro.nf.elements import Element
from repro.nic.workload import (
    ExecutionPattern,
    StageDemand,
    WorkloadDemand,
)
from repro.traffic.profile import TrafficProfile


def _merge(first: StageDemand, second: StageDemand) -> StageDemand:
    """Merge two adjacent same-resource stage demands."""
    return StageDemand(
        name=f"{first.name}+{second.name}",
        resource=first.resource,
        cycles_pp=first.cycles_pp + second.cycles_pp,
        instructions_pp=first.instructions_pp + second.instructions_pp,
        reads_pp=first.reads_pp + second.reads_pp,
        writes_pp=first.writes_pp + second.writes_pp,
        wss_bytes=first.wss_bytes + second.wss_bytes,
        mlp=max(first.mlp, second.mlp),
        accelerator=first.accelerator,
        requests_pp=first.requests_pp + second.requests_pp,
        bytes_per_request=max(first.bytes_per_request, second.bytes_per_request),
        matches_per_request=first.matches_per_request + second.matches_per_request,
    )


@dataclass(frozen=True)
class NetworkFunction:
    """A deployable network function.

    Parameters
    ----------
    name:
        Catalog name (e.g. ``"flowstats"``).
    framework:
        The NF framework the paper implements it in (click/dpdk/doca) —
        metadata only.
    pattern:
        Execution pattern (pipeline or run-to-completion, §4.2).
    elements:
        Ordered processing elements.
    cores:
        Dedicated SoC cores (the paper gives each NF two).
    queues_per_accelerator:
        Request queues the NF opens per accelerator (paper §4.1.1).
    """

    name: str
    framework: str
    pattern: ExecutionPattern
    elements: tuple[Element, ...]
    cores: int = 2
    queues_per_accelerator: dict[str, int] = field(default_factory=dict)
    hot_access_fraction: float = 0.6
    hot_wss_fraction: float = 0.15

    def __post_init__(self) -> None:
        if not self.elements:
            raise ConfigurationError(f"NF {self.name!r} has no elements")
        if self.framework not in ("click", "dpdk", "doca", "synthetic", "pensando"):
            raise ConfigurationError(
                f"NF {self.name!r}: unknown framework {self.framework!r}"
            )
        if self.cores < 1:
            raise ConfigurationError(f"NF {self.name!r} needs >= 1 core")

    # ------------------------------------------------------------------
    def stages(self, profile: TrafficProfile) -> tuple[StageDemand, ...]:
        """Compiled stage demands (adjacent same-resource merged)."""
        merged: list[StageDemand] = []
        for element in self.elements:
            demand = element.demand(profile)
            if (
                merged
                and merged[-1].resource is demand.resource
                and merged[-1].accelerator == demand.accelerator
            ):
                merged[-1] = _merge(merged[-1], demand)
            else:
                merged.append(demand)
        return tuple(merged)

    def demand(
        self,
        profile: TrafficProfile,
        instance: Optional[str] = None,
        arrival_rate_mpps: Optional[float] = None,
    ) -> WorkloadDemand:
        """Compile to a simulator workload under ``profile``.

        ``instance`` renames the workload so several copies of one NF can
        co-locate; ``arrival_rate_mpps`` turns the NF open-loop (the
        default ``None`` measures maximum throughput, as the paper does).
        """
        return WorkloadDemand(
            name=instance or self.name,
            cores=self.cores,
            pattern=self.pattern,
            stages=self.stages(profile),
            arrival_rate_mpps=arrival_rate_mpps,
            queues_per_accelerator=dict(self.queues_per_accelerator),
            packet_size_bytes=float(profile.packet_size),
            hot_access_fraction=self.hot_access_fraction,
            hot_wss_fraction=self.hot_wss_fraction,
        )

    # ------------------------------------------------------------------
    def uses_accelerators(self, profile: TrafficProfile | None = None) -> list[str]:
        """Accelerator names this NF dispatches to."""
        profile = profile or TrafficProfile()
        seen = []
        for stage in self.stages(profile):
            if stage.accelerator and stage.accelerator not in seen:
                seen.append(stage.accelerator)
        return seen

    def with_pattern(self, pattern: ExecutionPattern) -> "NetworkFunction":
        """Copy of this NF with a different execution pattern."""
        return replace(self, pattern=pattern)

    def with_cores(self, cores: int) -> "NetworkFunction":
        """Copy of this NF pinned to a different core count."""
        return replace(self, cores=cores)
