"""Synthetic benchmark NFs (the paper's mem-bench / regex-bench family).

The paper builds three synthetic contender NFs (~8300 LoC of C/DPDK) to
(1) generate training data at controllable contention levels, (2)
explore contention behaviour, and (3) microbenchmark. This module
provides them for the simulator, plus the synthetic *target* NFs used in
design exploration: regex-NF (Fig. 4), the pipeline/run-to-completion
probe pair (Fig. 5), and NF1/NF2 (Table 4).
"""

from __future__ import annotations

from typing import Optional

from repro.errors import ConfigurationError
from repro.nf.elements import (
    CompressStage,
    HashTable,
    PacketIo,
    RegexScan,
)
from repro.nf.framework import NetworkFunction
from repro.nic.spec import COMPRESSION, REGEX
from repro.nic.workload import (
    ExecutionPattern,
    Resource,
    StageDemand,
    WorkloadDemand,
)

_RTC = ExecutionPattern.RUN_TO_COMPLETION
_PIPELINE = ExecutionPattern.PIPELINE

#: References issued per "packet" (batch) of mem-bench.
_MEM_BENCH_REFS_PP = 64.0


def mem_bench(
    car_mrefs: float,
    wss_mb: float = 10.0,
    cores: int = 4,
    hot_fraction: float = 0.0,
    instance: Optional[str] = None,
) -> WorkloadDemand:
    """Open-loop memory contender sustaining ``car_mrefs`` Mref/s.

    Accesses a ``wss_mb`` MB working set with high memory-level
    parallelism. ``hot_fraction`` selects the access pattern: 0 streams
    uniformly (maximum DRAM pressure per cache access), larger values
    concentrate accesses on a hot subset the way stateful NFs do —
    profiling sweeps vary it so models learn that miss traffic, not raw
    access rate, is what hurts neighbours.
    """
    if car_mrefs < 0:
        raise ConfigurationError("car_mrefs must be >= 0")
    if wss_mb <= 0:
        raise ConfigurationError("wss_mb must be positive")
    if not 0.0 <= hot_fraction < 1.0:
        raise ConfigurationError("hot_fraction must be in [0, 1)")
    car_mrefs = max(car_mrefs, 1e-3)  # zero contention = vanishing rate
    stage = StageDemand(
        name="mem-stream",
        resource=Resource.MEMORY,
        cycles_pp=100.0,
        instructions_pp=200.0,
        reads_pp=_MEM_BENCH_REFS_PP / 2,
        writes_pp=_MEM_BENCH_REFS_PP / 2,
        wss_bytes=wss_mb * 1024 * 1024,
        mlp=16.0,
    )
    return WorkloadDemand(
        name=instance or "mem-bench",
        cores=cores,
        pattern=_RTC,
        stages=(stage,),
        arrival_rate_mpps=car_mrefs / _MEM_BENCH_REFS_PP,
        packet_size_bytes=64.0,
        hot_access_fraction=hot_fraction,
        hot_wss_fraction=0.15 if hot_fraction > 0 else 0.01,
    )


def regex_bench(
    rate_mpps: Optional[float],
    mtbr: float = 600.0,
    payload_bytes: float = 1024.0,
    queues: int = 1,
    cores: int = 1,
    instance: Optional[str] = None,
) -> WorkloadDemand:
    """Regex-accelerator contender issuing ``rate_mpps`` requests/us.

    ``rate_mpps=None`` makes it closed-loop (saturates the engine) —
    the configuration Yala's model-fitting procedure uses (§4.1.1).
    Memory usage is negligible by construction, mirroring the paper's
    purpose-built regex-bench.
    """
    if rate_mpps is not None and rate_mpps < 0:
        raise ConfigurationError("rate_mpps must be >= 0 or None")
    if payload_bytes <= 0:
        raise ConfigurationError("payload_bytes must be positive")
    if mtbr < 0:
        raise ConfigurationError("mtbr must be >= 0")
    matches = payload_bytes * mtbr / 1e6
    stages = (
        StageDemand(
            name="dispatch",
            resource=Resource.CPU,
            cycles_pp=60.0,
            instructions_pp=90.0,
        ),
        StageDemand(
            name="regex-load",
            resource=Resource.ACCELERATOR,
            accelerator=REGEX,
            requests_pp=1.0,
            bytes_per_request=payload_bytes,
            matches_per_request=matches,
        ),
    )
    if rate_mpps is not None and rate_mpps == 0:
        rate_mpps = 1e-6
    return WorkloadDemand(
        name=instance or "regex-bench",
        cores=cores,
        pattern=_PIPELINE,
        stages=stages,
        arrival_rate_mpps=rate_mpps,
        queues_per_accelerator={REGEX: queues},
        packet_size_bytes=min(payload_bytes + 54.0, 9000.0),
    )


def compression_bench(
    rate_mpps: Optional[float],
    payload_bytes: float = 1024.0,
    queues: int = 1,
    cores: int = 1,
    instance: Optional[str] = None,
) -> WorkloadDemand:
    """Compression-accelerator contender (paper's compression-bench)."""
    if rate_mpps is not None and rate_mpps < 0:
        raise ConfigurationError("rate_mpps must be >= 0 or None")
    if payload_bytes <= 0:
        raise ConfigurationError("payload_bytes must be positive")
    stages = (
        StageDemand(
            name="dispatch",
            resource=Resource.CPU,
            cycles_pp=60.0,
            instructions_pp=90.0,
        ),
        StageDemand(
            name="compress-load",
            resource=Resource.ACCELERATOR,
            accelerator=COMPRESSION,
            requests_pp=1.0,
            bytes_per_request=payload_bytes,
        ),
    )
    if rate_mpps is not None and rate_mpps == 0:
        rate_mpps = 1e-6
    return WorkloadDemand(
        name=instance or "compression-bench",
        cores=cores,
        pattern=_PIPELINE,
        stages=stages,
        arrival_rate_mpps=rate_mpps,
        queues_per_accelerator={COMPRESSION: queues},
        packet_size_bytes=min(payload_bytes + 54.0, 9000.0),
    )


def regex_nf(
    mtbr: float = 194.0,
    payload_bytes: float = 32.0,
    queues: int = 1,
    cores: int = 1,
) -> NetworkFunction:
    """The Fig. 4 synthetic pattern-matching NF (closed-loop).

    Tiny requests at high rates, so engine sharing effects dominate —
    used to expose the round-robin linear-decline / equilibrium shape.
    Bind it to a small-packet traffic profile (e.g. ``TrafficProfile(
    1000, 86, mtbr)``) so the NIC line rate does not cap the request
    rate; the scan itself always uses ``payload_bytes``-sized requests.
    """

    class _TinyScan(RegexScan):
        def demand(self, profile):  # noqa: D102 - fixed-size synthetic scan
            return StageDemand(
                name=self.name,
                resource=Resource.ACCELERATOR,
                accelerator=REGEX,
                requests_pp=1.0,
                bytes_per_request=payload_bytes,
                matches_per_request=payload_bytes * mtbr / 1e6,
            )

    return NetworkFunction(
        name="regex-nf",
        framework="synthetic",
        pattern=_PIPELINE,
        elements=(PacketIo(cycles=40.0, name="dispatch"), _TinyScan("tiny-scan")),
        cores=cores,
        queues_per_accelerator={REGEX: queues},
    )


def nf1(pattern: ExecutionPattern = _RTC) -> NetworkFunction:
    """Synthetic NF1 (Table 4): memory + regex, selectable pattern."""
    return NetworkFunction(
        name=f"nf1-{pattern.value}",
        framework="synthetic",
        pattern=pattern,
        elements=(
            PacketIo(cycles=700.0),
            HashTable(
                "nf1-state",
                entry_bytes=64.0,
                reads_pp=20.0,
                writes_pp=8.0,
                base_bytes=512 * 1024,
                cycles=400.0,
                mlp=2.5,
            ),
            RegexScan("nf1-scan", payload_fraction=0.8),
        ),
    )


def nf2(pattern: ExecutionPattern = _RTC) -> NetworkFunction:
    """Synthetic NF2 (Table 4): memory + regex + compression."""
    return NetworkFunction(
        name=f"nf2-{pattern.value}",
        framework="synthetic",
        pattern=pattern,
        elements=(
            PacketIo(cycles=700.0),
            HashTable(
                "nf2-state",
                entry_bytes=64.0,
                reads_pp=16.0,
                writes_pp=6.0,
                base_bytes=512 * 1024,
                cycles=350.0,
                mlp=2.5,
            ),
            RegexScan("nf2-scan", payload_fraction=0.6),
            CompressStage("nf2-compress", payload_fraction=0.8),
        ),
    )


def pipeline_probe_nf() -> NetworkFunction:
    """The Fig. 5 (top) synthetic pipeline NF: heavy memory + regex."""
    return NetworkFunction(
        name="p-nf",
        framework="synthetic",
        pattern=_PIPELINE,
        elements=(
            PacketIo(cycles=1800.0),
            HashTable(
                "p-nf-state",
                entry_bytes=128.0,
                reads_pp=40.0,
                writes_pp=14.0,
                base_bytes=1024 * 1024,
                cycles=900.0,
                mlp=2.0,
            ),
            RegexScan("p-nf-scan", payload_fraction=1.0, complexity=1.6),
        ),
    )


def rtc_probe_nf() -> NetworkFunction:
    """The Fig. 5 (bottom) synthetic run-to-completion NF."""
    return NetworkFunction(
        name="r-nf",
        framework="synthetic",
        pattern=_RTC,
        elements=(
            PacketIo(cycles=1800.0),
            HashTable(
                "r-nf-state",
                entry_bytes=128.0,
                reads_pp=40.0,
                writes_pp=14.0,
                base_bytes=1024 * 1024,
                cycles=900.0,
                mlp=2.0,
            ),
            RegexScan("r-nf-scan", payload_fraction=1.0, complexity=1.6),
        ),
    )
