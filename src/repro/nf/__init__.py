"""Network function framework and catalog.

Replaces the paper's Click / DPDK / DOCA NF implementations. An NF is a
chain of :mod:`elements <repro.nf.elements>` (parse, table lookup, regex
scan, ...) with an execution pattern; binding it to a
:class:`~repro.traffic.profile.TrafficProfile` compiles it into the
:class:`~repro.nic.workload.WorkloadDemand` the simulator consumes.

:mod:`repro.nf.catalog` provides the NFs of the paper's Table 1 plus the
Pensando Firewall; :mod:`repro.nf.synthetic` provides mem-bench,
regex-bench, compression-bench and the synthetic NFs used for design
exploration (regex-NF, NF1, NF2, the Figure 5 pipeline/RTC pair).
"""

from repro.nf.catalog import (
    NF_CATALOG,
    NfDescriptor,
    all_nf_names,
    make_nf,
    traffic_sensitive_nf_names,
)
from repro.nf.elements import (
    CompressStage,
    Element,
    FixedTable,
    HashTable,
    HeaderParse,
    PacketCopy,
    PacketIo,
    RegexScan,
)
from repro.nf.framework import NetworkFunction
from repro.nf.synthetic import (
    compression_bench,
    mem_bench,
    nf1,
    nf2,
    pipeline_probe_nf,
    regex_bench,
    regex_nf,
    rtc_probe_nf,
)

__all__ = [
    "CompressStage",
    "Element",
    "FixedTable",
    "HashTable",
    "HeaderParse",
    "NF_CATALOG",
    "NetworkFunction",
    "NfDescriptor",
    "PacketCopy",
    "PacketIo",
    "RegexScan",
    "all_nf_names",
    "compression_bench",
    "make_nf",
    "mem_bench",
    "nf1",
    "nf2",
    "pipeline_probe_nf",
    "regex_bench",
    "regex_nf",
    "rtc_probe_nf",
    "traffic_sensitive_nf_names",
]
