"""Adaptive profiling — the paper's Algorithm 1 (§5.2).

Two phases:

1. **Attribute pruning**: for each traffic attribute, profile the NF solo
   at the attribute's extremes (others at defaults). If the throughput
   difference is below ``epsilon_prune``, the attribute does not affect
   this NF and is dropped from the profiling space (e.g. packet size for
   FlowStats).
2. **Range profiling**: recursive binary search over the surviving
   attribute hypercube. Whenever the throughput difference across a
   region's corners exceeds ``epsilon_split``, collect
   ``samples_per_region`` co-run samples (random contention) at the
   region's midpoint and recurse into the region's sub-boxes — splitting
   *every* kept attribute so coverage is a quadtree over the attribute
   space, not just its diagonal. Repeated configurations are served from
   the collector's cache and charged no quota, exactly as the paper's
   ``profile_one`` specifies. A region's contended samples are
   independent, so they are collected through
   :meth:`ProfilingCollector.profile_many` — one ``run_batch`` solve
   per region — with sample/cache/quota accounting identical to the
   looped primitive (``use_batch=False``, the pinned oracle).

Adaptation vs. the paper: corner probes run under a fixed *reference
contention* level rather than solo. The paper probes solo (``C = 0``),
but an NF that is CPU-bound when alone can hide all of its memory-range
sensitivity from solo probes; probing under contention reveals exactly
the ranges where the contended model needs data (and the probes
themselves become useful training samples). Attribute pruning keeps an
attribute if either the solo or the reference-contention extremes
differ.

Thresholds are *relative* to the NF's default-traffic solo throughput so
one configuration works across NFs with different absolute rates.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from repro.errors import ProfilingError
from repro.nf.framework import NetworkFunction
from repro.profiling.collector import ProfilingCollector
from repro.profiling.contention import ContentionLevel
from repro.profiling.dataset import ProfileDataset
from repro.profiling.sampling import ContentionSampler, _default_contention_sampler
from repro.rng import SeedLike, make_rng
from repro.traffic.profile import (
    DEFAULT_RANGES,
    AttributeRange,
    TrafficProfile,
)

#: Recursion floor: stop splitting regions thinner than this fraction of
#: the original attribute range.
_MIN_REGION_FRACTION = 1.0 / 64.0


@dataclass
class AdaptiveProfilingReport:
    """Outcome of one adaptive profiling run."""

    dataset: ProfileDataset
    kept_attributes: list[str]
    pruned_attributes: list[str]
    quota: int
    samples_used: int
    regions_split: int = 0

    @property
    def profiling_cost(self) -> int:
        """Number of profiled samples (the paper's cost unit)."""
        return self.samples_used


class AdaptiveProfiler:
    """Algorithm 1: prune attributes, then adaptively sample ranges."""

    def __init__(
        self,
        collector: ProfilingCollector,
        quota: int = 120,
        epsilon_prune: float = 0.05,
        epsilon_split: float = 0.04,
        samples_per_region: int = 3,
        contention_sampler: ContentionSampler = _default_contention_sampler,
        reference_contention: ContentionLevel = ContentionLevel(
            mem_car=180.0, mem_wss_mb=10.0
        ),
        seed: SeedLike = None,
        use_batch: bool = True,
    ) -> None:
        if quota < 1:
            raise ProfilingError("quota must be >= 1")
        if epsilon_prune <= 0 or epsilon_split <= 0:
            raise ProfilingError("epsilon thresholds must be positive")
        if samples_per_region < 1:
            raise ProfilingError("samples_per_region must be >= 1")
        self._collector = collector
        self._quota = quota
        self._epsilon_prune = epsilon_prune
        self._epsilon_split = epsilon_split
        self._samples_per_region = samples_per_region
        self._contention_sampler = contention_sampler
        self._reference_contention = reference_contention
        self._rng = make_rng(seed)
        # Batch the per-region contended samples through profile_many
        # (one run_batch per region). False keeps the looped primitive —
        # the equivalence oracle pinned by tests/profiling.
        self._use_batch = use_batch

    # ------------------------------------------------------------------
    def profile(
        self,
        nf: NetworkFunction,
        attributes: list[str] | None = None,
        base_traffic: TrafficProfile = TrafficProfile(),
        ranges: dict[str, AttributeRange] | None = None,
    ) -> AdaptiveProfilingReport:
        """Run Algorithm 1 for ``nf`` and return the collected dataset."""
        ranges = dict(DEFAULT_RANGES if ranges is None else ranges)
        attributes = list(ranges) if attributes is None else list(attributes)

        dataset = ProfileDataset(nf.name)
        report = AdaptiveProfilingReport(
            dataset=dataset,
            kept_attributes=[],
            pruned_attributes=[],
            quota=self._quota,
            samples_used=0,
        )
        self._seen: set[tuple] = set()
        reference = self._collector.solo(nf, base_traffic).throughput_mpps

        # Phase 1: prune insensitive attributes (lines 7-11 of Alg. 1).
        # An attribute is kept when its extremes change throughput in any
        # screening context: solo or under the reference contention, with
        # the *other* attributes at their defaults or at their maxima
        # (the second context catches interactions such as packet size
        # mattering only at high MTBR).
        maxed_traffic = base_traffic
        for name in attributes:
            maxed_traffic = maxed_traffic.with_attribute(name, ranges[name].maximum)
        for name in attributes:
            span = ranges[name]
            diffs = []
            for context in (base_traffic, maxed_traffic):
                low_traffic = context.with_attribute(name, span.minimum)
                high_traffic = context.with_attribute(name, span.maximum)
                for contention in (ContentionLevel(), self._reference_contention):
                    diffs.append(
                        abs(
                            self._sample(nf, contention, high_traffic, dataset, report)
                            - self._sample(nf, contention, low_traffic, dataset, report)
                        )
                    )
            if max(diffs) < self._epsilon_prune * reference:
                report.pruned_attributes.append(name)
            else:
                report.kept_attributes.append(name)

        if not report.kept_attributes:
            # Traffic-insensitive NF: spend the remaining quota on
            # contention-only samples at the default traffic.
            while report.samples_used < self._quota:
                self._contended_sample(nf, base_traffic, dataset, report)
            return report

        # Phase 2: recursive range profiling (lines 14-26 of Alg. 1).
        kept = report.kept_attributes
        lows = {n: ranges[n].minimum for n in kept}
        highs = {n: ranges[n].maximum for n in kept}
        spans = {n: ranges[n].maximum - ranges[n].minimum for n in kept}
        self._range_profile(
            nf, base_traffic, lows, highs, spans, reference, dataset, report
        )

        # Spend any residual quota on random points of the explored
        # space so it is never wasted.
        guard = 0
        while report.samples_used < self._quota and guard < 20 * self._quota:
            guard += 1
            traffic = base_traffic
            for name in kept:
                span = ranges[name]
                traffic = traffic.with_attribute(
                    name, float(self._rng.uniform(span.minimum, span.maximum))
                )
            self._contended_sample(nf, traffic, dataset, report)
        return report

    # ------------------------------------------------------------------
    def _sample(
        self,
        nf: NetworkFunction,
        contention: ContentionLevel,
        traffic: TrafficProfile,
        dataset: ProfileDataset,
        report: AdaptiveProfilingReport,
    ) -> float:
        """profile_one with config-level dedup; returns the throughput."""
        key = (contention, traffic)
        sample = self._collector.profile_one(nf, contention, traffic)
        if key not in self._seen:
            self._seen.add(key)
            dataset.add(sample)
            report.samples_used += 1
        return sample.throughput_mpps

    def _contended_sample(
        self,
        nf: NetworkFunction,
        traffic: TrafficProfile,
        dataset: ProfileDataset,
        report: AdaptiveProfilingReport,
    ) -> None:
        contention = self._contention_sampler(self._rng)
        self._sample(nf, contention, traffic, dataset, report)

    def _region_contended_samples(
        self,
        nf: NetworkFunction,
        traffic: TrafficProfile,
        dataset: ProfileDataset,
        report: AdaptiveProfilingReport,
    ) -> bool:
        """``samples_per_region`` contended samples at a region midpoint.

        Returns ``False`` when the quota ran out mid-region (the caller
        stops refining, exactly like the looped primitive's early
        return). The samples of one region are independent, so the
        batch path draws the contention levels the loop would draw —
        the between-draws quota check uses a *projected* sample count,
        which matches the loop because repeated configurations are
        charged no quota — then solves all of them in one
        :meth:`ProfilingCollector.profile_many` call. Sample values,
        dataset order, quota and cache accounting are identical to the
        loop; ``tests/profiling`` pins the equivalence.
        """
        if not self._use_batch:
            for _ in range(self._samples_per_region):
                if report.samples_used >= self._quota:
                    return False
                self._contended_sample(nf, traffic, dataset, report)
            return True
        pending: list[ContentionLevel] = []
        projected = report.samples_used
        projected_new: set[tuple] = set()
        exhausted = False
        for _ in range(self._samples_per_region):
            if projected >= self._quota:
                exhausted = True
                break
            contention = self._contention_sampler(self._rng)
            pending.append(contention)
            key = (contention, traffic)
            if key not in self._seen and key not in projected_new:
                projected_new.add(key)
                projected += 1
        samples = self._collector.profile_many(
            [(nf, contention, traffic) for contention in pending]
        )
        for contention, sample in zip(pending, samples):
            key = (contention, traffic)
            if key not in self._seen:
                self._seen.add(key)
                dataset.add(sample)
                report.samples_used += 1
        return not exhausted

    def _apply(self, base: TrafficProfile, values: dict[str, float]) -> TrafficProfile:
        traffic = base
        for name, value in values.items():
            traffic = traffic.with_attribute(name, value)
        return traffic

    def _range_profile(
        self,
        nf: NetworkFunction,
        base_traffic: TrafficProfile,
        lows: dict[str, float],
        highs: dict[str, float],
        spans: dict[str, float],
        reference: float,
        dataset: ProfileDataset,
        report: AdaptiveProfilingReport,
    ) -> None:
        """Sensitivity-prioritised breadth-first box refinement.

        Boxes live in a max-heap keyed by their parent's corner
        difference, so large sensitive regions everywhere in the space
        are refined before any one region is refined deeply — a
        depth-first walk would starve far-away regions once the quota
        runs out. Each split collects ``samples_per_region`` contended
        samples plus one solo anchor at the box midpoint.
        """
        import heapq

        counter = itertools.count()
        heap: list[tuple[float, int, dict, dict]] = [
            (-float("inf"), next(counter), lows, highs)
        ]
        epsilon = self._epsilon_split * reference
        while heap and report.samples_used < self._quota:
            _, __, box_lows, box_highs = heapq.heappop(heap)
            low_traffic = self._apply(base_traffic, box_lows)
            high_traffic = self._apply(base_traffic, box_highs)
            t_low = self._sample(
                nf, self._reference_contention, low_traffic, dataset, report
            )
            if report.samples_used >= self._quota:
                return
            t_high = self._sample(
                nf, self._reference_contention, high_traffic, dataset, report
            )
            if report.samples_used >= self._quota:
                return
            solo_low = self._sample(nf, ContentionLevel(), low_traffic, dataset, report)
            solo_high = self._sample(
                nf, ContentionLevel(), high_traffic, dataset, report
            )
            if report.samples_used >= self._quota:
                return
            # Traffic sensitivity: corners differ under contention.
            diff = abs(t_high - t_low)
            # Contention sensitivity: corners sit far below their solo
            # values, i.e. the contention response curve is steep here
            # and needs samples across contention levels even if the
            # traffic direction looks flat.
            deviation = max(solo_low - t_low, solo_high - t_high, 0.0)
            if diff < epsilon and deviation < 3.0 * epsilon:
                continue
            if all(
                (box_highs[n] - box_lows[n]) < _MIN_REGION_FRACTION * spans[n]
                for n in box_lows
            ):
                continue
            report.regions_split += 1
            mids = {n: 0.5 * (box_lows[n] + box_highs[n]) for n in box_lows}
            mid_traffic = self._apply(base_traffic, mids)
            self._sample(nf, ContentionLevel(), mid_traffic, dataset, report)
            if not self._region_contended_samples(nf, mid_traffic, dataset, report):
                return
            priority = diff + 0.3 * deviation
            names = list(box_lows)
            for corner in itertools.product((0, 1), repeat=len(names)):
                child_lows = {}
                child_highs = {}
                for bit, name in zip(corner, names):
                    if bit == 0:
                        child_lows[name] = box_lows[name]
                        child_highs[name] = mids[name]
                    else:
                        child_lows[name] = mids[name]
                        child_highs[name] = box_highs[name]
                heapq.heappush(
                    heap, (-priority, next(counter), child_lows, child_highs)
                )
