"""Profiled samples and feature-matrix assembly."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ProfilingError
from repro.nic.counters import COUNTER_NAMES, PerfCounters
from repro.profiling.contention import ContentionLevel
from repro.traffic.profile import TRAFFIC_ATTRIBUTES, TrafficProfile


@dataclass(frozen=True)
class ProfileSample:
    """One profiled operating point of a target NF.

    ``competitor_counters`` is the aggregate of the co-runners' solo
    counter vectors — the "contention level" feature SLOMO and Yala
    consume. ``throughput_mpps`` is the measured target throughput at
    this point.
    """

    nf_name: str
    traffic: TrafficProfile
    contention: ContentionLevel
    competitor_counters: PerfCounters
    throughput_mpps: float
    solo_throughput_mpps: float
    n_competitors: int = 1

    @property
    def drop_ratio(self) -> float:
        """Fractional throughput drop vs. the solo baseline."""
        if self.solo_throughput_mpps <= 0:
            raise ProfilingError("solo throughput must be positive")
        return 1.0 - self.throughput_mpps / self.solo_throughput_mpps


@dataclass
class ProfileDataset:
    """A set of profiled samples for one NF, convertible to matrices."""

    nf_name: str
    samples: list[ProfileSample] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.samples)

    def add(self, sample: ProfileSample) -> None:
        if sample.nf_name != self.nf_name:
            raise ProfilingError(
                f"sample for {sample.nf_name!r} added to dataset of {self.nf_name!r}"
            )
        self.samples.append(sample)

    def extend(self, samples: list[ProfileSample]) -> None:
        for sample in samples:
            self.add(sample)

    # ------------------------------------------------------------------
    def features(self, include_traffic: bool = True) -> np.ndarray:
        """Feature matrix: 7 counters + competitor count [+ traffic].

        Column order is :data:`~repro.nic.counters.COUNTER_NAMES`, then
        the number of co-located competitors (several light contenders
        press a shared cache differently than one heavy contender with
        identical aggregate counters), then optionally
        :data:`~repro.traffic.profile.TRAFFIC_ATTRIBUTES`.

        The matrix is assembled as flat per-row value lists converted by
        one ``np.array`` call — no per-sample ``np.concatenate`` (three
        array allocations per row made this the profiling-to-training
        handoff's hot spot on large batch-profiled sweeps). Values (and
        dtype) are identical to the concatenation-based layout.
        """
        if not self.samples:
            raise ProfilingError("dataset is empty")
        rows = []
        for sample in self.samples:
            counters = sample.competitor_counters
            row = [getattr(counters, name) for name in COUNTER_NAMES]
            row.append(float(sample.n_competitors))
            if include_traffic:
                traffic = sample.traffic
                row.extend(
                    (
                        float(traffic.flow_count),
                        float(traffic.packet_size),
                        traffic.mtbr,
                    )
                )
            rows.append(row)
        return np.array(rows, dtype=np.float64)

    def targets(self) -> np.ndarray:
        """Measured throughputs (Mpps)."""
        if not self.samples:
            raise ProfilingError("dataset is empty")
        return np.array([s.throughput_mpps for s in self.samples])

    @staticmethod
    def feature_names(include_traffic: bool = True) -> tuple[str, ...]:
        """Column names matching :meth:`features`."""
        names = tuple(COUNTER_NAMES) + ("n_competitors",)
        if include_traffic:
            names = names + tuple(TRAFFIC_ATTRIBUTES)
        return names

    # ------------------------------------------------------------------
    def split_by(self, predicate) -> tuple["ProfileDataset", "ProfileDataset"]:
        """Split samples into (matching, rest) datasets."""
        yes = ProfileDataset(self.nf_name)
        no = ProfileDataset(self.nf_name)
        for sample in self.samples:
            (yes if predicate(sample) else no).add(sample)
        return yes, no

    def merged_with(self, other: "ProfileDataset") -> "ProfileDataset":
        """New dataset containing samples of both."""
        if other.nf_name != self.nf_name:
            raise ProfilingError("cannot merge datasets of different NFs")
        merged = ProfileDataset(self.nf_name)
        merged.extend(self.samples)
        merged.extend(other.samples)
        return merged
