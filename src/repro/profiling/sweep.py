"""``run_batch``-backed sweep helpers for scripts and examples.

Exploratory scripts keep writing the same loop: *for each traffic
profile / co-location, run the simulator, collect the result*. These
helpers express that loop as one batched solve:

- :func:`traffic_sweep` — one NF profiled at one contention level
  across many traffic profiles (one
  :meth:`ProfilingCollector.profile_many` call);
- :func:`colocation_sweep` — many co-location scenarios, each a list of
  ``(NetworkFunction, TrafficProfile)`` pairs, solved in one
  :meth:`SmartNic.run_batch` call, with the position-indexed instance
  naming the evaluation uses (``"<nf>#<j>"``) so an NF can co-run with
  itself.

Both are bit-identical to the loops they replace — batching is never a
numerical change in this library.
"""

from __future__ import annotations

from typing import Sequence

from repro.nf.framework import NetworkFunction
from repro.nic.nic import RunResult, SmartNic
from repro.nic.workload import WorkloadDemand
from repro.profiling.collector import ProfilingCollector
from repro.profiling.contention import ContentionLevel
from repro.profiling.dataset import ProfileSample
from repro.traffic.profile import TrafficProfile


def traffic_sweep(
    collector: ProfilingCollector,
    nf: NetworkFunction,
    contention: ContentionLevel,
    traffics: Sequence[TrafficProfile],
) -> list[ProfileSample]:
    """Profile ``nf`` at ``contention`` across many traffic profiles.

    Equivalent to looping :meth:`ProfilingCollector.profile_one`; all
    uncached runs solve in one batch.
    """
    return collector.profile_many(
        [(nf, contention, traffic) for traffic in traffics]
    )


def colocation_demands(
    scenario: Sequence[tuple[NetworkFunction, TrafficProfile]],
) -> list[WorkloadDemand]:
    """Compile one co-location into demands with position-unique names."""
    return [
        nf.demand(traffic, instance=f"{nf.name}#{index}")
        for index, (nf, traffic) in enumerate(scenario)
    ]


def colocation_sweep(
    nic: SmartNic,
    scenarios: Sequence[Sequence[tuple[NetworkFunction, TrafficProfile]]],
    on_error: str = "raise",
) -> list[RunResult]:
    """Solve many co-locations in one :meth:`SmartNic.run_batch` call.

    Workload names follow :func:`colocation_demands`
    (``"<nf>#<position>"``); with ``on_error="return"`` infeasible
    scenarios yield their exception instance instead of raising.
    """
    return nic.run_batch(
        [colocation_demands(scenario) for scenario in scenarios],
        on_error=on_error,
    )
