"""Offline profiling substrate (paper §5.2, §6).

Profiles NFs on the simulated NIC under synthetic contention from the
bench NFs and configurable traffic, producing the datasets the
prediction models train on:

- :class:`~repro.profiling.collector.ProfilingCollector` — the
  ``profile_one`` primitive plus solo-run and bench-counter caching,
- :class:`~repro.profiling.contention.ContentionLevel` — a point in the
  synthetic contention space (mem-bench / regex-bench / compression-
  bench settings),
- :mod:`~repro.profiling.sampling` — full-grid and random profiling,
- :mod:`~repro.profiling.adaptive` — the paper's Algorithm 1 (attribute
  pruning + recursive range profiling),
- :mod:`~repro.profiling.sweep` — ``run_batch``-backed sweep helpers
  for scripts (traffic sweeps, co-location sweeps).
"""

from repro.profiling.adaptive import AdaptiveProfiler, AdaptiveProfilingReport
from repro.profiling.collector import ProfilingCollector
from repro.profiling.contention import ContentionLevel, random_contention
from repro.profiling.dataset import ProfileDataset, ProfileSample
from repro.profiling.sampling import full_profile, random_profile
from repro.profiling.sweep import colocation_sweep, traffic_sweep

__all__ = [
    "AdaptiveProfiler",
    "AdaptiveProfilingReport",
    "ContentionLevel",
    "ProfileDataset",
    "ProfileSample",
    "ProfilingCollector",
    "colocation_sweep",
    "full_profile",
    "random_profile",
    "random_contention",
    "traffic_sweep",
]
