"""Synthetic contention levels.

A :class:`ContentionLevel` is one point in the contention space the
bench NFs can impose: memory pressure (mem-bench cache access rate and
working set), regex-engine load (regex-bench request rate, MTBR, request
size) and compression-engine load. ``ContentionLevel()`` is the
no-contention point used for solo profiling.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import ConfigurationError
from repro.nf.synthetic import compression_bench, mem_bench, regex_bench
from repro.nic.workload import WorkloadDemand
from repro.rng import SeedLike, make_rng


@dataclass(frozen=True)
class ContentionLevel:
    """Bench NF settings that realise one synthetic contention point."""

    mem_car: float = 0.0  # mem-bench target CAR, Mref/s (total)
    mem_wss_mb: float = 10.0  # total working set across actors
    mem_hot_fraction: float = 0.0  # mem-bench reuse locality
    mem_actors: int = 1  # number of concurrent mem-bench instances
    regex_rate: float = 0.0  # regex-bench request rate, Mreq/s
    regex_mtbr: float = 600.0
    regex_payload_bytes: float = 1024.0
    compression_rate: float = 0.0  # compression-bench rate, Mreq/s
    compression_payload_bytes: float = 1024.0

    def __post_init__(self) -> None:
        if min(self.mem_car, self.regex_rate, self.compression_rate) < 0:
            raise ConfigurationError("contention rates must be >= 0")
        if self.mem_wss_mb <= 0:
            raise ConfigurationError("mem_wss_mb must be positive")
        if self.regex_payload_bytes <= 0 or self.compression_payload_bytes <= 0:
            raise ConfigurationError("bench payload sizes must be positive")
        if not 0.0 <= self.mem_hot_fraction < 1.0:
            raise ConfigurationError("mem_hot_fraction must be in [0, 1)")
        if not 1 <= self.mem_actors <= 3:
            raise ConfigurationError("mem_actors must be in [1, 3]")
        if self.regex_mtbr < 0:
            raise ConfigurationError("regex_mtbr must be >= 0")

    # ------------------------------------------------------------------
    @property
    def is_idle(self) -> bool:
        """True when no bench applies any pressure (solo profiling)."""
        return (
            self.mem_car == 0.0
            and self.regex_rate == 0.0
            and self.compression_rate == 0.0
        )

    @property
    def actor_count(self) -> int:
        """Number of contending workloads this level materialises."""
        count = 0
        if self.mem_car > 0.0:
            count += self.mem_actors
        if self.regex_rate > 0.0:
            count += 1
        if self.compression_rate > 0.0:
            count += 1
        return count

    @property
    def regex_match_rate(self) -> float:
        """Offered regex match rate, Kmatches/ms == Mmatches/s."""
        return self.regex_rate * self.regex_payload_bytes * self.regex_mtbr / 1e6

    def benches(self, available_cores: int) -> list[WorkloadDemand]:
        """Materialise the bench workloads for this contention point.

        ``available_cores`` bounds how many cores mem-bench may take
        (it is the greediest bench; the accelerator benches need one
        core each).
        """
        workloads: list[WorkloadDemand] = []
        budget = available_cores
        if self.regex_rate > 0.0:
            workloads.append(
                regex_bench(
                    self.regex_rate,
                    mtbr=self.regex_mtbr,
                    payload_bytes=self.regex_payload_bytes,
                    cores=1,
                )
            )
            budget -= 1
        if self.compression_rate > 0.0:
            workloads.append(
                compression_bench(
                    self.compression_rate,
                    payload_bytes=self.compression_payload_bytes,
                    cores=1,
                )
            )
            budget -= 1
        if self.mem_car > 0.0:
            # Several smaller concurrent instances press the shared
            # cache much more gently than one streaming instance with
            # the same total rate — matching how groups of real NFs
            # contend. Aggregate counters stay comparable either way.
            actors = self.mem_actors
            cores_each = max(1, min(4, budget) // actors)
            for index in range(actors):
                workloads.append(
                    mem_bench(
                        self.mem_car / actors,
                        wss_mb=self.mem_wss_mb / actors,
                        cores=cores_each,
                        hot_fraction=self.mem_hot_fraction,
                        instance=f"mem-bench#{index}" if actors > 1 else None,
                    )
                )
        return workloads

    # ------------------------------------------------------------------
    def with_memory(
        self,
        car: float,
        wss_mb: float | None = None,
        hot_fraction: float | None = None,
        actors: int | None = None,
    ) -> "ContentionLevel":
        """Copy with different memory pressure."""
        return replace(
            self,
            mem_car=car,
            mem_wss_mb=wss_mb if wss_mb is not None else self.mem_wss_mb,
            mem_hot_fraction=(
                hot_fraction if hot_fraction is not None else self.mem_hot_fraction
            ),
            mem_actors=actors if actors is not None else self.mem_actors,
        )

    def with_regex(
        self, rate: float, mtbr: float | None = None
    ) -> "ContentionLevel":
        """Copy with different regex-engine pressure."""
        return replace(
            self,
            regex_rate=rate,
            regex_mtbr=mtbr if mtbr is not None else self.regex_mtbr,
        )

    def with_compression(self, rate: float) -> "ContentionLevel":
        """Copy with different compression-engine pressure."""
        return replace(self, compression_rate=rate)


#: Default sweep grids used when generating training data.
MEM_CAR_GRID: tuple[float, ...] = (0.0, 30.0, 60.0, 100.0, 140.0, 180.0, 220.0, 260.0)
REGEX_RATE_GRID: tuple[float, ...] = (0.0, 0.25, 0.5, 1.0, 1.5, 2.0, 3.0)


def random_contention(
    seed: SeedLike = None,
    memory: bool = True,
    regex: bool = False,
    compression: bool = False,
    max_car: float = 260.0,
    max_regex_rate: float = 3.0,
    max_compression_rate: float = 2.0,
) -> ContentionLevel:
    """Draw a random contention level over the enabled resources."""
    rng = make_rng(seed)
    level = ContentionLevel()
    if memory:
        if rng.random() < 0.35:
            # "NF-like" contenders: several light actors with strong
            # reuse locality and per-actor working sets of a few MB —
            # the pressure pattern groups of real NFs exert. Without
            # explicit coverage here the model extrapolates badly when
            # predicting co-location with real NFs.
            actors = int(rng.integers(2, 4))
            level = level.with_memory(
                float(rng.uniform(20.0, 170.0)),
                wss_mb=float(rng.uniform(0.5, 3.0)) * actors,
                hot_fraction=float(rng.uniform(0.4, 0.75)),
                actors=actors,
            )
        else:
            # Bench-like contenders: anywhere in the pressure space,
            # biased towards low rates so light contention is covered.
            level = level.with_memory(
                float(max_car * rng.random() ** 1.3),
                wss_mb=float(rng.uniform(1.0, 12.0)),
                hot_fraction=float(rng.uniform(0.0, 0.7)),
                actors=int(rng.integers(1, 4)),
            )
    if regex:
        level = level.with_regex(
            float(rng.uniform(0.0, max_regex_rate)),
            mtbr=float(rng.uniform(100.0, 1100.0)),
        )
    if compression:
        level = level.with_compression(float(rng.uniform(0.0, max_compression_rate)))
    return level
