"""Full-grid and random profiling strategies (Table 8 baselines)."""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.errors import ProfilingError
from repro.nf.framework import NetworkFunction
from repro.profiling.collector import ProfilingCollector
from repro.profiling.contention import ContentionLevel, random_contention
from repro.profiling.dataset import ProfileDataset
from repro.rng import SeedLike, make_rng, spawn
from repro.traffic.profile import (
    DEFAULT_RANGES,
    AttributeRange,
    TrafficProfile,
)

ContentionSampler = Callable[[np.random.Generator], ContentionLevel]


def _default_contention_sampler(rng: np.random.Generator) -> ContentionLevel:
    """Memory-only random contention (the Table 8 setting)."""
    return random_contention(seed=rng, memory=True, regex=False, compression=False)


def full_profile(
    collector: ProfilingCollector,
    nf: NetworkFunction,
    attributes: list[str],
    grid_points: dict[str, int],
    contention_levels_per_point: int = 4,
    base_traffic: TrafficProfile = TrafficProfile(),
    ranges: dict[str, AttributeRange] | None = None,
    contention_sampler: ContentionSampler = _default_contention_sampler,
    seed: SeedLike = None,
) -> ProfileDataset:
    """Exhaustive grid profiling (the paper's "full profiling").

    Sweeps a dense grid over ``attributes`` and profiles
    ``contention_levels_per_point`` random contention levels at every
    grid point. The paper's full profiling uses 16 packet sizes x 200
    flow counts (~3200x the adaptive quota); pass smaller grids for
    tractable experiments.
    """
    if not attributes:
        raise ProfilingError("full_profile needs at least one attribute")
    ranges = dict(DEFAULT_RANGES if ranges is None else ranges)
    rng = make_rng(seed)
    axes = []
    for name in attributes:
        points = grid_points.get(name, 8)
        axes.append([(name, v) for v in ranges[name].grid(points)])

    dataset = ProfileDataset(nf.name)
    grids = np.meshgrid(*[np.arange(len(a)) for a in axes], indexing="ij")
    for flat_index in range(grids[0].size):
        traffic = base_traffic
        for axis_index, axis in enumerate(axes):
            name, value = axis[grids[axis_index].flat[flat_index]]
            traffic = traffic.with_attribute(name, value)
        for _ in range(contention_levels_per_point):
            contention = contention_sampler(rng)
            dataset.add(collector.profile_one(nf, contention, traffic))
        # Always include the solo point so zero-contention behaviour is
        # represented in the training distribution.
        dataset.add(collector.profile_one(nf, ContentionLevel(), traffic))
    return dataset


def random_profile(
    collector: ProfilingCollector,
    nf: NetworkFunction,
    quota: int,
    attributes: list[str] | None = None,
    base_traffic: TrafficProfile = TrafficProfile(),
    ranges: dict[str, AttributeRange] | None = None,
    contention_sampler: ContentionSampler = _default_contention_sampler,
    solo_fraction: float = 0.15,
    seed: SeedLike = None,
) -> ProfileDataset:
    """Uniform random profiling within the same quota as adaptive.

    Draws traffic attributes uniformly over their ranges and contention
    from ``contention_sampler``; ``solo_fraction`` of the quota is spent
    on zero-contention samples so the model sees the solo baseline.
    """
    if quota < 1:
        raise ProfilingError("quota must be >= 1")
    ranges = dict(DEFAULT_RANGES if ranges is None else ranges)
    attributes = list(ranges) if attributes is None else list(attributes)
    rng, contention_rng = spawn(make_rng(seed), 2)

    dataset = ProfileDataset(nf.name)
    n_solo = max(1, int(round(solo_fraction * quota)))
    for index in range(quota):
        traffic = base_traffic
        for name in attributes:
            span = ranges[name]
            traffic = traffic.with_attribute(
                name, float(rng.uniform(span.minimum, span.maximum))
            )
        if index < n_solo:
            contention = ContentionLevel()
        else:
            contention = contention_sampler(contention_rng)
        dataset.add(collector.profile_one(nf, contention, traffic))
    return dataset
