"""The profiling collector: measured runs on the simulated NIC.

Implements the paper's ``profile_one`` primitive: run the target NF
co-located with bench NFs at a given contention level and traffic
profile, and record the target's throughput together with the
competitors' aggregate counters. Solo runs and bench counter
measurements are cached — profiling cost in the experiments is counted
in *target* samples, exactly as the paper counts its profiling quota.
"""

from __future__ import annotations

import threading
from typing import Optional

from repro.errors import ProfilingError
from repro.nf.framework import NetworkFunction
from repro.obs import NULL_RECORDER, Recorder
from repro.nic.counters import PerfCounters
from repro.nic.nic import SmartNic, WorkloadResult
from repro.profiling.contention import ContentionLevel
from repro.profiling.dataset import ProfileSample
from repro.traffic.profile import TrafficProfile


class ProfilingCollector:
    """Runs profiling experiments for target NFs on one NIC."""

    def __init__(self, nic: SmartNic) -> None:
        self._nic = nic
        self._solo_cache: dict[tuple, WorkloadResult] = {}
        self._bench_counter_cache: dict[tuple, PerfCounters] = {}
        self._sample_cache: dict[tuple, ProfileSample] = {}
        self._profile_count = 0
        # Guards the quota counter when predictors train concurrently
        # (cache writes are idempotent; the counter increment is not).
        self._count_lock = threading.Lock()
        # Telemetry sink — execution channels only (cache hit rates and
        # quota spend depend on evaluation order, never on results).
        self._obs: Recorder = NULL_RECORDER

    def observe(self, recorder: Recorder) -> None:
        """Attach a telemetry recorder (``NULL_RECORDER`` detaches)."""
        self._obs = recorder

    def __getstate__(self) -> dict:
        """Pickle support: locks and recorders don't travel, caches do."""
        state = self.__dict__.copy()
        del state["_count_lock"]
        state["_obs"] = NULL_RECORDER
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._count_lock = threading.Lock()

    @property
    def nic(self) -> SmartNic:
        return self._nic

    @property
    def profile_count(self) -> int:
        """Number of distinct target co-runs measured so far."""
        return self._profile_count

    # ------------------------------------------------------------------
    def solo(self, nf: NetworkFunction, traffic: TrafficProfile) -> WorkloadResult:
        """Measured solo behaviour of ``nf`` under ``traffic`` (cached)."""
        key = (nf.name, nf.pattern.value, traffic)
        if key not in self._solo_cache:
            self._obs.exec_counter("collector.solo_misses")
            self._solo_cache[key] = self._nic.run_solo(nf.demand(traffic))
        else:
            self._obs.exec_counter("collector.solo_hits")
        return self._solo_cache[key]

    def solo_cached(self, nf: NetworkFunction, traffic: TrafficProfile) -> bool:
        """Is the solo baseline of ``(nf, traffic)`` already measured?

        Execution runtimes (:mod:`repro.fleet.runtime`) use this to
        dedupe a warm batch before farming the uncached remainder to
        worker processes.
        """
        return (nf.name, nf.pattern.value, traffic) in self._solo_cache

    def install_solo(
        self,
        nf: NetworkFunction,
        traffic: TrafficProfile,
        result: WorkloadResult,
    ) -> None:
        """Install an externally solved solo baseline into the cache.

        ``result`` must be what :meth:`SmartNic.run_solo` would return
        for ``nf.demand(traffic)`` on this collector's NIC — true by
        construction for the execution runtimes, whose workers solve on
        pickled copies of the same simulator (values are pure in
        ``(seed, scenario)``), so installing is indistinguishable from
        having measured locally.
        """
        self._solo_cache[(nf.name, nf.pattern.value, traffic)] = result

    def solo_many(
        self, requests: list[tuple[NetworkFunction, TrafficProfile]]
    ) -> list[WorkloadResult]:
        """Batch form of :meth:`solo` — one measured solo per request.

        Bit-identical to looping :meth:`solo` (``run_batch`` reproduces
        ``run`` exactly and the cache key is unchanged); all uncached
        solos solve in one :meth:`SmartNic.run_batch` call. The fleet
        engine uses this to warm an epoch's solo baselines in one shot
        before the placement policies start probing them.
        """
        scenarios = []
        slots: list[tuple[int, tuple, str]] = []
        enqueued: set[tuple] = set()
        for i, (nf, traffic) in enumerate(requests):
            key = (nf.name, nf.pattern.value, traffic)
            if key in self._solo_cache or key in enqueued:
                continue
            enqueued.add(key)
            slots.append((len(scenarios), key, nf.name))
            scenarios.append([nf.demand(traffic)])
        if scenarios:
            solved = self._nic.run_batch(scenarios)
            for slot, key, name in slots:
                self._solo_cache[key] = solved[slot][name]
        if self._obs.enabled:
            self._obs.exec_counter("collector.solo_misses", len(scenarios))
            self._obs.exec_counter(
                "collector.solo_hits", len(requests) - len(scenarios)
            )
        return [
            self._solo_cache[(nf.name, nf.pattern.value, traffic)]
            for nf, traffic in requests
        ]

    def bench_counters(
        self,
        contention: ContentionLevel,
        available_cores: Optional[int] = None,
    ) -> PerfCounters:
        """Aggregate solo counters of the benches at ``contention``.

        These are the "contention level" features handed to the models;
        the bench set is measured running together (without the target),
        mirroring how SLOMO characterises a competitor mix's
        contentiousness. ``available_cores`` must describe the same core
        budget the measured co-run gives the benches (``num_cores -
        target cores``) so the counter features describe the competitor
        mix the target actually faced; it defaults to a two-core target.
        """
        if contention.is_idle:
            return PerfCounters.zero()
        if available_cores is None:
            available_cores = self._nic.spec.num_cores - 2
        key = (contention, available_cores)
        if key not in self._bench_counter_cache:
            self._obs.exec_counter("collector.bench_misses")
            benches = contention.benches(available_cores)
            if not benches:
                self._bench_counter_cache[key] = PerfCounters.zero()
            else:
                result = self._nic.run(benches)
                self._bench_counter_cache[key] = PerfCounters.aggregate(
                    [result[w.name].counters for w in benches]
                )
        else:
            self._obs.exec_counter("collector.bench_hits")
        return self._bench_counter_cache[key]

    # ------------------------------------------------------------------
    def profile_one(
        self,
        nf: NetworkFunction,
        contention: ContentionLevel,
        traffic: TrafficProfile,
    ) -> ProfileSample:
        """One measured co-run of ``nf`` against the benches.

        The paper's Algorithm 1 calls this ``profile_one(nf, C, F, n)``
        and "increments the total number of collected samples by one if
        the configuration has not been profiled" — so repeated
        configurations are served from cache and charged no quota. The
        sample counter is exposed as :attr:`profile_count`.
        """
        key = (nf.name, nf.pattern.value, contention, traffic)
        if key in self._sample_cache:
            self._obs.exec_counter("collector.sample_hits")
            return self._sample_cache[key]
        self._obs.exec_counter("collector.sample_misses")
        solo = self.solo(nf, traffic)
        target = nf.demand(traffic)
        bench_budget = self._nic.spec.num_cores - target.cores
        benches = contention.benches(bench_budget)
        if benches:
            result = self._nic.run([target] + benches)
            throughput = result[target.name].throughput_mpps
        else:
            throughput = solo.throughput_mpps
        with self._count_lock:
            self._profile_count += 1
        self._obs.exec_gauge("collector.profile_count", self._profile_count)
        sample = ProfileSample(
            nf_name=nf.name,
            traffic=traffic,
            contention=contention,
            # Counter features must describe the same bench set the
            # measured co-run used — size it with the target's actual
            # core take, not a hard-coded two-core assumption.
            competitor_counters=self.bench_counters(contention, bench_budget),
            throughput_mpps=throughput,
            solo_throughput_mpps=solo.throughput_mpps,
            n_competitors=len(benches),
        )
        self._sample_cache[key] = sample
        return sample

    def profile_many(
        self,
        requests: list[tuple[NetworkFunction, ContentionLevel, TrafficProfile]],
    ) -> list[ProfileSample]:
        """Batch form of :meth:`profile_one` — one sample per request.

        Bit-identical to looping :meth:`profile_one` (the simulator is
        stateless and noise is seeded per workload set, so evaluation
        order cannot change any sample): the quota counter advances
        once per *distinct* uncached configuration, duplicate requests
        share one sample, and the solo / bench-counter caches end up
        with the same entries. All uncached NIC runs — solo baselines,
        target co-runs and bench-counter runs — are collected first and
        solved in a single :meth:`SmartNic.run_batch` call.
        """
        plan: dict[tuple, dict] = {}
        scenarios: list[list] = []
        scenario_keys: dict[tuple, int] = {}

        def enqueue(demands: list) -> int:
            key = tuple(repr(d) for d in demands)
            slot = scenario_keys.get(key)
            if slot is None:
                slot = len(scenarios)
                scenario_keys[key] = slot
                scenarios.append(demands)
            return slot

        for nf, contention, traffic in requests:
            key = (nf.name, nf.pattern.value, contention, traffic)
            if key in self._sample_cache or key in plan:
                continue
            target = nf.demand(traffic)
            entry: dict = {"nf": nf, "target": target}
            solo_key = (nf.name, nf.pattern.value, traffic)
            if solo_key not in self._solo_cache:
                entry["solo_slot"] = enqueue([target])
            bench_budget = self._nic.spec.num_cores - target.cores
            benches = contention.benches(bench_budget)
            entry["benches"] = benches
            if benches:
                entry["co_slot"] = enqueue([target] + benches)
            if not contention.is_idle:
                counter_key = (contention, bench_budget)
                if counter_key not in self._bench_counter_cache:
                    counter_benches = contention.benches(bench_budget)
                    if counter_benches:
                        entry["counter_slot"] = enqueue(counter_benches)
                        entry["counter_benches"] = counter_benches
            plan[key] = entry

        solved = self._nic.run_batch(scenarios) if scenarios else []

        samples = []
        for nf, contention, traffic in requests:
            key = (nf.name, nf.pattern.value, contention, traffic)
            if key in self._sample_cache:
                self._obs.exec_counter("collector.sample_hits")
                samples.append(self._sample_cache[key])
                continue
            self._obs.exec_counter("collector.sample_misses")
            entry = plan[key]
            target = entry["target"]
            solo_key = (nf.name, nf.pattern.value, traffic)
            if solo_key not in self._solo_cache:
                self._solo_cache[solo_key] = solved[entry["solo_slot"]].workloads[
                    target.name
                ]
            solo = self._solo_cache[solo_key]
            benches = entry["benches"]
            if benches:
                throughput = solved[entry["co_slot"]][target.name].throughput_mpps
            else:
                throughput = solo.throughput_mpps
            bench_budget = self._nic.spec.num_cores - target.cores
            if not contention.is_idle:
                counter_key = (contention, bench_budget)
                if counter_key not in self._bench_counter_cache:
                    counter_benches = entry.get("counter_benches")
                    if counter_benches is None:
                        self._bench_counter_cache[counter_key] = PerfCounters.zero()
                    else:
                        result = solved[entry["counter_slot"]]
                        self._bench_counter_cache[counter_key] = (
                            PerfCounters.aggregate(
                                [result[w.name].counters for w in counter_benches]
                            )
                        )
            with self._count_lock:
                self._profile_count += 1
            self._obs.exec_gauge(
                "collector.profile_count", self._profile_count
            )
            sample = ProfileSample(
                nf_name=nf.name,
                traffic=traffic,
                contention=contention,
                competitor_counters=self.bench_counters(contention, bench_budget),
                throughput_mpps=throughput,
                solo_throughput_mpps=solo.throughput_mpps,
                n_competitors=len(benches),
            )
            self._sample_cache[key] = sample
            samples.append(sample)
        return samples

    # ------------------------------------------------------------------
    def co_run_with(
        self,
        nf: NetworkFunction,
        traffic: TrafficProfile,
        competitors: list[tuple[NetworkFunction, TrafficProfile]],
    ) -> WorkloadResult:
        """Ground-truth co-run of ``nf`` against real competitor NFs.

        Used by the evaluation to obtain the truth that predictions are
        scored against. Competitor instances are renamed to avoid
        workload-name collisions when an NF co-runs with itself.
        """
        target = nf.demand(traffic)
        demands = [target]
        for index, (competitor, competitor_traffic) in enumerate(competitors):
            demands.append(
                competitor.demand(
                    competitor_traffic, instance=f"{competitor.name}#{index}"
                )
            )
        total = sum(d.cores for d in demands)
        if total > self._nic.spec.num_cores:
            raise ProfilingError(
                f"co-run needs {total} cores, NIC has {self._nic.spec.num_cores}"
            )
        return self._nic.run(demands)[target.name]

    def co_run_many(
        self,
        requests: list[
            tuple[
                NetworkFunction,
                TrafficProfile,
                list[tuple[NetworkFunction, TrafficProfile]],
            ]
        ],
        on_error: str = "raise",
    ) -> list:
        """Batch form of :meth:`co_run_with` — one result per request.

        Bit-identical to looping :meth:`co_run_with`; all ground-truth
        co-runs solve in one :meth:`SmartNic.run_batch` call. With
        ``on_error="return"`` a request that would have raised gets its
        exception instance in the result slot instead (evaluation loops
        skip infeasible combinations the way their ``try/except`` did).
        """
        scenarios = []
        slots = []
        results: list = [None] * len(requests)
        for i, (nf, traffic, competitors) in enumerate(requests):
            target = nf.demand(traffic)
            demands = [target]
            for index, (competitor, competitor_traffic) in enumerate(competitors):
                demands.append(
                    competitor.demand(
                        competitor_traffic, instance=f"{competitor.name}#{index}"
                    )
                )
            total = sum(d.cores for d in demands)
            if total > self._nic.spec.num_cores:
                results[i] = ProfilingError(
                    f"co-run needs {total} cores, NIC has "
                    f"{self._nic.spec.num_cores}"
                )
                continue
            slots.append((i, target.name))
            scenarios.append(demands)
        solved = self._nic.run_batch(scenarios, on_error="return")
        for (i, target_name), outcome in zip(slots, solved):
            if isinstance(outcome, Exception):
                results[i] = outcome
            else:
                results[i] = outcome[target_name]
        if on_error == "raise":
            for outcome in results:
                if isinstance(outcome, Exception):
                    raise outcome
        return results

    def reset_counters(self) -> None:
        """Reset the profiling-cost counter (caches are kept)."""
        self._profile_count = 0
