"""From-scratch machine-learning substrate.

The paper trains its models with scikit-learn (gradient boosting
regression for the memory subsystem, linear regression for the
accelerator parameters). scikit-learn is not available in this
environment, so this subpackage provides numpy-only implementations with
a compatible ``fit``/``predict`` surface:

- :class:`~repro.ml.tree.DecisionTreeRegressor` — CART with variance
  reduction splits,
- :class:`~repro.ml.gbr.GradientBoostingRegressor` — least-squares
  gradient boosting over the CART trees,
- :class:`~repro.ml.linear.LinearRegression` /
  :class:`~repro.ml.linear.RidgeRegression` — closed-form least squares,
- metrics (:func:`~repro.ml.metrics.mape`,
  :func:`~repro.ml.metrics.within_tolerance_accuracy`, ...),
- :func:`~repro.ml.model_selection.train_test_split` and K-fold CV,
- :class:`~repro.ml.preprocessing.StandardScaler`.
"""

from repro.ml.gbr import GradientBoostingRegressor
from repro.ml.linear import LinearRegression, RidgeRegression
from repro.ml.metrics import (
    mae,
    mape,
    mean_absolute_percentage_error,
    r2_score,
    rmse,
    within_tolerance_accuracy,
)
from repro.ml.model_selection import KFold, train_test_split
from repro.ml.preprocessing import StandardScaler
from repro.ml.tree import DecisionTreeRegressor

__all__ = [
    "DecisionTreeRegressor",
    "GradientBoostingRegressor",
    "KFold",
    "LinearRegression",
    "RidgeRegression",
    "StandardScaler",
    "mae",
    "mape",
    "mean_absolute_percentage_error",
    "r2_score",
    "rmse",
    "train_test_split",
    "within_tolerance_accuracy",
]
