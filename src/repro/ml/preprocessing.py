"""Feature preprocessing helpers."""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError, ModelNotFittedError


class StandardScaler:
    """Zero-mean / unit-variance feature scaling.

    Constant columns are left unscaled (divisor forced to 1) so that
    degenerate profiling datasets do not produce NaNs.
    """

    def __init__(self) -> None:
        self.mean_: np.ndarray | None = None
        self.scale_: np.ndarray | None = None

    def fit(self, features: np.ndarray) -> "StandardScaler":
        features = np.atleast_2d(np.asarray(features, dtype=float))
        if features.shape[0] == 0:
            raise ConfigurationError("cannot fit scaler on zero samples")
        self.mean_ = features.mean(axis=0)
        std = features.std(axis=0)
        std[std == 0.0] = 1.0
        self.scale_ = std
        return self

    def transform(self, features: np.ndarray) -> np.ndarray:
        if self.mean_ is None or self.scale_ is None:
            raise ModelNotFittedError("StandardScaler.transform before fit")
        features = np.atleast_2d(np.asarray(features, dtype=float))
        # One temporary instead of two; bit-identical to
        # (features - mean) / scale and safe on whole batches at once.
        scaled = features - self.mean_
        scaled /= self.scale_
        return scaled

    def fit_transform(self, features: np.ndarray) -> np.ndarray:
        return self.fit(features).transform(features)

    def inverse_transform(self, features: np.ndarray) -> np.ndarray:
        if self.mean_ is None or self.scale_ is None:
            raise ModelNotFittedError("StandardScaler.inverse_transform before fit")
        features = np.atleast_2d(np.asarray(features, dtype=float))
        return features * self.scale_ + self.mean_
