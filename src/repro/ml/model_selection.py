"""Dataset splitting utilities (train/test split and K-fold CV)."""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.errors import ConfigurationError
from repro.rng import SeedLike, make_rng


def train_test_split(
    features: np.ndarray,
    targets: np.ndarray,
    test_fraction: float = 0.2,
    seed: SeedLike = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Shuffle and split into (x_train, x_test, y_train, y_test).

    Mirrors the paper's 80/20 split for full-profiling evaluation
    (Table 8 uses 80% of profiled data for training, 20% for testing).
    """
    if not 0.0 < test_fraction < 1.0:
        raise ConfigurationError(
            f"test_fraction must be in (0, 1), got {test_fraction}"
        )
    features = np.asarray(features, dtype=float)
    targets = np.asarray(targets, dtype=float)
    if features.shape[0] != targets.shape[0]:
        raise ConfigurationError("features and targets row counts differ")
    n = features.shape[0]
    if n < 2:
        raise ConfigurationError("need at least 2 samples to split")
    rng = make_rng(seed)
    order = rng.permutation(n)
    n_test = max(1, int(round(test_fraction * n)))
    n_test = min(n_test, n - 1)
    test_idx, train_idx = order[:n_test], order[n_test:]
    return features[train_idx], features[test_idx], targets[train_idx], targets[test_idx]


class KFold:
    """K-fold cross-validation index generator."""

    def __init__(self, n_splits: int = 5, shuffle: bool = True, seed: SeedLike = None):
        if n_splits < 2:
            raise ConfigurationError(f"n_splits must be >= 2, got {n_splits}")
        self.n_splits = n_splits
        self.shuffle = shuffle
        self._rng = make_rng(seed)

    def split(self, n_samples: int) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        """Yield (train_index, test_index) pairs over ``n_samples`` rows."""
        if n_samples < self.n_splits:
            raise ConfigurationError(
                f"cannot split {n_samples} samples into {self.n_splits} folds"
            )
        index = np.arange(n_samples)
        if self.shuffle:
            index = self._rng.permutation(n_samples)
        folds = np.array_split(index, self.n_splits)
        for i in range(self.n_splits):
            test_idx = folds[i]
            train_idx = np.concatenate([folds[j] for j in range(self.n_splits) if j != i])
            yield train_idx, test_idx
