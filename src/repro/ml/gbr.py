"""Least-squares gradient boosting over CART regression trees.

This mirrors the configuration SLOMO and Yala use from scikit-learn's
``GradientBoostingRegressor``: shallow trees fitted to residuals with a
shrinkage factor, optional row subsampling (stochastic gradient
boosting), and optional early stopping on a validation fraction.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import ConfigurationError, ModelNotFittedError
from repro.ml.tree import DecisionTreeRegressor
from repro.rng import SeedLike, make_rng


class GradientBoostingRegressor:
    """Gradient-boosted regression trees with squared-error loss.

    Parameters
    ----------
    n_estimators:
        Maximum number of boosting stages.
    learning_rate:
        Shrinkage applied to each stage's contribution.
    max_depth:
        Depth of the individual regression trees.
    subsample:
        Fraction of rows sampled (without replacement) per stage; 1.0
        disables stochastic boosting.
    min_samples_leaf:
        Minimum samples per tree leaf.
    n_iter_no_change / validation_fraction / tol:
        If ``n_iter_no_change`` is set, a validation split of
        ``validation_fraction`` rows is held out and boosting stops when
        the validation loss fails to improve by ``tol`` for that many
        consecutive stages.
    seed:
        Seed for subsampling and the validation split.
    """

    def __init__(
        self,
        n_estimators: int = 200,
        learning_rate: float = 0.1,
        max_depth: int = 3,
        subsample: float = 1.0,
        min_samples_leaf: int = 1,
        n_iter_no_change: Optional[int] = None,
        validation_fraction: float = 0.1,
        tol: float = 1e-4,
        seed: SeedLike = None,
    ) -> None:
        if n_estimators < 1:
            raise ConfigurationError(f"n_estimators must be >= 1, got {n_estimators}")
        if not 0.0 < learning_rate <= 1.0:
            raise ConfigurationError(
                f"learning_rate must be in (0, 1], got {learning_rate}"
            )
        if not 0.0 < subsample <= 1.0:
            raise ConfigurationError(f"subsample must be in (0, 1], got {subsample}")
        if not 0.0 < validation_fraction < 1.0:
            raise ConfigurationError(
                f"validation_fraction must be in (0, 1), got {validation_fraction}"
            )
        self.n_estimators = n_estimators
        self.learning_rate = learning_rate
        self.max_depth = max_depth
        self.subsample = subsample
        self.min_samples_leaf = min_samples_leaf
        self.n_iter_no_change = n_iter_no_change
        self.validation_fraction = validation_fraction
        self.tol = tol
        self._rng = make_rng(seed)
        self._base_prediction = 0.0
        self._trees: list[DecisionTreeRegressor] = []
        self._train_losses: list[float] = []
        self._fitted = False

    # ------------------------------------------------------------------
    def fit(
        self, features: np.ndarray, targets: np.ndarray
    ) -> "GradientBoostingRegressor":
        """Fit the ensemble on ``features`` (n, d), ``targets`` (n,)."""
        features = np.asarray(features, dtype=float)
        targets = np.asarray(targets, dtype=float)
        if features.ndim != 2:
            raise ConfigurationError("features must be 2-D")
        if targets.shape != (features.shape[0],):
            raise ConfigurationError("targets shape must match features rows")
        n = features.shape[0]
        if n < 2:
            raise ConfigurationError("need at least 2 samples to boost")

        # Optional validation split for early stopping.
        if self.n_iter_no_change is not None and n >= 10:
            permutation = self._rng.permutation(n)
            n_val = max(1, int(round(self.validation_fraction * n)))
            val_idx, train_idx = permutation[:n_val], permutation[n_val:]
        else:
            train_idx = np.arange(n)
            val_idx = np.empty(0, dtype=int)

        x_train, y_train = features[train_idx], targets[train_idx]
        x_val, y_val = features[val_idx], targets[val_idx]

        self._base_prediction = float(y_train.mean())
        self._trees = []
        self._train_losses = []
        current = np.full(x_train.shape[0], self._base_prediction)
        current_val = np.full(x_val.shape[0], self._base_prediction)

        best_val_loss = np.inf
        stall = 0
        n_rows = x_train.shape[0]
        sample_size = max(2, int(round(self.subsample * n_rows)))

        for _ in range(self.n_estimators):
            residual = y_train - current
            if self.subsample < 1.0:
                rows = self._rng.choice(n_rows, size=sample_size, replace=False)
            else:
                rows = np.arange(n_rows)
            tree = DecisionTreeRegressor(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                seed=self._rng,
            )
            tree.fit(x_train[rows], residual[rows])
            self._trees.append(tree)
            current = current + self.learning_rate * tree.predict(x_train)
            self._train_losses.append(float(np.mean((y_train - current) ** 2)))

            if self.n_iter_no_change is not None and val_idx.size:
                current_val = current_val + self.learning_rate * tree.predict(x_val)
                val_loss = float(np.mean((y_val - current_val) ** 2))
                if val_loss < best_val_loss - self.tol:
                    best_val_loss = val_loss
                    stall = 0
                else:
                    stall += 1
                    if stall >= self.n_iter_no_change:
                        break

        self._fitted = True
        return self

    # ------------------------------------------------------------------
    def predict(self, features: np.ndarray) -> np.ndarray:
        """Predict targets for ``features`` (n, d) -> (n,)."""
        if not self._fitted:
            raise ModelNotFittedError("GradientBoostingRegressor.predict before fit")
        features = np.atleast_2d(np.asarray(features, dtype=float))
        prediction = np.full(features.shape[0], self._base_prediction)
        for tree in self._trees:
            prediction += self.learning_rate * tree.predict(features)
        return prediction

    @property
    def n_stages(self) -> int:
        """Number of boosting stages actually fitted."""
        return len(self._trees)

    @property
    def train_losses(self) -> list[float]:
        """Training MSE after each boosting stage."""
        return list(self._train_losses)

    def staged_predict(self, features: np.ndarray, every: int = 1) -> np.ndarray:
        """Predictions after every ``every`` stages, shape (s, n).

        Useful for inspecting convergence of the boosting process.
        """
        if not self._fitted:
            raise ModelNotFittedError("staged_predict before fit")
        features = np.atleast_2d(np.asarray(features, dtype=float))
        prediction = np.full(features.shape[0], self._base_prediction)
        stages = []
        for i, tree in enumerate(self._trees):
            prediction = prediction + self.learning_rate * tree.predict(features)
            if (i + 1) % every == 0:
                stages.append(prediction.copy())
        if not stages:
            stages.append(prediction.copy())
        return np.array(stages)

    def feature_importances(self, n_features: int) -> np.ndarray:
        """Average split-count importances across all trees."""
        if not self._trees:
            return np.zeros(n_features)
        total = np.zeros(n_features)
        for tree in self._trees:
            total += tree.feature_importances(n_features)
        norm = total.sum()
        return total / norm if norm > 0 else total
