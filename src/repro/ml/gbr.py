"""Least-squares gradient boosting over CART regression trees.

This mirrors the configuration SLOMO and Yala use from scikit-learn's
``GradientBoostingRegressor``: shallow trees fitted to residuals with a
shrinkage factor, optional row subsampling (stochastic gradient
boosting), and optional early stopping on a validation fraction.

Two hot-path optimisations keep results bit-identical to the naive
loop while removing most of its cost:

- **Leaf-cache residual updates**: each stage's contribution to the
  in-sample rows is read from the leaf assignments recorded while the
  tree grew (no re-traversal); only rows outside the stage's subsample
  are routed through the tree.
- **Packed batch prediction**: at predict time the whole ensemble is
  flattened into one set of node arrays, so a batch of rows descends
  all trees simultaneously instead of looping tree by tree in Python.

Early stopping truncates the ensemble back to the best validation
stage (as scikit-learn does), instead of keeping the stale trees fitted
after the validation loss stopped improving.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import ConfigurationError, ModelNotFittedError
from repro.ml.tree import _NO_CHILD, DecisionTreeRegressor
from repro.rng import SeedLike, make_rng


class GradientBoostingRegressor:
    """Gradient-boosted regression trees with squared-error loss.

    Parameters
    ----------
    n_estimators:
        Maximum number of boosting stages.
    learning_rate:
        Shrinkage applied to each stage's contribution.
    max_depth:
        Depth of the individual regression trees.
    subsample:
        Fraction of rows sampled (without replacement) per stage; 1.0
        disables stochastic boosting.
    min_samples_leaf:
        Minimum samples per tree leaf.
    n_iter_no_change / validation_fraction / tol:
        If ``n_iter_no_change`` is set, a validation split of
        ``validation_fraction`` rows is held out and boosting stops when
        the validation loss fails to improve by ``tol`` for that many
        consecutive stages; the ensemble is then truncated back to the
        best validation stage.
    seed:
        Seed for subsampling and the validation split.
    split_algorithm:
        Split finder used by the stage trees (see
        :class:`~repro.ml.tree.DecisionTreeRegressor`).
    reuse_leaf_cache:
        Update residuals from the leaf assignments recorded during each
        stage's fit instead of re-traversing the tree (bit-identical;
        disable only to benchmark the naive path).
    """

    def __init__(
        self,
        n_estimators: int = 200,
        learning_rate: float = 0.1,
        max_depth: int = 3,
        subsample: float = 1.0,
        min_samples_leaf: int = 1,
        n_iter_no_change: Optional[int] = None,
        validation_fraction: float = 0.1,
        tol: float = 1e-4,
        seed: SeedLike = None,
        split_algorithm: str = "vectorized",
        reuse_leaf_cache: bool = True,
    ) -> None:
        if n_estimators < 1:
            raise ConfigurationError(f"n_estimators must be >= 1, got {n_estimators}")
        if not 0.0 < learning_rate <= 1.0:
            raise ConfigurationError(
                f"learning_rate must be in (0, 1], got {learning_rate}"
            )
        if not 0.0 < subsample <= 1.0:
            raise ConfigurationError(f"subsample must be in (0, 1], got {subsample}")
        if not 0.0 < validation_fraction < 1.0:
            raise ConfigurationError(
                f"validation_fraction must be in (0, 1), got {validation_fraction}"
            )
        self.n_estimators = n_estimators
        self.learning_rate = learning_rate
        self.max_depth = max_depth
        self.subsample = subsample
        self.min_samples_leaf = min_samples_leaf
        self.n_iter_no_change = n_iter_no_change
        self.validation_fraction = validation_fraction
        self.tol = tol
        self.split_algorithm = split_algorithm
        self.reuse_leaf_cache = reuse_leaf_cache
        self._rng = make_rng(seed)
        self._base_prediction = 0.0
        self._trees: list[DecisionTreeRegressor] = []
        self._train_losses: list[float] = []
        self._val_losses: list[float] = []
        self._packed: Optional[tuple[np.ndarray, ...]] = None
        self._fitted = False

    # ------------------------------------------------------------------
    def fit(
        self, features: np.ndarray, targets: np.ndarray
    ) -> "GradientBoostingRegressor":
        """Fit the ensemble on ``features`` (n, d), ``targets`` (n,)."""
        features = np.asarray(features, dtype=float)
        targets = np.asarray(targets, dtype=float)
        if features.ndim != 2:
            raise ConfigurationError("features must be 2-D")
        if targets.shape != (features.shape[0],):
            raise ConfigurationError("targets shape must match features rows")
        n = features.shape[0]
        if n < 2:
            raise ConfigurationError("need at least 2 samples to boost")

        # Optional validation split for early stopping.
        if self.n_iter_no_change is not None and n >= 10:
            permutation = self._rng.permutation(n)
            n_val = max(1, int(round(self.validation_fraction * n)))
            val_idx, train_idx = permutation[:n_val], permutation[n_val:]
        else:
            train_idx = np.arange(n)
            val_idx = np.empty(0, dtype=int)

        x_train, y_train = features[train_idx], targets[train_idx]
        x_val, y_val = features[val_idx], targets[val_idx]

        self._base_prediction = float(y_train.mean())
        self._trees = []
        self._train_losses = []
        self._val_losses = []
        self._packed = None
        current = np.full(x_train.shape[0], self._base_prediction)
        current_val = np.full(x_val.shape[0], self._base_prediction)

        best_val_loss = np.inf
        best_stage = 0
        stall = 0
        n_rows = x_train.shape[0]
        sample_size = max(2, int(round(self.subsample * n_rows)))
        full_sample = np.arange(n_rows)
        presorted = None
        prebinned = None
        if self.split_algorithm == "vectorized" and self.subsample >= 1.0:
            # Every stage refits on the same rows: share one presort.
            presorted = DecisionTreeRegressor.presort(x_train)
        elif self.split_algorithm == "histogram":
            # Bin identities do not depend on the stage's subsample:
            # bucket once, hand each stage a row-subset view.
            prebinned = DecisionTreeRegressor.prebin(x_train)

        for _ in range(self.n_estimators):
            residual = y_train - current
            if self.subsample < 1.0:
                rows = self._rng.choice(n_rows, size=sample_size, replace=False)
            else:
                rows = full_sample
            tree = DecisionTreeRegressor(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                seed=self._rng,
                split_algorithm=self.split_algorithm,
            )
            if presorted is not None or (
                prebinned is not None and rows is full_sample
            ):
                tree.fit(x_train, residual, presorted=presorted, prebinned=prebinned)
            elif prebinned is not None:
                tree.fit(
                    x_train[rows], residual[rows], prebinned=prebinned.subset(rows)
                )
            else:
                tree.fit(x_train[rows], residual[rows])
            self._trees.append(tree)
            current = current + self.learning_rate * self._stage_prediction(
                tree, x_train, rows, identity_rows=rows is full_sample
            )
            # Same pairwise summation as np.mean, minus its bookkeeping.
            self._train_losses.append(
                float(((y_train - current) ** 2).sum() / n_rows)
            )

            if self.n_iter_no_change is not None and val_idx.size:
                current_val = current_val + self.learning_rate * tree.predict(x_val)
                val_loss = float(np.mean((y_val - current_val) ** 2))
                self._val_losses.append(val_loss)
                if val_loss < best_val_loss - self.tol:
                    best_val_loss = val_loss
                    best_stage = len(self._trees)
                    stall = 0
                else:
                    stall += 1
                    if stall >= self.n_iter_no_change:
                        break

        if self.n_iter_no_change is not None and val_idx.size:
            # Drop the stale trees fitted after the best validation
            # stage, as scikit-learn's early stopping does.
            del self._trees[best_stage:]
            del self._train_losses[best_stage:]
        self._fitted = True
        return self

    def _stage_prediction(
        self,
        tree: DecisionTreeRegressor,
        x_train: np.ndarray,
        rows: np.ndarray,
        identity_rows: bool = False,
    ) -> np.ndarray:
        """This stage's per-row contribution over all training rows.

        In-sample rows reuse the leaf assignments cached during
        ``tree.fit``; only out-of-subsample rows traverse the tree.
        ``identity_rows`` must only be set when ``rows`` is the identity
        ordering — a full-size *permutation* (subsample rounding up to
        ``n``) still needs the scatter below to undo the fit-row order.
        """
        if not self.reuse_leaf_cache:
            return tree.predict(x_train)
        if identity_rows:
            # Full-sample stage: fit-row order is x_train order.
            return tree.training_leaf_values()
        n_rows = x_train.shape[0]
        prediction = np.empty(n_rows)
        in_sample = np.zeros(n_rows, dtype=bool)
        in_sample[rows] = True
        prediction[rows] = tree.training_leaf_values()
        out_rows = np.flatnonzero(~in_sample)
        if out_rows.size:
            prediction[out_rows] = tree.predict(x_train[out_rows])
        return prediction

    # ------------------------------------------------------------------
    def _pack_ensemble(self) -> tuple[np.ndarray, ...]:
        """Flatten all trees into one node-array set (cached).

        Concatenates the per-tree flat arrays, shifting child ids by
        each tree's node offset, so prediction can advance a whole
        ``(rows, trees)`` matrix of cursors per level instead of looping
        over trees in Python.
        """
        if self._packed is None:
            offsets = np.cumsum([0] + [t.node_count for t in self._trees])[:-1]
            feature = np.concatenate([t._feature_arr for t in self._trees])
            threshold = np.concatenate([t._threshold_arr for t in self._trees])
            value = np.concatenate([t._value_arr for t in self._trees])
            left = np.concatenate(
                [t._left_arr + off for t, off in zip(self._trees, offsets)]
            )
            right = np.concatenate(
                [t._right_arr + off for t, off in zip(self._trees, offsets)]
            )
            self._packed = (feature, threshold, left, right, value, offsets)
        return self._packed

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Predict targets for ``features`` (n, d) -> (n,)."""
        if not self._fitted:
            raise ModelNotFittedError("GradientBoostingRegressor.predict before fit")
        features = np.atleast_2d(np.asarray(features, dtype=float))
        n = features.shape[0]
        prediction = np.full(n, self._base_prediction)
        if not self._trees:
            return prediction
        feature, threshold, left, right, value, offsets = self._pack_ensemble()

        # Descend all rows through all trees simultaneously, one tree
        # level per iteration. While every cursor is still at an
        # internal node (the common case for depth-limited boosting
        # trees), advance the full matrix without building index
        # tuples.
        nodes = np.broadcast_to(offsets, (n, offsets.size)).copy()
        rows = np.arange(n)[:, None]
        split_feature = feature[nodes]
        active = split_feature != _NO_CHILD
        while active.any():
            if active.all():
                go_left = features[rows, split_feature] <= threshold[nodes]
                nodes = np.where(go_left, left[nodes], right[nodes])
                split_feature = feature[nodes]
                active = split_feature != _NO_CHILD
            else:
                pos = np.nonzero(active)
                node_ids = nodes[pos]
                go_left = (
                    features[pos[0], split_feature[pos]] <= threshold[node_ids]
                )
                advanced = np.where(go_left, left[node_ids], right[node_ids])
                nodes[pos] = advanced
                split_feature[pos] = feature[advanced]
                active[pos] = split_feature[pos] != _NO_CHILD
        leaf_values = value[nodes]

        # Accumulate stages sequentially (same float-op order as the
        # per-tree loop, so results are bit-identical to it).
        for stage in range(leaf_values.shape[1]):
            prediction += self.learning_rate * leaf_values[:, stage]
        return prediction

    @property
    def n_stages(self) -> int:
        """Number of boosting stages actually fitted."""
        return len(self._trees)

    @property
    def train_losses(self) -> list[float]:
        """Training MSE after each boosting stage."""
        return list(self._train_losses)

    @property
    def val_losses(self) -> list[float]:
        """Validation MSE after each fitted stage (pre-truncation).

        Empty unless early stopping was active. After truncation,
        ``n_stages`` is the last stage whose validation loss improved on
        the previous best by at least ``tol``.
        """
        return list(self._val_losses)

    def staged_predict(self, features: np.ndarray, every: int = 1) -> np.ndarray:
        """Predictions after every ``every`` stages, shape (s, n).

        Useful for inspecting convergence of the boosting process.
        """
        if not self._fitted:
            raise ModelNotFittedError("staged_predict before fit")
        features = np.atleast_2d(np.asarray(features, dtype=float))
        prediction = np.full(features.shape[0], self._base_prediction)
        stages = []
        for i, tree in enumerate(self._trees):
            prediction = prediction + self.learning_rate * tree.predict(features)
            if (i + 1) % every == 0:
                stages.append(prediction.copy())
        if not stages:
            stages.append(prediction.copy())
        return np.array(stages)

    def feature_importances(self, n_features: int) -> np.ndarray:
        """Average split-count importances across all trees."""
        if not self._trees:
            return np.zeros(n_features)
        total = np.zeros(n_features)
        for tree in self._trees:
            total += tree.feature_importances(n_features)
        norm = total.sum()
        return total / norm if norm > 0 else total
