"""Closed-form linear models.

Yala fits the accelerator request-time law ``t(m) = t0 + a * m`` (paper
Eq. 4 parameters) by ordinary least squares; ridge regression is provided
for numerically difficult fits.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError, ModelNotFittedError


class LinearRegression:
    """Ordinary least-squares regression with optional intercept."""

    def __init__(self, fit_intercept: bool = True) -> None:
        self.fit_intercept = fit_intercept
        self.coef_: np.ndarray | None = None
        self.intercept_: float = 0.0

    def fit(self, features: np.ndarray, targets: np.ndarray) -> "LinearRegression":
        """Fit on ``features`` (n, d) and ``targets`` (n,)."""
        features = np.atleast_2d(np.asarray(features, dtype=float))
        targets = np.asarray(targets, dtype=float)
        if features.shape[0] != targets.shape[0]:
            raise ConfigurationError("features and targets row counts differ")
        design = self._design(features)
        solution, *_ = np.linalg.lstsq(design, targets, rcond=None)
        self._unpack(solution)
        return self

    def _design(self, features: np.ndarray) -> np.ndarray:
        if self.fit_intercept:
            ones = np.ones((features.shape[0], 1))
            return np.hstack([ones, features])
        return features

    def _unpack(self, solution: np.ndarray) -> None:
        if self.fit_intercept:
            self.intercept_ = float(solution[0])
            self.coef_ = solution[1:]
        else:
            self.intercept_ = 0.0
            self.coef_ = solution

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Predict targets for ``features`` (n, d) -> (n,)."""
        if self.coef_ is None:
            raise ModelNotFittedError("LinearRegression.predict before fit")
        features = np.atleast_2d(np.asarray(features, dtype=float))
        return features @ self.coef_ + self.intercept_


class RidgeRegression(LinearRegression):
    """L2-regularised least squares (does not penalise the intercept)."""

    def __init__(self, alpha: float = 1.0, fit_intercept: bool = True) -> None:
        if alpha < 0:
            raise ConfigurationError(f"alpha must be >= 0, got {alpha}")
        super().__init__(fit_intercept=fit_intercept)
        self.alpha = alpha

    def fit(self, features: np.ndarray, targets: np.ndarray) -> "RidgeRegression":
        features = np.atleast_2d(np.asarray(features, dtype=float))
        targets = np.asarray(targets, dtype=float)
        if features.shape[0] != targets.shape[0]:
            raise ConfigurationError("features and targets row counts differ")
        design = self._design(features)
        penalty = self.alpha * np.eye(design.shape[1])
        if self.fit_intercept:
            penalty[0, 0] = 0.0
        gram = design.T @ design + penalty
        solution = np.linalg.solve(gram, design.T @ targets)
        self._unpack(solution)
        return self
