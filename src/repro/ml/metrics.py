"""Regression metrics used throughout the evaluation.

The paper reports mean absolute percentage error (MAPE) as the headline
accuracy metric, plus the fraction of predictions landing within +/-5%
and +/-10% of the truth ("±5% Acc." / "±10% Acc." in Tables 2-9).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError


def _validate(y_true: np.ndarray, y_pred: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    y_true = np.asarray(y_true, dtype=float).ravel()
    y_pred = np.asarray(y_pred, dtype=float).ravel()
    if y_true.shape != y_pred.shape:
        raise ConfigurationError(
            f"shape mismatch: {y_true.shape} vs {y_pred.shape}"
        )
    if y_true.size == 0:
        raise ConfigurationError("metrics need at least one sample")
    return y_true, y_pred


def absolute_percentage_errors(y_true: np.ndarray, y_pred: np.ndarray) -> np.ndarray:
    """Per-sample absolute percentage errors, in percent."""
    y_true, y_pred = _validate(y_true, y_pred)
    if np.any(y_true == 0):
        raise ConfigurationError("percentage error undefined for zero truth")
    return 100.0 * np.abs((y_pred - y_true) / y_true)


def mape(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Mean absolute percentage error, in percent."""
    return float(absolute_percentage_errors(y_true, y_pred).mean())


#: Long-form alias matching the scikit-learn name.
mean_absolute_percentage_error = mape


def within_tolerance_accuracy(
    y_true: np.ndarray, y_pred: np.ndarray, tolerance_pct: float
) -> float:
    """Percentage of predictions within ``tolerance_pct``% of the truth.

    ``within_tolerance_accuracy(t, p, 5.0)`` is the paper's "±5% Acc.".
    """
    if tolerance_pct <= 0:
        raise ConfigurationError("tolerance_pct must be positive")
    errors = absolute_percentage_errors(y_true, y_pred)
    return float(100.0 * np.mean(errors <= tolerance_pct))


def mae(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Mean absolute error."""
    y_true, y_pred = _validate(y_true, y_pred)
    return float(np.mean(np.abs(y_true - y_pred)))


def rmse(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Root mean squared error."""
    y_true, y_pred = _validate(y_true, y_pred)
    return float(np.sqrt(np.mean((y_true - y_pred) ** 2)))


def r2_score(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Coefficient of determination; 1.0 is perfect, 0.0 is mean-only."""
    y_true, y_pred = _validate(y_true, y_pred)
    ss_res = float(np.sum((y_true - y_pred) ** 2))
    ss_tot = float(np.sum((y_true - y_true.mean()) ** 2))
    if ss_tot == 0.0:
        return 1.0 if ss_res == 0.0 else 0.0
    return 1.0 - ss_res / ss_tot


def error_box_stats(errors: np.ndarray) -> dict[str, float]:
    """Box-plot summary (median, quartiles, whiskers, max) of errors.

    Used to report the box-and-whisker style numbers from Figures 2, 3
    and 7 of the paper.
    """
    errors = np.asarray(errors, dtype=float).ravel()
    if errors.size == 0:
        raise ConfigurationError("error_box_stats needs at least one sample")
    q1, median, q3 = np.percentile(errors, [25, 50, 75])
    return {
        "min": float(errors.min()),
        "q1": float(q1),
        "median": float(median),
        "q3": float(q3),
        "p95": float(np.percentile(errors, 95)),
        "max": float(errors.max()),
        "mean": float(errors.mean()),
    }
