"""CART regression trees.

A minimal but correct implementation of the classification-and-regression
tree algorithm restricted to regression: splits minimise the weighted sum
of child variances (equivalently maximise variance reduction), leaves
predict the mean of their training targets.

The tree is stored in flat parallel arrays rather than node objects,
which keeps prediction vectorisable and the memory footprint small even
for the hundreds of trees a boosting ensemble builds.

Three split finders are available:

- ``"vectorized"`` (default): features are argsorted once per ``fit``;
  each node derives its per-feature sorted order by filtering those
  pre-sorted permutations (stable sort of a subset is a subsequence of
  the stable sort of the whole), then evaluates the cumulative-sum gain
  of *all* candidate thresholds of *all* candidate features in one 2-D
  pass. Produces trees bit-identical to the reference.
- ``"histogram"``: features are bucketed once into their unique-value
  bins (lossless — every threshold the reference considers is a bin
  boundary); each node accumulates per-bin target sums with one
  ``bincount`` over all features at once and ranks boundaries by the
  algebraically equivalent score ``L²/n_L + R²/n_R``. Same splits as
  the reference up to floating-point tie-breaks, and far faster when
  feature cardinality is below the sample count — the boosting hot
  path for counter-style data.
- ``"reference"``: the original per-feature loop, kept as the
  equivalence oracle for tests and the perf benchmark.

``fit`` also records which leaf every training row lands in
(:meth:`DecisionTreeRegressor.training_leaf_values`), so a boosting loop
can update residuals without re-traversing the tree it just grew.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.errors import ConfigurationError, ModelNotFittedError
from repro.rng import SeedLike, make_rng

_NO_CHILD = -1

#: Below this node size the histogram finder delegates to the exact
#: reference loop (tie-safety and speed: see _best_split_histogram).
_HISTOGRAM_MIN_NODE = 32

#: Shared cache of arange(rows) * width index vectors (tiny, bounded by
#: the handful of (level size, bin count) shapes a process touches).
_ROW_PICKS: dict[tuple[int, int], np.ndarray] = {}


@dataclass
class _Split:
    """Best split found for one node during tree growth."""

    feature: int
    threshold: float
    gain: float
    left_index: np.ndarray
    right_index: np.ndarray


@dataclass(frozen=True)
class HistogramBins:
    """Lossless unique-value binning of a feature matrix.

    ``codes[f, i]`` is the bin of sample ``i`` on feature ``f``, already
    shifted by ``f * n_bins`` so one flat ``bincount`` covers every
    feature; ``values[f, b]`` is the feature value bin ``b`` represents
    (padded with the feature's maximum for features with fewer bins).
    """

    codes: np.ndarray  # (d, n) int64, feature-shifted bin codes
    values: np.ndarray  # (d, n_bins) float64 bin representative values
    n_bins: int
    #: Per-(feature, bin) sample counts over all rows, shape
    #: (1, d, n_bins); lets full-sample root splits skip a bincount.
    root_counts: Optional[np.ndarray] = None

    def subset(self, rows: np.ndarray) -> "HistogramBins":
        """Binning restricted to ``rows`` (bin identities unchanged)."""
        return HistogramBins(
            codes=self.codes[:, rows], values=self.values, n_bins=self.n_bins
        )


class DecisionTreeRegressor:
    """Regression tree grown greedily by variance reduction.

    Parameters
    ----------
    max_depth:
        Maximum tree depth; the root is depth 0. ``None`` grows until
        leaves are pure or smaller than ``min_samples_split``.
    min_samples_split:
        Minimum number of samples a node needs to be considered for a
        split.
    min_samples_leaf:
        Minimum number of samples each child must retain.
    max_features:
        Number of features examined per split. ``None`` uses all
        features; a float in (0, 1] uses that fraction; an int uses that
        count. Sub-sampling features decorrelates trees in ensembles.
    seed:
        Seed for feature sub-sampling.
    split_algorithm:
        ``"vectorized"`` (default), ``"histogram"`` or ``"reference"``;
        all grow the same tree, the first two much faster (see module
        docstring).
    """

    def __init__(
        self,
        max_depth: Optional[int] = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features: Optional[float | int] = None,
        seed: SeedLike = None,
        split_algorithm: str = "vectorized",
    ) -> None:
        if max_depth is not None and max_depth < 0:
            raise ConfigurationError(f"max_depth must be >= 0, got {max_depth}")
        if min_samples_split < 2:
            raise ConfigurationError(
                f"min_samples_split must be >= 2, got {min_samples_split}"
            )
        if min_samples_leaf < 1:
            raise ConfigurationError(
                f"min_samples_leaf must be >= 1, got {min_samples_leaf}"
            )
        if split_algorithm not in ("vectorized", "histogram", "reference"):
            raise ConfigurationError(
                f"split_algorithm must be 'vectorized', 'histogram' or "
                f"'reference', got {split_algorithm!r}"
            )
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.split_algorithm = split_algorithm
        self._rng = make_rng(seed)
        # Flat tree arrays, filled by fit().
        self._feature: list[int] = []
        self._threshold: list[float] = []
        self._left: list[int] = []
        self._right: list[int] = []
        self._value: list[float] = []
        # Array views of the lists above, materialised once after fit()
        # so predict() does not re-convert them per call.
        self._feature_arr: np.ndarray = np.empty(0, dtype=int)
        self._threshold_arr: np.ndarray = np.empty(0)
        self._left_arr: np.ndarray = np.empty(0, dtype=int)
        self._right_arr: np.ndarray = np.empty(0, dtype=int)
        self._value_arr: np.ndarray = np.empty(0)
        self._train_leaf_ids: np.ndarray = np.empty(0, dtype=int)
        # Per-fit scratch state for the vectorized/histogram finders.
        self._features_flat: Optional[np.ndarray] = None
        self._row_offsets: Optional[np.ndarray] = None
        self._targets_stack: Optional[np.ndarray] = None
        self._node_mask: Optional[np.ndarray] = None
        self._bins: Optional[HistogramBins] = None
        self._fitted = False

    @staticmethod
    def _row_picks(rows: int, width: int) -> np.ndarray:
        """Cached ``arange(rows) * width`` used to gather row maxima."""
        key = (rows, width)
        picks = _ROW_PICKS.get(key)
        if picks is None:
            picks = np.arange(rows) * width
            _ROW_PICKS[key] = picks
        return picks

    # ------------------------------------------------------------------
    # Fitting
    # ------------------------------------------------------------------
    @staticmethod
    def presort(features: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Pre-sorted state for ``fit(presorted=...)``.

        Returns the transposed stable argsort and the transposed feature
        matrix. A boosting loop that refits trees on the same feature
        rows (``subsample == 1.0``) computes this once and shares it
        across every stage, amortising the only ``O(n log n)`` step.
        """
        features = np.asarray(features, dtype=float)
        sorted_idx_t = np.ascontiguousarray(
            np.argsort(features, axis=0, kind="stable").T
        )
        return sorted_idx_t, np.ascontiguousarray(features.T)

    @staticmethod
    def prebin(features: np.ndarray) -> HistogramBins:
        """Bucket ``features`` into unique-value bins for ``"histogram"``.

        A boosting loop prebins its full training matrix once and passes
        :meth:`HistogramBins.subset` views per stage, amortising the
        only sort this split finder needs.
        """
        features = np.asarray(features, dtype=float)
        n, d = features.shape
        per_feature = [
            np.unique(features[:, f], return_inverse=True) for f in range(d)
        ]
        n_bins = max(2, max(u.size for u, _ in per_feature))
        codes = np.empty((d, n), dtype=np.int64)
        values = np.empty((d, n_bins))
        for f, (uniques, inverse) in enumerate(per_feature):
            codes[f] = inverse + f * n_bins
            values[f, : uniques.size] = uniques
            values[f, uniques.size :] = uniques[-1]
        root_counts = np.bincount(
            codes.reshape(-1), minlength=d * n_bins
        ).reshape(1, d, n_bins)
        return HistogramBins(
            codes=codes, values=values, n_bins=n_bins, root_counts=root_counts
        )

    def fit(
        self,
        features: np.ndarray,
        targets: np.ndarray,
        presorted: Optional[tuple[np.ndarray, np.ndarray]] = None,
        prebinned: Optional[HistogramBins] = None,
    ) -> "DecisionTreeRegressor":
        """Grow the tree on ``features`` (n, d) and ``targets`` (n,).

        ``presorted`` / ``prebinned`` optionally supply :meth:`presort`
        or :meth:`prebin` output for exactly these ``features``
        (caller's responsibility).
        """
        features = np.asarray(features, dtype=float)
        targets = np.asarray(targets, dtype=float)
        if features.ndim != 2:
            raise ConfigurationError("features must be a 2-D array")
        if targets.ndim != 1 or targets.shape[0] != features.shape[0]:
            raise ConfigurationError("targets must be 1-D and match features rows")
        if features.shape[0] == 0:
            raise ConfigurationError("cannot fit a tree on zero samples")

        self._feature, self._threshold = [], []
        self._left, self._right, self._value = [], [], []
        self._train_leaf_ids = np.empty(features.shape[0], dtype=int)
        root_order = None
        if self.split_algorithm == "vectorized":
            if presorted is None:
                presorted = self.presort(features)
            root_order, features_t = presorted
            self._features_flat = features_t.reshape(-1)
            self._row_offsets = (
                np.arange(features.shape[1]) * features.shape[0]
            )[:, None]
            # Stacking targets with their squares lets each node fetch
            # both prefix-sum inputs in one gather and one cumsum.
            self._targets_stack = np.stack([targets, targets**2])
            self._node_mask = np.zeros(features.shape[0], dtype=bool)
        elif self.split_algorithm == "histogram":
            self._bins = prebinned if prebinned is not None else self.prebin(features)
            # Scratch for the exact small-node fallback is built lazily
            # on first use (see _ensure_fallback_scratch).
        index = np.arange(features.shape[0])
        if self.split_algorithm == "histogram":
            # Empty-side divisions in the histogram score are expected
            # and masked; silence the warnings once per fit.
            with np.errstate(divide="ignore", invalid="ignore"):
                if self.max_features is None:
                    self._grow_level_wise(features, targets, index)
                else:
                    # Feature sub-sampling consumes the rng in node
                    # visit order; keep the depth-first order the
                    # reference uses.
                    self._grow(features, targets, index, depth=0, order=None)
        else:
            self._grow(features, targets, index, depth=0, order=root_order)
        self._features_flat = None
        self._row_offsets = None
        self._targets_stack = None
        self._node_mask = None
        self._bins = None
        self._feature_arr = np.asarray(self._feature)
        self._threshold_arr = np.asarray(self._threshold)
        self._left_arr = np.asarray(self._left)
        self._right_arr = np.asarray(self._right)
        self._value_arr = np.asarray(self._value)
        self._fitted = True
        return self

    def _grow(
        self,
        features: np.ndarray,
        targets: np.ndarray,
        index: np.ndarray,
        depth: int,
        order: Optional[np.ndarray] = None,
    ) -> int:
        """Recursively grow a node over ``index``; return its node id.

        ``order`` (vectorized mode) carries this node's members in
        per-feature sorted order, shape ``(d, index.size)``; children's
        order matrices are derived from it by boolean filtering, so the
        fit-time argsort is never repeated.
        """
        node = len(self._value)
        self._feature.append(_NO_CHILD)
        self._threshold.append(0.0)
        self._left.append(_NO_CHILD)
        self._right.append(_NO_CHILD)
        # Bit-identical to targets[index].mean(): same pairwise
        # summation, without np.mean's reduction bookkeeping.
        self._value.append(float(targets[index].sum() / index.size))

        split = None
        if (self.max_depth is None or depth < self.max_depth) and (
            index.size >= self.min_samples_split
        ):
            split = self._best_split(features, targets, index, order)
        if split is None:
            self._train_leaf_ids[index] = node
            return node

        self._feature[node] = split.feature
        self._threshold[node] = split.threshold
        left_order = right_order = None
        if order is not None:
            mask = self._node_mask
            mask[:] = False
            mask[split.left_index] = True
            keep = mask[order]
            left_order = order[keep].reshape(order.shape[0], split.left_index.size)
            right_order = order[~keep].reshape(
                order.shape[0], split.right_index.size
            )
        self._left[node] = self._grow(
            features, targets, split.left_index, depth + 1, left_order
        )
        self._right[node] = self._grow(
            features, targets, split.right_index, depth + 1, right_order
        )
        return node

    def _grow_level_wise(
        self, features: np.ndarray, targets: np.ndarray, index: np.ndarray
    ) -> None:
        """Breadth-first growth: one batched split search per level.

        Produces exactly the tree :meth:`_grow` would (splits are
        computed per node either way and the flat arrays are emitted in
        the same depth-first order afterwards); batching just lets every
        sizeable node of a level share one ``bincount``/``cumsum`` pass.
        """
        root = {"index": index}
        frontier = [root]
        depth = 0
        while frontier:
            batched = []
            for entry in frontier:
                node_index = entry["index"]
                entry["split"] = None
                if self.max_depth is not None and depth >= self.max_depth:
                    continue
                if node_index.size < self.min_samples_split:
                    continue
                if node_index.size <= _HISTOGRAM_MIN_NODE:
                    entry["split"] = self._best_split_histogram(
                        features, targets, node_index
                    )
                else:
                    batched.append(entry)
            if batched:
                splits = self._batch_histogram_splits(
                    features, targets, [entry["index"] for entry in batched]
                )
                for entry, split in zip(batched, splits):
                    entry["split"] = split
            next_frontier = []
            for entry in frontier:
                split = entry["split"]
                if split is not None:
                    entry["left"] = {"index": split.left_index}
                    entry["right"] = {"index": split.right_index}
                    next_frontier.append(entry["left"])
                    next_frontier.append(entry["right"])
            frontier = next_frontier
            depth += 1
        self._emit(targets, root)

    def _emit(self, targets: np.ndarray, entry: dict) -> int:
        """Write a grown node (and its subtree) into the flat arrays.

        Depth-first, matching the layout :meth:`_grow` produces.
        """
        node = len(self._value)
        index = entry["index"]
        self._feature.append(_NO_CHILD)
        self._threshold.append(0.0)
        self._left.append(_NO_CHILD)
        self._right.append(_NO_CHILD)
        self._value.append(float(targets[index].sum() / index.size))
        split = entry["split"]
        if split is None:
            self._train_leaf_ids[index] = node
            return node
        self._feature[node] = split.feature
        self._threshold[node] = split.threshold
        self._left[node] = self._emit(targets, entry["left"])
        self._right[node] = self._emit(targets, entry["right"])
        return node

    def _batch_histogram_splits(
        self,
        features: np.ndarray,
        targets: np.ndarray,
        nodes: list[np.ndarray],
    ) -> list[Optional[_Split]]:
        """Histogram split search for several nodes in one pass.

        Per-(node, feature, bin) aggregates come from a single
        ``bincount`` over the concatenated node members, so the level
        costs one set of array dispatches regardless of how many nodes
        it holds. Produces the same splits as calling
        :meth:`_best_split_histogram` per node: each bucket accumulates
        the same samples in the same order.
        """
        bins = self._bins
        n_bins = bins.n_bins
        d = features.shape[1]
        min_leaf = self.min_samples_leaf
        m = len(nodes)
        results: list[Optional[_Split]] = [None] * m
        stride = d * n_bins
        is_root = m == 1 and nodes[0].size == targets.size
        if is_root:
            # Root level: every sample belongs, codes need no gather.
            level_targets = targets
            flat_codes = bins.codes.reshape(-1)
            n_level = targets.size
        elif m == 1:
            level_targets = targets[nodes[0]]
            flat_codes = bins.codes[:, nodes[0]].reshape(-1)
            n_level = nodes[0].size
        else:
            sizes = np.array([node_index.size for node_index in nodes])
            level_index = np.concatenate(nodes)
            level_targets = targets[level_index]
            shifted = bins.codes[:, level_index] + np.repeat(
                np.arange(m) * stride, sizes
            )
            flat_codes = shifted.reshape(-1)
            n_level = level_index.size
        weights = np.broadcast_to(level_targets, (d, n_level)).ravel()
        if is_root and bins.root_counts is not None:
            counts = bins.root_counts
        else:
            counts = np.bincount(flat_codes, minlength=m * stride).reshape(
                m, d, n_bins
            )
        sums = np.bincount(flat_codes, weights=weights, minlength=m * stride)
        sums = sums.reshape(m, d, n_bins)

        node_sizes = (
            n_level if m == 1 else sizes[:, None, None]
        )
        left_counts = np.cumsum(counts, axis=2)[:, :, :-1]
        left_sums = np.cumsum(sums, axis=2)[:, :, :-1]
        total = left_sums[:, :, -1:] + sums[:, :, -1:]
        right_counts = node_sizes - left_counts
        score = left_sums**2 / left_counts
        score += (total - left_sums) ** 2 / right_counts
        score[(left_counts < min_leaf) | (right_counts < min_leaf)] = -np.inf
        pos = np.argmax(score, axis=2)
        row_scores = score.ravel()[pos.ravel() + self._row_picks(m * d, n_bins - 1)]
        row_scores = row_scores.reshape(m, d)
        all_gains = row_scores - total[:, :, 0] ** 2 / (
            n_level if m == 1 else sizes[:, None]
        )

        # Constant-target check per node (same boolean np.allclose
        # produces on finite data): extrema are exact regardless of
        # reduction order, so per-node min/max (via reduceat when the
        # level holds several nodes) match the reference bit-for-bit.
        if m == 1:
            first = float(level_targets[0])
            bound = 1e-08 + 1e-05 * abs(first)
            constant = [
                float(level_targets.max()) - first <= bound
                and first - float(level_targets.min()) <= bound
            ]
        else:
            starts = np.concatenate([[0], np.cumsum(sizes)[:-1]])
            firsts = level_targets[starts]
            bounds = 1e-08 + 1e-05 * np.abs(firsts)
            constant = (
                (np.maximum.reduceat(level_targets, starts) - firsts <= bounds)
                & (firsts - np.minimum.reduceat(level_targets, starts) <= bounds)
            ).tolist()
        for k in range(m):
            node_index = nodes[k]
            if constant[k]:
                continue
            positions = pos[k].tolist()
            node_counts = counts[k]

            def bin_threshold(row: int, feature: int) -> float:
                split_bin = positions[row]
                occupied_after = np.flatnonzero(node_counts[feature, split_bin + 1 :])
                next_bin = split_bin + 1 + int(occupied_after[0])
                return 0.5 * (
                    bins.values[feature, split_bin] + bins.values[feature, next_bin]
                )

            results[k] = self._resolve_winner(
                features,
                node_index,
                None,
                all_gains[k].tolist(),
                row_scores[k].tolist(),
                bin_threshold,
            )
        return results

    def _candidate_features(self, n_features: int) -> np.ndarray:
        """Choose the feature subset examined for one split."""
        if self.max_features is None:
            return np.arange(n_features)
        if isinstance(self.max_features, float):
            count = max(1, int(round(self.max_features * n_features)))
        else:
            count = max(1, min(int(self.max_features), n_features))
        return self._rng.choice(n_features, size=count, replace=False)

    def _best_split(
        self,
        features: np.ndarray,
        targets: np.ndarray,
        index: np.ndarray,
        order: Optional[np.ndarray],
    ) -> Optional[_Split]:
        """Find the variance-minimising split over ``index`` or ``None``."""
        if self.split_algorithm == "vectorized":
            return self._best_split_vectorized(features, targets, index, order)
        if self.split_algorithm == "histogram":
            return self._best_split_histogram(features, targets, index)
        return self._best_split_reference(features, targets, index)

    def _best_split_histogram(
        self, features: np.ndarray, targets: np.ndarray, index: np.ndarray
    ) -> Optional[_Split]:
        """Per-bin aggregation: one ``bincount`` over every feature.

        Every threshold the reference considers is a boundary between
        two occupied unique-value bins, so the candidate set is
        identical; only the floating-point summation order differs.
        Positions inside a run of empty bins tie bit-exactly with the
        run's first boundary (prefix sums grow by ``+0.0``), and
        ``argmax`` keeps the first, so thresholds always sit between
        values actually present in the node. Cost scales with feature
        cardinality instead of node size.

        Small nodes delegate to the exact vectorized kernel (sorting
        just the node): that is where two features can realise the
        *same* partition (exactly tied true gains, broken by rounding
        order — the exact kernel resolves them like the reference does),
        and where per-bin aggregation stops paying for itself anyway.
        """
        if index.size <= _HISTOGRAM_MIN_NODE:
            self._ensure_fallback_scratch(features, targets)
            order = index[np.argsort(features[index], axis=0, kind="stable")].T
            return self._best_split_vectorized(features, targets, index, order)
        node_targets = targets[index]
        # Constant-target check, same boolean np.allclose would produce
        # on finite data but without its broadcasting machinery.
        first = float(node_targets[0])
        if bool(
            (np.abs(node_targets - first) <= 1e-08 + 1e-05 * abs(first)).all()
        ):
            return None
        min_leaf = self.min_samples_leaf
        n = index.size
        n_features = features.shape[1]
        bins = self._bins
        n_bins = bins.n_bins
        if self.max_features is None:
            candidates = None  # all features, in natural order
            codes = bins.codes[:, index]
            c = n_features
        else:
            candidates = self._candidate_features(n_features)
            codes = bins.codes[candidates][:, index]
            c = candidates.size

        flat_codes = codes.ravel()
        weights = np.broadcast_to(node_targets, (c, n)).ravel()
        length = n_features * n_bins
        counts = np.bincount(flat_codes, minlength=length)
        sums = np.bincount(flat_codes, weights=weights, minlength=length)
        if candidates is None:
            counts = counts.reshape(c, n_bins)
            sums = sums.reshape(c, n_bins)
        else:
            counts = counts.reshape(n_features, n_bins)[candidates]
            sums = sums.reshape(n_features, n_bins)[candidates]

        left_counts = np.cumsum(counts, axis=1)[:, :-1]
        left_sums = np.cumsum(sums, axis=1)[:, :-1]
        total = left_sums[:, -1:] + sums[:, -1:]

        # Rank boundaries by L²/n_L + R²/n_R — equivalent (up to
        # rounding) to minimising the summed child SSEs, since the
        # node's total square sum is constant across split positions.
        # Division by an empty side yields inf/nan; those positions are
        # overwritten with -inf below (fit() silences the warnings).
        right_counts = n - left_counts
        score = left_sums**2 / left_counts
        score += (total - left_sums) ** 2 / right_counts
        score[(left_counts < min_leaf) | (right_counts < min_leaf)] = -np.inf
        pos = np.argmax(score, axis=1)

        # The parent SSE enters every gain through the same constant:
        # gain = score - total² / n.
        row_scores = score[np.arange(c), pos]
        gains = (row_scores - total[:, 0] ** 2 / n).tolist()
        pos = pos.tolist()

        def bin_threshold(row: int, feature: int) -> float:
            split_bin = pos[row]
            occupied_after = np.flatnonzero(counts[row, split_bin + 1 :])
            next_bin = split_bin + 1 + int(occupied_after[0])
            return 0.5 * (
                bins.values[feature, split_bin] + bins.values[feature, next_bin]
            )

        return self._resolve_winner(
            features, index, candidates, gains, row_scores.tolist(), bin_threshold
        )

    def _ensure_fallback_scratch(
        self, features: np.ndarray, targets: np.ndarray
    ) -> None:
        """Build the vectorized kernel's scratch on first fallback use."""
        if self._features_flat is None:
            self._features_flat = np.ascontiguousarray(features.T).reshape(-1)
            self._row_offsets = (
                np.arange(features.shape[1]) * features.shape[0]
            )[:, None]
            self._targets_stack = np.stack([targets, targets**2])

    def _resolve_winner(
        self,
        features: np.ndarray,
        index: np.ndarray,
        candidates: Optional[np.ndarray],
        gains: list[float],
        scores: list[float],
        threshold_of,
    ) -> Optional[_Split]:
        """Pick the winning feature and partition the node once.

        Selecting the score maximum (first occurrence on ties, usable
        gain only) and excluding collapsed candidates on retry yields
        exactly the split the reference's scan-with-running-best loop
        returns, while the expensive partition arrays are built only for
        the final winner instead of every improvement along the scan.
        """
        excluded: set[int] = set()
        n_rows = len(gains)
        while True:
            best_row = -1
            best_score = -np.inf
            for row in range(n_rows):
                if gains[row] <= 1e-12 or row in excluded:
                    continue  # invalid boundary (-inf) or no usable gain
                if best_row < 0 or scores[row] > best_score:
                    best_row = row
                    best_score = scores[row]
            if best_row < 0:
                return None
            feature = best_row if candidates is None else candidates[best_row]
            threshold = threshold_of(best_row, feature)
            column = features[index, feature]
            below = column <= threshold
            if not below.any() or below.all():
                # Adjacent floats can make the midpoint collapse onto
                # one side; such a split would create an empty child.
                excluded.add(best_row)
                continue
            return _Split(
                feature=int(feature),
                threshold=float(threshold),
                gain=gains[best_row],
                left_index=index[below],
                right_index=index[~below],
            )

    def _best_split_vectorized(
        self,
        features: np.ndarray,
        targets: np.ndarray,
        index: np.ndarray,
        order: np.ndarray,
    ) -> Optional[_Split]:
        """All candidate features evaluated in one 2-D cumulative-sum pass.

        Bit-identical to :meth:`_best_split_reference`: each node's
        per-feature sorted order (``order``, inherited down the
        recursion from the fit-time stable argsort) is the same
        permutation a stable sort of the subset would produce, and the
        gain arithmetic runs in the same floating-point order, just
        across a ``(features, thresholds)`` matrix instead of one
        feature at a time.
        """
        node_targets = targets[index]
        # Constant-target check, same boolean np.allclose would produce
        # on finite data but without its broadcasting machinery.
        first = float(node_targets[0])
        if bool(
            (np.abs(node_targets - first) <= 1e-08 + 1e-05 * abs(first)).all()
        ):
            return None
        parent_sse = _sse(node_targets)
        min_leaf = self.min_samples_leaf
        n = index.size
        n_features = features.shape[1]
        if self.max_features is None:
            candidates = None  # all features, in natural order
            cand_order = order
            # One flat gather instead of a 2-D fancy index: row r of
            # ``order`` indexes row r of the transposed feature matrix.
            vals = self._features_flat[cand_order + self._row_offsets]
            c = n_features
        else:
            candidates = self._candidate_features(n_features)
            cand_order = order[candidates]
            vals = self._features_flat[cand_order + self._row_offsets[candidates]]
            c = candidates.size

        # Prefix sums let us evaluate every split position in O(n):
        # one gather + one cumsum covers both the target sums and the
        # target-square sums.
        csums = np.cumsum(self._targets_stack[:, cand_order], axis=-1)
        csum, csum_sq = csums[0], csums[1]
        left_sum, left_sq = csum[:, :-1], csum_sq[:, :-1]
        total, total_sq = csum[:, -1:], csum_sq[:, -1:]

        counts = np.arange(1, n)
        right_counts = n - counts
        # In-place arithmetic (bit-identical, fewer temporaries):
        # sse = (left_sq - left_sum²/counts)
        #     + ((total_sq - left_sq) - (total - left_sum)²/right_counts)
        sse = left_sum**2
        sse /= counts
        np.subtract(left_sq, sse, out=sse)
        right_sse = total - left_sum
        right_sse **= 2
        right_sse /= right_counts
        np.subtract(total_sq - left_sq, right_sse, out=right_sse)
        sse += right_sse

        # Split positions whose children satisfy min_samples_leaf form a
        # contiguous band; mask the ends by slice instead of comparing
        # the full counts vectors.
        valid = vals[:, 1:] > vals[:, :-1]
        if min_leaf > 1:
            valid[:, : min_leaf - 1] = False
            valid[:, n - min_leaf :] = False
        has_valid = valid.any(axis=1)
        if not has_valid.any():
            return None
        sse[~valid] = np.inf
        pos = np.argmin(sse, axis=1)
        # The reference only considers features with a valid boundary;
        # parent_sse - inf = -inf conveniently fails the gain check for
        # the rest.
        gains = (parent_sse - sse[np.arange(c), pos]).tolist()
        pos = pos.tolist()

        def midpoint_threshold(row: int, feature: int) -> float:
            split_pos = pos[row]
            return 0.5 * (vals[row, split_pos] + vals[row, split_pos + 1])

        return self._resolve_winner(
            features, index, candidates, gains, gains, midpoint_threshold
        )

    def _best_split_reference(
        self, features: np.ndarray, targets: np.ndarray, index: np.ndarray
    ) -> Optional[_Split]:
        """The original per-feature split loop (equivalence oracle)."""
        node_targets = targets[index]
        if np.allclose(node_targets, node_targets[0]):
            return None
        parent_sse = _sse(node_targets)
        best: Optional[_Split] = None
        min_leaf = self.min_samples_leaf

        for feature in self._candidate_features(features.shape[1]):
            column = features[index, feature]
            order = np.argsort(column, kind="stable")
            sorted_vals = column[order]
            sorted_targets = node_targets[order]

            # Prefix sums let us evaluate every split position in O(n).
            csum = np.cumsum(sorted_targets)
            csum_sq = np.cumsum(sorted_targets**2)
            total, total_sq = csum[-1], csum_sq[-1]
            n = index.size

            counts = np.arange(1, n)
            left_sse = csum_sq[:-1] - csum[:-1] ** 2 / counts
            right_counts = n - counts
            right_sum = total - csum[:-1]
            right_sse = (total_sq - csum_sq[:-1]) - right_sum**2 / right_counts

            valid = (
                (sorted_vals[1:] > sorted_vals[:-1])
                & (counts >= min_leaf)
                & (right_counts >= min_leaf)
            )
            if not valid.any():
                continue
            sse = np.where(valid, left_sse + right_sse, np.inf)
            pos = int(np.argmin(sse))
            gain = parent_sse - float(sse[pos])
            if gain <= 1e-12:
                continue
            if best is None or gain > best.gain:
                threshold = 0.5 * (sorted_vals[pos] + sorted_vals[pos + 1])
                mask = column <= threshold
                if not mask.any() or mask.all():
                    # Adjacent floats can make the midpoint collapse onto
                    # one side; such a split would create an empty child.
                    continue
                best = _Split(
                    feature=int(feature),
                    threshold=float(threshold),
                    gain=gain,
                    left_index=index[mask],
                    right_index=index[~mask],
                )
        return best

    # ------------------------------------------------------------------
    # Prediction
    # ------------------------------------------------------------------
    def predict(self, features: np.ndarray) -> np.ndarray:
        """Predict targets for ``features`` (n, d) -> (n,)."""
        return self._value_arr[self.apply(features)]

    def apply(self, features: np.ndarray) -> np.ndarray:
        """Leaf node id each row of ``features`` (n, d) lands in -> (n,)."""
        if not self._fitted:
            raise ModelNotFittedError("DecisionTreeRegressor.predict before fit")
        features = np.atleast_2d(np.asarray(features, dtype=float))
        feature = self._feature_arr
        threshold = self._threshold_arr
        left = self._left_arr
        right = self._right_arr

        # Vectorised level-order descent: advance every row one level per
        # iteration until all rows rest at leaves.
        nodes = np.zeros(features.shape[0], dtype=int)
        active = feature[nodes] != _NO_CHILD
        while active.any():
            rows = np.flatnonzero(active)
            node_ids = nodes[rows]
            go_left = (
                features[rows, feature[node_ids]] <= threshold[node_ids]
            )
            nodes[rows] = np.where(go_left, left[node_ids], right[node_ids])
            active[rows] = feature[nodes[rows]] != _NO_CHILD
        return nodes

    def training_leaf_values(self) -> np.ndarray:
        """Per-row leaf predictions of the samples ``fit`` was given.

        Equivalent to ``predict(train_features)`` but free: leaf
        membership was recorded while the tree grew, so a boosting loop
        can update residuals without re-traversing the tree.
        """
        if not self._fitted:
            raise ModelNotFittedError("training_leaf_values before fit")
        return self._value_arr[self._train_leaf_ids]

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def node_count(self) -> int:
        """Number of nodes in the grown tree."""
        return len(self._value)

    @property
    def depth(self) -> int:
        """Depth of the grown tree (root = 0)."""
        if not self._fitted:
            raise ModelNotFittedError("tree not fitted")
        return self._depth_of(0)

    def _depth_of(self, node: int) -> int:
        if self._feature[node] == _NO_CHILD:
            return 0
        return 1 + max(
            self._depth_of(self._left[node]), self._depth_of(self._right[node])
        )

    def feature_importances(self, n_features: int) -> np.ndarray:
        """Split-count importances normalised to sum to 1 (or zeros)."""
        counts = np.zeros(n_features, dtype=float)
        for feat in self._feature:
            if feat != _NO_CHILD:
                counts[feat] += 1.0
        total = counts.sum()
        return counts / total if total > 0 else counts


def _sse(values: np.ndarray) -> float:
    """Sum of squared errors of ``values`` around their mean."""
    return float(((values - values.mean()) ** 2).sum())
