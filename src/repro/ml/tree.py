"""CART regression trees.

A minimal but correct implementation of the classification-and-regression
tree algorithm restricted to regression: splits minimise the weighted sum
of child variances (equivalently maximise variance reduction), leaves
predict the mean of their training targets.

The tree is stored in flat parallel arrays rather than node objects,
which keeps prediction vectorisable and the memory footprint small even
for the hundreds of trees a boosting ensemble builds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.errors import ConfigurationError, ModelNotFittedError
from repro.rng import SeedLike, make_rng

_NO_CHILD = -1


@dataclass
class _Split:
    """Best split found for one node during tree growth."""

    feature: int
    threshold: float
    gain: float
    left_index: np.ndarray
    right_index: np.ndarray


class DecisionTreeRegressor:
    """Regression tree grown greedily by variance reduction.

    Parameters
    ----------
    max_depth:
        Maximum tree depth; the root is depth 0. ``None`` grows until
        leaves are pure or smaller than ``min_samples_split``.
    min_samples_split:
        Minimum number of samples a node needs to be considered for a
        split.
    min_samples_leaf:
        Minimum number of samples each child must retain.
    max_features:
        Number of features examined per split. ``None`` uses all
        features; a float in (0, 1] uses that fraction; an int uses that
        count. Sub-sampling features decorrelates trees in ensembles.
    seed:
        Seed for feature sub-sampling.
    """

    def __init__(
        self,
        max_depth: Optional[int] = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features: Optional[float | int] = None,
        seed: SeedLike = None,
    ) -> None:
        if max_depth is not None and max_depth < 0:
            raise ConfigurationError(f"max_depth must be >= 0, got {max_depth}")
        if min_samples_split < 2:
            raise ConfigurationError(
                f"min_samples_split must be >= 2, got {min_samples_split}"
            )
        if min_samples_leaf < 1:
            raise ConfigurationError(
                f"min_samples_leaf must be >= 1, got {min_samples_leaf}"
            )
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self._rng = make_rng(seed)
        # Flat tree arrays, filled by fit().
        self._feature: list[int] = []
        self._threshold: list[float] = []
        self._left: list[int] = []
        self._right: list[int] = []
        self._value: list[float] = []
        self._fitted = False

    # ------------------------------------------------------------------
    # Fitting
    # ------------------------------------------------------------------
    def fit(self, features: np.ndarray, targets: np.ndarray) -> "DecisionTreeRegressor":
        """Grow the tree on ``features`` (n, d) and ``targets`` (n,)."""
        features = np.asarray(features, dtype=float)
        targets = np.asarray(targets, dtype=float)
        if features.ndim != 2:
            raise ConfigurationError("features must be a 2-D array")
        if targets.ndim != 1 or targets.shape[0] != features.shape[0]:
            raise ConfigurationError("targets must be 1-D and match features rows")
        if features.shape[0] == 0:
            raise ConfigurationError("cannot fit a tree on zero samples")

        self._feature, self._threshold = [], []
        self._left, self._right, self._value = [], [], []
        index = np.arange(features.shape[0])
        self._grow(features, targets, index, depth=0)
        self._fitted = True
        return self

    def _grow(
        self,
        features: np.ndarray,
        targets: np.ndarray,
        index: np.ndarray,
        depth: int,
    ) -> int:
        """Recursively grow a node over ``index``; return its node id."""
        node = len(self._value)
        self._feature.append(_NO_CHILD)
        self._threshold.append(0.0)
        self._left.append(_NO_CHILD)
        self._right.append(_NO_CHILD)
        self._value.append(float(targets[index].mean()))

        if self.max_depth is not None and depth >= self.max_depth:
            return node
        if index.size < self.min_samples_split:
            return node
        split = self._best_split(features, targets, index)
        if split is None:
            return node

        self._feature[node] = split.feature
        self._threshold[node] = split.threshold
        self._left[node] = self._grow(features, targets, split.left_index, depth + 1)
        self._right[node] = self._grow(features, targets, split.right_index, depth + 1)
        return node

    def _candidate_features(self, n_features: int) -> np.ndarray:
        """Choose the feature subset examined for one split."""
        if self.max_features is None:
            return np.arange(n_features)
        if isinstance(self.max_features, float):
            count = max(1, int(round(self.max_features * n_features)))
        else:
            count = max(1, min(int(self.max_features), n_features))
        return self._rng.choice(n_features, size=count, replace=False)

    def _best_split(
        self, features: np.ndarray, targets: np.ndarray, index: np.ndarray
    ) -> Optional[_Split]:
        """Find the variance-minimising split over ``index`` or ``None``."""
        node_targets = targets[index]
        if np.allclose(node_targets, node_targets[0]):
            return None
        parent_sse = _sse(node_targets)
        best: Optional[_Split] = None
        min_leaf = self.min_samples_leaf

        for feature in self._candidate_features(features.shape[1]):
            column = features[index, feature]
            order = np.argsort(column, kind="stable")
            sorted_vals = column[order]
            sorted_targets = node_targets[order]

            # Prefix sums let us evaluate every split position in O(n).
            csum = np.cumsum(sorted_targets)
            csum_sq = np.cumsum(sorted_targets**2)
            total, total_sq = csum[-1], csum_sq[-1]
            n = index.size

            counts = np.arange(1, n)
            left_sse = csum_sq[:-1] - csum[:-1] ** 2 / counts
            right_counts = n - counts
            right_sum = total - csum[:-1]
            right_sse = (total_sq - csum_sq[:-1]) - right_sum**2 / right_counts

            valid = (
                (sorted_vals[1:] > sorted_vals[:-1])
                & (counts >= min_leaf)
                & (right_counts >= min_leaf)
            )
            if not valid.any():
                continue
            sse = np.where(valid, left_sse + right_sse, np.inf)
            pos = int(np.argmin(sse))
            gain = parent_sse - float(sse[pos])
            if gain <= 1e-12:
                continue
            if best is None or gain > best.gain:
                threshold = 0.5 * (sorted_vals[pos] + sorted_vals[pos + 1])
                mask = column <= threshold
                if not mask.any() or mask.all():
                    # Adjacent floats can make the midpoint collapse onto
                    # one side; such a split would create an empty child.
                    continue
                best = _Split(
                    feature=int(feature),
                    threshold=float(threshold),
                    gain=gain,
                    left_index=index[mask],
                    right_index=index[~mask],
                )
        return best

    # ------------------------------------------------------------------
    # Prediction
    # ------------------------------------------------------------------
    def predict(self, features: np.ndarray) -> np.ndarray:
        """Predict targets for ``features`` (n, d) -> (n,)."""
        if not self._fitted:
            raise ModelNotFittedError("DecisionTreeRegressor.predict before fit")
        features = np.atleast_2d(np.asarray(features, dtype=float))
        out = np.empty(features.shape[0], dtype=float)
        feature = np.asarray(self._feature)
        threshold = np.asarray(self._threshold)
        left = np.asarray(self._left)
        right = np.asarray(self._right)
        value = np.asarray(self._value)

        # Vectorised level-order descent: advance every row one level per
        # iteration until all rows rest at leaves.
        nodes = np.zeros(features.shape[0], dtype=int)
        active = feature[nodes] != _NO_CHILD
        while active.any():
            rows = np.flatnonzero(active)
            node_ids = nodes[rows]
            go_left = (
                features[rows, feature[node_ids]] <= threshold[node_ids]
            )
            nodes[rows] = np.where(go_left, left[node_ids], right[node_ids])
            active[rows] = feature[nodes[rows]] != _NO_CHILD
        out[:] = value[nodes]
        return out

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def node_count(self) -> int:
        """Number of nodes in the grown tree."""
        return len(self._value)

    @property
    def depth(self) -> int:
        """Depth of the grown tree (root = 0)."""
        if not self._fitted:
            raise ModelNotFittedError("tree not fitted")
        return self._depth_of(0)

    def _depth_of(self, node: int) -> int:
        if self._feature[node] == _NO_CHILD:
            return 0
        return 1 + max(
            self._depth_of(self._left[node]), self._depth_of(self._right[node])
        )

    def feature_importances(self, n_features: int) -> np.ndarray:
        """Split-count importances normalised to sum to 1 (or zeros)."""
        counts = np.zeros(n_features, dtype=float)
        for feat in self._feature:
            if feat != _NO_CHILD:
                counts[feat] += 1.0
        total = counts.sum()
        return counts / total if total > 0 else counts


def _sse(values: np.ndarray) -> float:
    """Sum of squared errors of ``values`` around their mean."""
    return float(((values - values.mean()) ** 2).sum())
