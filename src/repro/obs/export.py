"""Exporters: JSONL event logs, Chrome trace-event JSON, metrics snapshots.

Three output formats over one :class:`~repro.obs.recorder.TraceRecorder`:

- **JSONL** (`--trace-format jsonl`) — the deterministic record
  stream, one sorted-key JSON object per line.  This is the parity
  surface: byte-identical at any ``--runtime``/``--jobs``, and (for
  the ``sim`` channel) across engines under
  ``EventConfig.epoch_equivalent()``.
- **Chrome trace-event JSON** (`--trace-format chrome`) — the
  *wall-clock* timing channel rendered as ``"X"`` complete events,
  loadable in Perfetto or ``chrome://tracing``.  Pods appear as
  tracks (one ``tid`` per pod, named via ``"M"`` metadata events);
  simulated time rides along in each event's ``args.sim_time``.
  Wall-clock output is inherently non-deterministic — never diff it.
- **metrics snapshot** (`--metrics-out`) — the recorder's counter /
  gauge / histogram registries as one JSON object, with the
  deterministic and execution-dependent registries kept in clearly
  separate sub-objects.

File writes go through the fleet's atomic-write helpers (imported
lazily — :mod:`repro.obs` stays importable without the fleet package).
"""

from __future__ import annotations

import json

from repro.obs.recorder import TraceRecorder

#: formats ``write_trace`` / ``--trace-format`` accept.
TRACE_FORMATS = ("jsonl", "chrome")

#: synthetic pid all fleet trace events share (one simulated fleet).
_TRACE_PID = 1


def _track_table(recorder: TraceRecorder) -> dict:
    """Map timing ``track`` values to Chrome tids.

    ``None`` (engine-level work) is tid 0; integer pod ids map to
    ``pod + 1`` so "pod 0" never collides with the engine track;
    string tracks allocate tids above every pod, in first-appearance
    order.
    """
    tids: dict = {None: 0}
    named: list[str] = []
    max_pod = -1
    for entry in recorder.timings:
        track = entry["track"]
        if track is None or track in tids:
            continue
        if isinstance(track, int):
            tids[track] = track + 1
            if track > max_pod:
                max_pod = track
        elif track not in named:
            named.append(track)
    base = max_pod + 2
    for offset, track in enumerate(named):
        tids[track] = base + offset
    return tids


def chrome_trace_payload(recorder: TraceRecorder) -> dict:
    """Chrome trace-event JSON object for the wall-clock timing channel."""
    tids = _track_table(recorder)
    events: list[dict] = [{
        "ph": "M", "name": "process_name", "pid": _TRACE_PID, "tid": 0,
        "args": {"name": "fleet-sim"},
    }]
    for track, tid in sorted(tids.items(), key=lambda item: item[1]):
        if track is None:
            label = "engine"
        elif isinstance(track, int):
            label = f"pod {track}"
        else:
            label = str(track)
        events.append({
            "ph": "M", "name": "thread_name", "pid": _TRACE_PID, "tid": tid,
            "args": {"name": label},
        })
        events.append({
            "ph": "M", "name": "thread_sort_index", "pid": _TRACE_PID,
            "tid": tid, "args": {"sort_index": tid},
        })
    for entry in recorder.timings:
        events.append({
            "ph": "X",
            "name": entry["name"],
            "pid": _TRACE_PID,
            "tid": tids[entry["track"]],
            "ts": round(entry["start"] * 1e6, 3),
            "dur": round(entry["dur"] * 1e6, 3),
            "args": dict(entry["args"]),
        })
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def trace_text(recorder: TraceRecorder, fmt: str = "jsonl") -> str:
    """Render the recorder in ``fmt`` (see :data:`TRACE_FORMATS`)."""
    if fmt == "jsonl":
        return recorder.to_jsonl()
    if fmt == "chrome":
        return json.dumps(chrome_trace_payload(recorder), sort_keys=True,
                          indent=2) + "\n"
    raise ValueError(f"unknown trace format {fmt!r}; known: {TRACE_FORMATS}")


def write_trace(recorder: TraceRecorder, path: str,
                fmt: str = "jsonl") -> None:
    """Atomically write the recorder's trace to ``path`` in ``fmt``."""
    from repro.fleet.checkpoint import atomic_write_text

    atomic_write_text(path, trace_text(recorder, fmt))


def write_metrics(recorder: TraceRecorder, path: str) -> None:
    """Atomically write the metrics snapshot JSON to ``path``."""
    from repro.fleet.checkpoint import atomic_write_text

    payload = recorder.metrics_payload()
    atomic_write_text(path, json.dumps(payload, sort_keys=True, indent=2) + "\n")


__all__ = [
    "TRACE_FORMATS",
    "chrome_trace_payload",
    "trace_text",
    "write_metrics",
    "write_trace",
]
