"""The report-embedded telemetry summary (schema v4, extended in v5).

:class:`TelemetryAccumulator` is the *always-on* half of the
observability layer: both fleet engines feed it regardless of whether
a recorder is attached, and its :meth:`payload` becomes the report's
``telemetry`` section.  That forces the hard contract — the section
may contain nothing execution-dependent, because reports must stay
byte-identical across ``--runtime``/``--jobs`` and with any recorder
(or none) attached.  Everything here derives purely from simulation
state:

- per-epoch solver iteration totals (batch and loop scoring produce
  identical per-scenario iteration counts — the fixed point's iterate
  path is bit-identical, so convergence happens on the same step);
- per-pod scoring task counts (pod decomposition is topology-derived,
  not runtime-derived);
- per-predictor prediction-vs-ground-truth residual aggregates — the
  free drift signal ROADMAP item 4 needs.  Residuals exist only for
  model-backed policies (``yala``/``rebalance``); the heuristic arms
  have no predictor to be wrong;
- (schema v5) the ``warm_start`` subsection: warm-cache
  hit/miss/invalidation totals and the warm-vs-cold split of solver
  iterations.  Always present with a constant shape; all-zero with
  ``enabled: false`` when warm-starting is off, so a cold report's
  bytes never depend on the feature existing.  The counts derive from
  the engines' warm cache, which is pure simulation history — hits are
  decided by resident-set structure, never by where or how fast
  anything ran.

Deliberately *absent*: runtime retry/rebuild/recovery counters.  Those
are execution facts (a ``FaultInjectingRuntime`` run must report the
same bytes as a serial run — tier-1 pins this), so they live in the
exec channel of the metrics snapshot instead
(``TraceRecorder.metrics_payload()``), never in the report.

The accumulator is plain picklable dicts and is checkpointed alongside
the engines' other state, so ``--resume`` runs reproduce the full
run's telemetry byte-for-byte.
"""

from __future__ import annotations

import math


class TelemetryAccumulator:
    """Accumulates sim-deterministic scoring telemetry for the report."""

    __slots__ = ("_epochs", "_pod_tasks", "_mixes_solved", "_iterations",
                 "_max_iterations", "_scenarios", "_residuals",
                 "_warm_enabled", "_warm_hits", "_warm_misses",
                 "_warm_invalidations", "_warm_iterations",
                 "_warm_scenarios", "_cold_iterations", "_cold_scenarios")

    def __init__(self) -> None:
        #: epoch bin -> [iterations, scenarios]
        self._epochs: dict[int, list[int]] = {}
        #: pod id -> scoring tasks dispatched
        self._pod_tasks: dict[int, int] = {}
        self._mixes_solved = 0
        self._iterations = 0
        self._max_iterations = 0
        self._scenarios = 0
        #: "<target>:<nf>" -> [count, sum_err, sum_abs_err, max_abs_err]
        self._residuals: dict[str, list[float]] = {}
        # Warm-start accounting (schema v5); inert unless enable_warm().
        self._warm_enabled = False
        self._warm_hits = 0
        self._warm_misses = 0
        self._warm_invalidations = 0
        self._warm_iterations = 0
        self._warm_scenarios = 0
        self._cold_iterations = 0
        self._cold_scenarios = 0

    # -- recording -----------------------------------------------------
    def enable_warm(self) -> None:
        """Mark this run as warm-started (sets ``warm_start.enabled``)."""
        self._warm_enabled = True

    def record_scoring(self, sim_time: float,
                       pod_counts: list[tuple[int, int]],
                       iterations: list[int],
                       warm_flags: list[bool] | None = None) -> None:
        """Account one scoring pass at ``sim_time``.

        ``pod_counts`` is ``[(pod_id, scenario_count), ...]`` for the
        dispatched tasks; ``iterations`` the per-scenario
        iterations-to-converge of every newly solved mix.
        ``warm_flags``, aligned with ``iterations`` when warm-starting
        is on, says which solves were seeded from the warm cache —
        feeding the warm-vs-cold iteration split.
        """
        bin_ = int(math.floor(sim_time))
        entry = self._epochs.get(bin_)
        if entry is None:
            entry = self._epochs[bin_] = [0, 0]
        total = 0
        for count in iterations:
            total += count
            if count > self._max_iterations:
                self._max_iterations = count
        entry[0] += total
        entry[1] += len(iterations)
        self._iterations += total
        self._scenarios += len(iterations)
        self._mixes_solved += len(iterations)
        for pod_id, _scenarios in pod_counts:
            self._pod_tasks[pod_id] = self._pod_tasks.get(pod_id, 0) + 1
        if warm_flags is not None:
            for flag, count in zip(warm_flags, iterations):
                if flag:
                    self._warm_iterations += count
                    self._warm_scenarios += 1
                else:
                    self._cold_iterations += count
                    self._cold_scenarios += 1

    def record_warm_cache(
        self, hits: int, misses: int, invalidations: int
    ) -> None:
        """Account one scoring pass's warm-cache lookup outcomes."""
        self._warm_hits += hits
        self._warm_misses += misses
        self._warm_invalidations += invalidations

    def add_residual(self, predictor: str, error: float) -> None:
        """Account one prediction-vs-ground-truth throughput residual."""
        entry = self._residuals.get(predictor)
        if entry is None:
            entry = self._residuals[predictor] = [0, 0.0, 0.0, 0.0]
        entry[0] += 1
        entry[1] += error
        abs_err = abs(error)
        entry[2] += abs_err
        if abs_err > entry[3]:
            entry[3] = abs_err

    # -- payload -------------------------------------------------------
    def payload(self) -> dict:
        """The report's ``telemetry`` section (JSON-ready, sorted)."""
        per_epoch = [
            {"epoch": epoch, "iterations": iters, "scenarios": scen}
            for epoch, (iters, scen) in sorted(self._epochs.items())
        ]
        pod_tasks = [
            {"pod": pod, "tasks": tasks}
            for pod, tasks in sorted(self._pod_tasks.items())
        ]
        residuals = [
            {
                "predictor": key,
                "count": int(count),
                "mean_error": total / count,
                "mean_abs_error": total_abs / count,
                "max_abs_error": max_abs,
            }
            for key, (count, total, total_abs, max_abs)
            in sorted(self._residuals.items())
        ]
        return {
            "solver": {
                "iterations_total": self._iterations,
                "max_iterations": self._max_iterations,
                "scenarios_solved": self._scenarios,
                "per_epoch": per_epoch,
            },
            "scoring": {
                "mixes_solved": self._mixes_solved,
                "pod_tasks": pod_tasks,
            },
            "residuals": residuals,
            "warm_start": {
                "enabled": self._warm_enabled,
                "hits": self._warm_hits,
                "misses": self._warm_misses,
                "invalidations": self._warm_invalidations,
                "warm_iterations": self._warm_iterations,
                "warm_scenarios": self._warm_scenarios,
                "cold_iterations": self._cold_iterations,
                "cold_scenarios": self._cold_scenarios,
            },
        }


def telemetry_payload(accumulator: TelemetryAccumulator | None = None) -> dict:
    """The ``telemetry`` report section; all-zero shape when no
    accumulator ran (mirrors ``faults_payload`` so report structure
    never depends on how a report object was built)."""
    if accumulator is not None:
        return accumulator.payload()
    return TelemetryAccumulator().payload()


__all__ = ["TelemetryAccumulator", "telemetry_payload"]
