"""Deterministic fleet telemetry: recorders, exporters, report telemetry.

The observability layer for the fleet simulator (see
``docs/observability.md``).  Three pieces:

- :mod:`repro.obs.recorder` — the :class:`Recorder` protocol
  (:class:`NullRecorder` default, :class:`TraceRecorder` collector)
  with sim-time deterministic records strictly separated from
  wall-clock/execution channels;
- :mod:`repro.obs.export` — JSONL, Chrome trace-event and metrics
  snapshot exporters;
- :mod:`repro.obs.telemetry` — the always-on accumulator behind the
  report's ``telemetry`` section (schema v4).

The hard contract: attaching any recorder never changes a single
simulated byte, and everything keyed by simulated time is itself
byte-deterministic at any ``--runtime``/``--jobs``.
"""

from repro.obs.export import (
    TRACE_FORMATS,
    chrome_trace_payload,
    trace_text,
    write_metrics,
    write_trace,
)
from repro.obs.recorder import (
    DETERMINISTIC_CHANNELS,
    NULL_RECORDER,
    NullRecorder,
    Recorder,
    TraceRecorder,
    active_recorder,
    set_active_recorder,
    use_recorder,
)
from repro.obs.telemetry import TelemetryAccumulator, telemetry_payload

__all__ = [
    "DETERMINISTIC_CHANNELS",
    "NULL_RECORDER",
    "NullRecorder",
    "Recorder",
    "TRACE_FORMATS",
    "TelemetryAccumulator",
    "TraceRecorder",
    "active_recorder",
    "chrome_trace_payload",
    "set_active_recorder",
    "telemetry_payload",
    "trace_text",
    "use_recorder",
    "write_metrics",
    "write_trace",
]
