"""Recorder protocol: the fleet's telemetry collection surface.

The simulator is instrumented against one tiny interface —
:class:`Recorder` — whose default implementation
(:class:`NullRecorder`) does nothing, allocates nothing, and costs one
attribute load plus a truth test per instrumentation site (the hot
paths guard on ``recorder.enabled``).  Attaching a
:class:`TraceRecorder` turns the same sites into a queryable run
record without perturbing a single simulated byte.

Telemetry is split into two worlds that must never mix:

**Deterministic records** (``TraceRecorder.records``) are keyed by
*simulated* time and derived exclusively from simulation state.  They
are byte-reproducible: the same config yields the same serialized
stream at any ``--runtime``/``--jobs`` count.  Each record carries a
channel:

- ``"sim"`` — events both engines emit identically under
  :meth:`EventConfig.epoch_equivalent` (scoring passes, per-epoch
  metric rows, fault transitions).  Cross-*engine* parity compares
  this channel only.
- ``"engine"`` — events specific to one engine's mechanics (epoch
  phase spans, event-queue pops, migration markers).  Still
  deterministic across runtimes and worker counts, but an epoch run
  and an event run legitimately differ here.

**Non-deterministic stores** hold everything wall-clock- or
execution-dependent: ``timings`` (wall-clock spans, the source of the
Chrome trace export), ``exec_counters`` / ``exec_gauges`` /
``exec_histograms`` (pool rebuilds, cache hit rates, signature-group
shapes — anything that varies with the execution strategy).  These are
excluded from every parity check by construction.

Deterministic metrics (``counter`` / ``gauge`` / ``histogram``) exist
too — e.g. the solver's iterations-to-converge histogram, recorded
parent-side from per-scenario iteration counts — and land in the
metrics snapshot alongside the exec registry.

A module-level *active recorder* (:func:`active_recorder` /
:func:`use_recorder`) lets deep layers that never see a recorder
argument — the batch solver in :mod:`repro.nic.batch` — report into
whatever recorder the running engine installed.  Worker processes keep
the null recorder, so anything routed this way is exec-channel by
nature.
"""

from __future__ import annotations

import json
import math
import time
from contextlib import contextmanager
from typing import Iterator

#: channels a deterministic record may carry.
DETERMINISTIC_CHANNELS = ("sim", "engine")


class _NullSpan:
    """Shared no-op span: enter/exit/add cost nothing and record nothing."""

    __slots__ = ()

    def add(self, **fields) -> "_NullSpan":
        return self

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class Recorder:
    """No-op telemetry sink; the base of the recorder protocol.

    Every method is a deliberate no-op so instrumentation sites can
    call unconditionally; sites inside per-scenario loops should guard
    on :attr:`enabled` to skip argument construction entirely.
    """

    #: hot paths check this before building event payloads.
    enabled = False

    # -- deterministic records -----------------------------------------
    def event(self, t: float, name: str, chan: str = "engine", **fields) -> None:
        """Record a typed event at simulated time ``t``."""

    def span(self, t: float, name: str, chan: str = "engine",
             track=None, **fields):
        """Open a span at simulated time ``t``.

        On exit the span appends one deterministic record (``name`` +
        the fields given here and via ``add``) and one wall-clock
        timing entry.  Use as a context manager.
        """
        return _NULL_SPAN

    # -- deterministic metrics registry --------------------------------
    def counter(self, name: str, value: float = 1) -> None:
        """Increment a deterministic counter."""

    def gauge(self, name: str, value: float) -> None:
        """Set a deterministic gauge."""

    def histogram(self, name: str, value: float) -> None:
        """Add an observation to a deterministic histogram."""

    # -- non-deterministic (execution) stores --------------------------
    def wall_span(self, name: str, track=None, **args):
        """Open a wall-clock-only span (timing channel, no record)."""
        return _NULL_SPAN

    def timing(self, name: str, start: float, duration: float,
               track=None, **args) -> None:
        """Record a wall-clock span directly (seconds, recorder-relative)."""

    def exec_counter(self, name: str, value: float = 1) -> None:
        """Increment an execution-dependent counter."""

    def exec_gauge(self, name: str, value: float) -> None:
        """Set an execution-dependent gauge."""

    def exec_histogram(self, name: str, value: float) -> None:
        """Add an observation to an execution-dependent histogram."""


class NullRecorder(Recorder):
    """The default recorder: records nothing, with provably negligible cost.

    ``benchmarks/test_perf_obs_overhead.py`` pins the overhead of an
    attached ``NullRecorder`` at ≤1.05x a recorder-free run.
    """


#: process-wide default instance; instrumentation sites use this when
#: no recorder was attached, so ``self._obs`` is never ``None``.
NULL_RECORDER = NullRecorder()


class _TraceSpan:
    """Deterministic span: record at exit + wall timing (see ``span``)."""

    __slots__ = ("_rec", "_t", "_name", "_chan", "_track", "_fields", "_wall0")

    def __init__(self, rec: "TraceRecorder", t: float, name: str,
                 chan: str, track, fields: dict) -> None:
        self._rec = rec
        self._t = t
        self._name = name
        self._chan = chan
        self._track = track
        self._fields = fields
        self._wall0 = 0.0

    def add(self, **fields) -> "_TraceSpan":
        self._fields.update(fields)
        return self

    def __enter__(self) -> "_TraceSpan":
        self._wall0 = time.perf_counter()
        return self

    def __exit__(self, *exc) -> bool:
        duration = time.perf_counter() - self._wall0
        rec = self._rec
        rec.event(self._t, self._name, chan=self._chan, **self._fields)
        rec.timing(self._name, self._wall0 - rec._wall_epoch, duration,
                   track=self._track, sim_time=self._t, **self._fields)
        return False


class _WallSpan:
    """Timing-only span: no deterministic record is emitted."""

    __slots__ = ("_rec", "_name", "_track", "_args", "_wall0")

    def __init__(self, rec: "TraceRecorder", name: str, track, args: dict) -> None:
        self._rec = rec
        self._name = name
        self._track = track
        self._args = args
        self._wall0 = 0.0

    def add(self, **args) -> "_WallSpan":
        self._args.update(args)
        return self

    def __enter__(self) -> "_WallSpan":
        self._wall0 = time.perf_counter()
        return self

    def __exit__(self, *exc) -> bool:
        rec = self._rec
        rec.timing(self._name, self._wall0 - rec._wall_epoch,
                   time.perf_counter() - self._wall0,
                   track=self._track, **self._args)
        return False


def _hist_update(store: dict, name: str, value: float) -> None:
    hist = store.get(name)
    if hist is None:
        hist = store[name] = {
            "count": 0, "sum": 0.0,
            "min": math.inf, "max": -math.inf, "buckets": {},
        }
    value = float(value)
    hist["count"] += 1
    hist["sum"] += value
    if value < hist["min"]:
        hist["min"] = value
    if value > hist["max"]:
        hist["max"] = value
    bucket = str(int(value))
    hist["buckets"][bucket] = hist["buckets"].get(bucket, 0) + 1


class TraceRecorder(Recorder):
    """In-memory recorder backing the JSONL/Chrome/metrics exporters.

    Collects deterministic records and metrics, plus the
    execution-channel stores documented in the module docstring.
    Records carry no sequence numbers: their serialized form depends
    only on simulation state, which is what makes checkpoint/resume
    trace concatenation byte-equal an uninterrupted run.
    """

    enabled = True

    def __init__(self) -> None:
        #: deterministic records, in emission order: {chan, t, name, ...}.
        self.records: list[dict] = []
        self.counters: dict[str, float] = {}
        self.gauges: dict[str, float] = {}
        self.histograms: dict[str, dict] = {}
        self.exec_counters: dict[str, float] = {}
        self.exec_gauges: dict[str, float] = {}
        self.exec_histograms: dict[str, dict] = {}
        #: wall-clock spans: {name, start, dur, track, args}.
        self.timings: list[dict] = []
        self._wall_epoch = time.perf_counter()

    # -- deterministic records -----------------------------------------
    def event(self, t: float, name: str, chan: str = "engine", **fields) -> None:
        if chan not in DETERMINISTIC_CHANNELS:
            raise ValueError(
                f"unknown channel {chan!r}; known: {DETERMINISTIC_CHANNELS}"
            )
        record = {"chan": chan, "t": float(t), "name": name}
        record.update(fields)
        self.records.append(record)

    def span(self, t: float, name: str, chan: str = "engine",
             track=None, **fields) -> _TraceSpan:
        if chan not in DETERMINISTIC_CHANNELS:
            raise ValueError(
                f"unknown channel {chan!r}; known: {DETERMINISTIC_CHANNELS}"
            )
        return _TraceSpan(self, float(t), name, chan, track, dict(fields))

    # -- deterministic metrics registry --------------------------------
    def counter(self, name: str, value: float = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + value

    def gauge(self, name: str, value: float) -> None:
        self.gauges[name] = value

    def histogram(self, name: str, value: float) -> None:
        _hist_update(self.histograms, name, value)

    # -- non-deterministic (execution) stores --------------------------
    def wall_span(self, name: str, track=None, **args) -> _WallSpan:
        return _WallSpan(self, name, track, dict(args))

    def timing(self, name: str, start: float, duration: float,
               track=None, **args) -> None:
        self.timings.append({
            "name": name, "start": float(start), "dur": float(duration),
            "track": track, "args": args,
        })

    def exec_counter(self, name: str, value: float = 1) -> None:
        self.exec_counters[name] = self.exec_counters.get(name, 0) + value

    def exec_gauge(self, name: str, value: float) -> None:
        self.exec_gauges[name] = value

    def exec_histogram(self, name: str, value: float) -> None:
        _hist_update(self.exec_histograms, name, value)

    # -- queries --------------------------------------------------------
    def deterministic_records(self, chan: str | None = None) -> list[dict]:
        """Deterministic records, optionally filtered to one channel."""
        if chan is None:
            return list(self.records)
        if chan not in DETERMINISTIC_CHANNELS:
            raise ValueError(
                f"unknown channel {chan!r}; known: {DETERMINISTIC_CHANNELS}"
            )
        return [r for r in self.records if r["chan"] == chan]

    def to_jsonl(self, chan: str | None = None) -> str:
        """Serialize the deterministic record stream, one JSON object
        per line, ``sort_keys=True`` — the byte-parity surface."""
        records = self.deterministic_records(chan)
        if not records:
            return ""
        return "\n".join(
            json.dumps(record, sort_keys=True) for record in records
        ) + "\n"

    def metrics_payload(self) -> dict:
        """JSON-ready snapshot of both metric registries.

        ``deterministic`` reproduces byte-identically across runtimes;
        ``exec`` is execution-dependent and excluded from parity.
        """
        return {
            "deterministic": {
                "counters": dict(self.counters),
                "gauges": dict(self.gauges),
                "histograms": {k: dict(v) for k, v in self.histograms.items()},
            },
            "exec": {
                "counters": dict(self.exec_counters),
                "gauges": dict(self.exec_gauges),
                "histograms": {
                    k: dict(v) for k, v in self.exec_histograms.items()
                },
            },
            "timing": {"spans": len(self.timings)},
        }


# ---------------------------------------------------------------------
# Active recorder: how layers without a recorder argument report in.
# ---------------------------------------------------------------------

_ACTIVE: Recorder = NULL_RECORDER


def active_recorder() -> Recorder:
    """The recorder installed by the running engine (never ``None``)."""
    return _ACTIVE


def set_active_recorder(recorder: Recorder | None) -> Recorder:
    """Install ``recorder`` as the active one; returns the previous."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = recorder if recorder is not None else NULL_RECORDER
    return previous


@contextmanager
def use_recorder(recorder: Recorder | None) -> Iterator[Recorder]:
    """Scope the active recorder to a ``with`` block (engine runs use
    this so nested/sequential runs restore each other cleanly)."""
    previous = set_active_recorder(recorder)
    try:
        yield _ACTIVE
    finally:
        set_active_recorder(previous)


__all__ = [
    "DETERMINISTIC_CHANNELS",
    "NULL_RECORDER",
    "NullRecorder",
    "Recorder",
    "TraceRecorder",
    "active_recorder",
    "set_active_recorder",
    "use_recorder",
]
