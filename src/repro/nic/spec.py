"""Hardware specifications for the simulated SmartNICs.

Two concrete profiles are provided: a BlueField-2-like SoC NIC (the
paper's main testbed) and a Pensando-like NIC (the generalisation target
of Table 9). Constants are calibrated so that solo NF throughputs land in
the ranges the paper reports (hundreds of Kpps to a few Mpps for real
NFs; tens of Mpps for tiny synthetic regex requests), not to be
cycle-accurate.

Unit conventions used across the simulator:

- time: microseconds (us),
- throughput / rates: Mpps and Mref/s, i.e. events per microsecond,
- bandwidth: bytes per microsecond (1 GB/s == 1000 B/us),
- sizes: bytes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from types import MappingProxyType
from typing import Callable, Mapping

from repro.errors import ConfigurationError
from repro.rng import derive_seed

#: Bytes per cache line; all miss traffic is counted in lines.
CACHE_LINE_BYTES = 64


@dataclass(frozen=True)
class AcceleratorSpec:
    """Static description of one on-NIC hardware accelerator engine.

    A request costs ``base_time_us + bytes * per_byte_us +
    matches * per_match_us`` of engine time, plus
    ``queue_switch_us`` whenever the round-robin scheduler moves to the
    queue (a second-order cost the paper's white-box model ignores, which
    keeps its error realistic).
    """

    name: str
    base_time_us: float
    per_byte_us: float
    per_match_us: float
    queue_switch_us: float = 0.0
    #: Cache-line-equivalent memory references generated per DMA'd
    #: kilobyte of request payload (cross-resource coupling).
    dma_refs_per_kb: float = 0.5

    def request_time_us(self, bytes_per_request: float, matches: float) -> float:
        """Engine service time of one request, excluding switch cost."""
        if bytes_per_request < 0 or matches < 0:
            raise ConfigurationError("request size and matches must be >= 0")
        return (
            self.base_time_us
            + bytes_per_request * self.per_byte_us
            + matches * self.per_match_us
        )


@dataclass(frozen=True)
class NicSpecification:
    """Static description of a SoC SmartNIC."""

    name: str
    num_cores: int
    core_freq_mhz: float  # cycles per microsecond
    llc_bytes: float
    dram_bandwidth_bpus: float  # bytes per microsecond
    dram_latency_us: float
    llc_hit_time_us: float
    line_rate_gbps: float
    accelerators: Mapping[str, AcceleratorSpec] = field(default_factory=dict)
    #: Miss ratio floor even when a working set fully fits in cache.
    base_miss_ratio: float = 0.02
    #: Fraction of dirty lines written back per miss.
    writeback_fraction: float = 0.5

    def __post_init__(self) -> None:
        if self.num_cores < 1:
            raise ConfigurationError("num_cores must be >= 1")
        if self.llc_bytes <= 0 or self.dram_bandwidth_bpus <= 0:
            raise ConfigurationError("cache size and DRAM bandwidth must be > 0")
        if not 0.0 <= self.base_miss_ratio < 1.0:
            raise ConfigurationError("base_miss_ratio must be in [0, 1)")
        object.__setattr__(
            self, "accelerators", MappingProxyType(dict(self.accelerators))
        )

    def __getstate__(self) -> dict:
        """Pickle support: the read-only accelerator view is rebuilt."""
        state = self.__dict__.copy()
        state["accelerators"] = dict(self.accelerators)
        return state

    def __setstate__(self, state: dict) -> None:
        for key, value in state.items():
            object.__setattr__(self, key, value)
        object.__setattr__(
            self, "accelerators", MappingProxyType(dict(self.accelerators))
        )

    def __hash__(self) -> int:
        # The generated (eq=True, frozen=True) hash would fold in the
        # unhashable accelerator mapping; hash an ordered tuple view
        # instead so specs can key dictionaries (fleet pools, per-target
        # model registries). Consistent with the generated __eq__:
        # equal specs have equal accelerator dicts, hence equal tuples.
        return hash(
            (
                self.name,
                self.num_cores,
                self.core_freq_mhz,
                self.llc_bytes,
                self.dram_bandwidth_bpus,
                self.dram_latency_us,
                self.llc_hit_time_us,
                self.line_rate_gbps,
                tuple(sorted(self.accelerators.items())),
                self.base_miss_ratio,
                self.writeback_fraction,
            )
        )

    def accelerator(self, name: str) -> AcceleratorSpec:
        """Return the accelerator spec called ``name``."""
        try:
            return self.accelerators[name]
        except KeyError:
            raise ConfigurationError(
                f"NIC {self.name!r} has no accelerator {name!r}; "
                f"available: {sorted(self.accelerators)}"
            ) from None

    def line_rate_mpps(self, packet_size_bytes: float) -> float:
        """Maximum packet rate at ``packet_size_bytes`` (with framing)."""
        if packet_size_bytes <= 0:
            raise ConfigurationError("packet size must be positive")
        # 20B Ethernet preamble + IFG per packet on the wire.
        wire_bytes = packet_size_bytes + 20.0
        bytes_per_us = self.line_rate_gbps * 1e9 / 8.0 / 1e6
        return bytes_per_us / wire_bytes


#: Accelerator names used across the library.
REGEX = "regex"
COMPRESSION = "compression"


def bluefield2_spec() -> NicSpecification:
    """The BlueField-2-like NIC used for the main evaluation.

    8x ARMv8 A72 @ 2.5 GHz, 6 MB LLC, 16 GB DDR4 (~17 GB/s), dual
    100 GbE, RXP regex engine and a (de)compression engine.
    """
    return NicSpecification(
        name="bluefield2",
        num_cores=8,
        core_freq_mhz=2500.0,
        llc_bytes=6 * 1024 * 1024,
        dram_bandwidth_bpus=20_000.0,  # ~20 GB/s effective DDR4
        dram_latency_us=0.110,
        llc_hit_time_us=0.012,
        line_rate_gbps=100.0,
        accelerators={
            REGEX: AcceleratorSpec(
                name=REGEX,
                base_time_us=0.010,
                per_byte_us=1.0 / 2000.0,  # ~2 GB/s scan rate
                per_match_us=0.250,
                queue_switch_us=0.0008,
                dma_refs_per_kb=0.6,
            ),
            COMPRESSION: AcceleratorSpec(
                name=COMPRESSION,
                base_time_us=0.040,
                per_byte_us=1.0 / 1500.0,  # ~1.5 GB/s
                per_match_us=0.0,
                queue_switch_us=0.0010,
                dma_refs_per_kb=0.8,
            ),
        },
    )


def pensando_spec() -> NicSpecification:
    """The AMD Pensando-like NIC used for the Table 9 generalisation.

    Different core count, cache size, memory system and a flow-table
    walker offload engine, but the same architectural style (SoC cores +
    shared memory subsystem + RR-queue accelerators).
    """
    return NicSpecification(
        name="pensando",
        num_cores=16,
        core_freq_mhz=2800.0,
        llc_bytes=8 * 1024 * 1024,
        dram_bandwidth_bpus=24_000.0,  # 24 GB/s
        dram_latency_us=0.095,
        llc_hit_time_us=0.010,
        line_rate_gbps=100.0,
        accelerators={
            REGEX: AcceleratorSpec(
                name=REGEX,
                base_time_us=0.012,
                per_byte_us=1.0 / 2600.0,
                per_match_us=0.220,
                queue_switch_us=0.0009,
            ),
        },
    )


# ----------------------------------------------------------------------
# Hardware target registry
# ----------------------------------------------------------------------
#: Name of the default hardware target (the paper's main testbed).
DEFAULT_TARGET = "bluefield2"

_SPEC_FACTORIES: dict[str, Callable[[], NicSpecification]] = {}
_SPEC_CACHE: dict[str, NicSpecification] = {}


def register_spec(
    name: str,
    factory: Callable[[], NicSpecification],
    overwrite: bool = False,
) -> None:
    """Register a hardware target under ``name``.

    ``factory`` builds the target's :class:`NicSpecification`; the built
    spec's ``name`` must equal the registered name so that every layer
    keyed on spec names (fleet pools, per-target model registries)
    round-trips through the registry. Re-registering an existing name
    requires ``overwrite=True``.
    """
    if not name:
        raise ConfigurationError("target name must be non-empty")
    if name in _SPEC_FACTORIES and not overwrite:
        raise ConfigurationError(
            f"target {name!r} is already registered (pass overwrite=True)"
        )
    _SPEC_FACTORIES[name] = factory
    _SPEC_CACHE.pop(name, None)


def get_spec(name: str) -> NicSpecification:
    """Return the registered :class:`NicSpecification` called ``name``."""
    if name not in _SPEC_CACHE:
        try:
            factory = _SPEC_FACTORIES[name]
        except KeyError:
            raise ConfigurationError(
                f"unknown hardware target {name!r}; "
                f"available: {list(available_specs())}"
            ) from None
        spec = factory()
        if spec.name != name:
            raise ConfigurationError(
                f"target {name!r} built a spec named {spec.name!r}; "
                "registered name and spec.name must match"
            )
        _SPEC_CACHE[name] = spec
    return _SPEC_CACHE[name]


def available_specs() -> tuple[str, ...]:
    """Names of all registered hardware targets, sorted."""
    return tuple(sorted(_SPEC_FACTORIES))


def target_seed(seed: int, target: str, *tags) -> int:
    """Per-target seed stream shared by every layer that trains models.

    The default target keeps the un-prefixed historical streams (the
    bare ``seed`` when no tags are given — what the harness and fleet
    CLI have always used on BlueField-2, so their outputs stay
    bit-identical); every other target prefixes its name so its
    streams are independent. Centralised here so the experiment
    context and the fleet CLI cannot drift apart.
    """
    if target == DEFAULT_TARGET:
        return derive_seed(seed, *tags) if tags else seed
    return derive_seed(seed, target, *tags)


register_spec("bluefield2", bluefield2_spec)
register_spec("pensando", pensando_spec)
