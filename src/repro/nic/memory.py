"""Shared memory-subsystem model (last-level cache + DRAM).

Co-located actors (NFs, benches, accelerator DMA engines) share the LLC
and the DRAM channel. The model computes, for each actor, the average
time of one cache reference given everybody's pressure:

1. **Cache partition.** LLC occupancy is split by an iterative
   proportional-pressure water-filling: an actor's pressure is its access
   rate weighted by its working-set demand; actors whose working set fits
   inside their pressure share keep exactly their working set, and the
   freed capacity is redistributed among the rest. This approximates LRU
   occupancy under mixed access streams.
2. **Miss-ratio curve.** With working set ``w`` and occupancy ``o``,
   uniform accesses miss with probability ``base + (1-base)·(1 - o/w)``
   (clamped), i.e. no extra misses while the set fits, then a smooth
   rise — yielding the piece-wise throughput curves of the paper
   (Figs. 3a, 6a).
3. **DRAM queueing.** Total miss traffic (plus write-backs) loads the
   DRAM channel; access latency is inflated by an M/M/1-style
   ``1/(1-rho)`` factor, capped to keep the fixed point stable.

The result is mechanistic rather than fitted: SLOMO/Yala's gradient
boosting has to *learn* this behaviour from profiled samples.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.nic.spec import CACHE_LINE_BYTES, NicSpecification

#: DRAM utilisation is clamped below this to keep latency finite.
_MAX_UTILISATION = 0.97
#: Iterations for the occupancy water-filling.
_OCCUPANCY_ITERATIONS = 32
#: Sub-linear exponent on access rate in the occupancy pressure term;
#: keeps the rate->occupancy->miss feedback loop stable while still
#: letting fast streams evict slow ones.
_PRESSURE_RATE_EXPONENT = 0.7


@dataclass(frozen=True)
class MemoryActor:
    """One contender for the shared memory subsystem.

    ``hot_access_fraction`` of accesses go to a hot subset occupying
    ``hot_wss_fraction`` of the working set (Zipf-like reuse). Occupancy
    granted to the actor shields the hot subset first, giving real NFs a
    gentler slowdown than a pure uniform-access model. Streaming
    contenders (mem-bench) set ``hot_access_fraction`` to 0.
    """

    name: str
    read_rate: float  # cache read references per us (Mref/s)
    write_rate: float  # cache write references per us (Mref/s)
    wss_bytes: float
    hot_access_fraction: float = 0.6
    hot_wss_fraction: float = 0.15

    def __post_init__(self) -> None:
        if self.read_rate < 0 or self.write_rate < 0 or self.wss_bytes < 0:
            raise ConfigurationError(f"memory actor {self.name!r}: negative demand")
        if not 0.0 <= self.hot_access_fraction < 1.0:
            raise ConfigurationError(
                f"memory actor {self.name!r}: hot_access_fraction in [0, 1)"
            )
        if not 0.0 < self.hot_wss_fraction < 1.0:
            raise ConfigurationError(
                f"memory actor {self.name!r}: hot_wss_fraction in (0, 1)"
            )

    @property
    def access_rate(self) -> float:
        """Total cache access rate (the paper's CAR), Mref/s."""
        return self.read_rate + self.write_rate


@dataclass(frozen=True)
class MemoryShare:
    """Resolved memory behaviour of one actor under contention."""

    name: str
    occupancy_bytes: float
    miss_ratio: float
    avg_access_time_us: float
    dram_read_rate: float  # line fetches per us
    dram_write_rate: float  # write-backs per us


class MemorySubsystem:
    """Solver for the shared LLC + DRAM model of one NIC."""

    def __init__(self, spec: NicSpecification) -> None:
        self._spec = spec

    # ------------------------------------------------------------------
    def solve_occupancy(self, actors: list[MemoryActor]) -> dict[str, float]:
        """Partition LLC capacity among ``actors``.

        Pressure of actor ``i`` is ``access_rate_i**0.7 *
        sqrt(min(wss_i, llc))`` — occupancy grows with access rate and
        working set, both sub-linearly, so a large streaming contender
        evicts but does not completely starve a small hot table
        (LRU-like behaviour) and the rate->occupancy->miss feedback loop
        stays gentle rather than bistable. Capacity is granted
        proportionally, but never beyond an actor's working set; freed
        capacity cascades to still-hungry actors.
        """
        llc = self._spec.llc_bytes
        active = [a for a in actors if a.access_rate > 0 and a.wss_bytes > 0]
        occupancy = {a.name: 0.0 for a in actors}
        if not active:
            return occupancy

        remaining = llc
        hungry = list(active)
        for _ in range(_OCCUPANCY_ITERATIONS):
            if not hungry or remaining <= 0:
                break
            pressures = np.array(
                [
                    a.access_rate**_PRESSURE_RATE_EXPONENT
                    * np.sqrt(min(a.wss_bytes, llc))
                    for a in hungry
                ]
            )
            total = pressures.sum()
            if total <= 0:
                break
            shares = remaining * pressures / total
            satisfied = []
            for actor, share in zip(hungry, shares):
                need = actor.wss_bytes - occupancy[actor.name]
                if need <= share:
                    occupancy[actor.name] += need
                    remaining -= need
                    satisfied.append(actor)
            if satisfied:
                hungry = [a for a in hungry if a not in satisfied]
                continue
            for actor, share in zip(hungry, shares):
                occupancy[actor.name] += share
            remaining = 0.0
            break
        return occupancy

    # ------------------------------------------------------------------
    def miss_ratio(
        self,
        wss_bytes: float,
        occupancy_bytes: float,
        hot_access_fraction: float = 0.0,
        hot_wss_fraction: float = 0.15,
    ) -> float:
        """Miss probability over a working set with a hot subset.

        Occupancy shields the hot subset (``hot_wss_fraction`` of the
        working set, receiving ``hot_access_fraction`` of accesses)
        first, then covers the cold remainder uniformly.
        """
        base = self._spec.base_miss_ratio
        if wss_bytes <= 0:
            return base
        occupancy = float(np.clip(occupancy_bytes, 0.0, wss_bytes))
        hot_bytes = hot_wss_fraction * wss_bytes
        cold_bytes = wss_bytes - hot_bytes
        hot_resident = min(occupancy, hot_bytes)
        cold_resident = min(max(occupancy - hot_bytes, 0.0), cold_bytes)
        hot_miss = 1.0 - hot_resident / hot_bytes if hot_bytes > 0 else 0.0
        cold_miss = 1.0 - cold_resident / cold_bytes if cold_bytes > 0 else 0.0
        blended = (
            hot_access_fraction * hot_miss
            + (1.0 - hot_access_fraction) * cold_miss
        )
        return float(np.clip(base + (1.0 - base) * blended, base, 1.0))

    # ------------------------------------------------------------------
    def solve(self, actors: list[MemoryActor]) -> dict[str, MemoryShare]:
        """Resolve the full memory model for all ``actors`` at once."""
        occupancy = self.solve_occupancy(actors)
        spec = self._spec

        miss = {
            a.name: self.miss_ratio(
                a.wss_bytes,
                occupancy[a.name],
                a.hot_access_fraction,
                a.hot_wss_fraction,
            )
            for a in actors
        }
        dram_reads = {a.name: a.read_rate * miss[a.name] for a in actors}
        dram_writes = {
            a.name: (a.write_rate * miss[a.name])
            + (a.read_rate + a.write_rate) * miss[a.name] * spec.writeback_fraction
            for a in actors
        }
        total_lines = sum(dram_reads.values()) + sum(dram_writes.values())
        utilisation = min(
            _MAX_UTILISATION,
            total_lines * CACHE_LINE_BYTES / spec.dram_bandwidth_bpus,
        )
        effective_dram_us = spec.dram_latency_us / (1.0 - utilisation)

        shares: dict[str, MemoryShare] = {}
        for actor in actors:
            avg = spec.llc_hit_time_us + miss[actor.name] * effective_dram_us
            shares[actor.name] = MemoryShare(
                name=actor.name,
                occupancy_bytes=occupancy[actor.name],
                miss_ratio=miss[actor.name],
                avg_access_time_us=avg,
                dram_read_rate=dram_reads[actor.name],
                dram_write_rate=dram_writes[actor.name],
            )
        return shares

    # ------------------------------------------------------------------
    def dram_utilisation(self, actors: list[MemoryActor]) -> float:
        """Fraction of DRAM bandwidth consumed by ``actors``."""
        shares = self.solve(actors)
        total_lines = sum(s.dram_read_rate + s.dram_write_rate for s in shares.values())
        return min(
            _MAX_UTILISATION,
            total_lines * CACHE_LINE_BYTES / self._spec.dram_bandwidth_bpus,
        )
