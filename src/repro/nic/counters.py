"""Synthesised hardware performance counters (paper Table 11).

The paper's models take these 7 counters, sampled for each workload at
runtime, as input features:

==========  =====================================
IPC         Instructions per cycle.
IRT         Instructions retired (per second, reported in M/s).
L2CRD       L2/LLC data cache read access rate (Mref/s).
L2CWR       L2/LLC data cache write access rate (Mref/s).
MEMRD       Data memory (DRAM) read access rate (Mref/s).
MEMWR       Data memory (DRAM) write access rate (Mref/s).
WSS         Working set size (bytes).
==========  =====================================

The simulator fills them from converged run state; SLOMO/Yala never see
simulator internals, only these counters — the same observability the
real BlueField-2 offers.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

import numpy as np

#: Canonical feature ordering used by every model in the library.
COUNTER_NAMES: tuple[str, ...] = (
    "ipc",
    "irt",
    "l2crd",
    "l2cwr",
    "memrd",
    "memwr",
    "wss",
)


@dataclass(frozen=True)
class PerfCounters:
    """One workload's counter sample (rates in M/s, WSS in bytes)."""

    ipc: float = 0.0
    irt: float = 0.0
    l2crd: float = 0.0
    l2cwr: float = 0.0
    memrd: float = 0.0
    memwr: float = 0.0
    wss: float = 0.0

    def as_vector(self) -> np.ndarray:
        """Counters as a feature vector in :data:`COUNTER_NAMES` order."""
        return np.array([getattr(self, name) for name in COUNTER_NAMES])

    @property
    def cache_access_rate(self) -> float:
        """The paper's CAR: L2 read + write access rate (Mref/s)."""
        return self.l2crd + self.l2cwr

    def __add__(self, other: "PerfCounters") -> "PerfCounters":
        """Element-wise sum; used to aggregate competitor pressure."""
        if not isinstance(other, PerfCounters):
            return NotImplemented
        return PerfCounters(
            **{
                f.name: getattr(self, f.name) + getattr(other, f.name)
                for f in fields(self)
            }
        )

    @staticmethod
    def zero() -> "PerfCounters":
        """The additive identity (no contention)."""
        return PerfCounters()

    @staticmethod
    def aggregate(samples: list["PerfCounters"]) -> "PerfCounters":
        """Sum a list of counter samples (competitor aggregation)."""
        total = PerfCounters.zero()
        for sample in samples:
            total = total + sample
        return total
