"""SmartNIC co-location runtime.

:class:`SmartNic` takes a set of workload demands (compiled NFs bound to
traffic profiles), places them on the simulated NIC, and solves for every
workload's steady-state throughput. Because each workload's memory and
accelerator pressure depends on its own achieved rate, the solution is a
damped fixed point:

1. guess throughputs (contention-free estimates);
2. from the current throughputs, derive every actor's cache/DRAM pressure
   and accelerator offered load;
3. recompute each workload's stage capacities under that contention and
   its resulting end-to-end throughput (pipeline = slowest stage;
   run-to-completion = cores / sum of per-packet stage times);
4. damp, repeat until converged.

Reported throughputs carry a small seeded measurement noise, like real
testbed samples. The noiseless value is also exposed for tests.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConvergenceError, PlacementError, SimulationError
from repro.nic.accelerator import AcceleratorClient, AcceleratorEngine
from repro.nic.counters import PerfCounters
from repro.nic.memory import MemoryActor, MemorySubsystem
from repro.nic.spec import NicSpecification
from repro.nic.workload import (
    ExecutionPattern,
    Resource,
    StageDemand,
    WorkloadDemand,
)
from repro.rng import SeedLike, derive_seed, make_rng

_MAX_ITERATIONS = 3000
_DAMPING = 0.55
#: Starting damping for *seeded* solves. Near the fixed point the
#: update map is locally contractive, so a warm iterate can take full
#: (undamped) steps; the stall schedule below still halves damping if
#: the seed turns out to be far off or the regime is oscillatory, so
#: warm solves keep the cold path's convergence guarantee. Cold solves
#: stay at ``_DAMPING`` — their iterate path is bit-pinned.
_WARM_DAMPING = 1.0
_MIN_DAMPING = 0.02
_STALL_WINDOW = 15
#: Stall window for *seeded* solves. A cold iterate approaches from a
#: distance and may legitimately plateau for a dozen sweeps before a
#: slow mode decays, so its window is generous. A warm iterate that is
#: not improving within a few sweeps has a bad seed (or sits in an
#: oscillatory regime that full steps cannot damp) and should shed its
#: undamped start quickly — the tail rows of a warm batch otherwise
#: dominate the whole group's solve time.
_WARM_STALL_WINDOW = 5
_REL_TOLERANCE = 1e-8
_ACCEPT_RESIDUAL = 1e-4
#: Resident buffer footprint of an accelerator DMA ring.
_DMA_BUFFER_BYTES = 256 * 1024


@dataclass(frozen=True)
class StageReport:
    """Resolved behaviour of one stage at the converged operating point."""

    name: str
    resource: Resource
    accelerator: str | None
    time_pp_us: float  # per-packet occupancy of the stage
    capacity_mpps: float  # max packet rate this stage alone could sustain


@dataclass(frozen=True)
class WorkloadResult:
    """Converged, measured behaviour of one co-located workload."""

    name: str
    throughput_mpps: float  # measured (with sampling noise)
    true_throughput_mpps: float  # noiseless fixed-point value
    counters: PerfCounters
    stages: tuple[StageReport, ...]
    bottleneck: str  # resource label: "cpu" / "memory" / accelerator name
    miss_ratio: float
    llc_occupancy_bytes: float

    def stage_by_name(self, name: str) -> StageReport:
        for stage in self.stages:
            if stage.name == name:
                return stage
        raise KeyError(name)


@dataclass(frozen=True)
class RunResult:
    """Outcome of one co-location run."""

    workloads: dict[str, WorkloadResult]
    iterations: int
    dram_utilisation: float

    def __getitem__(self, name: str) -> WorkloadResult:
        return self.workloads[name]

    def throughput_of(self, name: str) -> float:
        return self.workloads[name].throughput_mpps


class SmartNic:
    """A simulated SoC SmartNIC that can co-locate workloads."""

    def __init__(
        self,
        spec: NicSpecification,
        seed: SeedLike = None,
        noise_std: float = 0.008,
    ) -> None:
        if noise_std < 0:
            raise SimulationError("noise_std must be >= 0")
        self._spec = spec
        self._memory = MemorySubsystem(spec)
        self._engines = {
            name: AcceleratorEngine(accel_spec)
            for name, accel_spec in spec.accelerators.items()
        }
        self._seed = seed if isinstance(seed, int) else derive_seed(0xA11CE, spec.name)
        self._noise_std = noise_std

    @property
    def spec(self) -> NicSpecification:
        return self._spec

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def run(
        self,
        workloads: list[WorkloadDemand],
        initial: "dict[str, float] | None" = None,
    ) -> RunResult:
        """Co-locate ``workloads`` and return their converged behaviour.

        ``initial`` optionally seeds the fixed point: a mapping from
        workload name to a starting throughput guess (Mpps), used
        instead of the contention-free estimate for the names it
        covers. A guess near the converged point (e.g. last epoch's
        solution for the same resident set) cuts the damped iteration
        count; the converged values are the same fixed point either
        way, but the *iterate path* differs, so seeded runs are not
        bit-identical to cold runs — callers owning a bit-exactness
        contract must pass ``initial=None``.
        """
        if not workloads:
            raise SimulationError("run() needs at least one workload")
        names = [w.name for w in workloads]
        if len(set(names)) != len(names):
            raise SimulationError(f"duplicate workload names: {names}")
        total_cores = sum(w.cores for w in workloads)
        if total_cores > self._spec.num_cores:
            raise PlacementError(
                f"{total_cores} cores requested on {self._spec.num_cores}-core NIC"
            )
        for workload in workloads:
            for stage in workload.accelerator_stages():
                self._spec.accelerator(stage.accelerator)  # validates name

        throughput = {}
        seeded = False
        for w in workloads:
            if initial is not None and w.name in initial:
                throughput[w.name] = max(float(initial[w.name]), 1e-9)
                seeded = True
            else:
                throughput[w.name] = self._contention_free_estimate(w)
        iterations = 0
        # Damping shrinks whenever the residual stalls: steep DRAM
        # congestion feedback can induce period-2 cycles at fixed
        # damping, which a decreasing schedule always breaks. Seeded
        # solves start undamped (see _WARM_DAMPING).
        damping = _WARM_DAMPING if seeded else _DAMPING
        window = _WARM_STALL_WINDOW if seeded else _STALL_WINDOW
        best_residual = np.inf
        stall = 0
        for iterations in range(1, _MAX_ITERATIONS + 1):
            updated = self._iterate(workloads, throughput)
            residual = max(
                abs(updated[n] - throughput[n]) / max(updated[n], 1e-12)
                for n in updated
            )
            if residual < best_residual - 1e-12:
                best_residual = residual
                stall = 0
            else:
                stall += 1
                if stall >= window:
                    damping = max(damping * 0.5, _MIN_DAMPING)
                    stall = 0
            for name in throughput:
                throughput[name] = (
                    (1.0 - damping) * throughput[name] + damping * updated[name]
                )
            if residual < _REL_TOLERANCE:
                break
        else:
            if residual > _ACCEPT_RESIDUAL:
                raise ConvergenceError(
                    f"fixed point residual {residual:.3e} after "
                    f"{_MAX_ITERATIONS} iterations"
                )
        return self._finalise(workloads, throughput, iterations)

    def run_solo(self, workload: WorkloadDemand) -> WorkloadResult:
        """Run a single workload alone on the NIC."""
        return self.run([workload]).workloads[workload.name]

    def run_batch(
        self,
        scenarios: list[list[WorkloadDemand]],
        on_error: str = "raise",
        warm_starts: "list[dict[str, float] | None] | None" = None,
    ) -> list:
        """Solve many independent co-location scenarios at once.

        Bit-identical to ``[self.run(s) for s in scenarios]`` — same
        throughputs, counters, bottlenecks, iteration counts and seeded
        measurement noise — but the fixed point advances all scenarios
        together as vectorized array operations (see
        :mod:`repro.nic.batch`), with per-scenario convergence masks so
        finished scenarios freeze while stragglers iterate.

        ``on_error="raise"`` reproduces the loop's behaviour: the error
        of the first (lowest-index) failing scenario is raised.
        ``on_error="return"`` instead stores the exception instance in
        that scenario's result slot, so sweeps can skip infeasible
        scenarios the way their per-scenario ``try/except`` loops did.

        ``warm_starts``, when given, is aligned with ``scenarios``:
        each entry is ``None`` (cold start) or a name→Mpps mapping
        seeding that scenario's initial iterate, with the same
        semantics — and the same bit-exactness caveat — as
        :meth:`run`'s ``initial``. The batch/loop parity holds under
        warm starts too: ``run_batch(scenarios, warm_starts=ws)`` is
        bit-identical to ``[self.run(s, initial=w) for s, w in
        zip(scenarios, ws)]``.
        """
        from repro.nic.batch import solve_batch

        return solve_batch(
            self, scenarios, on_error=on_error, warm_starts=warm_starts
        )

    def run_fast(self, workloads: list[WorkloadDemand]) -> RunResult:
        """Single co-location run through the compiled batch path.

        Bit-identical to :meth:`run`; profitable when the scenario
        converges slowly (the vectorized iteration does constant
        Python work per sweep regardless of workload count).
        """
        return self.run_batch([workloads], on_error="raise")[0]

    # ------------------------------------------------------------------
    # Fixed-point machinery
    # ------------------------------------------------------------------
    def _contention_free_estimate(self, workload: WorkloadDemand) -> float:
        """Initial throughput guess assuming zero contention."""
        hit = self._spec.llc_hit_time_us
        base_miss = self._spec.base_miss_ratio
        tau = hit + base_miss * self._spec.dram_latency_us
        core_times = [
            self._core_stage_time(stage, tau) for stage in workload.core_stages()
        ]
        accel_caps = []
        for stage in workload.accelerator_stages():
            engine = self._engines[stage.accelerator]
            time_us = engine.spec.request_time_us(
                stage.bytes_per_request, stage.matches_per_request
            )
            client = AcceleratorClient(
                name=workload.name,
                n_queues=workload.queues_for(stage.accelerator),
                request_time_us=time_us,
            )
            accel_caps.append(engine.solo_rate(client) / stage.requests_pp)
        estimate = self._compose(workload, core_times, accel_caps)
        if workload.arrival_rate_mpps is not None:
            estimate = min(estimate, workload.arrival_rate_mpps)
        return min(estimate, self._spec.line_rate_mpps(workload.packet_size_bytes))

    def _core_stage_time(self, stage: StageDemand, tau_us: float) -> float:
        """Per-packet core time of a CPU/MEMORY stage at access time tau.

        Memory stall time is divided by the stage's memory-level
        parallelism: a stage keeping ``mlp`` references in flight exposes
        only ``1/mlp`` of each access's latency.
        """
        cpu = stage.cycles_pp / self._spec.core_freq_mhz
        mem = (stage.reads_pp + stage.writes_pp) * tau_us / stage.mlp
        return cpu + mem

    def _memory_actors(
        self, workloads: list[WorkloadDemand], throughput: dict[str, float]
    ) -> list[MemoryActor]:
        """Build the memory contention picture at current throughputs."""
        actors = []
        for workload in workloads:
            rate = throughput[workload.name]
            reads = sum(s.reads_pp for s in workload.core_stages()) * rate
            writes = sum(s.writes_pp for s in workload.core_stages()) * rate
            actors.append(
                MemoryActor(
                    name=workload.name,
                    read_rate=reads,
                    write_rate=writes,
                    wss_bytes=workload.total_wss_bytes(),
                    hot_access_fraction=workload.hot_access_fraction,
                    hot_wss_fraction=workload.hot_wss_fraction,
                )
            )
            dma_rate = 0.0
            for stage in workload.accelerator_stages():
                accel_spec = self._spec.accelerator(stage.accelerator)
                dma_rate += (
                    rate
                    * stage.requests_pp
                    * (stage.bytes_per_request / 1024.0)
                    * accel_spec.dma_refs_per_kb
                )
            if dma_rate > 0:
                actors.append(
                    MemoryActor(
                        name=f"{workload.name}::dma",
                        read_rate=dma_rate * 0.5,
                        write_rate=dma_rate * 0.5,
                        wss_bytes=_DMA_BUFFER_BYTES,
                    )
                )
        return actors

    def _accelerator_capacities(
        self, workloads: list[WorkloadDemand], throughput: dict[str, float]
    ) -> dict[tuple[str, str], float]:
        """Capacity (in packets/us) of each (workload, accelerator) stage."""
        capacities: dict[tuple[str, str], float] = {}
        for accel_name, engine in self._engines.items():
            users = [
                (w, s)
                for w in workloads
                for s in w.accelerator_stages()
                if s.accelerator == accel_name
            ]
            if not users:
                continue
            clients = {}
            for workload, stage in users:
                time_us = engine.spec.request_time_us(
                    stage.bytes_per_request, stage.matches_per_request
                )
                clients[workload.name] = AcceleratorClient(
                    name=workload.name,
                    n_queues=workload.queues_for(accel_name),
                    request_time_us=time_us,
                    offered_rate=throughput[workload.name] * stage.requests_pp,
                )
            for workload, stage in users:
                competitors = [
                    c for n, c in clients.items() if n != workload.name
                ]
                cap_requests = engine.capacity_for(clients[workload.name], competitors)
                capacities[(workload.name, accel_name)] = (
                    cap_requests / stage.requests_pp
                )
        return capacities

    def _compose(
        self,
        workload: WorkloadDemand,
        core_times: list[float],
        accel_caps: list[float],
    ) -> float:
        """End-to-end throughput from stage times/capacities (paper §4.2)."""
        cores = float(workload.cores)
        if workload.pattern is ExecutionPattern.PIPELINE:
            n_core_stages = max(1, len(core_times))
            caps = [
                (cores / n_core_stages) / t if t > 0 else np.inf for t in core_times
            ]
            caps.extend(accel_caps)
            return float(min(caps)) if caps else 0.0
        total_core = sum(core_times)
        accel_wait = sum(cores / cap for cap in accel_caps if cap > 0)
        denom = total_core + accel_wait
        if denom <= 0:
            return np.inf
        return cores / denom

    def _iterate(
        self, workloads: list[WorkloadDemand], throughput: dict[str, float]
    ) -> dict[str, float]:
        """One sweep of the fixed-point map."""
        shares = self._memory.solve(self._memory_actors(workloads, throughput))
        accel_caps = self._accelerator_capacities(workloads, throughput)

        updated = {}
        for workload in workloads:
            tau = shares[workload.name].avg_access_time_us
            core_times = [
                self._core_stage_time(stage, tau) for stage in workload.core_stages()
            ]
            caps = [
                accel_caps[(workload.name, stage.accelerator)]
                for stage in workload.accelerator_stages()
            ]
            rate = self._compose(workload, core_times, caps)
            if workload.arrival_rate_mpps is not None:
                rate = min(rate, workload.arrival_rate_mpps)
            rate = min(rate, self._spec.line_rate_mpps(workload.packet_size_bytes))
            updated[workload.name] = max(rate, 1e-9)
        return updated

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def _finalise(
        self,
        workloads: list[WorkloadDemand],
        throughput: dict[str, float],
        iterations: int,
    ) -> RunResult:
        actors = self._memory_actors(workloads, throughput)
        shares = self._memory.solve(actors)
        accel_caps = self._accelerator_capacities(workloads, throughput)
        dram_util = self._memory.dram_utilisation(actors)

        results = {}
        for workload in workloads:
            rate = throughput[workload.name]
            share = shares[workload.name]
            stage_reports = []
            for stage in workload.stages:
                if stage.resource is Resource.ACCELERATOR:
                    cap = accel_caps[(workload.name, stage.accelerator)]
                    time_pp = 1.0 / cap if cap > 0 else np.inf
                    stage_reports.append(
                        StageReport(
                            name=stage.name,
                            resource=stage.resource,
                            accelerator=stage.accelerator,
                            time_pp_us=time_pp,
                            capacity_mpps=cap,
                        )
                    )
                else:
                    t = self._core_stage_time(stage, share.avg_access_time_us)
                    n_core_stages = max(1, len(workload.core_stages()))
                    if workload.pattern is ExecutionPattern.PIPELINE:
                        cap = (workload.cores / n_core_stages) / t if t > 0 else np.inf
                    else:
                        cap = workload.cores / t if t > 0 else np.inf
                    stage_reports.append(
                        StageReport(
                            name=stage.name,
                            resource=stage.resource,
                            accelerator=None,
                            time_pp_us=t,
                            capacity_mpps=cap,
                        )
                    )
            bottleneck = self._bottleneck(workload, stage_reports)
            counters = self._counters(workload, rate, share)
            noise = self._noise_for(workload, workloads)
            results[workload.name] = WorkloadResult(
                name=workload.name,
                throughput_mpps=rate * noise,
                true_throughput_mpps=rate,
                counters=counters,
                stages=tuple(stage_reports),
                bottleneck=bottleneck,
                miss_ratio=share.miss_ratio,
                llc_occupancy_bytes=share.occupancy_bytes,
            )
        return RunResult(
            workloads=results, iterations=iterations, dram_utilisation=dram_util
        )

    def _bottleneck(
        self, workload: WorkloadDemand, stages: list[StageReport]
    ) -> str:
        """Ground-truth bottleneck resource (used by the diagnosis usecase).

        For a pipeline it is the stage with the smallest capacity; for
        run-to-completion the stage occupying the largest share of the
        per-packet time budget.
        """
        if workload.pattern is ExecutionPattern.PIPELINE:
            worst = min(stages, key=lambda s: s.capacity_mpps)
        else:
            cores = float(workload.cores)

            def rtc_time(stage: StageReport) -> float:
                if stage.resource is Resource.ACCELERATOR:
                    return cores * stage.time_pp_us
                return stage.time_pp_us

            worst = max(stages, key=rtc_time)
        if worst.resource is Resource.ACCELERATOR:
            return worst.accelerator or "accelerator"
        return worst.resource.value

    def _counters(
        self, workload: WorkloadDemand, rate: float, share
    ) -> PerfCounters:
        """Synthesise Table 11 counters at the converged operating point."""
        reads_pp = sum(s.reads_pp for s in workload.core_stages())
        writes_pp = sum(s.writes_pp for s in workload.core_stages())
        instr_pp = sum(s.instructions_pp for s in workload.stages)
        cycles_pp = sum(s.cycles_pp for s in workload.stages)
        # Stall cycles from memory references at the converged access
        # time, discounted by each stage's memory-level parallelism.
        stall_cycles = sum(
            (s.reads_pp + s.writes_pp)
            * share.avg_access_time_us
            / s.mlp
            * self._spec.core_freq_mhz
            for s in workload.core_stages()
        )
        total_cycles = max(cycles_pp + stall_cycles, 1e-9)
        dma_reads = share_dma = 0.0
        for stage in workload.accelerator_stages():
            accel_spec = self._spec.accelerator(stage.accelerator)
            share_dma += (
                rate
                * stage.requests_pp
                * (stage.bytes_per_request / 1024.0)
                * accel_spec.dma_refs_per_kb
            )
        dma_reads = share_dma * 0.5
        return PerfCounters(
            ipc=instr_pp / total_cycles if instr_pp > 0 else 0.0,
            irt=instr_pp * rate,
            l2crd=reads_pp * rate + dma_reads,
            l2cwr=writes_pp * rate + (share_dma - dma_reads),
            memrd=share.dram_read_rate + dma_reads * share.miss_ratio,
            memwr=share.dram_write_rate,
            wss=workload.total_wss_bytes(),
        )

    def _noise_for(
        self, workload: WorkloadDemand, workloads: list[WorkloadDemand]
    ) -> float:
        """Deterministic multiplicative measurement noise for this run."""
        if self._noise_std == 0.0:
            return 1.0
        seed = derive_seed(
            self._seed,
            repr(workload),
            tuple(sorted(repr(w) for w in workloads)),
        )
        rng = make_rng(seed)
        return float(1.0 + rng.normal(0.0, self._noise_std))
