"""Fluid round-robin model of a shared hardware accelerator engine.

NFs interact with on-NIC accelerators through per-NF request queues that
the engine driver serves round-robin (the paper confirms this for the
BlueField-2 RXP regex engine, §4.1.1). This module solves the resulting
sharing behaviour with a water-filling algorithm:

- an **unsaturated** client (arrival rate below its round-robin share) is
  served at exactly its arrival rate;
- **saturated** clients split the remaining engine time in proportion to
  ``n_queues * request_time`` — i.e. each saturated queue completes one
  request per RR cycle, which is exactly the equilibrium the paper's
  Eq. (1) describes.

Each served request additionally pays a queue-switch overhead, a
second-order cost outside the paper's model that keeps the white-box
prediction realistically imperfect (~1-3% error, matching §4.1.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import ConfigurationError, SimulationError
from repro.nic.spec import AcceleratorSpec

_WATERFILL_ITERATIONS = 64


@dataclass(frozen=True)
class AcceleratorClient:
    """One workload's demand on an accelerator engine.

    ``offered_rate`` is the client's request arrival rate in requests/us;
    ``None`` marks a closed-loop client that always has requests queued.
    """

    name: str
    n_queues: int
    request_time_us: float
    offered_rate: Optional[float] = None

    def __post_init__(self) -> None:
        if self.n_queues < 1:
            raise ConfigurationError(f"client {self.name!r}: n_queues must be >= 1")
        if self.request_time_us <= 0:
            raise ConfigurationError(
                f"client {self.name!r}: request_time_us must be positive"
            )
        if self.offered_rate is not None and self.offered_rate < 0:
            raise ConfigurationError(
                f"client {self.name!r}: offered_rate must be >= 0 or None"
            )

    @property
    def is_closed_loop(self) -> bool:
        return self.offered_rate is None


@dataclass(frozen=True)
class AcceleratorAllocation:
    """Resolved service rates on one engine (requests/us per client)."""

    rates: dict[str, float]
    saturated: frozenset[str]
    busy_fraction: float

    def rate_of(self, name: str) -> float:
        return self.rates[name]


class AcceleratorEngine:
    """Round-robin fluid scheduler for one accelerator engine."""

    def __init__(self, spec: AcceleratorSpec) -> None:
        self._spec = spec

    @property
    def spec(self) -> AcceleratorSpec:
        return self._spec

    # ------------------------------------------------------------------
    def effective_request_time(self, client: AcceleratorClient) -> float:
        """Service time including the per-turn queue switch overhead."""
        return client.request_time_us + self._spec.queue_switch_us

    # ------------------------------------------------------------------
    def allocate(self, clients: list[AcceleratorClient]) -> AcceleratorAllocation:
        """Solve service rates for all ``clients`` sharing this engine.

        Water-filling: start with every finite-rate client unsaturated;
        repeatedly move clients whose arrival rate exceeds their
        round-robin share into the saturated set until stable.
        """
        if not clients:
            return AcceleratorAllocation(rates={}, saturated=frozenset(), busy_fraction=0.0)
        names = [c.name for c in clients]
        if len(set(names)) != len(names):
            raise ConfigurationError("duplicate accelerator client names")

        times = {c.name: self.effective_request_time(c) for c in clients}
        saturated = {c.name for c in clients if c.is_closed_loop}

        for _ in range(_WATERFILL_ITERATIONS):
            unsat = [c for c in clients if c.name not in saturated]
            busy_unsat = sum(c.offered_rate * times[c.name] for c in unsat)
            sat = [c for c in clients if c.name in saturated]

            if not sat:
                if busy_unsat <= 1.0:
                    rates = {c.name: float(c.offered_rate) for c in unsat}
                    return AcceleratorAllocation(
                        rates=rates,
                        saturated=frozenset(),
                        busy_fraction=busy_unsat,
                    )
                # Overload with no saturated client yet: saturate the
                # client with the largest backlog pressure and re-solve.
                heaviest = max(unsat, key=lambda c: c.offered_rate * times[c.name])
                saturated.add(heaviest.name)
                continue

            weight = sum(times[c.name] * c.n_queues for c in sat)
            spare = max(0.0, 1.0 - busy_unsat)
            per_queue_rate = spare / weight if weight > 0 else 0.0

            moved = False
            for c in unsat:
                if c.offered_rate > c.n_queues * per_queue_rate + 1e-12:
                    saturated.add(c.name)
                    moved = True
            if moved:
                continue
            # Check for clients wrongly marked saturated (open-loop whose
            # arrivals are below their share) and release them.
            released = False
            for c in sat:
                if (
                    not c.is_closed_loop
                    and c.offered_rate < c.n_queues * per_queue_rate - 1e-12
                ):
                    saturated.discard(c.name)
                    released = True
            if released:
                continue

            rates = {}
            for c in clients:
                if c.name in saturated:
                    rates[c.name] = c.n_queues * per_queue_rate
                else:
                    rates[c.name] = float(c.offered_rate)
            busy = busy_unsat + sum(
                rates[c.name] * times[c.name] for c in sat
            )
            return AcceleratorAllocation(
                rates=rates,
                saturated=frozenset(saturated),
                busy_fraction=min(1.0, busy),
            )
        raise SimulationError("accelerator water-filling failed to converge")

    # ------------------------------------------------------------------
    def capacity_for(
        self, target: AcceleratorClient, competitors: list[AcceleratorClient]
    ) -> float:
        """Rate ``target`` would get if it saturated its queues.

        Competitors keep their stated offered rates (open-loop) or remain
        closed-loop. This is the accelerator-stage *capacity* used by the
        NIC runtime when composing stage throughputs.
        """
        saturated_target = AcceleratorClient(
            name=target.name,
            n_queues=target.n_queues,
            request_time_us=target.request_time_us,
            offered_rate=None,
        )
        allocation = self.allocate([saturated_target] + list(competitors))
        return allocation.rate_of(target.name)

    # ------------------------------------------------------------------
    def solo_rate(self, client: AcceleratorClient) -> float:
        """Service rate when ``client`` runs alone on the engine."""
        return self.allocate(
            [
                AcceleratorClient(
                    name=client.name,
                    n_queues=client.n_queues,
                    request_time_us=client.request_time_us,
                    offered_rate=None,
                )
            ]
        ).rate_of(client.name)
