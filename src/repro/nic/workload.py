"""Workload demand descriptions consumed by the NIC simulator.

The NF framework (:mod:`repro.nf`) compiles an NF bound to a traffic
profile down to a :class:`WorkloadDemand`: a list of per-packet stage
demands plus an execution pattern. This keeps the simulator independent
of NF semantics — it only sees resource demands.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from repro.errors import ConfigurationError


class Resource(enum.Enum):
    """Resource classes an NF stage can occupy."""

    CPU = "cpu"
    MEMORY = "memory"
    ACCELERATOR = "accelerator"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class ExecutionPattern(enum.Enum):
    """How an NF schedules its stages (paper §4.2).

    PIPELINE: stages run concurrently on different cores; end-to-end
    throughput equals the slowest stage's capacity.
    RUN_TO_COMPLETION: one thread walks a packet through every stage;
    per-packet times add up.
    """

    PIPELINE = "pipeline"
    RUN_TO_COMPLETION = "run_to_completion"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class StageDemand:
    """Per-packet demand of one processing stage on one resource.

    Only the fields relevant for ``resource`` are meaningful:

    - CPU: ``cycles_pp`` and ``instructions_pp``;
    - MEMORY: ``reads_pp``/``writes_pp`` cache references and the stage's
      resident ``wss_bytes`` (plus the cycles the core spends issuing
      them, via ``cycles_pp``); ``mlp`` is the memory-level parallelism —
      how many references the stage keeps in flight, which divides the
      exposed stall time (streaming benches sustain high MLP, pointer
      chasing NFs low);
    - ACCELERATOR: ``accelerator`` name, ``requests_pp``,
      ``bytes_per_request`` and ``matches_per_request``.
    """

    name: str
    resource: Resource
    cycles_pp: float = 0.0
    instructions_pp: float = 0.0
    reads_pp: float = 0.0
    writes_pp: float = 0.0
    wss_bytes: float = 0.0
    mlp: float = 1.0
    accelerator: Optional[str] = None
    requests_pp: float = 0.0
    bytes_per_request: float = 0.0
    matches_per_request: float = 0.0

    def __post_init__(self) -> None:
        numeric = (
            self.cycles_pp,
            self.instructions_pp,
            self.reads_pp,
            self.writes_pp,
            self.wss_bytes,
            self.requests_pp,
            self.bytes_per_request,
            self.matches_per_request,
        )
        if any(v < 0 for v in numeric):
            raise ConfigurationError(f"stage {self.name!r} has negative demand")
        if self.mlp < 1.0:
            raise ConfigurationError(f"stage {self.name!r}: mlp must be >= 1")
        if self.resource is Resource.ACCELERATOR:
            if not self.accelerator:
                raise ConfigurationError(
                    f"accelerator stage {self.name!r} must name an accelerator"
                )
            if self.requests_pp <= 0:
                raise ConfigurationError(
                    f"accelerator stage {self.name!r} must issue requests"
                )
        elif self.accelerator is not None:
            raise ConfigurationError(
                f"stage {self.name!r} names an accelerator but is {self.resource}"
            )


@dataclass(frozen=True)
class WorkloadDemand:
    """A complete workload as seen by the simulator.

    ``arrival_rate_mpps`` of ``None`` means the workload is closed-loop:
    packets always available, so the simulator finds its maximum
    sustainable throughput (the quantity the paper predicts). A finite
    rate models open-loop contenders such as mem-bench / regex-bench.
    """

    name: str
    cores: int
    pattern: ExecutionPattern
    stages: tuple[StageDemand, ...]
    arrival_rate_mpps: Optional[float] = None
    queues_per_accelerator: dict[str, int] = field(default_factory=dict)
    packet_size_bytes: float = 1500.0
    #: Fraction of cache accesses hitting a small hot subset of the
    #: working set (Zipf-like reuse). Streaming benches set this to 0.
    hot_access_fraction: float = 0.6
    #: Size of that hot subset as a fraction of the working set.
    hot_wss_fraction: float = 0.15

    def __post_init__(self) -> None:
        if self.cores < 1:
            raise ConfigurationError(f"workload {self.name!r} needs >= 1 core")
        if not self.stages:
            raise ConfigurationError(f"workload {self.name!r} has no stages")
        if self.arrival_rate_mpps is not None and self.arrival_rate_mpps <= 0:
            raise ConfigurationError(
                f"workload {self.name!r}: arrival rate must be positive or None"
            )
        if self.packet_size_bytes <= 0:
            raise ConfigurationError("packet_size_bytes must be positive")
        if not 0.0 <= self.hot_access_fraction < 1.0:
            raise ConfigurationError("hot_access_fraction must be in [0, 1)")
        if not 0.0 < self.hot_wss_fraction < 1.0:
            raise ConfigurationError("hot_wss_fraction must be in (0, 1)")
        for stage in self.accelerator_stages():
            queues = self.queues_per_accelerator.get(stage.accelerator, 1)
            if queues < 1:
                raise ConfigurationError(
                    f"workload {self.name!r}: queue count must be >= 1"
                )

    # ------------------------------------------------------------------
    def core_stages(self) -> list[StageDemand]:
        """Stages that execute on CPU cores (CPU and MEMORY stages)."""
        return [s for s in self.stages if s.resource is not Resource.ACCELERATOR]

    def accelerator_stages(self) -> list[StageDemand]:
        """Stages dispatched to hardware accelerators."""
        return [s for s in self.stages if s.resource is Resource.ACCELERATOR]

    def queues_for(self, accelerator: str) -> int:
        """Number of request queues this workload owns on ``accelerator``."""
        return self.queues_per_accelerator.get(accelerator, 1)

    def total_wss_bytes(self) -> float:
        """Total resident working set across stages."""
        return sum(s.wss_bytes for s in self.stages)

    def uses_accelerator(self, accelerator: str) -> bool:
        """True when any stage dispatches to ``accelerator``."""
        return any(s.accelerator == accelerator for s in self.accelerator_stages())

    @property
    def is_closed_loop(self) -> bool:
        """True when the workload saturates itself (max-throughput mode)."""
        return self.arrival_rate_mpps is None
