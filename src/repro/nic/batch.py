"""Vectorized batch solver for the SmartNIC co-location fixed point.

:meth:`SmartNic.run_batch` solves many *independent* co-location
scenarios at once. Scenarios are compiled into array-shaped state —
static per-workload aggregates are extracted once per scenario, and the
dynamic fixed-point quantities (throughputs, memory pressure,
accelerator offered rates) become ``(n_scenarios,)`` vectors — so each
fixed-point iteration advances *every* unconverged scenario with a fixed
number of numpy operations instead of a Python-loop sweep per scenario.

Bit-exactness contract
----------------------

The batch engine is required to reproduce the scalar solver
(:meth:`SmartNic.run`) **bit for bit** — throughputs, counters,
bottleneck labels, iteration counts and the seeded measurement noise.
That drives three design rules:

1. **Vectorize across scenarios, loop over structure.** All reductions
   in the scalar solver run over small per-scenario collections (stages,
   memory actors, accelerator clients) whose float-addition order is
   observable. Those stay as Python loops over vectorized columns, so
   each scenario sees exactly the scalar sequence of IEEE operations;
   only the scenario axis (the large one) is array-shaped.
2. **Group by structure.** Scenarios are bucketed by a structural
   signature (workload patterns, stage layouts, accelerator usage, DMA
   actors) so that every scenario in a group shares the same set of
   arrays and the same control-flow skeleton. The one reduction the
   scalar solver performs with ``np.sum`` (occupancy pressure) is
   evaluated per equal-hungry-mask row group on contiguous column
   slices, which reproduces numpy's pairwise summation exactly.
3. **Scalar libm where numpy's SIMD differs.** ``x ** 0.7`` in the
   occupancy solver goes through ``math.pow`` per element: numpy's
   vectorized ``pow`` is 1 ulp off libm's scalar ``pow`` for some
   inputs, which the equivalence tests would catch.

Per-scenario damping schedules and convergence masks let finished
scenarios freeze (their state rows stop updating) while stragglers keep
iterating; once at least half of a group's rows have converged the
arrays are compacted to the survivors, so a mixed-convergence batch
costs what its stragglers need, not ``max_iterations * n_scenarios``.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.errors import ConvergenceError, PlacementError, SimulationError
from repro.nic import nic as _nic
from repro.nic.accelerator import _WATERFILL_ITERATIONS
from repro.nic.counters import PerfCounters
from repro.nic.memory import (
    _MAX_UTILISATION,
    _OCCUPANCY_ITERATIONS,
    _PRESSURE_RATE_EXPONENT,
    MemoryActor,
)
from repro.nic.spec import CACHE_LINE_BYTES
from repro.nic.workload import ExecutionPattern, Resource, WorkloadDemand
from repro.obs import active_recorder
from repro.rng import derive_seed, make_rng

#: The DMA memory actor's reuse locality: SmartNic._memory_actors builds
#: it without hot-fraction arguments, so it inherits MemoryActor's
#: dataclass defaults — read them from the dataclass so a retune there
#: cannot silently diverge the two solvers.
_DMA_HOT_ACCESS_FRACTION = MemoryActor.__dataclass_fields__[
    "hot_access_fraction"
].default
_DMA_HOT_WSS_FRACTION = MemoryActor.__dataclass_fields__[
    "hot_wss_fraction"
].default


def _pow_scalar(values: np.ndarray, exponent: float) -> np.ndarray:
    """Elementwise ``values ** exponent`` through scalar libm ``pow``.

    Bit-identical to Python's ``float ** float`` (the scalar solver's
    path); numpy's SIMD pow kernel rounds differently on ~5% of inputs.
    """
    flat = values.ravel()
    out = np.array(
        [math.pow(v, exponent) for v in flat.tolist()], dtype=np.float64
    )
    return out.reshape(values.shape)


# ----------------------------------------------------------------------
# Persistent compilation cache
# ----------------------------------------------------------------------
#: Per-table entry cap. On overflow the table is cleared wholesale
#: rather than LRU-evicted: eviction bookkeeping would cost more than
#: the occasional recompile, and a fleet epoch's working set of
#: structures is orders of magnitude below this.
_COMPILE_CACHE_MAX_ENTRIES = 4096


class _CompileCache:
    """Structural compilation state memoized across ``run_batch`` calls.

    Everything cached here is *static* — a pure function of the demand
    values and the NIC spec (plans, signature embeddings, column
    layouts, family-merge structures) — so reuse is bit-exact by
    construction: a cache hit returns the identical objects a cold
    compile would have produced. Nothing about solver iterates or
    seeded noise lives here.

    The plan table is keyed by ``(id(spec), _demand_key(demand))`` and
    each entry stores a strong reference to its spec, identity-checked
    on lookup: the reference keeps the spec alive so ``id`` reuse after
    garbage collection can never alias two different specs, and the
    structural key tuple covers every demand field, so two demands with
    equal keys are value-identical — the cached plan *and* the
    repr-derived measurement-noise seed both match. (The key is a field
    tuple rather than ``repr(demand)`` because hashing the tuple is
    ~6x cheaper than building the repr string, and the lookup is the
    whole cost of a cache hit.)
    """

    __slots__ = ("enabled", "hits", "misses", "plans", "embeddings",
                 "columns", "families")

    def __init__(self) -> None:
        self.enabled = True
        self.hits = 0
        self.misses = 0
        self.plans: dict = {}
        self.embeddings: dict = {}
        self.columns: dict = {}
        self.families: dict = {}

    def clear(self) -> None:
        self.plans.clear()
        self.embeddings.clear()
        self.columns.clear()
        self.families.clear()


_COMPILE_CACHE = _CompileCache()


def compile_cache_enabled() -> bool:
    """Whether the persistent compilation cache is active (default on)."""
    return _COMPILE_CACHE.enabled


def set_compile_cache_enabled(enabled: bool) -> None:
    """Toggle the compilation cache (the cold arm of the perf gate)."""
    _COMPILE_CACHE.enabled = bool(enabled)


def clear_compile_cache() -> None:
    """Drop all memoized compilation state (counters are kept)."""
    _COMPILE_CACHE.clear()


# ----------------------------------------------------------------------
# Compilation: scenario -> static plan
# ----------------------------------------------------------------------
class _WorkloadPlan:
    """Static (throughput-independent) data of one workload demand."""

    __slots__ = (
        "demand",
        "name",
        "cores_f",
        "pattern",
        "n_core",
        "core_cycles",
        "core_rw",
        "core_mlp",
        "reads_sum",
        "writes_sum",
        "instr_sum",
        "cycles_sum",
        "wss",
        "hot_af",
        "hot_wf",
        "arrival",
        "line_rate",
        "accel_names",
        "accel_req",
        "accel_teff",
        "accel_nq",
        "accel_bpk",
        "accel_refs",
        "dma_flag",
        "stage_kinds",
        "stage_labels",
        "signature",
    )

    def __init__(self, nic: "_nic.SmartNic", w: WorkloadDemand) -> None:
        spec = nic.spec
        core = w.core_stages()
        accel = w.accelerator_stages()
        self.demand = w
        self.name = w.name
        self.cores_f = float(w.cores)
        self.pattern = w.pattern
        self.n_core = len(core)
        self.core_cycles = [s.cycles_pp for s in core]
        self.core_rw = [s.reads_pp + s.writes_pp for s in core]
        self.core_mlp = [s.mlp for s in core]
        self.reads_sum = sum(s.reads_pp for s in core)
        self.writes_sum = sum(s.writes_pp for s in core)
        self.instr_sum = sum(s.instructions_pp for s in w.stages)
        self.cycles_sum = sum(s.cycles_pp for s in w.stages)
        self.wss = w.total_wss_bytes()
        self.hot_af = w.hot_access_fraction
        self.hot_wf = w.hot_wss_fraction
        self.arrival = (
            w.arrival_rate_mpps if w.arrival_rate_mpps is not None else np.inf
        )
        self.line_rate = spec.line_rate_mpps(w.packet_size_bytes)
        self.accel_names = tuple(s.accelerator for s in accel)
        self.accel_req = [s.requests_pp for s in accel]
        self.accel_teff = [
            spec.accelerator(s.accelerator).request_time_us(
                s.bytes_per_request, s.matches_per_request
            )
            + spec.accelerator(s.accelerator).queue_switch_us
            for s in accel
        ]
        self.accel_nq = [float(w.queues_for(s.accelerator)) for s in accel]
        self.accel_bpk = [s.bytes_per_request / 1024.0 for s in accel]
        self.accel_refs = [
            spec.accelerator(s.accelerator).dma_refs_per_kb for s in accel
        ]
        # The DMA memory actor exists exactly when some accelerator
        # stage produces a positive DMA reference rate (rates are > 0).
        self.dma_flag = any(
            b > 0.0 and r > 0.0 for b, r in zip(self.accel_bpk, self.accel_refs)
        )
        # Stage layout in declaration order: ("c", core_idx) for
        # CPU/MEMORY stages, ("a", accel_idx) for accelerator stages.
        kinds: list[tuple[str, int]] = []
        labels: list[str] = []
        c_idx = a_idx = 0
        for stage in w.stages:
            if stage.resource is Resource.ACCELERATOR:
                kinds.append(("a", a_idx))
                labels.append(stage.accelerator or "accelerator")
                a_idx += 1
            else:
                kinds.append(("c", c_idx))
                labels.append(stage.resource.value)
                c_idx += 1
        self.stage_kinds = tuple(kinds)
        self.stage_labels = labels
        self.signature = (
            self.pattern.value,
            tuple(
                (kind, self.accel_names[idx] if kind == "a" else None)
                for kind, idx in kinds
            ),
            self.dma_flag,
        )


def _demand_key(w: WorkloadDemand) -> tuple:
    """Structural identity of a demand: every field, hashable form.

    ``WorkloadDemand`` itself is unhashable (``queues_per_accelerator``
    is a dict), so the dict is folded to sorted items; everything else
    is already hashable (``stages`` is a tuple of frozen dataclasses).
    Equal keys <=> field-equal demands.
    """
    return (
        w.name,
        w.cores,
        w.pattern,
        w.stages,
        w.arrival_rate_mpps,
        tuple(sorted(w.queues_per_accelerator.items())),
        w.packet_size_bytes,
        w.hot_access_fraction,
        w.hot_wss_fraction,
    )


def _plan_for(nic: "_nic.SmartNic", w: WorkloadDemand) -> _WorkloadPlan:
    """Compile ``w`` against ``nic``, memoized in the compile cache."""
    cache = _COMPILE_CACHE
    if not cache.enabled:
        return _WorkloadPlan(nic, w)
    spec = nic.spec
    key = (id(spec), _demand_key(w))
    entry = cache.plans.get(key)
    if entry is not None and entry[0] is spec:
        cache.hits += 1
        return entry[1]
    cache.misses += 1
    if len(cache.plans) >= _COMPILE_CACHE_MAX_ENTRIES:
        cache.plans.clear()
    plan = _WorkloadPlan(nic, w)
    cache.plans[key] = (spec, plan)
    return plan


class _ScenarioPlan:
    """One compiled scenario: per-workload plans plus a structure key."""

    __slots__ = ("workloads", "signature", "names")

    def __init__(self, nic: "_nic.SmartNic", demands: list[WorkloadDemand]) -> None:
        self.workloads = [_plan_for(nic, w) for w in demands]
        self.names = [w.name for w in demands]
        self.signature = tuple(p.signature for p in self.workloads)


def _shortest_supersequence(a: tuple, b: tuple) -> tuple:
    """Shortest common supersequence of two workload-signature tuples.

    Classic LCS-based construction; both inputs embed into the result
    as subsequences, so scenarios of either signature can share one
    padded super-group built on it.
    """
    n, m = len(a), len(b)
    lcs = [[0] * (m + 1) for _ in range(n + 1)]
    for i in range(n - 1, -1, -1):
        for j in range(m - 1, -1, -1):
            if a[i] == b[j]:
                lcs[i][j] = lcs[i + 1][j + 1] + 1
            else:
                lcs[i][j] = max(lcs[i + 1][j], lcs[i][j + 1])
    merged: list = []
    i = j = 0
    while i < n and j < m:
        if a[i] == b[j]:
            merged.append(a[i])
            i += 1
            j += 1
        elif lcs[i + 1][j] >= lcs[i][j + 1]:
            merged.append(a[i])
            i += 1
        else:
            merged.append(b[j])
            j += 1
    merged.extend(a[i:])
    merged.extend(b[j:])
    return tuple(merged)


class _ColumnRef:
    """Column structure of a padded super-group, built from a signature.

    A family's super-signature may be synthesized (a supersequence of
    its members' signatures), so no single real scenario spans every
    column; the per-workload signature carries everything the group
    needs to lay a column out — pattern, stage kinds, accelerator names
    and the DMA flag — while all numeric values stay per-row.
    """

    __slots__ = ("pattern", "n_core", "accel_names", "dma_flag", "stage_kinds")

    def __init__(self, wsig: tuple) -> None:
        pattern_value, stages, dma_flag = wsig
        self.pattern = ExecutionPattern(pattern_value)
        kinds: list[tuple[str, int]] = []
        c_idx = a_idx = 0
        for kind, _ in stages:
            if kind == "a":
                kinds.append(("a", a_idx))
                a_idx += 1
            else:
                kinds.append(("c", c_idx))
                c_idx += 1
        self.stage_kinds = tuple(kinds)
        self.n_core = c_idx
        self.accel_names = tuple(
            accel for kind, accel in stages if kind == "a"
        )
        self.dma_flag = dma_flag


def _embed_signature(short: tuple, long: tuple) -> Optional[list[int]]:
    """Leftmost subsequence embedding of ``short`` into ``long``.

    Returns the column index each workload of a ``short``-signature
    scenario occupies in a ``long``-signature super-group, or ``None``
    when no embedding exists. Any valid embedding preserves the scalar
    reduction order (real columns keep their relative order; dummy
    columns contribute exact ``+0.0`` terms), so the deterministic
    leftmost match is as good as any. Memoized in the compile cache
    (the result is pure in the two signatures); callers treat the
    returned list as read-only.
    """
    cache = _COMPILE_CACHE
    if cache.enabled:
        key = (short, long)
        try:
            return cache.embeddings[key]
        except KeyError:
            pass
    cols: Optional[list[int]] = []
    pos = 0
    for wsig in short:
        while pos < len(long) and long[pos] != wsig:
            pos += 1
        if pos == len(long):
            cols = None
            break
        cols.append(pos)
        pos += 1
    if cache.enabled:
        if len(cache.embeddings) >= _COMPILE_CACHE_MAX_ENTRIES:
            cache.embeddings.clear()
        cache.embeddings[key] = cols
    return cols


def _columns_for(super_sig: tuple) -> list[_ColumnRef]:
    """Column layout of a padded family, memoized in the compile cache."""
    cache = _COMPILE_CACHE
    if not cache.enabled:
        return [_ColumnRef(wsig) for wsig in super_sig]
    cols = cache.columns.get(super_sig)
    if cols is None:
        if len(cache.columns) >= _COMPILE_CACHE_MAX_ENTRIES:
            cache.columns.clear()
        cols = [_ColumnRef(wsig) for wsig in super_sig]
        cache.columns[super_sig] = cols
    return cols


def _validate(nic: "_nic.SmartNic", workloads: list[WorkloadDemand]):
    """Replicate :meth:`SmartNic.run` validation; return the error or None."""
    spec = nic.spec
    if not workloads:
        return SimulationError("run() needs at least one workload")
    names = [w.name for w in workloads]
    if len(set(names)) != len(names):
        return SimulationError(f"duplicate workload names: {names}")
    total_cores = sum(w.cores for w in workloads)
    if total_cores > spec.num_cores:
        return PlacementError(
            f"{total_cores} cores requested on {spec.num_cores}-core NIC"
        )
    for workload in workloads:
        for stage in workload.accelerator_stages():
            try:
                spec.accelerator(stage.accelerator)
            except Exception as exc:  # ConfigurationError
                return exc
    return None


class _View:
    """The group's static arrays restricted to one set of rows.

    Slices are taken once per compaction event and reused across
    iterations, so the per-iteration work is purely elementwise.
    """

    __slots__ = ("wl", "act_wss", "act_sqrt", "act_haf", "act_hot", "act_cold", "engines", "n", "lane")

    def __init__(self, group: "_Group", idx: Optional[np.ndarray]) -> None:
        def take(arr):
            return arr if idx is None else arr[idx]

        self.n = group.S if idx is None else len(idx)
        self.lane = take(group.lane)
        self.act_wss = take(group.act_wss)
        self.act_sqrt = take(group.act_sqrt)
        self.act_haf = take(group.act_haf)
        self.act_hot = take(group.act_hot_bytes)
        self.act_cold = take(group.act_cold_bytes)
        self.wl = []
        for data in group.wl:
            self.wl.append(
                {
                    "pattern": data["pattern"],
                    "n_core": data["n_core"],
                    "accel_names": data["accel_names"],
                    "dma_flag": data["dma_flag"],
                    "stage_kinds": data["stage_kinds"],
                    "cores_f": take(data["cores_f"]),
                    "reads_sum": take(data["reads_sum"]),
                    "writes_sum": take(data["writes_sum"]),
                    "instr_sum": take(data["instr_sum"]),
                    "cycles_sum": take(data["cycles_sum"]),
                    "wss": take(data["wss"]),
                    "arrival": take(data["arrival"]),
                    "line_rate": take(data["line_rate"]),
                    "core_cycles": [take(a) for a in data["core_cycles"]],
                    "core_rw": [take(a) for a in data["core_rw"]],
                    "core_mlp": [take(a) for a in data["core_mlp"]],
                    "accel_req": [take(a) for a in data["accel_req"]],
                    "accel_teff": [take(a) for a in data["accel_teff"]],
                    "accel_nq": [take(a) for a in data["accel_nq"]],
                    "accel_bpk": [take(a) for a in data["accel_bpk"]],
                    "accel_refs": [take(a) for a in data["accel_refs"]],
                }
            )
        self.engines = [
            {
                "name": engine["name"],
                "clients": engine["clients"],
                "teff": [take(a) for a in engine["teff"]],
                "nq": [take(a) for a in engine["nq"]],
                "req": [take(a) for a in engine["req"]],
            }
            for engine in group.engines
        ]


# ----------------------------------------------------------------------
# Group solver
# ----------------------------------------------------------------------
class _Group:
    """All scenarios sharing one structural signature, solved together.

    A *padded super-group* additionally merges scenarios whose signature
    is a subsequence of the group's column structure: each scenario's
    workloads occupy the columns of its ``embeddings`` entry, and the
    remaining columns are masked-out dummy lanes whose rates, working
    sets and accelerator demands are all zero. Zero lanes contribute
    exact ``+0.0`` terms to every left-fold reduction, never turn
    "hungry" in the occupancy water-filling (so the pairwise ``np.sum``
    runs over exactly the scalar solver's actor set) and never saturate
    an accelerator water-fill, which keeps the padded solve bit-identical
    to the scalar solver for every real lane.
    """

    def __init__(
        self,
        nic: "_nic.SmartNic",
        plans: list[_ScenarioPlan],
        indices: list[int],
        columns: Optional[list[_WorkloadPlan]] = None,
        embeddings: Optional[list[list[int]]] = None,
        warm: Optional[list] = None,
    ) -> None:
        self._nic = nic
        self._spec = nic.spec
        self._plans = plans
        self.indices = indices
        # warm[i]: None (cold row) or a per-workload list aligned with
        # plans[i].workloads of initial-iterate guesses (None entries
        # fall back to the contention-free estimate).
        self._warm = warm
        self.S = len(plans)
        self._columns = columns if columns is not None else plans[0].workloads
        self.W = len(self._columns)
        if embeddings is None:
            embeddings = [list(range(self.W))] * self.S
        self.embeddings = embeddings
        # lane[i, w]: scenario i has a real workload in column w.
        self.lane = np.zeros((self.S, self.W), dtype=bool)
        for i, cols in enumerate(embeddings):
            self.lane[i, cols] = True
        self._padded = not bool(self.lane.all())
        self._build_workload_arrays()
        self._build_actor_layout()
        self._build_engine_layout()

    # -- array assembly -------------------------------------------------
    def _col(self, values: list[float]) -> np.ndarray:
        return np.array(values, dtype=np.float64)

    def _build_workload_arrays(self) -> None:
        plans = self._plans
        # Per scenario: column index -> its own workload, for the columns
        # it occupies; padded scenarios leave the rest as dummy lanes.
        col_to_wl = [
            {col: j for j, col in enumerate(cols)} for cols in self.embeddings
        ]
        self.wl: list[dict] = []
        for w in range(self.W):
            ref = self._columns[w]
            ps = [
                plan.workloads[col_to_wl[i][w]] if w in col_to_wl[i] else None
                for i, plan in enumerate(plans)
            ]
            n_accel = len(ref.accel_names)
            # Dummy lanes get all-zero demands (mlp keeps 1.0 — it only
            # ever divides): zero rates feed zero pressure everywhere.
            def scalar(attr: str, missing: float = 0.0) -> np.ndarray:
                return self._col(
                    [getattr(p, attr) if p is not None else missing for p in ps]
                )

            def per_item(attr: str, k: int, missing: float = 0.0) -> np.ndarray:
                return self._col(
                    [
                        getattr(p, attr)[k] if p is not None else missing
                        for p in ps
                    ]
                )

            data = {
                "pattern": ref.pattern,
                "n_core": ref.n_core,
                "accel_names": ref.accel_names,
                "dma_flag": ref.dma_flag,
                "stage_kinds": ref.stage_kinds,
                "cores_f": scalar("cores_f"),
                "reads_sum": scalar("reads_sum"),
                "writes_sum": scalar("writes_sum"),
                "instr_sum": scalar("instr_sum"),
                "cycles_sum": scalar("cycles_sum"),
                "wss": scalar("wss"),
                "hot_af": scalar("hot_af"),
                "hot_wf": scalar("hot_wf"),
                "arrival": scalar("arrival"),
                "line_rate": scalar("line_rate"),
                "core_cycles": [
                    per_item("core_cycles", k) for k in range(ref.n_core)
                ],
                "core_rw": [
                    per_item("core_rw", k) for k in range(ref.n_core)
                ],
                "core_mlp": [
                    per_item("core_mlp", k, missing=1.0)
                    for k in range(ref.n_core)
                ],
                "accel_req": [
                    per_item("accel_req", m) for m in range(n_accel)
                ],
                "accel_teff": [
                    per_item("accel_teff", m) for m in range(n_accel)
                ],
                "accel_nq": [
                    per_item("accel_nq", m) for m in range(n_accel)
                ],
                "accel_bpk": [
                    per_item("accel_bpk", m) for m in range(n_accel)
                ],
                "accel_refs": [
                    per_item("accel_refs", m) for m in range(n_accel)
                ],
            }
            self.wl.append(data)

    def _build_actor_layout(self) -> None:
        """Memory actors in the scalar solver's order: workload, then DMA."""
        layout: list[tuple[int, bool]] = []
        for w in range(self.W):
            layout.append((w, False))
            if self.wl[w]["dma_flag"]:
                layout.append((w, True))
        self.actors = layout
        self.A = len(layout)
        llc = self._spec.llc_bytes
        wss_cols, haf_cols, hwf_cols = [], [], []
        for w, is_dma in layout:
            if is_dma:
                wss_cols.append(np.full(self.S, float(_nic._DMA_BUFFER_BYTES)))
                haf_cols.append(np.full(self.S, _DMA_HOT_ACCESS_FRACTION))
                hwf_cols.append(np.full(self.S, _DMA_HOT_WSS_FRACTION))
            else:
                wss_cols.append(self.wl[w]["wss"])
                haf_cols.append(self.wl[w]["hot_af"])
                hwf_cols.append(self.wl[w]["hot_wf"])
        self.act_wss = np.column_stack(wss_cols)
        self.act_haf = np.column_stack(haf_cols)
        hwf = np.column_stack(hwf_cols)
        # sqrt(min(wss, llc)) is static; matches np.sqrt on the scalar min.
        self.act_sqrt = np.sqrt(np.minimum(self.act_wss, llc))
        self.act_hot_bytes = hwf * self.act_wss
        self.act_cold_bytes = self.act_wss - self.act_hot_bytes
        # Workload -> its own (non-DMA) actor column.
        self.wl_actor = {
            w: k for k, (w, is_dma) in enumerate(layout) if not is_dma
        }

    def _build_engine_layout(self) -> None:
        """Per-engine client structure (scalar ``_accelerator_capacities``)."""
        self.engines: list[dict] = []
        for accel_name in self._nic._engines:
            users: list[tuple[int, int]] = []
            for w in range(self.W):
                for m, name in enumerate(self.wl[w]["accel_names"]):
                    if name == accel_name:
                        users.append((w, m))
            if not users:
                continue
            # Clients keyed per workload; a later stage on the same
            # engine overwrites the earlier one (dict-update semantics
            # of the scalar code), so each client uses its *last* stage.
            last: dict[int, int] = {}
            for w, m in users:
                last[w] = m
            client_ws = list(last)  # insertion order == workload order
            self.engines.append(
                {
                    "name": accel_name,
                    "clients": client_ws,
                    "teff": [self.wl[w]["accel_teff"][last[w]] for w in client_ws],
                    "nq": [self.wl[w]["accel_nq"][last[w]] for w in client_ws],
                    "req": [self.wl[w]["accel_req"][last[w]] for w in client_ws],
                }
            )

    # -- fixed-point pieces ---------------------------------------------
    def _memory_pressures(
        self, view: _View, thr: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Per-actor cache read/write rates at current throughputs."""
        reads = np.empty((view.n, self.A))
        writes = np.empty((view.n, self.A))
        for k, (w, is_dma) in enumerate(self.actors):
            data = view.wl[w]
            rate = thr[:, w]
            if not is_dma:
                reads[:, k] = data["reads_sum"] * rate
                writes[:, k] = data["writes_sum"] * rate
            else:
                dma = np.zeros(view.n)
                for m in range(len(data["accel_names"])):
                    dma = dma + (
                        (rate * data["accel_req"][m])
                        * data["accel_bpk"][m]
                        * data["accel_refs"][m]
                    )
                reads[:, k] = dma * 0.5
                writes[:, k] = dma * 0.5
        return reads, writes

    def _solve_occupancy(self, view: _View, access: np.ndarray) -> np.ndarray:
        """Vectorized LLC water-filling (scalar ``solve_occupancy``).

        Rows advance independently; each round, rows sharing the same
        hungry-actor mask are grouped so the pressure total is an
        ``np.sum`` over a contiguous column slice — the exact reduction
        (including numpy's pairwise blocking) the scalar solver runs.
        """
        llc = self._spec.llc_bytes
        wss = view.act_wss
        pressure = _pow_scalar(access, _PRESSURE_RATE_EXPONENT) * view.act_sqrt
        active = (access > 0.0) & (wss > 0.0)
        occupancy = np.zeros((view.n, self.A))
        remaining = np.full(view.n, float(llc))
        hungry = active.copy()
        alive = active.any(axis=1)
        bits = 1 << np.arange(self.A, dtype=np.int64)
        all_cols = np.arange(self.A)
        for _ in range(_OCCUPANCY_ITERATIONS):
            alive &= hungry.any(axis=1) & (remaining > 0.0)
            rows_alive = np.flatnonzero(alive)
            if len(rows_alive) == 0:
                break
            keys = hungry[rows_alive] @ bits
            for key in sorted(set(keys.tolist())):
                rows = rows_alive[keys == key]
                cols = all_cols[(key >> all_cols) & 1 == 1]
                rows_c = rows[:, None]
                pres = pressure[rows_c, cols]
                total = pres.sum(axis=1)
                positive = total > 0.0
                if not positive.all():
                    alive[rows[~positive]] = False
                    rows = rows[positive]
                    if len(rows) == 0:
                        continue
                    rows_c = rows[:, None]
                    pres = pres[positive]
                    total = total[positive]
                shares = remaining[rows_c] * pres / total[:, None]
                need = wss[rows_c, cols] - occupancy[rows_c, cols]
                sat = need <= shares
                any_sat = sat.any(axis=1)
                if any_sat.any():
                    for j, col in enumerate(cols):
                        hit = any_sat & sat[:, j]
                        if not hit.any():
                            continue
                        r = rows[hit]
                        occupancy[r, col] += need[hit, j]
                        remaining[r] -= need[hit, j]
                        hungry[r, col] = False
                no_sat = ~any_sat
                if no_sat.any():
                    r = rows[no_sat]
                    occupancy[r[:, None], cols] += shares[no_sat]
                    remaining[r] = 0.0
                    alive[r] = False
        return occupancy

    def _solve_memory(self, view: _View, thr: np.ndarray) -> dict:
        """Vectorized :meth:`MemorySubsystem.solve` over the view rows."""
        spec = self._spec
        reads, writes = self._memory_pressures(view, thr)
        access = reads + writes
        occupancy = self._solve_occupancy(view, access)
        wss = view.act_wss
        base = spec.base_miss_ratio
        occ_c = np.clip(occupancy, 0.0, wss)
        hot_bytes = view.act_hot
        cold_bytes = view.act_cold
        hot_resident = np.minimum(occ_c, hot_bytes)
        cold_resident = np.minimum(
            np.maximum(occ_c - hot_bytes, 0.0), cold_bytes
        )
        hot_miss = np.where(
            hot_bytes > 0.0,
            1.0 - hot_resident / np.where(hot_bytes > 0.0, hot_bytes, 1.0),
            0.0,
        )
        cold_miss = np.where(
            cold_bytes > 0.0,
            1.0 - cold_resident / np.where(cold_bytes > 0.0, cold_bytes, 1.0),
            0.0,
        )
        haf = view.act_haf
        blended = haf * hot_miss + (1.0 - haf) * cold_miss
        miss = np.clip(base + (1.0 - base) * blended, base, 1.0)
        miss = np.where(wss <= 0.0, base, miss)

        dram_reads = np.empty_like(reads)
        dram_writes = np.empty_like(writes)
        for k in range(self.A):
            dram_reads[:, k] = reads[:, k] * miss[:, k]
            dram_writes[:, k] = (writes[:, k] * miss[:, k]) + (
                reads[:, k] + writes[:, k]
            ) * miss[:, k] * spec.writeback_fraction
        total_r = np.zeros(view.n)
        for k in range(self.A):
            total_r = total_r + dram_reads[:, k]
        total_w = np.zeros(view.n)
        for k in range(self.A):
            total_w = total_w + dram_writes[:, k]
        total_lines = total_r + total_w
        utilisation = np.minimum(
            _MAX_UTILISATION,
            total_lines * CACHE_LINE_BYTES / spec.dram_bandwidth_bpus,
        )
        effective_dram = spec.dram_latency_us / (1.0 - utilisation)
        avg = spec.llc_hit_time_us + miss * effective_dram[:, None]
        return {
            "occupancy": occupancy,
            "miss": miss,
            "avg": avg,
            "dram_reads": dram_reads,
            "dram_writes": dram_writes,
        }

    def _waterfill_capacity(
        self,
        target_pos: int,
        teff: list[np.ndarray],
        nq: list[np.ndarray],
        offered: list[np.ndarray],
        discard: Optional[np.ndarray] = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Vectorized RR water-filling for one closed-loop target.

        ``offered[target_pos]`` is ignored (the target saturates its
        queues and is never released); other clients are open-loop with
        per-row offered rates. Returns (target rate, failed-row mask).

        ``discard`` marks rows whose result the caller throws away (the
        target is one of their dummy lanes). They start ``done``: a
        dummy target anchors the weight fold at zero, which lets the
        move/release rounds oscillate to the iteration cap, and one
        such row keeps the whole group's round loop spinning. Rows are
        element-wise independent throughout, so skipping them leaves
        every other row's trajectory bit-identical.
        """
        n = len(teff)
        size = len(teff[target_pos])
        if n == 1:
            # allocate() with one closed-loop client resolves in one
            # round: spare = 1.0, weight = t_eff * n_queues.
            weight = teff[0] * nq[0]
            rate = nq[0] * (1.0 / weight)
            return rate, np.zeros(size, dtype=bool)
        sat = [np.zeros(size, dtype=bool) for _ in range(n)]
        sat[target_pos][:] = True
        done = (
            discard.copy() if discard is not None
            else np.zeros(size, dtype=bool)
        )
        rate = np.ones(size)
        for _ in range(_WATERFILL_ITERATIONS):
            act = ~done
            if not act.any():
                break
            busy = np.zeros(size)
            for j in range(n):
                if j == target_pos:
                    continue
                busy = busy + np.where(~sat[j], offered[j] * teff[j], 0.0)
            # capacity_for() allocates [saturated_target] + competitors,
            # so the scalar weight fold starts with the target's term;
            # the remaining clients follow in their original order.
            weight = teff[target_pos] * nq[target_pos]
            for j in range(n):
                if j == target_pos:
                    continue
                weight = weight + np.where(sat[j], teff[j] * nq[j], 0.0)
            spare = np.maximum(0.0, 1.0 - busy)
            per_queue = np.where(
                weight > 0.0, spare / np.where(weight > 0.0, weight, 1.0), 0.0
            )
            moved = np.zeros(size, dtype=bool)
            for j in range(n):
                if j == target_pos:
                    continue
                mv = act & ~sat[j] & (offered[j] > nq[j] * per_queue + 1e-12)
                sat[j] |= mv
                moved |= mv
            release_rows = act & ~moved
            released = np.zeros(size, dtype=bool)
            for j in range(n):
                if j == target_pos:
                    continue
                rl = release_rows & sat[j] & (offered[j] < nq[j] * per_queue - 1e-12)
                sat[j] &= ~rl
                released |= rl
            final = act & ~moved & ~released
            if final.any():
                rate[final] = (nq[target_pos] * per_queue)[final]
                done |= final
        return rate, ~done

    def _accel_capacities(
        self, view: _View, thr: np.ndarray
    ) -> tuple[dict[tuple[int, str], np.ndarray], np.ndarray]:
        """Per-(workload, engine) stage capacities, plus failed rows."""
        capacities: dict[tuple[int, str], np.ndarray] = {}
        failed = np.zeros(view.n, dtype=bool)
        for engine in view.engines:
            offered = [
                thr[:, w] * engine["req"][pos]
                for pos, w in enumerate(engine["clients"])
            ]
            for pos, w in enumerate(engine["clients"]):
                cap_requests, fail = self._waterfill_capacity(
                    pos,
                    engine["teff"],
                    engine["nq"],
                    offered,
                    discard=~view.lane[:, w] if self._padded else None,
                )
                # A dummy lane's water-fill result is discarded, so a
                # non-converged fill there must not fail the row.
                failed |= fail & view.lane[:, w] if self._padded else fail
                capacities[(w, engine["name"])] = cap_requests / engine["req"][pos]
        return capacities, failed

    def _core_times(
        self, view: _View, w: int, tau: np.ndarray
    ) -> list[np.ndarray]:
        data = view.wl[w]
        freq = self._spec.core_freq_mhz
        return [
            data["core_cycles"][k] / freq
            + data["core_rw"][k] * tau / data["core_mlp"][k]
            for k in range(data["n_core"])
        ]

    def _compose(
        self,
        view: _View,
        w: int,
        core_times: list[np.ndarray],
        accel_caps: list[np.ndarray],
    ) -> np.ndarray:
        data = view.wl[w]
        cores = data["cores_f"]
        if data["pattern"] is ExecutionPattern.PIPELINE:
            n_core = max(1, data["n_core"])
            result = None
            for t in core_times:
                positive = t > 0.0
                cap = np.where(
                    positive,
                    (cores / n_core) / np.where(positive, t, 1.0),
                    np.inf,
                )
                result = cap if result is None else np.minimum(result, cap)
            for cap in accel_caps:
                result = cap if result is None else np.minimum(result, cap)
            if result is None:
                return np.zeros(view.n)
            return result
        total_core = np.zeros(view.n)
        for t in core_times:
            total_core = total_core + t
        accel_wait = np.zeros(view.n)
        for cap in accel_caps:
            positive = cap > 0.0
            accel_wait = accel_wait + np.where(
                positive, cores / np.where(positive, cap, 1.0), 0.0
            )
        denom = total_core + accel_wait
        positive = denom > 0.0
        return np.where(
            positive, cores / np.where(positive, denom, 1.0), np.inf
        )

    def _estimate(self, view: _View) -> np.ndarray:
        """Vectorized :meth:`SmartNic._contention_free_estimate`."""
        with np.errstate(all="ignore"):
            return self._estimate_inner(view)

    def _estimate_inner(self, view: _View) -> np.ndarray:
        spec = self._spec
        tau0 = spec.llc_hit_time_us + spec.base_miss_ratio * spec.dram_latency_us
        thr = np.empty((view.n, self.W))
        for w in range(self.W):
            data = view.wl[w]
            core_times = [
                data["core_cycles"][k] / spec.core_freq_mhz
                + data["core_rw"][k] * tau0 / data["core_mlp"][k]
                for k in range(data["n_core"])
            ]
            accel_caps = []
            for m in range(len(data["accel_names"])):
                teff = data["accel_teff"][m]
                nq = data["accel_nq"][m]
                # allocate() with one closed-loop client in one round:
                # spare = 1.0, weight = t_eff * n, rate = n * (1 / weight).
                solo = nq * (1.0 / (teff * nq))
                accel_caps.append(solo / data["accel_req"][m])
            estimate = self._compose(view, w, core_times, accel_caps)
            estimate = np.minimum(estimate, data["arrival"])
            thr[:, w] = np.minimum(estimate, data["line_rate"])
            if self._padded:
                # Dummy lanes idle at zero rate: every pressure they
                # feed downstream is an exact 0.0, and their residual
                # (updated == thr) is exactly 0.0, so padded rows keep
                # the scalar solver's iteration count.
                thr[:, w] = np.where(view.lane[:, w], thr[:, w], 0.0)
        return thr

    def _iterate(
        self, view: _View, thr: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """One vectorized sweep of the fixed-point map."""
        memory = self._solve_memory(view, thr)
        capacities, failed = self._accel_capacities(view, thr)
        updated = np.empty_like(thr)
        for w in range(self.W):
            data = view.wl[w]
            tau = memory["avg"][:, self.wl_actor[w]]
            core_times = self._core_times(view, w, tau)
            accel_caps = [capacities[(w, name)] for name in data["accel_names"]]
            rate = self._compose(view, w, core_times, accel_caps)
            rate = np.minimum(rate, data["arrival"])
            rate = np.minimum(rate, data["line_rate"])
            if self._padded:
                updated[:, w] = np.where(
                    view.lane[:, w], np.maximum(rate, 1e-9), thr[:, w]
                )
            else:
                updated[:, w] = np.maximum(rate, 1e-9)
        return updated, failed

    # -- driver ----------------------------------------------------------
    def solve(self) -> list:
        """Run the damped fixed point; return per-scenario results."""
        obs = active_recorder()
        S, W = self.S, self.W
        thr_final = np.empty((S, W))
        iterations = np.full(S, _nic._MAX_ITERATIONS, dtype=np.int64)
        errors: dict[int, Exception] = {}

        view = _View(self, None)
        rows = np.arange(S)  # global row of each live slot
        thr = self._estimate(view)
        damping = np.full(S, _nic._DAMPING)
        window = np.full(S, _nic._STALL_WINDOW, dtype=np.int64)
        if self._warm is not None:
            # Seed warm rows exactly as the scalar solver does: per
            # provided name, the guess (clamped like any iterate)
            # replaces the contention-free estimate before iteration 1,
            # and the row starts undamped with the short warm stall
            # window (see _nic._WARM_DAMPING / _nic._WARM_STALL_WINDOW).
            for i, values in enumerate(self._warm):
                if values is None:
                    continue
                cols = self.embeddings[i]
                seeded = False
                for j, value in enumerate(values):
                    if value is not None:
                        thr[i, cols[j]] = max(float(value), 1e-9)
                        seeded = True
                if seeded:
                    damping[i] = _nic._WARM_DAMPING
                    window[i] = _nic._WARM_STALL_WINDOW
        best = np.full(S, np.inf)
        stall = np.zeros(S, dtype=np.int64)
        last_residual = np.full(S, np.inf)
        frozen = np.zeros(S, dtype=bool)  # converged or failed slots

        with np.errstate(all="ignore"):
            for it in range(1, _nic._MAX_ITERATIONS + 1):
                updated, failed = self._iterate(view, thr)
                new_fail = failed & ~frozen
                if new_fail.any():
                    for slot in np.flatnonzero(new_fail):
                        errors[rows[slot]] = SimulationError(
                            "accelerator water-filling failed to converge"
                        )
                    frozen |= new_fail
                residual = None
                for w in range(W):
                    rel = np.abs(updated[:, w] - thr[:, w]) / np.maximum(
                        updated[:, w], 1e-12
                    )
                    residual = rel if residual is None else np.maximum(residual, rel)
                live = ~frozen
                improved = residual < best - 1e-12
                bumped = stall + 1
                trigger = ~improved & (bumped >= window)
                best = np.where(live & improved, residual, best)
                damping = np.where(
                    live & trigger,
                    np.maximum(damping * 0.5, _nic._MIN_DAMPING),
                    damping,
                )
                stall = np.where(
                    live, np.where(improved | trigger, 0, bumped), stall
                )
                thr = np.where(
                    live[:, None],
                    (1.0 - damping)[:, None] * thr + damping[:, None] * updated,
                    thr,
                )
                last_residual = np.where(live, residual, last_residual)

                done = live & (residual < _nic._REL_TOLERANCE)
                if done.any():
                    thr_final[rows[done]] = thr[done]
                    iterations[rows[done]] = it
                    frozen |= done
                if frozen.all():
                    break
                # Compact as soon as an eighth of the slots have frozen
                # (compaction is bit-invisible: rows never interact, so
                # dropping frozen slots only shrinks the arrays the
                # stragglers iterate on). The eager threshold matters
                # most for warm-seeded groups, where the bulk of rows
                # freeze within a few sweeps and only re-seeded
                # stragglers keep iterating.
                if frozen.sum() * 8 >= len(rows):
                    obs.exec_counter("batch.compactions")
                    keep = ~frozen
                    rows = rows[keep]
                    view = _View(self, rows)
                    thr = thr[keep]
                    damping = damping[keep]
                    window = window[keep]
                    best = best[keep]
                    stall = stall[keep]
                    last_residual = last_residual[keep]
                    frozen = np.zeros(len(rows), dtype=bool)

        # The for-else path of the scalar loop: accept small residuals,
        # fail the rest.
        open_slots = np.flatnonzero(~frozen)
        for slot in open_slots:
            res = last_residual[slot]
            if res > _nic._ACCEPT_RESIDUAL:
                errors[rows[slot]] = ConvergenceError(
                    f"fixed point residual {res:.3e} after "
                    f"{_nic._MAX_ITERATIONS} iterations"
                )
            else:
                thr_final[rows[slot]] = thr[slot]

        results: list = [None] * S
        for row, error in errors.items():
            results[row] = error
        ok = np.array(
            [i for i in range(S) if i not in errors], dtype=np.int64
        )
        if len(ok) > 0:
            self._finalise(ok, thr_final[ok], iterations[ok], results)
        return results

    # -- reporting --------------------------------------------------------
    def _finalise(
        self,
        idx: np.ndarray,
        thr: np.ndarray,
        iterations: np.ndarray,
        results: list,
    ) -> None:
        """Vectorized :meth:`SmartNic._finalise` over the ``idx`` rows."""
        nic = self._nic
        spec = self._spec
        view = _View(self, idx)
        with np.errstate(all="ignore"):
            memory = self._solve_memory(view, thr)
            capacities, _ = self._accel_capacities(view, thr)
            per_wl, dram_util = self._finalise_arrays(
                view, thr, memory, capacities
            )
        self._assemble_results(idx, thr, iterations, per_wl, dram_util, results)

    def _finalise_arrays(self, view, thr, memory, capacities):
        spec = self._spec
        # dram_utilisation(): per-actor (read + write) accumulated in
        # actor order, then the same clamp as the solve.
        total = np.zeros(view.n)
        for k in range(self.A):
            total = total + (
                memory["dram_reads"][:, k] + memory["dram_writes"][:, k]
            )
        dram_util = np.minimum(
            _MAX_UTILISATION,
            total * CACHE_LINE_BYTES / spec.dram_bandwidth_bpus,
        )

        per_wl = []
        for w in range(self.W):
            data = view.wl[w]
            actor = self.wl_actor[w]
            avg = memory["avg"][:, actor]
            core_times = self._core_times(view, w, avg)
            n_core = max(1, data["n_core"])
            cores = data["cores_f"]
            stage_times = []
            stage_caps = []
            rtc_metric = []
            for kind, pos in data["stage_kinds"]:
                if kind == "a":
                    cap = capacities[(w, data["accel_names"][pos])]
                    positive = cap > 0.0
                    t = np.where(
                        positive, 1.0 / np.where(positive, cap, 1.0), np.inf
                    )
                    rtc_metric.append(cores * t)
                else:
                    t = core_times[pos]
                    positive = t > 0.0
                    safe_t = np.where(positive, t, 1.0)
                    if data["pattern"] is ExecutionPattern.PIPELINE:
                        cap = np.where(positive, (cores / n_core) / safe_t, np.inf)
                    else:
                        cap = np.where(positive, cores / safe_t, np.inf)
                    rtc_metric.append(t)
                stage_times.append(t)
                stage_caps.append(cap)
            if data["pattern"] is ExecutionPattern.PIPELINE:
                bottleneck_idx = np.argmin(np.column_stack(stage_caps), axis=1)
            else:
                bottleneck_idx = np.argmax(np.column_stack(rtc_metric), axis=1)

            # Table 11 counters.
            rate = thr[:, w]
            stall_cycles = np.zeros(view.n)
            for k in range(data["n_core"]):
                stall_cycles = stall_cycles + (
                    data["core_rw"][k]
                    * avg
                    / data["core_mlp"][k]
                    * spec.core_freq_mhz
                )
            total_cycles = np.maximum(data["cycles_sum"] + stall_cycles, 1e-9)
            share_dma = np.zeros(view.n)
            for m in range(len(data["accel_names"])):
                share_dma = share_dma + (
                    rate
                    * data["accel_req"][m]
                    * data["accel_bpk"][m]
                    * data["accel_refs"][m]
                )
            dma_reads = share_dma * 0.5
            instr = data["instr_sum"]
            miss = memory["miss"][:, actor]
            per_wl.append(
                {
                    "stage_times": stage_times,
                    "stage_caps": stage_caps,
                    "bottleneck_idx": bottleneck_idx,
                    "ipc": np.where(
                        instr > 0.0, instr / total_cycles, 0.0
                    ),
                    "irt": instr * rate,
                    "l2crd": data["reads_sum"] * rate + dma_reads,
                    "l2cwr": data["writes_sum"] * rate + (share_dma - dma_reads),
                    "memrd": memory["dram_reads"][:, actor] + dma_reads * miss,
                    "memwr": memory["dram_writes"][:, actor],
                    "wss": data["wss"],
                    "miss": miss,
                    "occupancy": memory["occupancy"][:, actor],
                }
            )
        return per_wl, dram_util

    def _assemble_results(
        self, idx, thr, iterations, per_wl, dram_util, results
    ) -> None:
        nic = self._nic
        for row, scenario_row in enumerate(idx):
            plan = self._plans[scenario_row]
            demands = [p.demand for p in plan.workloads]
            if nic._noise_std == 0.0:
                noises = [1.0] * len(demands)
            else:
                reps = [repr(d) for d in demands]
                sorted_reps = tuple(sorted(reps))
                noises = []
                for rep in reps:
                    rng = make_rng(derive_seed(nic._seed, rep, sorted_reps))
                    noises.append(float(1.0 + rng.normal(0.0, nic._noise_std)))
            workload_results = {}
            for j, wplan in enumerate(plan.workloads):
                w = self.embeddings[scenario_row][j]
                values = per_wl[w]
                stages = []
                for s_idx, (kind, pos) in enumerate(wplan.stage_kinds):
                    stage = wplan.demand.stages[s_idx]
                    stages.append(
                        _nic.StageReport(
                            name=stage.name,
                            resource=stage.resource,
                            accelerator=(
                                stage.accelerator if kind == "a" else None
                            ),
                            time_pp_us=float(values["stage_times"][s_idx][row]),
                            capacity_mpps=float(values["stage_caps"][s_idx][row]),
                        )
                    )
                counters = PerfCounters(
                    ipc=float(values["ipc"][row]),
                    irt=float(values["irt"][row]),
                    l2crd=float(values["l2crd"][row]),
                    l2cwr=float(values["l2cwr"][row]),
                    memrd=float(values["memrd"][row]),
                    memwr=float(values["memwr"][row]),
                    wss=float(values["wss"][row]),
                )
                rate = float(thr[row, w])
                workload_results[wplan.name] = _nic.WorkloadResult(
                    name=wplan.name,
                    throughput_mpps=rate * noises[j],
                    true_throughput_mpps=rate,
                    counters=counters,
                    stages=tuple(stages),
                    bottleneck=wplan.stage_labels[
                        int(values["bottleneck_idx"][row])
                    ],
                    miss_ratio=float(values["miss"][row]),
                    llc_occupancy_bytes=float(values["occupancy"][row]),
                )
            results[scenario_row] = _nic.RunResult(
                workloads=workload_results,
                iterations=int(iterations[row]),
                dram_utilisation=float(dram_util[row]),
            )


# ----------------------------------------------------------------------
# Entry point
# ----------------------------------------------------------------------
#: Signature groups smaller than this solve through the scalar solver:
#: below ~3 rows the vectorized sweep's per-iteration numpy dispatch
#: costs more than the scalar Python sweep, so heterogeneous batches
#: (e.g. a fleet epoch whose NICs host structurally diverse mixes)
#: would otherwise run *slower* batched than looped. The fallback is
#: observation-free: the scalar solver is the bit-exactness oracle the
#: vectorized path must reproduce anyway. Small groups whose signatures
#: embed into one another first merge into padded super-groups (see
#: :class:`_Group`), so only unmergeable stragglers pay the scalar path.
_SCALAR_FALLBACK_GROUP_SIZE = 3


#: Widest super-signature a padded family may grow to. Wider families
#: merge more stragglers into one vectorized solve but pay per-iteration
#: work proportional to their column count; past ~2x a typical mix size
#: the dummy lanes start eating the win.
_PAD_MAX_WIDTH = 8


def _merge_small_groups(
    small: list[tuple[tuple, list[_ScenarioPlan], list[int]]],
) -> tuple[list, list]:
    """Merge small signature groups into padded super-group families.

    Greedy and deterministic: signatures are visited longest first (ties
    broken by repr). Each joins the first family whose super-signature
    already contains it as a subsequence; otherwise the first family
    whose super-signature can *grow* (shortest common supersequence)
    within :data:`_PAD_MAX_WIDTH` absorbs it; otherwise it roots a new
    family. Growth keeps every earlier member embeddable (a subsequence
    of the old root is a subsequence of any supersequence of it).
    Families that gather at least :data:`_SCALAR_FALLBACK_GROUP_SIZE`
    scenarios across two or more signatures solve as one padded
    vectorized group; everything else stays on the scalar path.

    Returns ``(merged, leftovers)``: ``merged`` holds
    ``(columns_sig, members)`` where each member is ``(sig, plans,
    indices)``, ``leftovers`` holds ``(plan, index)`` pairs.

    The family *structure* (which signatures form which families, and
    each family's super-signature) depends only on the multiset of
    (signature, group size) pairs — the greedy visit order is a total
    order over the distinct signatures, independent of input order —
    so it is memoized in the compile cache and replayed against the
    call's own plans/indices on a hit.
    """
    by_sig = {sig: (plans, indices) for sig, plans, indices in small}
    cache = _COMPILE_CACHE
    key = tuple(
        sorted(
            ((sig, len(plans)) for sig, plans, _ in small),
            key=lambda entry: repr(entry[0]),
        )
    )
    cached = cache.families.get(key) if cache.enabled else None
    if cached is None:
        order = sorted(small, key=lambda entry: (-len(entry[0]), repr(entry[0])))
        families: list[dict] = []
        for sig, plans, indices in order:
            placed = False
            for family in families:
                if _embed_signature(sig, family["sig"]) is not None:
                    family["members"].append(sig)
                    placed = True
                    break
            if not placed:
                for family in families:
                    grown = _shortest_supersequence(family["sig"], sig)
                    if len(grown) <= _PAD_MAX_WIDTH:
                        family["sig"] = grown
                        family["members"].append(sig)
                        placed = True
                        break
            if not placed:
                families.append({"sig": sig, "members": [sig]})

        merged_sigs: list[tuple[tuple, tuple]] = []
        leftover_sigs: list[tuple] = []
        for family in families:
            member_sigs = family["members"]
            total = sum(len(by_sig[sig][0]) for sig in member_sigs)
            if len(member_sigs) > 1 and total >= _SCALAR_FALLBACK_GROUP_SIZE:
                merged_sigs.append((family["sig"], tuple(member_sigs)))
            else:
                leftover_sigs.extend(member_sigs)
        cached = (tuple(merged_sigs), tuple(leftover_sigs))
        if cache.enabled:
            if len(cache.families) >= _COMPILE_CACHE_MAX_ENTRIES:
                cache.families.clear()
            cache.families[key] = cached

    merged_sigs, leftover_sigs = cached
    merged = [
        (family_sig, [(sig, *by_sig[sig]) for sig in member_sigs])
        for family_sig, member_sigs in merged_sigs
    ]
    leftovers = [
        (plan, index)
        for sig in leftover_sigs
        for plan, index in zip(*by_sig[sig])
    ]
    return merged, leftovers


def solve_batch(
    nic: "_nic.SmartNic",
    scenarios: list[list[WorkloadDemand]],
    on_error: str = "raise",
    pad_small_groups: bool = True,
    warm_starts: Optional[list] = None,
):
    """Solve many co-location scenarios; see :meth:`SmartNic.run_batch`.

    ``pad_small_groups=False`` disables the padded super-group merge
    *and* straggler adoption and reverts every small signature group to
    the scalar fallback (the heterogeneous-fleet benchmark uses this as
    its reference arm).

    ``warm_starts`` is aligned with ``scenarios``: per entry ``None``
    (cold) or a name→Mpps mapping seeding that scenario's initial
    iterate (see :meth:`SmartNic.run_batch`).
    """
    if on_error not in ("raise", "return"):
        raise SimulationError(f"unknown on_error mode {on_error!r}")
    obs = active_recorder()
    cache = _COMPILE_CACHE
    hits0, misses0 = cache.hits, cache.misses
    results: list = [None] * len(scenarios)
    groups: dict[tuple, tuple[list[_ScenarioPlan], list[int]]] = {}
    for i, workloads in enumerate(scenarios):
        error = _validate(nic, list(workloads))
        if error is not None:
            results[i] = error
            continue
        plan = _ScenarioPlan(nic, list(workloads))
        plans, indices = groups.setdefault(plan.signature, ([], []))
        plans.append(plan)
        indices.append(i)
    if obs.enabled and cache.enabled:
        if cache.hits > hits0:
            obs.exec_counter("batch.compile_cache.hits", cache.hits - hits0)
        if cache.misses > misses0:
            obs.exec_counter(
                "batch.compile_cache.misses", cache.misses - misses0
            )

    def warm_vector(plan: _ScenarioPlan, index: int):
        if warm_starts is None:
            return None
        warm = warm_starts[index]
        if not warm:
            return None
        values = [warm.get(p.name) for p in plan.workloads]
        if all(v is None for v in values):
            return None
        return values

    def warm_list(plans: list[_ScenarioPlan], indices: list[int]):
        if warm_starts is None:
            return None
        values = [warm_vector(p, i) for p, i in zip(plans, indices)]
        if all(v is None for v in values):
            return None
        return values

    big: list[tuple[tuple, list[_ScenarioPlan], list[int]]] = []
    small: list[tuple[tuple, list[_ScenarioPlan], list[int]]] = []
    for sig, (plans, indices) in groups.items():
        if len(plans) < _SCALAR_FALLBACK_GROUP_SIZE:
            small.append((sig, plans, indices))
        else:
            big.append((sig, plans, indices))

    # Straggler adoption: a small group whose signature embeds into a
    # big group's columns rides along as masked lanes instead of paying
    # the scalar fallback or growing a padded family. Both sides are
    # visited in the deterministic longest-first/repr order, first fit
    # wins, and the big group's columns never grow — its own rows stay
    # full-lane, so the proven all-zero-dummy-lane argument keeps every
    # real lane bit-identical to the scalar solver.
    adopted: dict[int, list[tuple[tuple, list[_ScenarioPlan], list[int]]]] = {}
    if pad_small_groups and small and big:
        big_order = sorted(
            range(len(big)), key=lambda k: (-len(big[k][0]), repr(big[k][0]))
        )
        remaining = []
        for sig, plans, indices in sorted(
            small, key=lambda entry: (-len(entry[0]), repr(entry[0]))
        ):
            for k in big_order:
                if (
                    len(sig) <= len(big[k][0])
                    and _embed_signature(sig, big[k][0]) is not None
                ):
                    adopted.setdefault(k, []).append((sig, plans, indices))
                    break
            else:
                remaining.append((sig, plans, indices))
        small = remaining

    for k, (sig, plans, indices) in enumerate(big):
        members = adopted.get(k)
        if not members:
            obs.exec_histogram("batch.group_size", len(plans))
            group = _Group(
                nic, plans, indices, warm=warm_list(plans, indices)
            )
            for local, outcome in enumerate(group.solve()):
                results[indices[local]] = outcome
            continue
        all_plans = list(plans)
        all_indices = list(indices)
        all_embeds: list[list[int]] = [list(range(len(sig)))] * len(plans)
        for m_sig, m_plans, m_indices in members:
            cols = _embed_signature(m_sig, sig)
            all_plans.extend(m_plans)
            all_indices.extend(m_indices)
            all_embeds.extend([cols] * len(m_plans))
        if obs.enabled:
            obs.exec_histogram("batch.group_size", len(all_plans))
            obs.exec_counter(
                "batch.adoptions",
                sum(len(m_plans) for _, m_plans, _ in members),
            )
            obs.exec_counter(
                "batch.padded_lanes",
                sum(
                    len(m_plans) * (len(sig) - len(m_sig))
                    for m_sig, m_plans, _ in members
                ),
            )
        group = _Group(
            nic,
            all_plans,
            all_indices,
            embeddings=all_embeds,
            warm=warm_list(all_plans, all_indices),
        )
        for local, outcome in enumerate(group.solve()):
            results[all_indices[local]] = outcome

    if pad_small_groups and len(small) > 1:
        merged, leftovers = _merge_small_groups(small)
    else:
        merged = []
        leftovers = [
            (plan, index)
            for _, plans, indices in small
            for plan, index in zip(plans, indices)
        ]
    for super_sig, members in merged:
        all_plans = []
        all_indices = []
        all_embeds = []
        for sig, plans, indices in members:
            cols = _embed_signature(sig, super_sig)
            all_plans.extend(plans)
            all_indices.extend(indices)
            all_embeds.extend([cols] * len(plans))
        if obs.enabled:
            obs.exec_histogram("batch.group_size", len(all_plans))
            obs.exec_counter(
                "batch.padded_lanes",
                sum(
                    len(plans) * (len(super_sig) - len(sig))
                    for sig, plans, _ in members
                ),
            )
        group = _Group(
            nic,
            all_plans,
            all_indices,
            columns=_columns_for(super_sig),
            embeddings=all_embeds,
            warm=warm_list(all_plans, all_indices),
        )
        for local, outcome in enumerate(group.solve()):
            results[all_indices[local]] = outcome
    if leftovers:
        obs.exec_counter("batch.scalar_scenarios", len(leftovers))
    for plan, index in leftovers:
        demands = [p.demand for p in plan.workloads]
        warm = warm_starts[index] if warm_starts is not None else None
        try:
            results[index] = nic.run(demands, initial=warm or None)
        except ConvergenceError as error:
            results[index] = error

    if on_error == "raise":
        for outcome in results:
            if isinstance(outcome, Exception):
                raise outcome
    return results
