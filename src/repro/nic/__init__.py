"""Mechanistic SoC SmartNIC simulator.

This subpackage stands in for the NVIDIA BlueField-2 / AMD Pensando
hardware used by the paper. It models the three resources whose
contention the paper studies:

- the **memory subsystem** (shared last-level cache + DRAM) via an
  occupancy-proportional cache partition, miss-ratio curves and
  M/M/1-style DRAM bandwidth queueing (:mod:`repro.nic.memory`);
- **hardware accelerators** (regex, compression) via per-client request
  queues served round-robin by a fluid scheduler
  (:mod:`repro.nic.accelerator`);
- **CPU cores**, which are isolated per NF (core-level isolation, as the
  paper assumes), so they scale throughput but never contend.

:class:`repro.nic.nic.SmartNic` co-locates workloads and solves a damped
fixed point over their mutually dependent throughputs, then synthesises
the BlueField-2 performance counters of Table 11
(:mod:`repro.nic.counters`). Independent scenarios batch through
:meth:`~repro.nic.nic.SmartNic.run_batch`, which drives the same fixed
point as vectorized array operations over all scenarios at once
(:mod:`repro.nic.batch`) and is bit-identical to looping ``run()``.
"""

from repro.nic.accelerator import AcceleratorClient, AcceleratorEngine
from repro.nic.counters import COUNTER_NAMES, PerfCounters
from repro.nic.memory import MemoryActor, MemorySubsystem
from repro.nic.nic import RunResult, SmartNic, WorkloadResult
from repro.nic.spec import (
    AcceleratorSpec,
    NicSpecification,
    bluefield2_spec,
    pensando_spec,
)
from repro.nic.workload import (
    ExecutionPattern,
    Resource,
    StageDemand,
    WorkloadDemand,
)

__all__ = [
    "AcceleratorClient",
    "AcceleratorEngine",
    "AcceleratorSpec",
    "COUNTER_NAMES",
    "ExecutionPattern",
    "MemoryActor",
    "MemorySubsystem",
    "NicSpecification",
    "PerfCounters",
    "Resource",
    "RunResult",
    "SmartNic",
    "StageDemand",
    "WorkloadDemand",
    "WorkloadResult",
    "bluefield2_spec",
    "pensando_spec",
]
