"""Black-box memory-subsystem contention model (paper §4.1.2, §5.1.2).

Follows SLOMO's state-of-the-art approach: gradient boosting regression
over the competitors' hardware counter vector (Table 11). Yala's twist
is traffic awareness — the traffic attribute vector ``(flow_count,
packet_size, mtbr)`` is appended to the input features so one model
covers the whole traffic space instead of a single profile.

Prediction is available one scenario at a time (:meth:`predict`) or
batched (:meth:`predict_batch`); the batch path shares one scaler pass
and one packed-ensemble traversal across the whole request set and is
bit-identical per row to the single-call path.

Two training modes are supported:

- the default fits the GBR on the raw (scaled) feature matrix with the
  bit-exact ``vectorized`` split finder — this is the mode every paper
  experiment uses;
- ``quantize_bins=K`` snaps each feature to ``K`` quantile-derived
  representative values at fit time, which caps feature cardinality so
  the ``histogram`` split finder accelerates even continuous counter
  matrices. Prediction inputs are snapped through the same bins, so
  train and test features live on one grid. Quantization is a lossy
  speed/accuracy knob (like LightGBM's ``max_bin``), *not* a bit-exact
  transformation — experiments reproducing paper numbers keep it off.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError, ModelNotFittedError, ProfilingError
from repro.ml.gbr import GradientBoostingRegressor
from repro.ml.preprocessing import StandardScaler
from repro.nic.counters import PerfCounters
from repro.profiling.dataset import ProfileDataset
from repro.rng import SeedLike
from repro.traffic.profile import TrafficProfile


class MemoryContentionModel:
    """GBR predictor of throughput under memory-subsystem contention."""

    def __init__(
        self,
        nf_name: str,
        traffic_aware: bool = True,
        n_estimators: int = 300,
        learning_rate: float = 0.08,
        max_depth: int = 3,
        subsample: float = 0.9,
        seed: SeedLike = None,
        quantize_bins: int | None = None,
    ) -> None:
        if quantize_bins is not None and quantize_bins < 2:
            raise ConfigurationError(
                f"quantize_bins must be >= 2, got {quantize_bins}"
            )
        self.nf_name = nf_name
        self.traffic_aware = traffic_aware
        self.quantize_bins = quantize_bins
        self._scaler = StandardScaler()
        self._model = GradientBoostingRegressor(
            n_estimators=n_estimators,
            learning_rate=learning_rate,
            max_depth=max_depth,
            subsample=subsample,
            min_samples_leaf=2,
            seed=seed,
            # Quantization caps per-feature cardinality at fit time,
            # which is exactly the regime the histogram finder wins in.
            split_algorithm="histogram" if quantize_bins else "vectorized",
        )
        self._bin_edges: np.ndarray | None = None  # (K-1, d) interior edges
        self._bin_reps: np.ndarray | None = None  # (K, d) representatives
        self._fitted = False
        self._train_size = 0

    @property
    def quantized(self) -> bool:
        """Whether fit/predict features are snapped to quantile bins."""
        return self.quantize_bins is not None

    # ------------------------------------------------------------------
    def _fit_bins(self, scaled: np.ndarray) -> np.ndarray:
        """Learn per-feature quantile bins and return snapped features.

        Edges sit at the ``K-1`` interior quantiles of each (scaled)
        training column; each bin's representative is the column's
        quantile at the bin's probability midpoint, so representatives
        track the data distribution even for heavily skewed counters.
        """
        k = self.quantize_bins
        probs = np.linspace(0.0, 1.0, k + 1)
        self._bin_edges = np.quantile(scaled, probs[1:-1], axis=0)
        self._bin_reps = np.quantile(scaled, (probs[:-1] + probs[1:]) / 2.0, axis=0)
        return self._snap(scaled)

    def _snap(self, scaled: np.ndarray) -> np.ndarray:
        """Snap (scaled) feature rows onto the learned bin grid."""
        snapped = np.empty_like(scaled)
        for f in range(scaled.shape[1]):
            codes = np.searchsorted(
                self._bin_edges[:, f], scaled[:, f], side="right"
            )
            snapped[:, f] = self._bin_reps[codes, f]
        return snapped

    # ------------------------------------------------------------------
    def fit(self, dataset: ProfileDataset) -> "MemoryContentionModel":
        """Train on profiled samples of this NF."""
        if dataset.nf_name != self.nf_name:
            raise ProfilingError(
                f"dataset for {dataset.nf_name!r} given to model of {self.nf_name!r}"
            )
        if len(dataset) < 4:
            raise ProfilingError("need at least 4 samples to train")
        features = dataset.features(include_traffic=self.traffic_aware)
        targets = dataset.targets()
        scaled = self._scaler.fit_transform(features)
        if self.quantized:
            scaled = self._fit_bins(scaled)
        self._model.fit(scaled, targets)
        self._fitted = True
        self._train_size = len(dataset)
        return self

    # ------------------------------------------------------------------
    def _features(
        self,
        counters: PerfCounters,
        traffic: TrafficProfile,
        n_competitors: int,
    ) -> np.ndarray:
        row = np.concatenate([counters.as_vector(), [float(n_competitors)]])
        if self.traffic_aware:
            row = np.concatenate([row, traffic.as_vector()])
        return row.reshape(1, -1)

    def predict(
        self,
        competitor_counters: PerfCounters,
        traffic: TrafficProfile,
        n_competitors: int = 1,
    ) -> float:
        """Predicted throughput (Mpps) under the given contention."""
        return float(
            self.predict_batch([competitor_counters], [traffic], [n_competitors])[0]
        )

    def predict_batch(
        self,
        competitor_counters: list[PerfCounters],
        traffics: list[TrafficProfile],
        n_competitors: list[int],
    ) -> np.ndarray:
        """Predicted throughput for several scenarios at once -> (n,).

        One scaler pass and one ensemble traversal cover the whole
        batch; every row is bit-identical to a single-scenario
        :meth:`predict` call (which delegates here), so experiment
        sweeps can batch without changing results.
        """
        if not self._fitted:
            raise ModelNotFittedError(f"memory model for {self.nf_name!r} not fitted")
        if not (len(competitor_counters) == len(traffics) == len(n_competitors)):
            raise ProfilingError("predict_batch inputs must have equal lengths")
        if not traffics:
            return np.empty(0)
        rows = np.vstack(
            [
                self._features(counters, traffic, n)
                for counters, traffic, n in zip(
                    competitor_counters, traffics, n_competitors
                )
            ]
        )
        scaled = self._scaler.transform(rows)
        if self.quantized:
            scaled = self._snap(scaled)
        predictions = self._model.predict(scaled)
        return np.maximum(predictions, 1e-6)

    def predict_solo(self, traffic: TrafficProfile) -> float:
        """Predicted solo throughput (zero contention features)."""
        return self.predict(PerfCounters.zero(), traffic, n_competitors=0)

    # ------------------------------------------------------------------
    @property
    def train_size(self) -> int:
        """Number of samples the model was trained on."""
        return self._train_size

    def feature_importances(self) -> dict[str, float]:
        """Split-based importances keyed by feature name."""
        if not self._fitted:
            raise ModelNotFittedError("model not fitted")
        names = ProfileDataset.feature_names(include_traffic=self.traffic_aware)
        importances = self._model.feature_importances(len(names))
        return dict(zip(names, importances.tolist()))
