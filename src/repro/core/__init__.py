"""Yala core: per-resource contention models, composition, prediction.

This package is the paper's primary contribution:

- :mod:`~repro.core.accel_model` — white-box round-robin queueing model
  of accelerator contention (Eq. 1), made traffic-aware by expressing
  the request time as a linear function of traffic attributes (Eq. 4);
- :mod:`~repro.core.memory_model` — black-box gradient-boosting model of
  memory-subsystem contention over hardware counters, made traffic-aware
  by appending the traffic attribute vector to the features (§5.1.2);
- :mod:`~repro.core.composition` — execution-pattern-based composition
  of per-resource predictions (Eq. 2 for pipelines, Eq. 3 for
  run-to-completion) plus measurement-based pattern detection (§4.2);
- :mod:`~repro.core.predictor` — :class:`~repro.core.predictor.
  YalaPredictor` (one NF) and :class:`~repro.core.predictor.YalaSystem`
  (a fleet of NFs with joint co-location prediction);
- :mod:`~repro.core.slomo` — the SLOMO baseline (memory-only GBR with
  sensitivity extrapolation);
- :mod:`~repro.core.baselines` — sum / min composition baselines
  (§2.2.1).
"""

from repro.core.accel_model import AcceleratorShare, QueueingAcceleratorModel
from repro.core.baselines import compose_min, compose_sum
from repro.core.composition import (
    PatternDetectionResult,
    detect_execution_pattern,
    pipeline_throughput,
    run_to_completion_throughput,
)
from repro.core.memory_model import MemoryContentionModel
from repro.core.predictor import CompetitorSpec, YalaPredictor, YalaSystem
from repro.core.slomo import SlomoPredictor

__all__ = [
    "AcceleratorShare",
    "CompetitorSpec",
    "MemoryContentionModel",
    "PatternDetectionResult",
    "QueueingAcceleratorModel",
    "SlomoPredictor",
    "YalaPredictor",
    "YalaSystem",
    "compose_min",
    "compose_sum",
    "detect_execution_pattern",
    "pipeline_throughput",
    "run_to_completion_throughput",
]
