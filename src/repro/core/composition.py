"""Execution-pattern-based composition of per-resource models (§4.2).

Per-resource models output the NF's end-to-end throughput if *only*
that resource were contended. Composition merges them into the
multi-resource prediction:

- **Pipeline** (Eq. 2): end-to-end throughput is set by the slowest
  stage, so only the largest per-resource drop matters:
  ``T = T_solo - max_k dT_k``.
- **Run-to-completion** (Eq. 3): per-packet stage times add, so drops
  compound: ``1/T = sum_k 1/(T_solo - dT_k) - (r-1)/T_solo``.

The pattern of an unknown NF is detected from measurements alone
(§4.2): co-run it with both benches, compose the single-resource
measurements under each hypothesis and keep the better fit.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.nf.framework import NetworkFunction
from repro.nic.workload import ExecutionPattern
from repro.profiling.collector import ProfilingCollector
from repro.profiling.contention import ContentionLevel
from repro.traffic.profile import TrafficProfile

_FLOOR = 1e-6


def _drops(solo: float, per_resource: list[float]) -> list[float]:
    """Per-resource throughput drops, clamped to [0, solo)."""
    if solo <= 0:
        raise ConfigurationError("solo throughput must be positive")
    return [float(np.clip(solo - t, 0.0, solo - _FLOOR)) for t in per_resource]


def pipeline_throughput(solo: float, per_resource: list[float]) -> float:
    """Eq. 2: the largest single-resource drop dominates."""
    drops = _drops(solo, per_resource)
    worst = max(drops, default=0.0)
    return max(solo - worst, _FLOOR)


def run_to_completion_throughput(solo: float, per_resource: list[float]) -> float:
    """Eq. 3: drops compound through additive sojourn times."""
    drops = _drops(solo, per_resource)
    if not drops:
        return solo
    inverse = sum(1.0 / (solo - d) for d in drops) - (len(drops) - 1) / solo
    return max(1.0 / inverse, _FLOOR)


def compose(
    pattern: ExecutionPattern, solo: float, per_resource: list[float]
) -> float:
    """Dispatch to the pattern's composition rule."""
    if pattern is ExecutionPattern.PIPELINE:
        return pipeline_throughput(solo, per_resource)
    return run_to_completion_throughput(solo, per_resource)


# ----------------------------------------------------------------------
# Pattern detection (§4.2 "Detecting execution pattern")
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PatternDetectionResult:
    """Outcome of the measurement-based pattern test."""

    pattern: ExecutionPattern
    pipeline_error: float  # MAPE of the Eq. 2 hypothesis, percent
    rtc_error: float  # MAPE of the Eq. 3 hypothesis, percent

    @property
    def confident(self) -> bool:
        """True when the two hypotheses are clearly separated."""
        return abs(self.pipeline_error - self.rtc_error) > 1.0


#: Default multi-resource probe points: (mem CAR, regex rate).
_PROBE_POINTS: tuple[tuple[float, float], ...] = (
    (120.0, 0.6),
    (200.0, 1.2),
    (250.0, 1.8),
)


def detect_execution_pattern(
    collector: ProfilingCollector,
    nf: NetworkFunction,
    traffic: TrafficProfile | None = None,
    probe_points: tuple[tuple[float, float], ...] = _PROBE_POINTS,
) -> PatternDetectionResult:
    """Infer an NF's execution pattern from co-run measurements.

    For each probe point we measure the NF under memory-only contention,
    accelerator-only contention, and combined contention, then check
    whether Eq. 2 or Eq. 3 better explains the combined result. No
    source-code knowledge is used.
    """
    traffic = traffic or TrafficProfile()
    accelerators = nf.uses_accelerators(traffic)
    solo = collector.solo(nf, traffic).throughput_mpps

    if not accelerators:
        # Memory is the only modeled contended resource: with a single
        # per-resource model Eq. 2 and Eq. 3 are algebraically identical
        # (both reduce to T = T_mem), so the pattern is unobservable and
        # irrelevant for prediction. Report run-to-completion with zero
        # separation.
        return PatternDetectionResult(
            pattern=ExecutionPattern.RUN_TO_COMPLETION,
            pipeline_error=0.0,
            rtc_error=0.0,
        )

    probes = []
    for mem_car, accel_rate in probe_points:
        mem_only = ContentionLevel(mem_car=mem_car)
        # Probe the accelerator whose contention bites hardest: for NFs
        # with a compression stage that is usually compression (it has
        # the lowest stage capacity), otherwise regex.
        if "compression" in accelerators:
            accel_only = ContentionLevel(compression_rate=accel_rate)
        else:
            accel_only = ContentionLevel(regex_rate=accel_rate, regex_mtbr=900.0)
        probes.append((mem_only, accel_only, _merge_levels(mem_only, accel_only)))

    # All probe co-runs are independent: measure them in one batch
    # (identical samples to the seed's per-point loop).
    samples = collector.profile_many(
        [
            (nf, contention, traffic)
            for probe in probes
            for contention in probe
        ]
    )
    pipeline_errors, rtc_errors = [], []
    for point in range(len(probes)):
        t_mem, t_accel, t_truth = (
            s.throughput_mpps for s in samples[3 * point : 3 * point + 3]
        )
        per_resource = [t_mem, t_accel]
        pipeline_errors.append(
            abs(pipeline_throughput(solo, per_resource) - t_truth) / t_truth
        )
        rtc_errors.append(
            abs(run_to_completion_throughput(solo, per_resource) - t_truth) / t_truth
        )

    pipeline_mape = float(100.0 * np.mean(pipeline_errors))
    rtc_mape = float(100.0 * np.mean(rtc_errors))
    pattern = (
        ExecutionPattern.PIPELINE
        if pipeline_mape <= rtc_mape
        else ExecutionPattern.RUN_TO_COMPLETION
    )
    return PatternDetectionResult(
        pattern=pattern, pipeline_error=pipeline_mape, rtc_error=rtc_mape
    )


def _merge_levels(first: ContentionLevel, second: ContentionLevel) -> ContentionLevel:
    """Combine two contention levels (fields are max-merged)."""
    return ContentionLevel(
        mem_car=max(first.mem_car, second.mem_car),
        mem_wss_mb=first.mem_wss_mb if first.mem_car >= second.mem_car else second.mem_wss_mb,
        regex_rate=max(first.regex_rate, second.regex_rate),
        regex_mtbr=first.regex_mtbr if first.regex_rate >= second.regex_rate else second.regex_mtbr,
        regex_payload_bytes=first.regex_payload_bytes
        if first.regex_rate >= second.regex_rate
        else second.regex_payload_bytes,
        compression_rate=max(first.compression_rate, second.compression_rate),
        compression_payload_bytes=first.compression_payload_bytes
        if first.compression_rate >= second.compression_rate
        else second.compression_payload_bytes,
    )
