"""Naive multi-resource composition baselines (paper §2.2.1, Table 4).

- **sum composition** adds the per-resource throughput losses
  (the LogNIC/nn-Meter style strawman [37, 67]);
- **min composition** takes the largest loss, i.e. the most
  pessimistic single resource (the E3/FlexTOE style strawman [47, 58]).

Both use the same per-resource models as Yala; only the composition
differs, so comparisons isolate the value of execution-pattern-based
composition.
"""

from __future__ import annotations


from repro.errors import ConfigurationError

_FLOOR = 1e-6


def compose_sum(solo: float, per_resource: list[float]) -> float:
    """Sum composition: subtract every per-resource drop."""
    if solo <= 0:
        raise ConfigurationError("solo throughput must be positive")
    total_drop = sum(max(0.0, solo - t) for t in per_resource)
    return float(max(solo - total_drop, _FLOOR))


def compose_min(solo: float, per_resource: list[float]) -> float:
    """Min composition: keep only the largest per-resource drop.

    Numerically identical to the pipeline rule (Eq. 2); listed
    separately because as a *baseline* it is applied regardless of the
    NF's actual execution pattern.
    """
    if solo <= 0:
        raise ConfigurationError("solo throughput must be positive")
    worst = max((max(0.0, solo - t) for t in per_resource), default=0.0)
    return float(max(solo - worst, _FLOOR))
