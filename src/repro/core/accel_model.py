"""White-box queueing model of accelerator contention (paper §4.1.1, §5.1.1).

SmartNIC accelerators expose no fine-grained performance counters, so a
black-box counter-driven model is infeasible. Yala instead exploits the
round-robin queue discipline of the accelerator drivers:

- at equilibrium every saturated queue completes one request per RR
  cycle, so the target's rate is ``n_i / sum_j n_j t_j`` (Eq. 1);
- the per-request time of an NF is linear in its traffic attributes:
  ``t = t0 + b * payload + a * matches`` (Eq. 4 generalised to include
  payload size, since scan time grows with request size).

Model parameters ``(n_i, t_i(traffic))`` are inferred *without source
code access* by co-running the NF with regex-bench at two known heavy
settings and solving the pair of equilibrium equations (§4.1.1), then
regressing the inferred request times over a small traffic grid.

The model deliberately ignores the driver's queue-switch overhead (it
cannot observe it), which gives it the realistic ~1-3% residual error
the paper reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.errors import ConfigurationError, ModelNotFittedError, ProfilingError
from repro.ml.linear import LinearRegression
from repro.nf.framework import NetworkFunction
from repro.nic.spec import COMPRESSION, REGEX
from repro.profiling.collector import ProfilingCollector
from repro.profiling.contention import ContentionLevel
from repro.traffic.profile import TrafficProfile

#: Heavy regex-bench calibration settings (payload bytes, MTBR). Both
#: saturate the engine so the target NF is regex-bottlenecked during
#: calibration, as §4.1.1 requires.
_REGEX_CALIBRATION = ((2048.0, 2200.0), (3072.0, 1400.0))
#: Compression-bench calibration settings (payload bytes,).
_COMPRESSION_CALIBRATION = (3072.0, 6144.0)

#: Published per-request engine setup cost (datasheet values — the same
#: source the benches are calibrated against).
_ENGINE_BASE_TIME = {REGEX: 0.010, COMPRESSION: 0.040}


@dataclass(frozen=True)
class AcceleratorShare:
    """A competitor's demand on an accelerator, as the model sees it.

    ``offered_rate`` of ``None`` marks a competitor assumed to keep its
    queues non-empty (the Eq. 1 equilibrium assumption).
    """

    name: str
    n_queues: float
    request_time_us: float
    offered_rate: Optional[float] = None

    def __post_init__(self) -> None:
        if self.n_queues < 1:
            raise ConfigurationError("n_queues must be >= 1")
        if self.request_time_us <= 0:
            raise ConfigurationError("request_time_us must be positive")
        if self.offered_rate is not None and self.offered_rate < 0:
            raise ConfigurationError("offered_rate must be >= 0 or None")


def waterfill_rates(shares: list[AcceleratorShare]) -> dict[str, float]:
    """Round-robin equilibrium rates for ``shares`` (the model's Eq. 1).

    A clean-room reimplementation of the RR fluid behaviour from first
    principles — the *model*, distinct from the simulator's engine
    (which additionally charges queue-switch overhead).
    """
    if not shares:
        return {}
    saturated = {s.name for s in shares if s.offered_rate is None}
    for _ in range(64):
        unsat = [s for s in shares if s.name not in saturated]
        busy = sum(s.offered_rate * s.request_time_us for s in unsat)
        sat = [s for s in shares if s.name in saturated]
        if not sat:
            if busy <= 1.0:
                return {s.name: float(s.offered_rate) for s in shares}
            heaviest = max(unsat, key=lambda s: s.offered_rate * s.request_time_us)
            saturated.add(heaviest.name)
            continue
        weight = sum(s.n_queues * s.request_time_us for s in sat)
        spare = max(0.0, 1.0 - busy)
        per_queue = spare / weight if weight > 0 else 0.0
        moved = False
        for s in unsat:
            if s.offered_rate > s.n_queues * per_queue + 1e-12:
                saturated.add(s.name)
                moved = True
        if moved:
            continue
        released = False
        for s in sat:
            if (
                s.offered_rate is not None
                and s.offered_rate < s.n_queues * per_queue - 1e-12
            ):
                saturated.discard(s.name)
                released = True
        if released:
            continue
        rates = {}
        for s in shares:
            if s.name in saturated:
                rates[s.name] = s.n_queues * per_queue
            else:
                rates[s.name] = float(s.offered_rate)
        return rates
    raise ModelNotFittedError("model water-filling failed to converge")


class QueueingAcceleratorModel:
    """Per-(NF, accelerator) white-box contention model."""

    def __init__(self, nf_name: str, accelerator: str) -> None:
        if accelerator not in (REGEX, COMPRESSION):
            raise ConfigurationError(f"unsupported accelerator {accelerator!r}")
        self.nf_name = nf_name
        self.accelerator = accelerator
        self.n_queues_: float | None = None
        self._time_model: LinearRegression | None = None
        self._fit_errors: list[float] = []
        self.base_time_: float = _ENGINE_BASE_TIME[accelerator]
        self.per_byte_: float = 0.0
        self.per_match_: float = 0.0
        self.raw_intercept_: float = 0.0

    # ------------------------------------------------------------------
    # Fitting (§4.1.1 equilibrium solve + §5.1.1 traffic regression)
    # ------------------------------------------------------------------
    def fit(
        self,
        collector: ProfilingCollector,
        nf: NetworkFunction,
        traffic_grid: list[TrafficProfile] | None = None,
        base_traffic: TrafficProfile = TrafficProfile(),
    ) -> "QueueingAcceleratorModel":
        """Infer ``(n_i, t_i(traffic))`` from equilibrium co-runs."""
        if traffic_grid is None:
            traffic_grid = self._default_traffic_grid(base_traffic)

        # Pass 1: measure both equilibrium settings at every grid point.
        # The grid points are independent co-runs, so they profile as
        # one batch (identical samples to the seed's per-point loop).
        samples = collector.profile_many(
            [
                (nf, self._bench_contention(setting), traffic)
                for traffic in traffic_grid
                for setting in (0, 1)
            ]
        )
        inverse_rates: list[list[float]] = []
        bench_times = [self._bench_request_time(0), self._bench_request_time(1)]
        for point in range(len(traffic_grid)):
            pair = []
            for sample in samples[2 * point : 2 * point + 2]:
                if sample.throughput_mpps <= 0:
                    raise ProfilingError("equilibrium co-run produced zero throughput")
                pair.append(1.0 / sample.throughput_mpps)
            inverse_rates.append(pair)

        # Pass 2: queue count from the pairwise slopes — the pairwise
        # estimate amplifies measurement noise by t_b/n^2, so take the
        # median across the grid and snap to an integer (queue counts
        # are integral on real drivers).
        queue_estimates = []
        delta_bench = bench_times[0] - bench_times[1]
        for pair in inverse_rates:
            delta_inverse = pair[0] - pair[1]
            if abs(delta_inverse) > 1e-12:
                queue_estimates.append(max(1.0, delta_bench / delta_inverse))
        median_n = float(np.median(queue_estimates)) if queue_estimates else 1.0
        self.n_queues_ = max(1.0, float(round(median_n)))

        # Pass 3: request time per traffic point with n fixed, averaging
        # both settings to cancel sampling noise.
        rows, times = [], []
        for traffic, pair in zip(traffic_grid, inverse_rates):
            t_est = float(
                np.mean(
                    [
                        inv - t_b / self.n_queues_
                        for inv, t_b in zip(pair, bench_times)
                    ]
                )
            )
            rows.append(self._time_features(traffic))
            times.append(max(t_est, 1e-4))
        self._time_model = LinearRegression().fit(np.array(rows), np.array(times))
        # Residuals of the linear time law over the calibration grid.
        predicted = self._time_model.predict(np.array(rows))
        self._fit_errors = list(
            np.abs(predicted - np.array(times)) / np.array(times)
        )
        # The equilibrium solve observes the NF's *end-to-end* inverse
        # rate, so for run-to-completion NFs the fitted intercept absorbs
        # the per-packet CPU/memory time on top of the true engine setup
        # cost — the traffic-dependent slopes are identified correctly,
        # the constant is not. Rebuild the engine time from the
        # accelerator's published base cost plus the fitted slopes; the
        # raw fit stays available as ``raw_intercept_`` for diagnostics.
        self.raw_intercept_ = float(self._time_model.intercept_)
        self.per_byte_ = max(float(self._time_model.coef_[0]), 0.0)
        self.per_match_ = max(float(self._time_model.coef_[1]), 0.0)
        self.base_time_ = (
            _ENGINE_BASE_TIME[self.accelerator]
        )
        return self

    def _default_traffic_grid(self, base: TrafficProfile) -> list[TrafficProfile]:
        grid = []
        for mtbr in (100.0, 400.0, 700.0, 1000.0):
            grid.append(replace_traffic(base, mtbr=mtbr))
        for packet_size in (256, 1500):
            grid.append(replace_traffic(base, packet_size=packet_size))
        return grid

    def _bench_contention(self, setting_index: int) -> ContentionLevel:
        """Closed-loop-equivalent heavy bench contention."""
        if self.accelerator == REGEX:
            payload, mtbr = _REGEX_CALIBRATION[setting_index]
            # A very high offered rate saturates the bench's queue.
            return ContentionLevel(
                regex_rate=50.0, regex_mtbr=mtbr, regex_payload_bytes=payload
            )
        payload = _COMPRESSION_CALIBRATION[setting_index]
        return ContentionLevel(
            compression_rate=50.0, compression_payload_bytes=payload
        )

    def _bench_request_time(self, setting_index: int) -> float:
        """The bench's request time, known because we configured it.

        Computed from the published accelerator datasheet rates the
        benches are calibrated against — *not* from simulator state.
        """
        if self.accelerator == REGEX:
            payload, mtbr = _REGEX_CALIBRATION[setting_index]
            # regex-bench's own published calibration: base + scan + match
            return 0.010 + payload / 2000.0 + payload * mtbr / 1e6 * 0.250
        payload = _COMPRESSION_CALIBRATION[setting_index]
        return 0.040 + payload / 1500.0

    def _solve_equilibrium_pair(
        self,
        collector: ProfilingCollector,
        nf: NetworkFunction,
        traffic: TrafficProfile,
    ) -> tuple[float, float]:
        """Solve (n_i, t_i) from two equilibrium co-runs (§4.1.1).

        With the bench saturated at known ``(n_b=1, t_b)``:
        ``1/T_k = t_i + t_bk / n_i`` for settings k=1,2.
        """
        inverse_rates = []
        bench_times = []
        for setting in (0, 1):
            sample = collector.profile_one(nf, self._bench_contention(setting), traffic)
            if sample.throughput_mpps <= 0:
                raise ProfilingError("equilibrium co-run produced zero throughput")
            inverse_rates.append(1.0 / sample.throughput_mpps)
            bench_times.append(self._bench_request_time(setting))
        delta_inverse = inverse_rates[0] - inverse_rates[1]
        delta_bench = bench_times[0] - bench_times[1]
        if abs(delta_inverse) < 1e-12:
            n_est = 1.0
        else:
            n_est = max(1.0, delta_bench / delta_inverse)
        t_est = inverse_rates[0] - bench_times[0] / n_est
        t_est = max(t_est, 1e-4)
        return n_est, t_est

    @staticmethod
    def _time_features(traffic: TrafficProfile) -> np.ndarray:
        """Eq. 4 features: payload bytes and expected matches/packet."""
        return np.array([float(traffic.payload_bytes), traffic.matches_per_packet])

    # ------------------------------------------------------------------
    # Prediction
    # ------------------------------------------------------------------
    def request_time(self, traffic: TrafficProfile) -> float:
        """Predicted per-request engine time ``t_i`` under ``traffic``.

        ``base + per_byte * payload + per_match * matches`` with the
        base taken from the accelerator datasheet (see ``fit``).
        """
        if self._time_model is None:
            raise ModelNotFittedError("accelerator model not fitted")
        features = self._time_features(traffic)
        value = (
            self.base_time_
            + self.per_byte_ * float(features[0])
            + self.per_match_ * float(features[1])
        )
        return max(value, 1e-4)

    def share(
        self, traffic: TrafficProfile, offered_rate: Optional[float] = None
    ) -> AcceleratorShare:
        """This NF's demand descriptor for use as a competitor."""
        if self.n_queues_ is None:
            raise ModelNotFittedError("accelerator model not fitted")
        return AcceleratorShare(
            name=self.nf_name,
            n_queues=self.n_queues_,
            request_time_us=self.request_time(traffic),
            offered_rate=offered_rate,
        )

    def solo_rate(self, traffic: TrafficProfile) -> float:
        """Engine service rate when this NF runs alone (requests/us)."""
        return 1.0 / self.request_time(traffic)

    def contended_rate(
        self,
        traffic: TrafficProfile,
        competitors: list[AcceleratorShare],
    ) -> float:
        """Predicted service rate under ``competitors`` (Eq. 1 / Eq. 4).

        The target is treated as saturating its queues; open-loop
        competitors (benches with known rates) are handled by the
        water-filling generalisation of the equilibrium equation.
        """
        target = self.share(traffic, offered_rate=None)
        rates = waterfill_rates([target] + list(competitors))
        return rates[target.name]

    @property
    def mean_fit_error(self) -> float:
        """Mean relative residual of the time law on calibration data."""
        if not self._fit_errors:
            raise ModelNotFittedError("accelerator model not fitted")
        return float(np.mean(self._fit_errors))


def replace_traffic(
    base: TrafficProfile,
    flow_count: int | None = None,
    packet_size: int | None = None,
    mtbr: float | None = None,
) -> TrafficProfile:
    """Copy ``base`` with selected attributes replaced."""
    return TrafficProfile(
        flow_count=flow_count if flow_count is not None else base.flow_count,
        packet_size=packet_size if packet_size is not None else base.packet_size,
        mtbr=mtbr if mtbr is not None else base.mtbr,
    )
