"""SLOMO baseline (Manousis et al., SIGCOMM 2020), as used in the paper.

SLOMO predicts throughput under memory-subsystem contention with
gradient boosting over competitor hardware counters, trained at a fixed
traffic profile. It is the state of the art the paper compares against,
with two structural limitations Yala addresses:

- it models only the memory subsystem, so accelerator contention is
  invisible to it (§2.2.1);
- it handles traffic change only through *sensitivity extrapolation* —
  scaling the fixed-profile prediction by the ratio of solo throughputs
  — which works for small deviations (~20% in flow count) and degrades
  beyond (§2.2.2, Fig. 7b).
"""

from __future__ import annotations

from typing import Optional

from repro.core.memory_model import MemoryContentionModel
from repro.errors import ModelNotFittedError, ProfilingError
from repro.nf.framework import NetworkFunction
from repro.nic.counters import PerfCounters
from repro.profiling.collector import ProfilingCollector
from repro.profiling.contention import ContentionLevel, random_contention
from repro.profiling.dataset import ProfileDataset
from repro.rng import DEFAULT_SEED, SeedLike, derive_seed, make_rng, normalize_seed
from repro.traffic.profile import TrafficProfile


class SlomoPredictor:
    """Memory-only, fixed-traffic GBR predictor with extrapolation."""

    def __init__(self, nf_name: str, seed: SeedLike = None) -> None:
        self.nf_name = nf_name
        # The GBR model and the contention sampler need *independent*
        # streams: deriving both from the same int seed used to hand
        # them identical generators, correlating training subsampling
        # with the contention sweep.
        base = normalize_seed(seed)
        if base is None:
            base = derive_seed(DEFAULT_SEED, "slomo", nf_name)
        self._model = MemoryContentionModel(
            nf_name, traffic_aware=False, seed=make_rng(derive_seed(base, "gbr"))
        )
        self._rng = make_rng(derive_seed(base, "contention"))
        self._collector: Optional[ProfilingCollector] = None
        self._nf: Optional[NetworkFunction] = None
        self._train_traffic: Optional[TrafficProfile] = None
        self._train_solo: float = 0.0

    # ------------------------------------------------------------------
    def train(
        self,
        collector: ProfilingCollector,
        nf: NetworkFunction,
        train_traffic: TrafficProfile = TrafficProfile(),
        n_samples: int = 400,
    ) -> "SlomoPredictor":
        """Train at one traffic profile with mem-bench contention sweeps.

        SLOMO gets the same number of training samples as Yala, all
        concentrated on ``train_traffic`` (the paper's setup).
        """
        if nf.name != self.nf_name:
            raise ProfilingError(f"NF {nf.name!r} given to SLOMO of {self.nf_name!r}")
        dataset = ProfileDataset(nf.name)
        n_solo = max(2, n_samples // 10)
        # Contention levels are drawn up front (profiling consumes no
        # randomness, so the stream is identical to the seed's
        # draw-then-profile loop) and measured as one batch.
        levels = [
            ContentionLevel()
            if index < n_solo
            else random_contention(seed=self._rng, memory=True)
            for index in range(n_samples)
        ]
        for sample in collector.profile_many(
            [(nf, contention, train_traffic) for contention in levels]
        ):
            dataset.add(sample)
        self._model.fit(dataset)
        self._collector = collector
        self._nf = nf
        self._train_traffic = train_traffic
        self._train_solo = collector.solo(nf, train_traffic).throughput_mpps
        return self

    # ------------------------------------------------------------------
    def predict(
        self,
        competitor_counters: PerfCounters,
        traffic: TrafficProfile | None = None,
        extrapolate: bool = True,
        n_competitors: int = 1,
    ) -> float:
        """Predict throughput; extrapolates when traffic differs.

        Sensitivity extrapolation (SLOMO §6): the fixed-profile
        prediction is scaled by the ratio of the NF's solo throughput at
        the test traffic to that at the training traffic. This assumes
        the sensitivity *shape* transfers across traffic profiles —
        approximately true for small deviations only.
        """
        return self.predict_batch(
            [competitor_counters],
            [traffic],
            [n_competitors],
            extrapolate=extrapolate,
        )[0]

    def predict_batch(
        self,
        competitor_counters: list[PerfCounters],
        traffics: list[TrafficProfile | None],
        n_competitors: list[int],
        extrapolate: bool = True,
    ) -> list[float]:
        """Predict several contention scenarios at once -> list of Mpps.

        The fixed-profile GBR evaluation — the expensive part — runs as
        one :meth:`MemoryContentionModel.predict_batch` call over the
        whole request set; the per-row extrapolation ratios reuse the
        collector's cached solo runs. Every entry is bit-identical to a
        single :meth:`predict` call (which delegates here), so
        experiment sweeps can batch without changing results.
        """
        bases = self._bases(competitor_counters, traffics, n_competitors)
        return self._finalize(bases, traffics, extrapolate)

    def predict_batch_both(
        self,
        competitor_counters: list[PerfCounters],
        traffics: list[TrafficProfile | None],
        n_competitors: list[int],
    ) -> tuple[list[float], list[float]]:
        """Extrapolated and raw predictions sharing one GBR pass.

        Equivalent to two :meth:`predict_batch` calls (with and without
        ``extrapolate``) but the expensive fixed-profile ensemble
        evaluation — identical for both arms — runs once.
        """
        bases = self._bases(competitor_counters, traffics, n_competitors)
        return (
            self._finalize(bases, traffics, True),
            self._finalize(bases, traffics, False),
        )

    def _bases(self, competitor_counters, traffics, n_competitors):
        """Validate inputs and run the fixed-profile GBR batch."""
        if self._train_traffic is None or self._collector is None:
            raise ModelNotFittedError(f"SLOMO for {self.nf_name!r} not trained")
        if not (len(competitor_counters) == len(traffics) == len(n_competitors)):
            raise ProfilingError("predict_batch inputs must have equal lengths")
        if not competitor_counters:
            return []
        return self._model.predict_batch(
            competitor_counters,
            [self._train_traffic] * len(traffics),
            n_competitors,
        )

    def _finalize(self, bases, traffics, extrapolate: bool) -> list[float]:
        """Apply per-row sensitivity extrapolation to the GBR bases."""
        predictions = []
        for base, traffic in zip(bases, traffics):
            base = float(base)
            if traffic is None or traffic == self._train_traffic or not extrapolate:
                predictions.append(base)
                continue
            solo_at_test = self._collector.solo(self._nf, traffic).throughput_mpps
            ratio = solo_at_test / self._train_solo if self._train_solo > 0 else 1.0
            predictions.append(float(max(base * ratio, 1e-6)))
        return predictions

    @property
    def train_traffic(self) -> TrafficProfile:
        if self._train_traffic is None:
            raise ModelNotFittedError("SLOMO not trained")
        return self._train_traffic
