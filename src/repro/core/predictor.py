"""The Yala predictor (§3): per-NF models plus system-level prediction.

:class:`YalaPredictor` bundles everything Yala learns about one NF
offline: its detected execution pattern, the traffic-aware memory model
and the white-box accelerator models. :class:`YalaSystem` manages a
fleet of trained predictors and answers the question operators actually
ask: *"if I put these NFs together on one NIC, what throughput will each
get?"* — resolved as a small fixed point over the per-NF predictions,
because each NF's accelerator pressure depends on its own predicted
rate.

Hot-path notes: :meth:`YalaPredictor.predict_many` batches whole
scenario sweeps through the memory model (bit-identical to looping
:meth:`YalaPredictor.predict`), the colocation fixed point evaluates
the memory model once per target instead of once per iteration, and
:meth:`YalaSystem.train` accepts ``jobs`` for process-parallel per-NF
training with deterministic (seed-derived) results.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import NamedTuple, Optional

from repro.core.accel_model import AcceleratorShare, QueueingAcceleratorModel
from repro.core.composition import (
    PatternDetectionResult,
    compose,
    detect_execution_pattern,
)
from repro.core.memory_model import MemoryContentionModel
from repro.errors import ConfigurationError, ModelNotFittedError, ProfilingError
from repro.nf.catalog import make_nf
from repro.nf.framework import NetworkFunction
from repro.nic.counters import PerfCounters
from repro.nic.nic import SmartNic
from repro.nic.spec import COMPRESSION, REGEX
from repro.nic.workload import ExecutionPattern
from repro.profiling.adaptive import AdaptiveProfiler, AdaptiveProfilingReport
from repro.profiling.collector import ProfilingCollector
from repro.profiling.contention import ContentionLevel
from repro.rng import SeedLike, derive_seed, make_rng, normalize_seed
from repro.traffic.profile import TrafficProfile

#: Iterations of the system-level prediction fixed point.
_JOINT_ITERATIONS = 10


class _PlanEntry(NamedTuple):
    """Per-placement evaluation plan of ``predict_colocation_batch``.

    ``solo_slot``/``memory_slot`` index the predictor's batched
    memory-model evaluation (solo slots are shared across cases with
    the same traffic).
    """

    name: str
    predictor: "YalaPredictor"
    traffic: "TrafficProfile"
    competitors: list["CompetitorSpec"]
    peer_slots: list[int]
    solo_slot: int
    memory_slot: int


@dataclass(frozen=True)
class CompetitorSpec:
    """A co-located competitor as the predictor sees it.

    Either a catalogued NF at some traffic profile, or a synthetic bench
    at a contention level (used in microbenchmark experiments).
    """

    kind: str  # "nf" | "bench"
    nf_name: str = ""
    traffic: TrafficProfile = TrafficProfile()
    contention: Optional[ContentionLevel] = None

    def __post_init__(self) -> None:
        if self.kind not in ("nf", "bench"):
            raise ConfigurationError(f"unknown competitor kind {self.kind!r}")
        if self.kind == "nf" and not self.nf_name:
            raise ConfigurationError("nf competitor needs a name")
        if self.kind == "bench" and self.contention is None:
            raise ConfigurationError("bench competitor needs a contention level")

    @staticmethod
    def nf(name: str, traffic: TrafficProfile | None = None) -> "CompetitorSpec":
        return CompetitorSpec(
            kind="nf", nf_name=name, traffic=traffic or TrafficProfile()
        )

    @staticmethod
    def bench(contention: ContentionLevel) -> "CompetitorSpec":
        return CompetitorSpec(kind="bench", contention=contention)


class YalaPredictor:
    """Everything Yala knows about one NF after offline profiling."""

    def __init__(
        self,
        nf: NetworkFunction,
        collector: ProfilingCollector,
        seed: SeedLike = None,
    ) -> None:
        self.nf = nf
        self.nf_name = nf.name
        self._collector = collector
        # Honour the full SeedLike contract (int, Generator, or None)
        # instead of silently replacing non-int seeds with a name-derived
        # constant.
        base = normalize_seed(seed)
        self._seed = base if base is not None else derive_seed(0x1A1A, nf.name)
        self.pattern: Optional[ExecutionPattern] = None
        self.pattern_detection: Optional[PatternDetectionResult] = None
        self.memory_model: Optional[MemoryContentionModel] = None
        self.accel_models: dict[str, QueueingAcceleratorModel] = {}
        self.profiling_report: Optional[AdaptiveProfilingReport] = None

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------
    def train(
        self,
        quota: int = 400,
        traffic_aware: bool = True,
        base_traffic: TrafficProfile = TrafficProfile(),
        detect_pattern: bool = True,
        quantize_bins: Optional[int] = None,
    ) -> "YalaPredictor":
        """Run the full offline pipeline: pattern, accel models, memory.

        ``quantize_bins`` opts the memory model into the quantized
        (histogram-split) training mode — a lossy speed knob for large
        batch-profiled sweeps; the default stays the bit-exact path.
        """
        if detect_pattern:
            self.pattern_detection = detect_execution_pattern(
                self._collector, self.nf, base_traffic
            )
            self.pattern = self.pattern_detection.pattern
        else:
            self.pattern = self.nf.pattern

        for accelerator in self.nf.uses_accelerators(base_traffic):
            model = QueueingAcceleratorModel(self.nf_name, accelerator)
            model.fit(self._collector, self.nf, base_traffic=base_traffic)
            self.accel_models[accelerator] = model

        profiler = AdaptiveProfiler(
            self._collector,
            quota=quota,
            seed=make_rng(derive_seed(self._seed, "adaptive")),
        )
        self.profiling_report = profiler.profile(self.nf, base_traffic=base_traffic)
        self.memory_model = MemoryContentionModel(
            self.nf_name,
            traffic_aware=traffic_aware,
            seed=make_rng(derive_seed(self._seed, "gbr")),
            quantize_bins=quantize_bins,
        )
        self.memory_model.fit(self.profiling_report.dataset)
        return self

    @classmethod
    def train_for(
        cls,
        nf_name: str,
        nic: SmartNic,
        seed: SeedLike = None,
        quota: int = 400,
        traffic_aware: bool = True,
    ) -> "YalaPredictor":
        """Convenience constructor: build NF, collector, and train."""
        collector = ProfilingCollector(nic)
        seed_int = normalize_seed(seed)
        if seed_int is None:
            seed_int = derive_seed(0x1A1A, nf_name)
        predictor = cls(make_nf(nf_name), collector, seed=seed_int)
        return predictor.train(quota=quota, traffic_aware=traffic_aware)

    # ------------------------------------------------------------------
    # Per-resource predictions
    # ------------------------------------------------------------------
    def predict_solo(self, traffic: TrafficProfile) -> float:
        """Predicted solo throughput at ``traffic``."""
        if self.memory_model is None:
            raise ModelNotFittedError(f"{self.nf_name}: train() first")
        return self.memory_model.predict_solo(traffic)

    def _memory_throughput(
        self, counters: PerfCounters, traffic: TrafficProfile, n_competitors: int
    ) -> float:
        if self.memory_model is None:
            raise ModelNotFittedError(f"{self.nf_name}: train() first")
        return self.memory_model.predict(counters, traffic, n_competitors)

    def _accelerator_throughput(
        self,
        accelerator: str,
        traffic: TrafficProfile,
        competitor_shares: list[AcceleratorShare],
        solo: float,
    ) -> float:
        """End-to-end throughput if only ``accelerator`` were contended.

        The queueing model yields resource-level rates; the conversion
        to end-to-end depends on the execution pattern:

        - pipeline: the stage capacity bounds throughput directly;
        - run-to-completion: the per-packet accelerator time grows from
          ``1/R_solo`` to ``1/R_cont`` inside the additive time budget.
        """
        model = self.accel_models[accelerator]
        rate_solo = model.solo_rate(traffic)
        rate_contended = model.contended_rate(traffic, competitor_shares)
        if self.pattern is ExecutionPattern.PIPELINE:
            return min(solo, rate_contended)
        inverse = 1.0 / solo + max(0.0, 1.0 / rate_contended - 1.0 / rate_solo)
        return min(solo, 1.0 / inverse)

    # ------------------------------------------------------------------
    # Competitor feature assembly
    # ------------------------------------------------------------------
    def _bench_share(
        self, accelerator: str, contention: ContentionLevel
    ) -> Optional[AcceleratorShare]:
        """A bench competitor's demand on ``accelerator``, if any."""
        if accelerator == REGEX and contention.regex_rate > 0:
            time_us = (
                0.010
                + contention.regex_payload_bytes / 2000.0
                + contention.regex_payload_bytes * contention.regex_mtbr / 1e6 * 0.250
            )
            return AcceleratorShare(
                name="regex-bench",
                n_queues=1,
                request_time_us=time_us,
                offered_rate=contention.regex_rate,
            )
        if accelerator == COMPRESSION and contention.compression_rate > 0:
            time_us = 0.040 + contention.compression_payload_bytes / 1500.0
            return AcceleratorShare(
                name="compression-bench",
                n_queues=1,
                request_time_us=time_us,
                offered_rate=contention.compression_rate,
            )
        return None

    def competitor_counters(self, competitors: list[CompetitorSpec]) -> PerfCounters:
        """Aggregate solo counter vector of ``competitors``.

        Bench competitors are sized with the same core budget the
        profiling co-runs gave them (``num_cores`` minus this NF's
        cores), keeping predict-time features consistent with the
        training features in :class:`ProfilingCollector.profile_one`.
        """
        bench_budget = self._collector.nic.spec.num_cores - self.nf.cores
        samples = []
        for spec in competitors:
            if spec.kind == "bench":
                samples.append(
                    self._collector.bench_counters(spec.contention, bench_budget)
                )
            else:
                competitor_nf = make_nf(spec.nf_name)
                samples.append(
                    self._collector.solo(competitor_nf, spec.traffic).counters
                )
        return PerfCounters.aggregate(samples)

    # ------------------------------------------------------------------
    # Prediction
    # ------------------------------------------------------------------
    def predict(
        self,
        traffic: TrafficProfile,
        competitors: list[CompetitorSpec] | None = None,
        system: Optional["YalaSystem"] = None,
        competitor_rates: Optional[dict[int, float]] = None,
    ) -> float:
        """Predict this NF's throughput when co-located with ``competitors``.

        NF competitors' accelerator parameters come from their own
        trained models via ``system``; ``competitor_rates`` (index ->
        requests/us) optionally bounds their offered accelerator load
        (used by the system-level fixed point). Without rates, NF
        competitors are assumed to saturate their queues (Eq. 1).
        """
        return self.predict_many(
            [(traffic, list(competitors or []))],
            system=system,
            competitor_rates=[competitor_rates],
        )[0]

    def predict_many(
        self,
        requests: list[tuple[TrafficProfile, list[CompetitorSpec]]],
        system: Optional["YalaSystem"] = None,
        competitor_rates: Optional[list[Optional[dict[int, float]]]] = None,
    ) -> list[float]:
        """Predict several ``(traffic, competitors)`` scenarios at once.

        Matches a loop of :meth:`predict` calls bit-for-bit, but routes
        all memory-model evaluations (two GBR passes per scenario)
        through one batched call each, so experiment sweeps stop paying
        the per-call scaler/ensemble dispatch overhead thousands of
        times.
        """
        if self.memory_model is None or self.pattern is None:
            raise ModelNotFittedError(f"{self.nf_name}: train() first")
        rates_list = competitor_rates or [None] * len(requests)
        if len(rates_list) != len(requests):
            raise ConfigurationError(
                "competitor_rates must align with requests when given"
            )
        if not requests:
            return []

        traffics = [traffic for traffic, _ in requests]
        counters_list = []
        n_competitors_list = []
        for _, competitors in requests:
            counters_list.append(self.competitor_counters(competitors))
            n_competitors_list.append(
                sum(
                    spec.contention.actor_count if spec.kind == "bench" else 1
                    for spec in competitors
                )
            )
        solos = self.memory_model.predict_batch(
            [PerfCounters.zero()] * len(requests),
            traffics,
            [0] * len(requests),
        )
        memory = self.memory_model.predict_batch(
            counters_list, traffics, n_competitors_list
        )
        return [
            self.predict_with_cached(
                traffic,
                competitors,
                solo=float(solos[i]),
                memory_throughput=float(memory[i]),
                system=system,
                competitor_rates=rates_list[i],
            )
            for i, (traffic, competitors) in enumerate(requests)
        ]

    def predict_with_cached(
        self,
        traffic: TrafficProfile,
        competitors: list[CompetitorSpec],
        solo: float,
        memory_throughput: float,
        system: Optional["YalaSystem"] = None,
        competitor_rates: Optional[dict[int, float]] = None,
    ) -> float:
        """Compose a prediction from precomputed solo/memory throughputs.

        The memory-model outputs do not depend on competitor *rates*, so
        fixed-point loops (``YalaSystem.predict_colocation``) evaluate
        them once per target and only re-run the accelerator models per
        iteration.
        """
        if self.pattern is None:
            raise ModelNotFittedError(f"{self.nf_name}: train() first")
        per_resource = [memory_throughput]
        for accelerator in self.accel_models:
            shares = []
            for index, spec in enumerate(competitors):
                share = self._competitor_share(
                    accelerator, index, spec, system, competitor_rates
                )
                if share is not None:
                    shares.append(share)
            per_resource.append(
                self._accelerator_throughput(accelerator, traffic, shares, solo)
            )
        return compose(self.pattern, solo, per_resource)

    def _competitor_share(
        self,
        accelerator: str,
        index: int,
        spec: CompetitorSpec,
        system: Optional["YalaSystem"],
        competitor_rates: Optional[dict[int, float]],
    ) -> Optional[AcceleratorShare]:
        if spec.kind == "bench":
            return self._bench_share(accelerator, spec.contention)
        if system is None:
            return None
        peer = system.predictor_of(spec.nf_name)
        model = peer.accel_models.get(accelerator)
        if model is None:
            return None
        offered = None
        if competitor_rates is not None and index in competitor_rates:
            offered = competitor_rates[index]
        share = model.share(spec.traffic, offered_rate=offered)
        # Disambiguate duplicate NFs in one co-location.
        return AcceleratorShare(
            name=f"{share.name}#{index}",
            n_queues=share.n_queues,
            request_time_us=share.request_time_us,
            offered_rate=share.offered_rate,
        )


def _train_predictor_worker(
    nic: SmartNic,
    nf_name: str,
    seed: int,
    quota: int,
    traffic_aware: bool,
    quantize_bins: Optional[int],
) -> "YalaPredictor":
    """Train one NF's predictor in a worker process.

    The worker gets its own collector (caches are process-local); the
    simulator derives measurement noise per workload set, so results
    match an in-process run exactly.
    """
    predictor = YalaPredictor(make_nf(nf_name), ProfilingCollector(nic), seed=seed)
    return predictor.train(
        quota=quota, traffic_aware=traffic_aware, quantize_bins=quantize_bins
    )


class YalaSystem:
    """A fleet of trained Yala predictors with joint prediction."""

    def __init__(
        self,
        nic: SmartNic,
        seed: SeedLike = None,
        quota: int = 400,
        traffic_aware: bool = True,
        quantize_bins: Optional[int] = None,
    ) -> None:
        self._nic = nic
        self._collector = ProfilingCollector(nic)
        base = normalize_seed(seed)
        self._seed = base if base is not None else 0x1A1A
        self._quota = quota
        self._traffic_aware = traffic_aware
        # Opt-in quantized memory-model training for large batch-profiled
        # sweeps (lossy; see MemoryContentionModel). Default: bit-exact.
        self._quantize_bins = quantize_bins
        self._predictors: dict[str, YalaPredictor] = {}

    @property
    def collector(self) -> ProfilingCollector:
        return self._collector

    @property
    def nic(self) -> SmartNic:
        return self._nic

    # ------------------------------------------------------------------
    def train(self, nf_names: list[str], jobs: int = 1) -> "YalaSystem":
        """Train predictors for every NF in ``nf_names``.

        ``jobs > 1`` trains the NFs in parallel worker processes. Each
        NF's training is already driven by its own derived seed and the
        simulator is deterministic, so the trained predictors (and every
        downstream prediction) are identical to a serial run; workers'
        predictors are re-attached to this system's shared collector
        when they return.

        Training profiles through the collector's batch paths
        (``profile_many`` over the accelerator-calibration and
        pattern-detection grids), and a system built with
        ``quantize_bins=K`` trains every NF's memory model in the
        quantized histogram mode end to end.
        """
        pending = [name for name in nf_names if name not in self._predictors]
        if jobs > 1 and len(pending) > 1:
            from concurrent.futures import ProcessPoolExecutor

            with ProcessPoolExecutor(max_workers=min(jobs, len(pending))) as pool:
                futures = {
                    name: pool.submit(
                        _train_predictor_worker,
                        self._nic,
                        name,
                        derive_seed(self._seed, name),
                        self._quota,
                        self._traffic_aware,
                        self._quantize_bins,
                    )
                    for name in pending
                }
                for name in pending:
                    predictor = futures[name].result()
                    predictor._collector = self._collector
                    self._predictors[name] = predictor
            return self
        for name in pending:
            self.train_one(name)
        return self

    def train_one(self, nf_name: str, seed: SeedLike = None) -> YalaPredictor:
        """Train (or return) the predictor of one NF.

        The default seed is the system's per-NF derivation
        (``derive_seed(system_seed, nf_name)``, exactly what
        :meth:`train` uses); an explicit ``seed`` lets callers pin a
        historical stream — the multi-target experiment context uses
        this to keep Table 9's Pensando predictor bit-identical to its
        pre-refactor standalone training. Requesting an explicit seed
        for an NF that already trained under a *different* seed raises:
        silently returning the differently-seeded predictor would break
        the caller's bit-exactness expectation.
        """
        seed_int = normalize_seed(seed)
        if nf_name in self._predictors:
            cached = self._predictors[nf_name]
            if seed_int is not None and cached._seed != seed_int:
                raise ConfigurationError(
                    f"{nf_name!r} is already trained with seed "
                    f"{cached._seed}; request explicit seed streams "
                    "before the first training"
                )
            return cached
        if seed_int is None:
            seed_int = derive_seed(self._seed, nf_name)
        predictor = YalaPredictor(
            make_nf(nf_name), self._collector, seed=seed_int
        )
        predictor.train(
            quota=self._quota,
            traffic_aware=self._traffic_aware,
            quantize_bins=self._quantize_bins,
        )
        self._predictors[nf_name] = predictor
        return predictor

    def predictor_of(self, nf_name: str) -> YalaPredictor:
        try:
            return self._predictors[nf_name]
        except KeyError:
            raise ProfilingError(
                f"no trained predictor for {nf_name!r}; trained: "
                f"{sorted(self._predictors)}"
            ) from None

    @property
    def trained_names(self) -> list[str]:
        return sorted(self._predictors)

    # ------------------------------------------------------------------
    def predict(
        self,
        target_name: str,
        traffic: TrafficProfile,
        competitors: list[CompetitorSpec] | None = None,
    ) -> float:
        """Predict one NF's throughput in a co-location."""
        placements = [(target_name, traffic)] + [
            (c.nf_name, c.traffic) for c in (competitors or []) if c.kind == "nf"
        ]
        benches = [c for c in (competitors or []) if c.kind == "bench"]
        joint = self.predict_colocation(placements, benches)
        return joint[0]

    def predict_batch(
        self,
        cases: list[tuple[str, TrafficProfile, list[CompetitorSpec]]],
    ) -> list[float]:
        """Predict many ``(target, traffic, competitors)`` cases at once.

        Matches a loop of :meth:`predict` calls bit-for-bit; the
        per-case memory-model evaluations are grouped into one
        :meth:`MemoryContentionModel.predict_batch` call per involved
        predictor (see :meth:`predict_colocation_batch`).
        """
        requests = []
        for target_name, traffic, competitors in cases:
            competitors = list(competitors or [])
            placements = [(target_name, traffic)] + [
                (c.nf_name, c.traffic) for c in competitors if c.kind == "nf"
            ]
            benches = [c for c in competitors if c.kind == "bench"]
            requests.append((placements, benches))
        return [joint[0] for joint in self.predict_colocation_batch(requests)]

    def predict_colocation(
        self,
        placements: list[tuple[str, TrafficProfile]],
        benches: list[CompetitorSpec] | None = None,
    ) -> list[float]:
        """Predict throughput of every NF in a joint placement.

        Runs a short fixed point: each NF's prediction feeds back as its
        offered accelerator rate in the others' predictions, because an
        NF that is bottlenecked elsewhere does not saturate its
        accelerator queues.
        """
        return self.predict_colocation_batch([(placements, benches)])[0]

    def predict_colocation_batch(
        self,
        requests: list[
            tuple[
                list[tuple[str, TrafficProfile]],
                list[CompetitorSpec] | None,
            ]
        ],
    ) -> list[list[float]]:
        """Joint predictions for several placements at once.

        Bit-identical to looping :meth:`predict_colocation`: the
        per-placement solo and memory evaluations — the expensive GBR
        passes — are batched into one
        :meth:`MemoryContentionModel.predict_batch` call per predictor
        across the *whole* request set, and only the cheap accelerator
        fixed point runs per case. The memory model sees only counters
        and traffic, so its output is loop-invariant and evaluates once
        per target instead of once per fixed-point iteration.
        """
        if not requests:
            return []
        # Phase 1: assemble the per-predictor memory-model batches and a
        # per-case evaluation plan referencing slots in those batches.
        # Solo rows are keyed by (predictor, traffic): a sweep repeats
        # the same solo evaluation across many cases, and predict_batch
        # is row-wise independent, so sharing the slot changes nothing
        # numerically while halving the batch for typical case lists.
        batches: dict[str, tuple[list, list, list]] = {}
        solo_slots: dict[tuple[str, TrafficProfile], int] = {}

        def enqueue(name, counters, traffic, n_competitors) -> int:
            rows = batches.setdefault(name, ([], [], []))
            rows[0].append(counters)
            rows[1].append(traffic)
            rows[2].append(n_competitors)
            return len(rows[0]) - 1

        plans = []
        for placements, benches in requests:
            benches = list(benches or [])
            entries = []
            for i, (name, traffic) in enumerate(placements):
                predictor = self.predictor_of(name)
                if predictor.memory_model is None:
                    raise ModelNotFittedError(f"{name}: train() first")
                competitors = []
                peer_slots = []
                for j, (peer_name, peer_traffic) in enumerate(placements):
                    if j == i:
                        continue
                    competitors.append(CompetitorSpec.nf(peer_name, peer_traffic))
                    peer_slots.append(j)
                competitors.extend(benches)
                counters = predictor.competitor_counters(competitors)
                n_competitors = sum(
                    spec.contention.actor_count if spec.kind == "bench" else 1
                    for spec in competitors
                )
                solo_key = (name, traffic)
                solo_slot = solo_slots.get(solo_key)
                if solo_slot is None:
                    solo_slot = enqueue(name, PerfCounters.zero(), traffic, 0)
                    solo_slots[solo_key] = solo_slot
                memory_slot = enqueue(name, counters, traffic, n_competitors)
                entries.append(
                    _PlanEntry(
                        name=name,
                        predictor=predictor,
                        traffic=traffic,
                        competitors=competitors,
                        peer_slots=peer_slots,
                        solo_slot=solo_slot,
                        memory_slot=memory_slot,
                    )
                )
            plans.append(entries)

        # Phase 2: one batched GBR evaluation per involved predictor.
        evaluated = {
            name: self.predictor_of(name).memory_model.predict_batch(*rows)
            for name, rows in batches.items()
        }

        # Phase 3: the accelerator fixed point, per case.
        results = []
        for entries in plans:
            solos = [
                float(evaluated[entry.name][entry.solo_slot])
                for entry in entries
            ]
            memories = [
                float(evaluated[entry.name][entry.memory_slot])
                for entry in entries
            ]
            rates = list(solos)
            for _ in range(_JOINT_ITERATIONS):
                updated = []
                for i, entry in enumerate(entries):
                    rate_map = {
                        slot: rates[j]
                        for slot, j in enumerate(entry.peer_slots)
                    }
                    updated.append(
                        entry.predictor.predict_with_cached(
                            entry.traffic,
                            entry.competitors,
                            solo=solos[i],
                            memory_throughput=memories[i],
                            system=self,
                            competitor_rates=rate_map,
                        )
                    )
                if not updated:
                    break
                if max(
                    abs(u - r) / max(u, 1e-9) for u, r in zip(updated, rates)
                ) < 1e-6:
                    rates = updated
                    break
                rates = updated
            results.append(rates)
        return results
