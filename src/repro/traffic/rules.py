"""Regex ruleset model (L7-filter substitute).

The paper compiles the L7-filter application-protocol patterns for the
BlueField-2 RXP engine. We model a ruleset as a set of literal trigger
tokens with per-rule complexity weights: payload generation plants
tokens to hit a target match-to-byte ratio, and scanning counts planted
token occurrences. This preserves what matters for the performance
model — the number of matches per byte of payload — without shipping a
full regex engine onto the accelerator model.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.rng import SeedLike, make_rng


@dataclass(frozen=True)
class RegexRule:
    """One pattern in a ruleset."""

    name: str
    token: bytes
    complexity: float = 1.0  # relative match-processing cost

    def __post_init__(self) -> None:
        if not self.token:
            raise ConfigurationError(f"rule {self.name!r} has an empty token")
        if self.complexity <= 0:
            raise ConfigurationError(f"rule {self.name!r}: complexity must be > 0")


class RuleSet:
    """A collection of rules that payloads are scanned against."""

    def __init__(self, rules: list[RegexRule]) -> None:
        if not rules:
            raise ConfigurationError("a ruleset needs at least one rule")
        names = [r.name for r in rules]
        if len(set(names)) != len(names):
            raise ConfigurationError("duplicate rule names in ruleset")
        tokens = [r.token for r in rules]
        if len(set(tokens)) != len(tokens):
            raise ConfigurationError("duplicate rule tokens in ruleset")
        self._rules = tuple(rules)

    @property
    def rules(self) -> tuple[RegexRule, ...]:
        return self._rules

    def __len__(self) -> int:
        return len(self._rules)

    def __iter__(self):
        return iter(self._rules)

    def scan(self, payload: bytes) -> dict[str, int]:
        """Count occurrences of each rule token in ``payload``."""
        counts = {}
        for rule in self._rules:
            count = 0
            start = 0
            while True:
                hit = payload.find(rule.token, start)
                if hit < 0:
                    break
                count += 1
                start = hit + len(rule.token)
            counts[rule.name] = count
        return counts

    def total_matches(self, payload: bytes) -> int:
        """Total matches of all rules in ``payload``."""
        return sum(self.scan(payload).values())

    def average_complexity(self) -> float:
        """Mean per-match processing weight across rules."""
        return sum(r.complexity for r in self._rules) / len(self._rules)

    def pick(self, rng_seed: SeedLike = None) -> RegexRule:
        """Draw a random rule (used when planting matches)."""
        rng = make_rng(rng_seed)
        return self._rules[int(rng.integers(0, len(self._rules)))]


def l7_filter_ruleset() -> RuleSet:
    """A small stand-in for the L7-filter protocol patterns [5].

    Tokens are drawn from the protocol signatures the real ruleset keys
    on (HTTP verbs, TLS handshake bytes, protocol banners).
    """
    return RuleSet(
        [
            RegexRule("http-get", b"GET /", 1.0),
            RegexRule("http-post", b"POST /", 1.0),
            RegexRule("ssh-banner", b"SSH-2.0", 0.8),
            RegexRule("tls-hello", b"\x16\x03\x01", 1.2),
            RegexRule("smtp-helo", b"HELO ", 0.9),
            RegexRule("dns-ptr", b"in-addr.arpa", 1.1),
            RegexRule("ftp-user", b"USER ", 0.7),
            RegexRule("sip-invite", b"INVITE sip:", 1.3),
            RegexRule("rtsp-setup", b"SETUP rtsp://", 1.2),
            RegexRule("bittorrent", b"\x13BitTorrent", 1.5),
        ]
    )
