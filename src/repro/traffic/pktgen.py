"""Packet stream generation (DPDK-Pktgen substitute).

Materialises a :class:`~repro.traffic.profile.TrafficProfile` into
concrete packets: interleaved flows, fixed packet size and payloads with
the profile's MTBR. The NIC simulator itself works from aggregate
demands, so packet materialisation is mainly used by functional tests
and the examples — exactly the role the real pktgen plays for the paper.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.rng import SeedLike, make_rng, spawn
from repro.traffic.flows import Flow, FlowGenerator
from repro.traffic.payload import PayloadGenerator
from repro.traffic.profile import HEADER_BYTES, TrafficProfile
from repro.traffic.rules import RuleSet, l7_filter_ruleset


@dataclass(frozen=True)
class Packet:
    """A concrete packet: flow identity plus payload."""

    flow: Flow
    payload: bytes

    @property
    def size_bytes(self) -> int:
        return HEADER_BYTES + len(self.payload)


class PacketGenerator:
    """Generates packet streams conforming to a traffic profile."""

    def __init__(
        self,
        profile: TrafficProfile,
        ruleset: RuleSet | None = None,
        seed: SeedLike = None,
    ) -> None:
        self._profile = profile
        rng = make_rng(seed)
        flow_rng, payload_rng, schedule_rng = spawn(rng, 3)
        self._flow_gen = FlowGenerator(seed=flow_rng)
        self._ruleset = ruleset if ruleset is not None else l7_filter_ruleset()
        self._payload_gen = PayloadGenerator(self._ruleset, seed=payload_rng)
        self._schedule_rng = schedule_rng
        self._flows: list[Flow] | None = None

    @property
    def profile(self) -> TrafficProfile:
        return self._profile

    @property
    def ruleset(self) -> RuleSet:
        return self._ruleset

    def flows(self) -> list[Flow]:
        """The generated flow set (materialised lazily, then cached)."""
        if self._flows is None:
            self._flows = self._flow_gen.generate(self._profile.flow_count)
        return self._flows

    def packets(self, count: int) -> list[Packet]:
        """Generate ``count`` packets following the profile."""
        if count < 1:
            raise ConfigurationError("count must be >= 1")
        flows = self.flows()
        order = self._flow_gen.schedule(flows, count)
        payload_bytes = self._profile.payload_bytes
        mtbr = self._profile.mtbr
        return [
            Packet(
                flow=flows[int(i)],
                payload=self._payload_gen.generate(payload_bytes, mtbr),
            )
            for i in order
        ]

    def distinct_flows_in(self, packets: list[Packet]) -> int:
        """Number of distinct flows observed in ``packets``."""
        return len({p.flow.key for p in packets})
