"""Traffic profiles: the attribute vector Yala's models consume.

The paper denotes a traffic profile as a vector like ``(16000, 1500,
600)`` — 16K flows, 1500-byte packets, 600 matches/MB of payload (§5.1).
This module provides that vector as a typed value object plus helpers to
enumerate and randomise profiles for evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterable

import numpy as np

from repro.errors import ConfigurationError
from repro.rng import SeedLike, make_rng

#: Canonical attribute ordering for model feature vectors.
TRAFFIC_ATTRIBUTES: tuple[str, ...] = ("flow_count", "packet_size", "mtbr")

#: Bytes of L2/L3/L4 headers preceding payload in a packet.
HEADER_BYTES = 54


@dataclass(frozen=True)
class TrafficProfile:
    """One traffic configuration.

    Attributes
    ----------
    flow_count:
        Number of concurrent flows.
    packet_size:
        Total packet size in bytes (headers + payload).
    mtbr:
        Match-to-byte ratio of the payload against the regex ruleset,
        in matches per megabyte of payload.
    """

    flow_count: int = 16_000
    packet_size: int = 1500
    mtbr: float = 600.0

    def __post_init__(self) -> None:
        if self.flow_count < 1:
            raise ConfigurationError(f"flow_count must be >= 1, got {self.flow_count}")
        if not HEADER_BYTES < self.packet_size <= 9000:
            raise ConfigurationError(
                f"packet_size must be in ({HEADER_BYTES}, 9000], got {self.packet_size}"
            )
        if self.mtbr < 0:
            raise ConfigurationError(f"mtbr must be >= 0, got {self.mtbr}")

    # ------------------------------------------------------------------
    @property
    def payload_bytes(self) -> int:
        """Payload carried per packet."""
        return self.packet_size - HEADER_BYTES

    @property
    def matches_per_packet(self) -> float:
        """Expected regex matches in one packet's payload."""
        return self.payload_bytes * self.mtbr / 1e6

    def as_vector(self) -> np.ndarray:
        """Attribute vector in :data:`TRAFFIC_ATTRIBUTES` order."""
        return np.array([float(self.flow_count), float(self.packet_size), self.mtbr])

    def with_attribute(self, name: str, value: float) -> "TrafficProfile":
        """Copy of this profile with one attribute replaced."""
        if name not in TRAFFIC_ATTRIBUTES:
            raise ConfigurationError(
                f"unknown traffic attribute {name!r}; known: {TRAFFIC_ATTRIBUTES}"
            )
        if name == "flow_count":
            return replace(self, flow_count=int(round(value)))
        if name == "packet_size":
            return replace(self, packet_size=int(round(value)))
        return replace(self, mtbr=float(value))

    def attribute(self, name: str) -> float:
        """Value of one attribute by name."""
        if name not in TRAFFIC_ATTRIBUTES:
            raise ConfigurationError(f"unknown traffic attribute {name!r}")
        return float(getattr(self, name))

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"({self.flow_count}, {self.packet_size}, {self.mtbr:g})"


#: The paper's default profile: 16K flows, 1500 B packets, 600 matches/MB.
DEFAULT_TRAFFIC = TrafficProfile()


@dataclass(frozen=True)
class AttributeRange:
    """Admissible range of one traffic attribute for profiling sweeps."""

    name: str
    minimum: float
    maximum: float

    def __post_init__(self) -> None:
        if self.name not in TRAFFIC_ATTRIBUTES:
            raise ConfigurationError(f"unknown traffic attribute {self.name!r}")
        if self.minimum >= self.maximum:
            raise ConfigurationError(
                f"range for {self.name!r} must satisfy min < max"
            )

    @property
    def midpoint(self) -> float:
        return 0.5 * (self.minimum + self.maximum)

    def grid(self, points: int) -> np.ndarray:
        """Evenly spaced values across the range."""
        if points < 2:
            raise ConfigurationError("grid needs at least 2 points")
        return np.linspace(self.minimum, self.maximum, points)


#: Evaluation ranges used across the paper's experiments (flows up to
#: 500K as in §2.2.2; standard Ethernet packet sizes; MTBR 0..1100 as in
#: the diagnosis study §7.5.2).
DEFAULT_RANGES: dict[str, AttributeRange] = {
    "flow_count": AttributeRange("flow_count", 1_000, 500_000),
    "packet_size": AttributeRange("packet_size", 64, 1500),
    "mtbr": AttributeRange("mtbr", 0.0, 1100.0),
}


def random_profiles(
    count: int,
    seed: SeedLike = None,
    ranges: dict[str, AttributeRange] | None = None,
    vary: Iterable[str] = TRAFFIC_ATTRIBUTES,
    base: TrafficProfile = DEFAULT_TRAFFIC,
) -> list[TrafficProfile]:
    """Draw ``count`` random profiles, varying only ``vary`` attributes.

    Used by the evaluation to generate the "100 distinct traffic
    profiles with random number of flows up to 500K" (§2.2.2, §7.4).
    """
    if count < 1:
        raise ConfigurationError("count must be >= 1")
    rng = make_rng(seed)
    ranges = dict(DEFAULT_RANGES if ranges is None else ranges)
    vary = list(vary)
    for name in vary:
        if name not in TRAFFIC_ATTRIBUTES:
            raise ConfigurationError(f"unknown traffic attribute {name!r}")
    profiles = []
    for _ in range(count):
        profile = base
        for name in vary:
            span = ranges[name]
            value = rng.uniform(span.minimum, span.maximum)
            profile = profile.with_attribute(name, value)
        profiles.append(profile)
    return profiles
