"""Flow generation (5-tuples and per-flow packet budgets).

The paper's traffic profiles use N concurrent flows with flow sizes
following a uniform distribution (§2.1). Flows matter to NFs because
per-flow state (hash tables, NAT mappings, trackers) grows with the flow
count — the mechanism behind Figure 6(a).
"""

from __future__ import annotations

import ipaddress
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.rng import SeedLike, make_rng


@dataclass(frozen=True)
class Flow:
    """A 5-tuple flow with a packet budget."""

    src_ip: int
    dst_ip: int
    src_port: int
    dst_port: int
    protocol: int
    packets: int

    @property
    def key(self) -> tuple[int, int, int, int, int]:
        """Hashable 5-tuple identity."""
        return (self.src_ip, self.dst_ip, self.src_port, self.dst_port, self.protocol)

    def src_ip_str(self) -> str:
        return str(ipaddress.IPv4Address(self.src_ip))

    def dst_ip_str(self) -> str:
        return str(ipaddress.IPv4Address(self.dst_ip))


class FlowGenerator:
    """Generates distinct flows with uniformly distributed sizes."""

    def __init__(
        self,
        min_packets: int = 10,
        max_packets: int = 1000,
        seed: SeedLike = None,
    ) -> None:
        if min_packets < 1 or max_packets < min_packets:
            raise ConfigurationError(
                "need 1 <= min_packets <= max_packets for flow sizes"
            )
        self._min_packets = min_packets
        self._max_packets = max_packets
        self._rng = make_rng(seed)

    def generate(self, count: int) -> list[Flow]:
        """Create ``count`` flows with unique 5-tuples."""
        if count < 1:
            raise ConfigurationError("flow count must be >= 1")
        rng = self._rng
        flows: list[Flow] = []
        seen: set[tuple[int, int, int, int, int]] = set()
        # Private 10.0.0.0/8 source block, 192.168.0.0/16 destinations.
        src_base = int(ipaddress.IPv4Address("10.0.0.0"))
        dst_base = int(ipaddress.IPv4Address("192.168.0.0"))
        sizes = rng.integers(self._min_packets, self._max_packets + 1, size=count)
        attempts = 0
        while len(flows) < count:
            if attempts > 20 * count:
                raise ConfigurationError("could not generate enough unique flows")
            attempts += 1
            key = (
                src_base + int(rng.integers(0, 2**24)),
                dst_base + int(rng.integers(0, 2**16)),
                int(rng.integers(1024, 65536)),
                int(rng.integers(1, 1024)),
                6 if rng.random() < 0.9 else 17,
            )
            if key in seen:
                continue
            seen.add(key)
            flows.append(
                Flow(
                    src_ip=key[0],
                    dst_ip=key[1],
                    src_port=key[2],
                    dst_port=key[3],
                    protocol=key[4],
                    packets=int(sizes[len(flows)]),
                )
            )
        return flows

    def schedule(self, flows: list[Flow], total_packets: int) -> np.ndarray:
        """Interleave flows into a packet arrival order.

        Returns an array of flow indices of length ``total_packets``,
        weighted by each flow's packet budget, shuffled round-robin-ish
        the way a packet generator interleaves concurrent flows.
        """
        if not flows:
            raise ConfigurationError("schedule needs at least one flow")
        if total_packets < 1:
            raise ConfigurationError("total_packets must be >= 1")
        weights = np.array([f.packets for f in flows], dtype=float)
        weights /= weights.sum()
        return self._rng.choice(len(flows), size=total_packets, p=weights)
