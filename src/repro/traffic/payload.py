"""Payload synthesis with a target match-to-byte ratio (exrex substitute).

The paper generates payloads with ``exrex`` so that scanning them against
the L7-filter ruleset yields a chosen match-to-byte ratio (MTBR,
matches per MB of payload). We achieve the same property directly:
payloads are filled with token-free random bytes and rule tokens are
planted at the density required to hit the requested MTBR in
expectation.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.rng import SeedLike, make_rng
from repro.traffic.rules import RuleSet

#: Byte alphabet guaranteed not to form any default ruleset token
#: (lowercase letters only; tokens all contain uppercase/punctuation).
_FILLER = np.frombuffer(b"abcdefghijklmnopqrstuvwxyz", dtype=np.uint8)


class PayloadGenerator:
    """Generates packet payloads hitting a target MTBR for a ruleset."""

    def __init__(self, ruleset: RuleSet, seed: SeedLike = None) -> None:
        self._ruleset = ruleset
        self._rng = make_rng(seed)

    @property
    def ruleset(self) -> RuleSet:
        return self._ruleset

    def generate(self, payload_bytes: int, mtbr: float) -> bytes:
        """One payload of ``payload_bytes`` with ~``mtbr`` matches/MB.

        The expected number of matches is ``payload_bytes * mtbr / 1e6``;
        the integer count is drawn by stochastic rounding so a stream of
        payloads converges to the exact ratio.
        """
        if payload_bytes < 1:
            raise ConfigurationError("payload_bytes must be >= 1")
        if mtbr < 0:
            raise ConfigurationError("mtbr must be >= 0")
        rng = self._rng
        body = _FILLER[rng.integers(0, len(_FILLER), size=payload_bytes)].tobytes()
        expected = payload_bytes * mtbr / 1e6
        count = int(expected) + (1 if rng.random() < (expected - int(expected)) else 0)
        if count == 0:
            return body

        payload = bytearray(body)
        rules = self._ruleset.rules
        # Plant tokens at disjoint positions so every plant scans as one
        # match (tokens never overlap and never straddle each other).
        max_token = max(len(r.token) for r in rules)
        if payload_bytes < max_token:
            return bytes(payload)
        slots = max(1, payload_bytes // max_token)
        positions = rng.choice(slots, size=min(count, slots), replace=False)
        for position in positions:
            rule = rules[int(rng.integers(0, len(rules)))]
            offset = int(position) * max_token
            payload[offset : offset + len(rule.token)] = rule.token
        return bytes(payload)

    def stream(self, payload_bytes: int, mtbr: float, count: int) -> list[bytes]:
        """A list of ``count`` payloads at the target MTBR."""
        if count < 1:
            raise ConfigurationError("count must be >= 1")
        return [self.generate(payload_bytes, mtbr) for _ in range(count)]


def measure_mtbr(payloads: list[bytes], ruleset: RuleSet) -> float:
    """Empirical MTBR (matches/MB) of ``payloads`` against ``ruleset``."""
    if not payloads:
        raise ConfigurationError("measure_mtbr needs at least one payload")
    total_bytes = sum(len(p) for p in payloads)
    if total_bytes == 0:
        raise ConfigurationError("payloads are empty")
    total_matches = sum(ruleset.total_matches(p) for p in payloads)
    return total_matches / total_bytes * 1e6
