"""Traffic generation substrate.

Replaces the paper's DPDK-Pktgen + exrex + L7-filter toolchain. The unit
of configuration is a :class:`~repro.traffic.profile.TrafficProfile`
(flow count, packet size, match-to-byte ratio) — the three traffic
attributes Yala's models consume (§5.1). Flow tables, packet streams and
regex-matched payloads can also be materialised for tests and examples.
"""

from repro.traffic.flows import Flow, FlowGenerator
from repro.traffic.payload import PayloadGenerator, measure_mtbr
from repro.traffic.pktgen import Packet, PacketGenerator
from repro.traffic.profile import (
    DEFAULT_TRAFFIC,
    TRAFFIC_ATTRIBUTES,
    AttributeRange,
    TrafficProfile,
    random_profiles,
)
from repro.traffic.rules import RegexRule, RuleSet, l7_filter_ruleset

__all__ = [
    "AttributeRange",
    "DEFAULT_TRAFFIC",
    "Flow",
    "FlowGenerator",
    "Packet",
    "PacketGenerator",
    "PayloadGenerator",
    "RegexRule",
    "RuleSet",
    "TRAFFIC_ATTRIBUTES",
    "TrafficProfile",
    "l7_filter_ruleset",
    "measure_mtbr",
    "random_profiles",
]
