"""Pod/rack topology over the fleet cluster.

A :class:`Topology` partitions the NICs of a
:class:`~repro.fleet.cluster.Cluster` into **pods** (the unit the
execution runtimes shard scoring by — see :mod:`repro.fleet.runtime`)
and groups pods into **racks** (reporting granularity). Pod membership
is a pure function of the NIC id, so the partition is identical on
every run and at every worker count regardless of how churn interleaves
spin-ups:

- ``Topology(pods=N)`` — a fixed pod count; NICs are dealt round-robin
  (``nic_id % N``), so pods stay balanced as the fleet grows and
  shrinks.
- ``Topology(pod_size=K)`` — sequential fill (``nic_id // K``): the
  first ``K`` NICs ever provisioned form pod 0, the next ``K`` pod 1,
  and the pod count grows with the fleet. This mirrors how real
  datacenters rack hardware in installation order.
- ``Topology()`` — the *flat* default: one pod, byte-identical
  behaviour to the pre-topology fleet.

Each pod also carries a derived seed (:meth:`Topology.pod_seed`,
``derive_seed(seed, "pod", pod_id)``) — the same trick as
:meth:`YalaSystem.train(jobs=) <repro.core.predictor.YalaSystem.train>`:
any stochastic stream a pod's scoring ever needs is keyed to the *pod*,
never to the worker process that happens to execute it, so reports stay
byte-identical at any runtime/worker count.

Placement policies consult the topology to prefer **pod-local
migrations** (cross-pod moves copy service state across the fabric, so
they can carry a longer timed-migration duration — see
``EventConfig.cross_pod_migration_duration``).

Pods are also the fleet's **failure domains**: pod-scoped outages
(:mod:`repro.fleet.faults`, ``pod_outage_rate``) black out every NIC
of one pod at once and refuse placements into it until the restore.
Because each pod's outage is drawn from its own ``(seed, pod_id)``
stream, outages need a *fixed* pod count — ``Topology(pods=N)`` — so
pod ids are stable for the whole run; ``pod_size`` layouts, whose pod
count grows with the fleet, cannot anchor that stream and are rejected
for outage scenarios.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Optional

from repro.errors import ConfigurationError
from repro.rng import derive_seed

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.fleet.cluster import FleetNic, MigrationRecord


@dataclass(frozen=True)
class Topology:
    """Deterministic pod/rack layout of a NIC fleet.

    At most one of ``pods`` / ``pod_size`` may be set; with neither the
    topology is *flat* (a single pod 0 holding every NIC).
    """

    #: Fixed pod count; NICs are assigned round-robin by id.
    pods: Optional[int] = None
    #: NICs per pod; pods fill sequentially and their count grows.
    pod_size: Optional[int] = None
    #: Pods per rack (reporting granularity only).
    pods_per_rack: int = 8

    def __post_init__(self) -> None:
        if self.pods is not None and self.pod_size is not None:
            raise ConfigurationError(
                "set at most one of pods / pod_size (round-robin vs "
                "sequential-fill partitioning)"
            )
        if self.pods is not None and self.pods < 1:
            raise ConfigurationError("pods must be >= 1")
        if self.pod_size is not None and self.pod_size < 1:
            raise ConfigurationError("pod_size must be >= 1")
        if self.pods_per_rack < 1:
            raise ConfigurationError("pods_per_rack must be >= 1")

    # ------------------------------------------------------------------
    @classmethod
    def flat(cls) -> "Topology":
        """The single-pod topology (pre-topology fleet behaviour)."""
        return cls()

    @property
    def is_flat(self) -> bool:
        return self.pods is None and self.pod_size is None

    # ------------------------------------------------------------------
    def pod_of(self, nic_id: int) -> int:
        """Pod of NIC ``nic_id`` (pure function of the id)."""
        if nic_id < 0:
            raise ConfigurationError("nic_id must be >= 0")
        if self.pod_size is not None:
            return nic_id // self.pod_size
        if self.pods is not None:
            return nic_id % self.pods
        return 0

    def rack_of(self, pod_id: int) -> int:
        """Rack of pod ``pod_id`` (consecutive pods share a rack)."""
        if pod_id < 0:
            raise ConfigurationError("pod_id must be >= 0")
        return pod_id // self.pods_per_rack

    def pod_seed(self, seed: int, pod_id: int) -> int:
        """Derived seed of one pod's scoring streams.

        Keyed to the pod — never to the worker process executing it —
        so any pod-local stochastic stream is identical at every
        runtime/worker count (the :meth:`YalaSystem.train(jobs=)
        <repro.core.predictor.YalaSystem.train>` trick).
        """
        return derive_seed(seed, "pod", pod_id)

    # ------------------------------------------------------------------
    def partition(
        self, nics: Iterable["FleetNic"]
    ) -> list[tuple[int, list["FleetNic"]]]:
        """Group ``nics`` by pod: ``(pod_id, nics)`` pairs, pods in
        ascending id order, NICs within a pod in the given (spin-up)
        order."""
        groups: dict[int, list["FleetNic"]] = {}
        for nic in nics:
            groups.setdefault(self.pod_of(nic.nic_id), []).append(nic)
        return sorted(groups.items())

    def is_cross_pod(self, from_nic: int, to_nic: int) -> bool:
        """Does a move between these NIC ids cross a pod boundary?"""
        return self.pod_of(from_nic) != self.pod_of(to_nic)

    def cross_pod_migrations(
        self, migrations: Iterable["MigrationRecord"]
    ) -> int:
        """How many of ``migrations`` crossed a pod boundary."""
        return sum(
            1
            for record in migrations
            if self.is_cross_pod(record.from_nic, record.to_nic)
        )

    # ------------------------------------------------------------------
    def describe(self) -> str:
        """One-token layout summary (benchmark/CI log lines)."""
        if self.pod_size is not None:
            return f"pod-size={self.pod_size}"
        if self.pods is not None:
            return f"pods={self.pods}"
        return "flat"

    def to_dict(self) -> dict:
        """JSON-ready layout descriptor (part of the report schema)."""
        return {
            "pods": self.pods,
            "pod_size": self.pod_size,
            "pods_per_rack": self.pods_per_rack,
        }


__all__ = ["Topology"]
