"""Crash-surviving engine snapshots (``--checkpoint-every`` / ``--resume``).

A long fleet simulation that dies mid-run — OOM kill, pre-emption, a
pulled plug — currently loses everything. This module gives both
engines periodic state snapshots with a **byte-identity contract**: a
run resumed from any checkpoint produces the *identical* final report,
byte for byte, as the uninterrupted run. That works because every
source of randomness in the fleet is a pure function of ``(seed,
entity)`` — churn, NIC mixes, fault schedules, traces — so the only
state a snapshot must carry is the mutable trajectory (cluster, event
queue, accumulated report, integration counters). Pure caches (the
collector's solo cache, nothing else) are deliberately *not* saved:
they refill on demand with bit-identical values.

Snapshots are single-``pickle`` payloads written atomically (temp file
in the target directory + :func:`os.replace`), so a run killed mid-save
leaves the previous checkpoint intact, never a truncated one. Each
payload carries a **fingerprint** — the run's configuration dict minus
execution-only knobs — and :func:`load_checkpoint` refuses a snapshot
whose fingerprint does not match the resuming configuration: resuming
epoch 7 of one scenario into a different scenario would silently
produce garbage, so it is an error instead.
"""

from __future__ import annotations

import os
import pickle
import tempfile
from typing import Any, Optional

from repro.errors import ConfigurationError

#: Version of the snapshot payload layout. Bumped on incompatible
#: changes; :func:`load_checkpoint` rejects other versions. v2 added
#: the telemetry accumulator to both engines' state dicts; v3 the
#: warm-start solution cache (present even when empty, so resumed
#: warm runs stay byte-identical to uninterrupted ones).
CHECKPOINT_VERSION = 3


def atomic_write_bytes(path: str, data: bytes) -> None:
    """Write ``data`` to ``path`` atomically (temp file + rename).

    The temp file lives in the destination directory so the final
    :func:`os.replace` is a same-filesystem rename — atomic on POSIX.
    A reader never sees a partial file; a crash mid-write leaves the
    previous version (if any) untouched.
    """
    directory = os.path.dirname(os.path.abspath(path))
    fd, tmp_path = tempfile.mkstemp(
        prefix=os.path.basename(path) + ".", suffix=".tmp", dir=directory
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise


def atomic_write_text(path: str, text: str) -> None:
    """Text flavour of :func:`atomic_write_bytes` (UTF-8)."""
    atomic_write_bytes(path, text.encode("utf-8"))


class Checkpointer:
    """Periodic snapshot writer one engine run drives.

    ``every`` counts the engine's own steps (epochs for the epoch
    engine, on-grid probes for the event engine — the same grid, so one
    knob serves both). ``fingerprint`` is any JSON-ready dict
    identifying the run configuration; it is stored in every snapshot
    and checked on load.
    """

    def __init__(self, path: str, every: int, fingerprint: dict) -> None:
        if every < 1:
            raise ConfigurationError("checkpoint interval must be >= 1")
        if not path:
            raise ConfigurationError("checkpoint path must be non-empty")
        self._path = path
        self._every = every
        self._fingerprint = fingerprint
        self.saves = 0

    @property
    def path(self) -> str:
        return self._path

    @property
    def every(self) -> int:
        return self._every

    def maybe_save(self, step: int, state: dict) -> bool:
        """Snapshot if ``step`` completes an interval; returns whether
        a snapshot was written. ``step`` is the number of completed
        engine steps (1-based), so ``every=N`` saves after steps N,
        2N, ... but never the trivial step-0 state."""
        if step <= 0 or step % self._every != 0:
            return False
        self.save(step, state)
        return True

    def save(self, step: int, state: dict) -> None:
        payload = {
            "version": CHECKPOINT_VERSION,
            "fingerprint": self._fingerprint,
            "step": step,
            "state": state,
        }
        atomic_write_bytes(
            self._path,
            pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL),
        )
        self.saves += 1


def load_checkpoint(
    path: str, fingerprint: Optional[dict] = None
) -> tuple[int, dict[str, Any]]:
    """Load a snapshot; returns ``(step, state)``.

    With a ``fingerprint`` the snapshot's stored fingerprint must match
    exactly — resuming into a different configuration is refused rather
    than silently mis-continued.
    """
    try:
        with open(path, "rb") as handle:
            payload = pickle.load(handle)
    except FileNotFoundError:
        raise ConfigurationError(f"no checkpoint at {path!r}") from None
    except (pickle.UnpicklingError, EOFError) as exc:
        raise ConfigurationError(
            f"checkpoint {path!r} is corrupt: {exc}"
        ) from None
    if not isinstance(payload, dict) or "state" not in payload:
        raise ConfigurationError(f"checkpoint {path!r} is not a snapshot")
    version = payload.get("version")
    if version != CHECKPOINT_VERSION:
        raise ConfigurationError(
            f"checkpoint {path!r} has version {version!r}; "
            f"this build reads version {CHECKPOINT_VERSION}"
        )
    if fingerprint is not None and payload.get("fingerprint") != fingerprint:
        raise ConfigurationError(
            f"checkpoint {path!r} was written by a different "
            "configuration; refusing to resume (same seed/policy/"
            "scenario knobs are required for byte-identical resumption)"
        )
    return payload["step"], payload["state"]


__all__ = [
    "CHECKPOINT_VERSION",
    "Checkpointer",
    "atomic_write_bytes",
    "atomic_write_text",
    "load_checkpoint",
]
