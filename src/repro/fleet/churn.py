"""Arrival/departure churn over the NF catalog.

The fleet's service population is driven by a seeded marked Poisson
process: each epoch draws a number of arriving services; every arrival
is marked with an NF from the catalog, an SLA (maximum allowed
throughput-drop fraction, as in §7.5.1), a dynamic traffic trace and a
lifetime after which the service departs. Epoch ``0`` additionally
seeds the fleet with a fixed-size initial population so simulations
don't start empty.

Arrivals are a pure function of ``(seed, epoch)`` — the per-epoch RNG
is derived with :func:`repro.rng.derive_seed` — so a churn schedule is
bit-reproducible regardless of how the engine interleaves its calls.

For the continuous-time event engine, :meth:`ChurnProcess.
arrival_times_for` additionally stamps every arrival with a *time*
inside its epoch: conditioned on the per-epoch Poisson count, arrival
instants of a Poisson process are i.i.d. uniforms over the interval, so
the times are sorted uniform draws from a separate stream derived from
the same base seed — the request marks (NF, SLA, trace, lifetime) stay
bit-identical to :meth:`arrivals_for` however the clock is read.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.fleet.traces import TRACE_KINDS, TrafficTrace, random_trace
from repro.nf.catalog import EVALUATION_NF_NAMES
from repro.rng import SeedLike, derive_seed, make_rng, normalize_seed


@dataclass(frozen=True)
class ServiceRequest:
    """One NF service arriving to the fleet."""

    instance_id: str
    nf_name: str
    sla_drop_fraction: float  # max allowed throughput drop vs solo
    trace: TrafficTrace
    arrival_epoch: int
    departure_epoch: int  # first epoch the service is *gone*

    def __post_init__(self) -> None:
        if not 0.0 < self.sla_drop_fraction < 1.0:
            raise ConfigurationError("SLA drop fraction must be in (0, 1)")
        if self.departure_epoch <= self.arrival_epoch:
            raise ConfigurationError("departure must come after arrival")

    @property
    def lifetime_epochs(self) -> int:
        return self.departure_epoch - self.arrival_epoch


class ChurnProcess:
    """Seeded arrival/departure schedule over the NF catalog."""

    def __init__(
        self,
        nf_names: tuple[str, ...] = EVALUATION_NF_NAMES,
        seed: SeedLike = None,
        arrival_rate: float = 1.5,
        mean_lifetime: float = 12.0,
        sla_range: tuple[float, float] = (0.05, 0.20),
        initial_services: int = 4,
        trace_kinds: tuple[str, ...] = TRACE_KINDS,
    ) -> None:
        if not nf_names:
            raise ConfigurationError("nf_names must be non-empty")
        if arrival_rate < 0:
            raise ConfigurationError("arrival_rate must be >= 0")
        if mean_lifetime < 1:
            raise ConfigurationError("mean_lifetime must be >= 1 epoch")
        if not 0.0 < sla_range[0] < sla_range[1] < 1.0:
            raise ConfigurationError("sla_range must satisfy 0 < lo < hi < 1")
        if initial_services < 0:
            raise ConfigurationError("initial_services must be >= 0")
        for kind in trace_kinds:
            if kind not in TRACE_KINDS:
                raise ConfigurationError(f"unknown trace kind {kind!r}")
        self._nf_names = tuple(nf_names)
        normalised = normalize_seed(seed)
        self._seed = normalised if normalised is not None else 0xF1EE7
        self._arrival_rate = arrival_rate
        self._mean_lifetime = mean_lifetime
        self._sla_range = sla_range
        self._initial_services = initial_services
        self._trace_kinds = tuple(trace_kinds)

    @property
    def seed(self) -> int:
        return self._seed

    @property
    def arrival_rate(self) -> float:
        return self._arrival_rate

    # ------------------------------------------------------------------
    def arrivals_for(self, epoch: int) -> list[ServiceRequest]:
        """Services arriving in ``epoch`` (pure in ``(seed, epoch)``)."""
        if epoch < 0:
            raise ConfigurationError("epoch must be >= 0")
        rng = make_rng(derive_seed(self._seed, "epoch", epoch))
        count = int(rng.poisson(self._arrival_rate))
        if epoch == 0:
            count += self._initial_services
        requests = []
        for index in range(count):
            nf_name = str(rng.choice(self._nf_names))
            sla = float(rng.uniform(*self._sla_range))
            lifetime = 1 + int(rng.exponential(self._mean_lifetime - 1.0))
            trace = random_trace(
                derive_seed(self._seed, "trace", epoch, index),
                kinds=self._trace_kinds,
            )
            requests.append(
                ServiceRequest(
                    instance_id=f"svc-{epoch}-{index}",
                    nf_name=nf_name,
                    sla_drop_fraction=sla,
                    trace=trace,
                    arrival_epoch=epoch,
                    departure_epoch=epoch + lifetime,
                )
            )
        return requests

    def arrival_times_for(
        self, epoch: int, quantize: bool = False
    ) -> list[tuple[float, ServiceRequest]]:
        """Timed arrivals of ``epoch``: ``(time, request)``, time-sorted.

        The requests are exactly :meth:`arrivals_for`'s (same derived
        seed streams, same marks). Times are drawn from a sibling
        ``"arrival-times"`` stream: sorted uniforms over
        ``[epoch, epoch + 1)``, except epoch ``0`` whose arrivals all
        land at ``t = 0.0`` — the initial population seeds the fleet at
        the instant the simulation starts. With ``quantize=True`` every
        time snaps to ``float(epoch)``, the epoch-boundary schedule
        under which the event engine reproduces the epoch engine.
        """
        requests = self.arrivals_for(epoch)
        if quantize or epoch == 0 or not requests:
            return [(float(epoch), request) for request in requests]
        rng = make_rng(derive_seed(self._seed, "arrival-times", epoch))
        offsets = sorted(
            float(x) for x in rng.uniform(0.0, 1.0, size=len(requests))
        )
        return [
            (epoch + offset, request)
            for offset, request in zip(offsets, requests)
        ]
