"""Seeded failure injection for the fleet simulator.

Real SmartNIC fleets degrade and fail per device and per failure
domain. This module brings that into the simulated world behind the
same determinism contract as everything else in the fleet: a validated
:class:`FaultConfig` plus a :class:`FaultSchedule` whose draws are
**pure functions of ``(seed, nic ordinal / pod id)``** — never of the
execution (engine, runtime, worker count, wall clock). Two runs with
the same seed inject the identical fault trajectory, and the epoch and
event engines replay it byte-identically under the epoch-equivalence
contract.

Three fault kinds:

- **NIC hard failure** — the device dies: every resident service is
  evicted into the cluster's re-placement queue
  (:attr:`Cluster.evicted <repro.fleet.cluster.Cluster.evicted>`), the
  NIC leaves the fleet permanently (ids are never reused; replacement
  hardware arrives through the normal on-demand spin-up path), and the
  policies drain the queue at the next rebalancing decision
  (:meth:`FleetPolicy.replace_evicted
  <repro.fleet.policies.FleetPolicy.replace_evicted>`).
- **NIC degradation** — the device keeps running at a fractional
  capacity (:attr:`FleetNic.capacity_fraction
  <repro.fleet.cluster.FleetNic.capacity_fraction>`): fewer usable
  cores (residents over the shrunken capacity are evicted) and
  proportionally reduced delivered throughput, threaded through both
  :class:`~repro.fleet.policies.PlacementModel` feasibility and
  ground-truth scoring. A degraded NIC is *restored* to full capacity
  after its drawn repair time — the ``nic-restore`` transition,
  distinct from retirement.
- **Pod outage** — a whole failure domain goes dark: every NIC of the
  pod hard-fails at once and the pod refuses new spin-ups until the
  outage ends (:meth:`Cluster.fail_pod
  <repro.fleet.cluster.Cluster.fail_pod>` /
  :meth:`Cluster.restore_pod
  <repro.fleet.cluster.Cluster.restore_pod>`). Pod outages require a
  fixed pod count (``Topology(pods=N)``) so the schedule can arm every
  domain up front.

**Epoch alignment.** With ``align_to_epochs=True`` (the default, and
what :class:`~repro.fleet.config.FleetConfig` always uses) every drawn
delay is floored to a whole number of epochs ``>= 1``, so under
quantized arrivals all fault transitions land exactly on epoch
boundaries and the epoch engine can replay them as phase-0 transitions
with byte-parity to the event engine's typed ``nic-fail`` /
``nic-restore`` events. Unaligned schedules are for the event engine
only: transitions land mid-epoch, where only the continuous clock can
see them.

A fault is drawn **once per NIC ordinal** (the id of the spun-up NIC,
which doubles as its provisioning ordinal) and **once per pod id** —
the same key discipline as :meth:`NicProvisioner.spec_for
<repro.fleet.cluster.NicProvisioner.spec_for>`. Failures therefore
never re-target an already-failed NIC, and restore times are strictly
after their failures (delays are ``>= 1`` aligned, ``> 0`` unaligned)
— properties the hypothesis suite pins.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.errors import ConfigurationError
from repro.obs import NULL_RECORDER, Recorder
from repro.rng import derive_seed, make_rng

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.fleet.cluster import Cluster

#: Smallest unaligned delay: keeps every transition strictly after the
#: instant that caused it without visibly shifting the trajectory.
_MIN_DELAY = 1e-9


@dataclass(frozen=True)
class FaultConfig:
    """Validated knobs of one fault trajectory."""

    #: Probability a NIC ever hard-fails (drawn once per ordinal).
    nic_fail_rate: float = 0.0
    #: Probability a NIC ever degrades instead (disjoint with the
    #: above: one ``u`` draw decides fail / degrade / healthy).
    nic_degrade_rate: float = 0.0
    #: Mean epochs between a NIC's spin-up and its fault (exponential).
    mean_time_to_fail: float = 8.0
    #: Mean epochs a degraded NIC stays degraded (exponential).
    mean_repair_time: float = 3.0
    #: Capacity fraction a degraded NIC runs at (uniform draw).
    degraded_capacity_range: tuple[float, float] = (0.3, 0.8)
    #: Probability a pod suffers one outage during the run.
    pod_outage_rate: float = 0.0
    #: Mean start time of a pod outage (exponential, epochs).
    mean_pod_outage_start: float = 5.0
    #: Mean duration of a pod outage (exponential, epochs).
    mean_pod_outage_duration: float = 2.0
    #: Floor every delay to whole epochs (>= 1) so transitions land on
    #: epoch boundaries — required by the epoch engine.
    align_to_epochs: bool = True

    def __post_init__(self) -> None:
        for name in ("nic_fail_rate", "nic_degrade_rate", "pod_outage_rate"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ConfigurationError(f"{name} must be in [0, 1]")
        if self.nic_fail_rate + self.nic_degrade_rate > 1.0:
            raise ConfigurationError(
                "nic_fail_rate + nic_degrade_rate must be <= 1 (one draw "
                "decides fail / degrade / healthy)"
            )
        for name in (
            "mean_time_to_fail",
            "mean_repair_time",
            "mean_pod_outage_start",
            "mean_pod_outage_duration",
        ):
            if getattr(self, name) <= 0.0:
                raise ConfigurationError(f"{name} must be > 0")
        lo, hi = self.degraded_capacity_range
        if not 0.0 < lo <= hi < 1.0:
            raise ConfigurationError(
                "degraded_capacity_range must satisfy 0 < lo <= hi < 1"
            )
        # Normalise a list (e.g. straight from JSON) into a tuple.
        object.__setattr__(
            self, "degraded_capacity_range", (float(lo), float(hi))
        )

    @property
    def any_faults(self) -> bool:
        return (
            self.nic_fail_rate > 0.0
            or self.nic_degrade_rate > 0.0
            or self.pod_outage_rate > 0.0
        )


@dataclass(frozen=True)
class NicFault:
    """One NIC's drawn fault: what happens, when, and for how long."""

    ordinal: int
    mode: str  # "fail" (permanent) or "degrade" (repairable)
    #: Delay from the NIC's spin-up to the fault, in epochs/seconds.
    after: float
    #: Delay from the fault to the restore (degrade mode only).
    repair: float
    #: Capacity fraction while degraded (1.0 in fail mode).
    capacity: float


@dataclass(frozen=True)
class PodOutage:
    """One pod's drawn outage window ``[start, start + duration)``."""

    pod_id: int
    start: float
    duration: float

    @property
    def end(self) -> float:
        return self.start + self.duration


class FaultSchedule:
    """Seeded fault trajectory: pure in ``(seed, ordinal / pod id)``.

    Draw discipline mirrors :class:`~repro.fleet.cluster.NicProvisioner`:
    each entity gets its own derived-seed stream
    (``derive_seed(seed, "nic-fault", ordinal)`` /
    ``derive_seed(seed, "pod-outage", pod_id)``) with a **fixed draw
    order** (selector, onset, repair, capacity), so the schedule is
    identical on every run regardless of which engine asks, in what
    order, or how often. Draws are memoised — repeated queries return
    the same record object.
    """

    def __init__(self, config: FaultConfig, seed: int = 0) -> None:
        self._config = config
        self._seed = seed
        self._nic_memo: dict[int, Optional[NicFault]] = {}
        self._pod_memo: dict[int, Optional[PodOutage]] = {}

    @property
    def config(self) -> FaultConfig:
        return self._config

    @property
    def seed(self) -> int:
        return self._seed

    # ------------------------------------------------------------------
    def _quantize(self, delay: float) -> float:
        """Aligned: floor to whole epochs, minimum 1 (restores stay
        strictly after failures). Unaligned: strictly positive."""
        if self._config.align_to_epochs:
            return float(1 + int(delay))
        return max(delay, _MIN_DELAY)

    def nic_fault(self, ordinal: int) -> Optional[NicFault]:
        """The fault of the ``ordinal``-th provisioned NIC, if any."""
        if ordinal < 0:
            raise ConfigurationError("nic ordinal must be >= 0")
        if ordinal in self._nic_memo:
            return self._nic_memo[ordinal]
        cfg = self._config
        rng = make_rng(derive_seed(self._seed, "nic-fault", ordinal))
        # Fixed draw order keeps the schedule pure whatever branch wins.
        u = float(rng.random())
        after = self._quantize(float(rng.exponential(cfg.mean_time_to_fail)))
        repair = self._quantize(float(rng.exponential(cfg.mean_repair_time)))
        lo, hi = cfg.degraded_capacity_range
        capacity = float(rng.uniform(lo, hi))
        fault: Optional[NicFault] = None
        if u < cfg.nic_fail_rate:
            fault = NicFault(
                ordinal=ordinal, mode="fail", after=after, repair=repair,
                capacity=1.0,
            )
        elif u < cfg.nic_fail_rate + cfg.nic_degrade_rate:
            fault = NicFault(
                ordinal=ordinal, mode="degrade", after=after, repair=repair,
                capacity=capacity,
            )
        self._nic_memo[ordinal] = fault
        return fault

    def pod_outage(self, pod_id: int) -> Optional[PodOutage]:
        """The outage window of pod ``pod_id``, if it suffers one."""
        if pod_id < 0:
            raise ConfigurationError("pod_id must be >= 0")
        if pod_id in self._pod_memo:
            return self._pod_memo[pod_id]
        cfg = self._config
        rng = make_rng(derive_seed(self._seed, "pod-outage", pod_id))
        u = float(rng.random())
        start = self._quantize(
            float(rng.exponential(cfg.mean_pod_outage_start))
        )
        duration = self._quantize(
            float(rng.exponential(cfg.mean_pod_outage_duration))
        )
        outage: Optional[PodOutage] = None
        if u < cfg.pod_outage_rate:
            outage = PodOutage(pod_id=pod_id, start=start, duration=duration)
        self._pod_memo[pod_id] = outage
        return outage


# ----------------------------------------------------------------------
# Epoch-boundary driver (the epoch engine's phase 0)
# ----------------------------------------------------------------------
class EpochFaultDriver:
    """Replays an epoch-aligned schedule as phase-0 cluster transitions.

    The event engine carries the same schedule through typed
    ``nic-fail`` / ``nic-restore`` / ``pod-fail`` / ``pod-restore``
    events; this driver applies the identical transitions at the start
    of each epoch in the identical order the event queue would pop them
    — restores before pod outages before NIC faults, each category in
    ``(time, arming order)`` — which is what keeps the two engines'
    schema-v3 fault sections byte-identical under
    ``epoch_equivalent()``.

    Mutable (it tracks what has already been applied), but a pure
    function of the schedule and the cluster trajectory — and
    picklable, so engine checkpoints capture it.
    """

    def __init__(self, schedule: FaultSchedule) -> None:
        if not schedule.config.align_to_epochs:
            raise ConfigurationError(
                "the epoch engine needs an epoch-aligned fault schedule "
                "(FaultConfig(align_to_epochs=True)); unaligned faults "
                "are event-engine only"
            )
        self._schedule = schedule
        self._seq = 0
        #: Armed NIC faults: (fault time, arm seq, nic_id, fault).
        self._nic_faults: list[tuple[float, int, int, NicFault]] = []
        #: Scheduled degrade repairs: (restore time, arm seq, nic_id).
        self._nic_restores: list[tuple[float, int, int]] = []
        #: Armed pod outage starts: (start, arm seq, outage).
        self._pod_starts: list[tuple[float, int, PodOutage]] = []
        #: Scheduled outage ends: (end, arm seq, pod_id).
        self._pod_restores: list[tuple[float, int, int]] = []

    @property
    def schedule(self) -> FaultSchedule:
        return self._schedule

    def arm_pods(self, pod_count: Optional[int]) -> None:
        """Draw every pod's outage up front (fixed pod counts only)."""
        if self._schedule.config.pod_outage_rate <= 0.0:
            return
        if pod_count is None:
            raise ConfigurationError(
                "pod outages need a fixed pod count (Topology(pods=N))"
            )
        for pod_id in range(pod_count):
            outage = self._schedule.pod_outage(pod_id)
            if outage is not None:
                self._pod_starts.append((outage.start, self._seq, outage))
                self._seq += 1

    def _arm_new_nics(self, cluster: "Cluster") -> None:
        for nic in cluster.take_new_nics():
            fault = self._schedule.nic_fault(nic.nic_id)
            if fault is not None:
                self._nic_faults.append(
                    (nic.spun_up_at + fault.after, self._seq, nic.nic_id,
                     fault)
                )
                self._seq += 1

    @staticmethod
    def _take_due(entries: list, now: float) -> list:
        """Split due entries off ``entries`` (in place), sorted by
        (time, arming seq) — the event queue's pop order."""
        due = sorted(e for e in entries if e[0] <= now)
        entries[:] = [e for e in entries if e[0] > now]
        return due

    def apply(
        self, cluster: "Cluster", now: float, obs: Recorder = NULL_RECORDER
    ) -> None:
        """Apply every transition due at ``now`` (epoch phase 0).

        Each applied transition emits a ``sim``-channel telemetry event
        mirroring the event engine's fault handlers exactly — same
        names, fields, success conditions and within-timestamp order
        (the category order here *is* the queue's priority order) — so
        the sim stream agrees across engines under aligned faults.
        """
        self._arm_new_nics(cluster)
        for restore_time, _, nic_id in self._take_due(
            self._nic_restores, now
        ):
            if cluster.restore_nic(nic_id):
                obs.event(
                    restore_time, "fault.nic_restore", chan="sim", nic=nic_id
                )
        for restore_time, _, pod_id in self._take_due(
            self._pod_restores, now
        ):
            cluster.restore_pod(pod_id)
            obs.event(
                restore_time, "fault.pod_restore", chan="sim", pod=pod_id
            )
        for start_time, _, outage in self._take_due(self._pod_starts, now):
            if cluster.fail_pod(outage.pod_id):
                obs.event(
                    start_time, "fault.pod_fail", chan="sim",
                    pod=outage.pod_id,
                )
                self._pod_restores.append(
                    (outage.end, self._seq, outage.pod_id)
                )
                self._seq += 1
        for fault_time, _, nic_id, fault in self._take_due(
            self._nic_faults, now
        ):
            if fault.mode == "fail":
                if cluster.fail_nic(nic_id):
                    obs.event(
                        fault_time, "fault.nic_fail", chan="sim", nic=nic_id
                    )
            else:
                if cluster.degrade_nic(nic_id, fault.capacity):
                    obs.event(
                        fault_time, "fault.nic_degrade", chan="sim",
                        nic=nic_id, capacity=fault.capacity,
                    )
                    self._nic_restores.append(
                        (fault_time + fault.repair, self._seq, nic_id)
                    )
                    self._seq += 1


# ----------------------------------------------------------------------
# Report section (schema v3)
# ----------------------------------------------------------------------
def faults_payload(
    cluster: Optional["Cluster"] = None,
    failure_violation_service_seconds: float = 0.0,
    failure_drop_service_seconds: float = 0.0,
) -> dict:
    """The schema-v3 ``faults`` section of a fleet report.

    Always emitted — a fault-free run (or ``cluster=None``, the
    default for reports assembled without an engine) carries zeros, so
    the report *structure* never depends on whether faults were
    configured. Field-by-field documentation lives in
    ``docs/fleet_report_schema.md``.
    """
    if cluster is None:
        counts = dict.fromkeys(
            (
                "nic_failures", "nic_degradations", "nic_restores",
                "pod_outages", "pod_restores", "services_evicted",
                "services_lost",
            ),
            0,
        )
        replacements: list[dict] = []
        recover_times: list[float] = []
    else:
        counts = {
            "nic_failures": cluster.nics_failed,
            "nic_degradations": cluster.nics_degraded,
            "nic_restores": cluster.nics_restored,
            "pod_outages": cluster.pods_failed,
            "pod_restores": cluster.pods_restored,
            "services_evicted": cluster.services_evicted,
            "services_lost": cluster.services_lost,
        }
        replacements = [
            {
                "instance_id": r.instance_id,
                "from_nic": r.from_nic,
                "to_nic": r.to_nic,
                "evicted_at": r.evicted_at,
                "replaced_at": r.replaced_at,
            }
            for r in cluster.replacements
        ]
        recover_times = [
            r.replaced_at - r.evicted_at for r in cluster.replacements
        ]
    return {
        **counts,
        "services_replaced": len(replacements),
        "mean_time_to_recover": (
            sum(recover_times) / len(recover_times) if recover_times else 0.0
        ),
        "max_time_to_recover": max(recover_times, default=0.0),
        "failure_violation_service_seconds": (
            failure_violation_service_seconds
        ),
        "failure_drop_service_seconds": failure_drop_service_seconds,
        "replacements": replacements,
    }


__all__ = [
    "EpochFaultDriver",
    "FaultConfig",
    "FaultSchedule",
    "NicFault",
    "PodOutage",
    "faults_payload",
]
