"""CLI for the fleet serving simulator.

``python -m repro.fleet --epochs 20 --policy yala`` trains the
predictors the chosen policy needs, runs the time-stepped fleet
simulation and prints a text (or ``--format json``) report. A
heterogeneous pool is one flag away: ``--nic-mix
bluefield2=0.7,pensando=0.3`` provisions a seeded mixed fleet and
trains the policy's predictors per hardware target; the report header
then carries the per-pool NIC composition and per-target
utilisation/wastage breakdowns.

``--engine event`` switches to the continuous-time event engine:
arrivals land at Poisson instants inside each epoch, migrations take
``--migration-duration`` seconds (contending on both NICs while in
flight), fresh NICs boot for ``--spinup-latency`` seconds, and the
fleet is scored at ``--probe-period``-spaced probes plus every state
change, yielding second-granularity violation/drop integrals on top of
the epoch table. ``--quantize-arrivals`` (with the zero-cost defaults)
reproduces the epoch engine's report byte-identically.

Everything is seeded: two invocations with the same arguments produce
identical stdout, byte for byte. ``--out PATH`` additionally writes the
full JSON report to a file without touching stdout.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.core.predictor import YalaSystem
from repro.core.slomo import SlomoPredictor
from repro.fleet.churn import ChurnProcess
from repro.fleet.cluster import NicProvisioner, parse_nic_mix
from repro.fleet.engine import EventEngine, FleetEngine
from repro.fleet.events import EventConfig
from repro.fleet.policies import FLEET_POLICY_NAMES, PlacementModel
from repro.nf.catalog import make_nf
from repro.nic.nic import SmartNic
from repro.nic.spec import DEFAULT_TARGET, get_spec, target_seed
from repro.profiling.collector import ProfilingCollector
from repro.rng import derive_seed

#: Default NF pool: a regex-accelerated NF, a flow-count-bound NF and a
#: memory-heavy NF — small enough that CLI training stays snappy.
DEFAULT_POOL = ("flowmonitor", "flowstats", "nids")


def _build_target(
    policy: str,
    target: str,
    nf_pool: tuple[str, ...],
    seed: int,
    quota: int,
    jobs: int,
) -> dict:
    """Train exactly the predictors ``policy`` needs on one target.

    Seed streams come from :func:`repro.nic.spec.target_seed`: the
    default target keeps the CLI's historical single-NIC streams
    (byte-identical reports), secondary targets derive their own.
    """
    nic = SmartNic(get_spec(target), seed=target_seed(seed, target))
    if policy in ("yala", "rebalance"):
        yala = YalaSystem(nic, seed=target_seed(seed, target), quota=quota)
        yala.train(list(nf_pool), jobs=jobs)
        return {"yala": yala}
    if policy == "slomo":
        collector = ProfilingCollector(nic)
        slomo = {}
        for name in nf_pool:
            predictor = SlomoPredictor(
                name, seed=target_seed(seed, target, "slomo", name)
            )
            predictor.train(collector, make_nf(name), n_samples=quota)
            slomo[name] = predictor
        return {"slomo_predictors": slomo, "collector": collector, "nic": nic}
    # monopolization / greedy need no trained predictors.
    return {"collector": ProfilingCollector(nic), "nic": nic}


def build_model(
    policy: str,
    nf_pool: tuple[str, ...],
    seed: int,
    quota: int,
    jobs: int,
    targets: tuple[str, ...] = (DEFAULT_TARGET,),
) -> PlacementModel:
    """Train the predictors ``policy`` needs on every pool target."""
    model = PlacementModel(
        **_build_target(policy, targets[0], nf_pool, seed, quota, jobs)
    )
    for target in targets[1:]:
        model.add_target(
            **_build_target(policy, target, nf_pool, seed, quota, jobs)
        )
    return model


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.fleet", description=__doc__
    )
    parser.add_argument("--epochs", type=int, default=20)
    parser.add_argument("--policy", default="yala", choices=FLEET_POLICY_NAMES)
    parser.add_argument(
        "--nic-mix",
        default=DEFAULT_TARGET,
        help="hardware pool composition, e.g. 'bluefield2=0.7,pensando=0.3' "
        "(weights are relative; a bare name means a homogeneous pool)",
    )
    parser.add_argument(
        "--arrival-rate",
        type=float,
        default=1.5,
        help="mean service arrivals per epoch (Poisson)",
    )
    parser.add_argument(
        "--mean-lifetime",
        type=float,
        default=12.0,
        help="mean service lifetime in epochs",
    )
    parser.add_argument(
        "--initial-services",
        type=int,
        default=4,
        help="services seeded into epoch 0",
    )
    parser.add_argument("--seed", type=int, default=2025)
    parser.add_argument(
        "--quota",
        type=int,
        default=200,
        help="profiling quota / SLOMO samples per NF when training",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for predictor training (results identical "
        "at any job count)",
    )
    parser.add_argument(
        "--nf-pool",
        default=",".join(DEFAULT_POOL),
        help="comma-separated NF names services are drawn from",
    )
    parser.add_argument("--format", default="text", choices=("text", "json"))
    parser.add_argument(
        "--score-mode",
        default="batch",
        choices=("batch", "loop"),
        help="'loop' solves per-scenario (the bit-exactness oracle)",
    )
    parser.add_argument(
        "--engine",
        default="epoch",
        choices=("epoch", "event"),
        help="'epoch' is the time-stepped engine; 'event' the "
        "continuous-time event engine",
    )
    parser.add_argument(
        "--out",
        default=None,
        metavar="PATH",
        help="also write the JSON report to PATH (stdout is unchanged)",
    )
    parser.add_argument(
        "--migration-duration",
        type=float,
        default=0.0,
        help="seconds a migrating service contends on both NICs "
        "(event engine; 0 = instantaneous)",
    )
    parser.add_argument(
        "--spinup-latency",
        type=float,
        default=0.0,
        help="seconds a fresh NIC boots before serving (event engine)",
    )
    parser.add_argument(
        "--probe-period",
        type=float,
        default=1.0,
        help="seconds between scoring probes (event engine)",
    )
    parser.add_argument(
        "--quantize-arrivals",
        action="store_true",
        help="snap arrival times to epoch boundaries (event engine; with "
        "the zero-cost defaults this reproduces the epoch engine's "
        "report byte-identically)",
    )
    args = parser.parse_args(argv)
    if args.epochs < 1:
        parser.error("--epochs must be >= 1")
    if args.jobs < 1:
        parser.error("--jobs must be >= 1")
    nf_pool = tuple(name.strip() for name in args.nf_pool.split(",") if name.strip())
    if not nf_pool:
        parser.error("--nf-pool must name at least one NF")
    try:
        mix = parse_nic_mix(args.nic_mix)
    except Exception as error:
        parser.error(str(error))

    targets = tuple(mix)
    start = time.perf_counter()
    model = build_model(
        args.policy, nf_pool, args.seed, args.quota, args.jobs, targets
    )
    print(
        f"# model ready in {time.perf_counter() - start:.1f}s "
        f"(policy={args.policy}, pool={','.join(nf_pool)}, "
        f"targets={','.join(targets)})",
        file=sys.stderr,
    )

    provisioner = NicProvisioner(mix, seed=derive_seed(args.seed, "nic-mix"))
    churn = ChurnProcess(
        nf_names=nf_pool,
        seed=derive_seed(args.seed, "fleet-churn"),
        arrival_rate=args.arrival_rate,
        mean_lifetime=args.mean_lifetime,
        initial_services=args.initial_services,
    )
    if args.engine == "event":
        engine = EventEngine(
            args.policy,
            churn,
            model,
            score_mode=args.score_mode,
            provisioner=provisioner,
            config=EventConfig(
                quantize_arrivals=args.quantize_arrivals,
                migration_duration=args.migration_duration,
                spinup_latency=args.spinup_latency,
                probe_period=args.probe_period,
            ),
        )
    else:
        engine = FleetEngine(
            args.policy,
            churn,
            model,
            score_mode=args.score_mode,
            provisioner=provisioner,
        )
    start = time.perf_counter()
    report = engine.run(args.epochs)
    print(
        f"# simulated {args.epochs} epochs in {time.perf_counter() - start:.1f}s",
        file=sys.stderr,
    )
    if args.out is not None:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(report.to_json())
            handle.write("\n")
    print(report.to_json() if args.format == "json" else report.render())
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI entry
    raise SystemExit(main())
