"""CLI for the fleet serving simulator.

``python -m repro.fleet --epochs 20 --policy yala`` trains the
predictors the chosen policy needs, runs the time-stepped fleet
simulation and prints a text (or ``--format json``) report. A
heterogeneous pool is one flag away: ``--nic-mix
bluefield2=0.7,pensando=0.3`` provisions a seeded mixed fleet and
trains the policy's predictors per hardware target; the report header
then carries the per-pool NIC composition and per-target
utilisation/wastage breakdowns.

``--engine event`` switches to the continuous-time event engine:
arrivals land at Poisson instants inside each epoch, migrations take
``--migration-duration`` seconds (contending on both NICs while in
flight), fresh NICs boot for ``--spinup-latency`` seconds, and the
fleet is scored at ``--probe-period``-spaced probes plus every state
change, yielding second-granularity violation/drop integrals on top of
the epoch table. ``--quantize-arrivals`` (with the zero-cost defaults)
reproduces the epoch engine's report byte-identically.

``--runtime process`` shards epoch scoring across ``--jobs`` worker
processes; ``--pods N`` / ``--pod-size K`` lay the fleet out as pods
(the unit of sharding, and what topology-aware policies keep
migrations inside). Runtime and worker count never change a byte of
the report — serial is the oracle arm.

``--nic-fail-rate`` / ``--nic-degrade-rate`` / ``--pod-outage-rate``
turn on seeded failure injection: NICs hard-fail or run degraded,
whole pods black out, evicted services queue for re-placement, and the
report's ``faults`` section accounts for every eviction and recovery.
``--checkpoint-every N --checkpoint-path PATH`` snapshots engine state
every N epochs (atomically); ``--resume PATH`` continues a killed run
to a **byte-identical** final report.

``--warm-start`` turns on cross-epoch incremental solving: each NIC's
last converged throughput vector seeds the next epoch's fixed-point
solve whenever the resident mix is structurally unchanged. The fixed
point (and hence every placement decision) is the same — only the
iterate path is shorter — and warm runs stay byte-identical across
engines, runtimes and job counts; the report's ``telemetry`` section
gains warm-cache hit/miss counts and the warm-vs-cold iteration split.
Off by default: the cold run is the oracle arm tier-1 pins, and a warm
checkpoint only resumes into a warm run (the flag is part of the
fingerprint).

``--trace-out PATH`` attaches a telemetry recorder and writes its
trace on completion — ``--trace-format jsonl`` for the deterministic
sim-time event log, ``--trace-format chrome`` for a wall-clock
trace-event timeline loadable in Perfetto (pods as tracks);
``--metrics-out PATH`` dumps the counters/gauges/histograms snapshot.
Attaching a recorder never changes a byte of the report (tier-1
pinned); see ``docs/observability.md``.

The CLI is a thin shell over :class:`repro.fleet.FleetConfig` +
:func:`repro.fleet.simulate`; everything is seeded, and two
invocations with the same arguments produce identical stdout, byte
for byte. ``--out PATH`` additionally writes the full JSON report to a
file, atomically (temp file + rename — a crash mid-write never leaves
a truncated report), without touching stdout.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.fleet.checkpoint import atomic_write_text
from repro.fleet.config import (
    DEFAULT_POOL,
    FleetConfig,
    build_model_for,
    simulate,
)
from repro.fleet.policies import FLEET_POLICY_NAMES
from repro.fleet.runtime import RUNTIME_NAMES
from repro.nic.spec import DEFAULT_TARGET
from repro.obs import TRACE_FORMATS


def _progress(message: str) -> None:
    """Emit one human-facing progress line to stderr, atomically.

    All CLI progress goes through this single helper: one
    ``sys.stderr.write`` per line (prefixed ``# ``) followed by a
    flush, so lines from interleaved runs (or a runtime's worker
    processes) can't shear mid-line the way buffered ``print`` calls
    can. stdout stays reserved for the report (``--format json``
    pipelines parse it), and ``--out`` files never see progress text.
    """
    sys.stderr.write(f"# {message}\n")
    sys.stderr.flush()


def build_parser() -> argparse.ArgumentParser:
    """The ``python -m repro.fleet`` argument parser (tested directly)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.fleet", description=__doc__
    )
    parser.add_argument("--epochs", type=int, default=20)
    parser.add_argument("--policy", default="yala", choices=FLEET_POLICY_NAMES)
    parser.add_argument(
        "--nic-mix",
        default=DEFAULT_TARGET,
        help="hardware pool composition, e.g. 'bluefield2=0.7,pensando=0.3' "
        "(weights are relative; a bare name means a homogeneous pool)",
    )
    parser.add_argument(
        "--arrival-rate",
        type=float,
        default=1.5,
        help="mean service arrivals per epoch (Poisson)",
    )
    parser.add_argument(
        "--mean-lifetime",
        type=float,
        default=12.0,
        help="mean service lifetime in epochs",
    )
    parser.add_argument(
        "--initial-services",
        type=int,
        default=4,
        help="services seeded into epoch 0",
    )
    parser.add_argument("--seed", type=int, default=2025)
    parser.add_argument(
        "--quota",
        type=int,
        default=200,
        help="profiling quota / SLOMO samples per NF when training",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for predictor training and the process "
        "runtime (results identical at any job count)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="deprecated alias of --jobs",
    )
    parser.add_argument(
        "--nf-pool",
        default=",".join(DEFAULT_POOL),
        help="comma-separated NF names services are drawn from",
    )
    parser.add_argument("--format", default="text", choices=("text", "json"))
    parser.add_argument(
        "--score-mode",
        default="batch",
        choices=("batch", "loop"),
        help="'loop' solves per-scenario (the bit-exactness oracle)",
    )
    parser.add_argument(
        "--engine",
        default="epoch",
        choices=("epoch", "event"),
        help="'epoch' is the time-stepped engine; 'event' the "
        "continuous-time event engine",
    )
    parser.add_argument(
        "--runtime",
        default="serial",
        choices=RUNTIME_NAMES,
        help="where epoch scoring executes: 'serial' (in-process, the "
        "oracle arm) or 'process' (pods solve in --jobs workers); the "
        "report is byte-identical either way",
    )
    parser.add_argument(
        "--pods",
        type=int,
        default=None,
        help="fixed pod count (NICs dealt round-robin); the unit of "
        "sharding and pod-local migration preference",
    )
    parser.add_argument(
        "--pod-size",
        type=int,
        default=None,
        help="NICs per pod (sequential fill; pod count grows with the "
        "fleet); mutually exclusive with --pods",
    )
    parser.add_argument(
        "--out",
        default=None,
        metavar="PATH",
        help="also write the JSON report to PATH (stdout is unchanged)",
    )
    parser.add_argument(
        "--migration-duration",
        type=float,
        default=0.0,
        help="seconds a migrating service contends on both NICs "
        "(event engine; 0 = instantaneous)",
    )
    parser.add_argument(
        "--cross-pod-migration-duration",
        type=float,
        default=None,
        help="seconds a migration crossing a pod boundary takes instead "
        "of --migration-duration (event engine; unset = no distinction)",
    )
    parser.add_argument(
        "--spinup-latency",
        type=float,
        default=0.0,
        help="seconds a fresh NIC boots before serving (event engine)",
    )
    parser.add_argument(
        "--probe-period",
        type=float,
        default=1.0,
        help="seconds between scoring probes (event engine)",
    )
    parser.add_argument(
        "--nic-fail-rate",
        type=float,
        default=0.0,
        help="probability a NIC ever hard-fails (seeded per NIC ordinal; "
        "evicted residents queue for re-placement)",
    )
    parser.add_argument(
        "--nic-degrade-rate",
        type=float,
        default=0.0,
        help="probability a NIC degrades to fractional capacity instead "
        "of failing (restored after a seeded repair time)",
    )
    parser.add_argument(
        "--pod-outage-rate",
        type=float,
        default=0.0,
        help="probability a pod suffers one outage window (needs --pods)",
    )
    parser.add_argument(
        "--mean-time-to-fail",
        type=float,
        default=8.0,
        help="mean epochs between a NIC's spin-up and its fault",
    )
    parser.add_argument(
        "--mean-repair-time",
        type=float,
        default=3.0,
        help="mean epochs a degraded NIC stays degraded",
    )
    parser.add_argument(
        "--checkpoint-every",
        type=int,
        default=None,
        metavar="N",
        help="snapshot engine state every N epochs (with "
        "--checkpoint-path); a resumed run finishes byte-identically",
    )
    parser.add_argument(
        "--checkpoint-path",
        default=None,
        metavar="PATH",
        help="where periodic snapshots are written (atomic replace)",
    )
    parser.add_argument(
        "--resume",
        default=None,
        metavar="PATH",
        help="resume a run from a snapshot written by --checkpoint-path "
        "(the configuration must match the checkpointed run's)",
    )
    parser.add_argument(
        "--quantize-arrivals",
        action="store_true",
        help="snap arrival times to epoch boundaries (event engine; with "
        "the zero-cost defaults this reproduces the epoch engine's "
        "report byte-identically)",
    )
    parser.add_argument(
        "--trace-out",
        default=None,
        metavar="PATH",
        help="write a telemetry trace to PATH on completion (attaching "
        "the recorder never changes a byte of the report)",
    )
    parser.add_argument(
        "--trace-format",
        default="jsonl",
        choices=TRACE_FORMATS,
        help="'jsonl' is the deterministic sim-time event log; 'chrome' "
        "the wall-clock trace-event timeline (load in Perfetto)",
    )
    parser.add_argument(
        "--metrics-out",
        default=None,
        metavar="PATH",
        help="write the JSON metrics snapshot (counters, gauges, "
        "histograms) to PATH on completion",
    )
    parser.add_argument(
        "--warm-start",
        action=argparse.BooleanOptionalAction,
        default=False,
        help="seed each mix's fixed-point solve from the hosting NIC's "
        "last converged vector (same fixed point, fewer iterations; "
        "byte-deterministic at any runtime/jobs, but a different "
        "iterate path than the cold oracle arm)",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        config = FleetConfig.from_cli_args(args)
    except Exception as error:
        parser.error(str(error))

    start = time.perf_counter()
    model = build_model_for(config)
    _progress(
        f"model ready in {time.perf_counter() - start:.1f}s "
        f"(policy={config.policy}, pool={','.join(config.nf_pool)}, "
        f"targets={','.join(config.target_names())})"
    )

    start = time.perf_counter()
    report = simulate(config, model=model)
    _progress(
        f"simulated {config.epochs} epochs in "
        f"{time.perf_counter() - start:.1f}s "
        f"(runtime={config.runtime}, jobs={config.jobs}, "
        f"topology={config.topology().describe()})"
    )
    if config.trace_out is not None:
        _progress(f"trace written to {config.trace_out}")
    if config.metrics_out is not None:
        _progress(f"metrics written to {config.metrics_out}")
    if args.out is not None:
        atomic_write_text(args.out, report.to_json() + "\n")
    print(report.to_json() if args.format == "json" else report.render())
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI entry
    raise SystemExit(main())
