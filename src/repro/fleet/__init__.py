"""Traffic-aware fleet serving simulator (§7.5 taken online).

A time-stepped SmartNIC cluster: NF services arrive and depart
(:mod:`repro.fleet.churn`), their traffic profiles evolve every epoch
(:mod:`repro.fleet.traces`), and an online placement policy
(:mod:`repro.fleet.policies`) decides where each service runs on the
growing/shrinking cluster (:mod:`repro.fleet.cluster`). The epoch loop
(:mod:`repro.fleet.engine`) scores every NIC's residents against
simulator ground truth — one :meth:`SmartNic.run_batch` call per epoch —
and accumulates SLA-violation, utilisation, wastage and migration-cost
time series.

CLI: ``python -m repro.fleet --epochs 20 --policy yala``.
"""

from repro.fleet.churn import ChurnProcess, ServiceRequest
from repro.fleet.cluster import (
    Cluster,
    FleetNic,
    MigrationRecord,
    NicProvisioner,
    ServiceInstance,
    parse_nic_mix,
)
from repro.fleet.engine import (
    EpochMetrics,
    FleetEngine,
    FleetReport,
    PoolMetrics,
    simulate,
)
from repro.fleet.policies import (
    FLEET_POLICY_NAMES,
    PlacementModel,
    make_policy,
)
from repro.fleet.traces import TRACE_KINDS, TrafficTrace, make_trace, random_trace

__all__ = [
    "ChurnProcess",
    "Cluster",
    "EpochMetrics",
    "FLEET_POLICY_NAMES",
    "FleetEngine",
    "FleetNic",
    "FleetReport",
    "MigrationRecord",
    "NicProvisioner",
    "PlacementModel",
    "PoolMetrics",
    "ServiceInstance",
    "ServiceRequest",
    "TRACE_KINDS",
    "TrafficTrace",
    "make_policy",
    "make_trace",
    "parse_nic_mix",
    "random_trace",
    "simulate",
]
