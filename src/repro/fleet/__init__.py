"""Traffic-aware fleet serving simulator (§7.5 taken online).

A SmartNIC cluster over time: NF services arrive and depart
(:mod:`repro.fleet.churn`), their traffic profiles evolve along traces
(:mod:`repro.fleet.traces`), and an online placement policy
(:mod:`repro.fleet.policies`) decides where each service runs on the
growing/shrinking cluster (:mod:`repro.fleet.cluster`). Two engines
share one scoring core (:mod:`repro.fleet.engine`): the time-stepped
:class:`FleetEngine` advances epoch by epoch, while the
continuous-time :class:`EventEngine` pops typed events
(:mod:`repro.fleet.events`) — timed arrivals, mid-epoch traffic change
points, timed migrations, NIC spin-up — and scores lazily at
observation points, gathering all changed NICs into one
:meth:`SmartNic.run_batch` call per hardware target. Both accumulate
SLA-violation, utilisation, wastage and migration-cost series; the
event engine adds second-granularity violation/drop integrals.

The **front door** is :class:`FleetConfig` + :func:`simulate`: one
validated object holding every knob (engine, churn, policy, hardware
mix, pod topology, execution runtime), one call returning the report.
The CLI (``python -m repro.fleet --epochs 20 --policy yala``;
``--engine event`` for the continuous-time engine) and the ``fleet`` /
``fleet-event`` experiments are thin callers of it. Scoring executes
on an execution :class:`Runtime` (:mod:`repro.fleet.runtime`):
``serial`` in-process (the oracle arm) or ``process`` sharding the
fleet's pods (:mod:`repro.fleet.topology`) across workers — same seed
⇒ byte-identical reports at any runtime/worker count.

**Faults are first-class** (:mod:`repro.fleet.faults`): a seeded
:class:`FaultSchedule` injects NIC hard failures, degraded-capacity
windows and pod outages into either engine; evicted services queue for
policy-driven re-placement and the schema-v3 report carries a
``faults`` accounting section. The :class:`ProcessRuntime` survives
worker crashes (timeout + retry + deterministic serial re-execution),
and :mod:`repro.fleet.checkpoint` snapshots let a killed run resume to
a byte-identical final report — the determinism contract holds under
failure, not just alongside it.

**Telemetry is first-class too** (:mod:`repro.obs`): attach a
:class:`~repro.obs.TraceRecorder` (``simulate(config, recorder=...)``
or the CLI's ``--trace-out``/``--metrics-out``) to collect sim-time
spans, typed events, counters and histograms from every hot layer —
engine phases, runtime dispatch, batch solver, profiling quota — and
export them as JSONL, a Chrome/Perfetto trace, or a metrics snapshot.
Recorders never perturb results: the schema-v4 report (with its
always-on ``telemetry`` section) stays byte-identical with or without
one, and the sim-time event stream is itself byte-deterministic at any
runtime/jobs setting.
"""

from repro.fleet.checkpoint import (
    CHECKPOINT_VERSION,
    Checkpointer,
    atomic_write_bytes,
    atomic_write_text,
    load_checkpoint,
)
from repro.fleet.churn import ChurnProcess, ServiceRequest
from repro.fleet.cluster import (
    Cluster,
    EvictedService,
    FleetNic,
    MigrationRecord,
    NicProvisioner,
    ReplacementRecord,
    ServiceInstance,
    TimedMigration,
    parse_nic_mix,
)
from repro.fleet.config import (
    DEFAULT_POOL,
    ENGINE_NAMES,
    FleetConfig,
    build_model,
    build_model_for,
    simulate,
)
from repro.fleet.engine import (
    FLEET_REPORT_SCHEMA_VERSION,
    EpochMetrics,
    EventEngine,
    EventReport,
    FleetEngine,
    FleetReport,
    ObservationRecord,
    PoolMetrics,
)
from repro.fleet.events import (
    EVENT_TYPES,
    Arrival,
    Departure,
    Event,
    EventConfig,
    EventQueue,
    MigrationComplete,
    MigrationStart,
    NicFail,
    NicRestore,
    PodFail,
    PodRestore,
    Probe,
    RebalanceTimer,
    TrafficChange,
)
from repro.fleet.faults import (
    EpochFaultDriver,
    FaultConfig,
    FaultSchedule,
    NicFault,
    PodOutage,
    faults_payload,
)
from repro.fleet.policies import (
    FLEET_POLICY_NAMES,
    PlacementModel,
    make_policy,
)
from repro.fleet.runtime import (
    RUNTIME_NAMES,
    FaultInjectingRuntime,
    PodScoreTask,
    ProcessRuntime,
    Runtime,
    SerialRuntime,
    make_runtime,
)
from repro.fleet.topology import Topology
from repro.fleet.traces import TRACE_KINDS, TrafficTrace, make_trace, random_trace
from repro.obs import (
    NullRecorder,
    Recorder,
    TelemetryAccumulator,
    TraceRecorder,
    chrome_trace_payload,
    write_metrics,
    write_trace,
)

__all__ = [
    "Arrival",
    "CHECKPOINT_VERSION",
    "Checkpointer",
    "ChurnProcess",
    "Cluster",
    "DEFAULT_POOL",
    "Departure",
    "ENGINE_NAMES",
    "EVENT_TYPES",
    "EpochFaultDriver",
    "EpochMetrics",
    "Event",
    "EventConfig",
    "EventEngine",
    "EventQueue",
    "EventReport",
    "EvictedService",
    "FLEET_POLICY_NAMES",
    "FLEET_REPORT_SCHEMA_VERSION",
    "FaultConfig",
    "FaultInjectingRuntime",
    "FaultSchedule",
    "FleetConfig",
    "FleetEngine",
    "FleetNic",
    "FleetReport",
    "MigrationComplete",
    "MigrationRecord",
    "MigrationStart",
    "NicFail",
    "NicFault",
    "NicProvisioner",
    "NicRestore",
    "NullRecorder",
    "ObservationRecord",
    "PlacementModel",
    "PodFail",
    "PodOutage",
    "PodRestore",
    "PodScoreTask",
    "PoolMetrics",
    "Probe",
    "ProcessRuntime",
    "RUNTIME_NAMES",
    "RebalanceTimer",
    "Recorder",
    "ReplacementRecord",
    "Runtime",
    "SerialRuntime",
    "ServiceInstance",
    "ServiceRequest",
    "TRACE_KINDS",
    "TelemetryAccumulator",
    "TimedMigration",
    "Topology",
    "TraceRecorder",
    "TrafficChange",
    "TrafficTrace",
    "atomic_write_bytes",
    "atomic_write_text",
    "build_model",
    "build_model_for",
    "chrome_trace_payload",
    "faults_payload",
    "load_checkpoint",
    "make_policy",
    "make_runtime",
    "make_trace",
    "parse_nic_mix",
    "random_trace",
    "simulate",
    "write_metrics",
    "write_trace",
]
