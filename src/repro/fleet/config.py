"""One front door for fleet simulation: :class:`FleetConfig` + :func:`simulate`.

Historically the knobs of a fleet run were spread over four surfaces —
``__main__.py`` flags, :class:`~repro.fleet.engine.FleetEngine` /
:class:`~repro.fleet.engine.EventEngine` constructor arguments and
:class:`~repro.fleet.events.EventConfig` fields — and every caller
(CLI, experiments, tests) re-assembled them by hand. :class:`FleetConfig`
consolidates engine choice, churn/trace shape, policy, hardware mix,
topology and execution-runtime selection into one validated object with
a ``to_dict``/``from_dict`` round-trip, and :func:`simulate` turns a
config into a report:

    from repro.fleet import FleetConfig, simulate

    report = simulate(FleetConfig(policy="rebalance", epochs=20))
    print(report.render())

``simulate(config)`` reproduces ``python -m repro.fleet`` with the same
knobs **byte-identically** (tier-1 pinned) — the CLI and the ``fleet`` /
``fleet-event`` experiments are thin callers of this module.

Naming note: ``jobs`` is the repo-wide name for worker-process counts
(predictor training *and* the process execution runtime share it);
``workers=`` survives only as a deprecated alias on
:class:`~repro.fleet.runtime.ProcessRuntime` and the CLI flag.
"""

from __future__ import annotations

import warnings
from dataclasses import asdict, dataclass, field
from typing import Optional, Union

from repro.core.predictor import YalaSystem
from repro.core.slomo import SlomoPredictor
from repro.errors import ConfigurationError
from repro.fleet.checkpoint import Checkpointer, load_checkpoint
from repro.fleet.churn import ChurnProcess
from repro.fleet.cluster import NicProvisioner, parse_nic_mix
from repro.fleet.engine import (
    EventEngine,
    EventReport,
    FleetEngine,
    FleetReport,
)
from repro.fleet.events import EventConfig
from repro.fleet.faults import FaultConfig, FaultSchedule
from repro.fleet.policies import (
    FLEET_POLICY_NAMES,
    PlacementModel,
)
from repro.fleet.runtime import RUNTIME_NAMES, Runtime, make_runtime
from repro.fleet.topology import Topology
from repro.nf.catalog import make_nf
from repro.obs import (
    TRACE_FORMATS,
    Recorder,
    TraceRecorder,
    write_metrics,
    write_trace,
)
from repro.nic.nic import SmartNic
from repro.nic.spec import DEFAULT_TARGET, get_spec, target_seed
from repro.profiling.collector import ProfilingCollector
from repro.rng import derive_seed

#: Default NF pool: a regex-accelerated NF, a flow-count-bound NF and a
#: memory-heavy NF — small enough that CLI training stays snappy.
DEFAULT_POOL = ("flowmonitor", "flowstats", "nids")

#: Engine names a config accepts.
ENGINE_NAMES: tuple[str, ...] = ("epoch", "event")


@dataclass(frozen=True)
class FleetConfig:
    """Everything one fleet simulation needs, validated at construction.

    Field groups mirror the layers they configure: *what* runs (policy,
    engine, epochs, seed), the *workload* (churn shape, NF pool), the
    *hardware* (nic_mix, topology), the *continuous-time* costs (the
    ``EventConfig`` knobs, event engine only) and *where it executes*
    (runtime, jobs). ``nic_mix`` stays the CLI's string form (e.g.
    ``"bluefield2=0.7,pensando=0.3"``) so the config round-trips
    through JSON unchanged.
    """

    # What runs.
    policy: str = "yala"
    engine: str = "epoch"
    epochs: int = 20
    seed: int = 2025
    score_mode: str = "batch"
    #: Seed each mix's fixed-point solve from the hosting NIC's last
    #: converged vector (same fixed point, fewer iterations). Off by
    #: default: the cold run is the oracle arm whose bytes tier-1 pins.
    #: Part of the checkpoint fingerprint — a warm run resumes only
    #: into a warm run (the iterate path differs from cold's).
    warm_start: bool = False
    # Workload.
    nf_pool: tuple[str, ...] = DEFAULT_POOL
    arrival_rate: float = 1.5
    mean_lifetime: float = 12.0
    initial_services: int = 4
    # Hardware.
    nic_mix: str = DEFAULT_TARGET
    pods: Optional[int] = None
    pod_size: Optional[int] = None
    # Training.
    quota: int = 200
    # Execution.
    runtime: str = "serial"
    jobs: int = 1
    # Continuous-time costs (event engine only).
    quantize_arrivals: bool = False
    migration_duration: float = 0.0
    cross_pod_migration_duration: Optional[float] = None
    spinup_latency: float = 0.0
    probe_period: float = 1.0
    rebalance_period: float = 1.0
    observe_changes: bool = True
    # Faults (both engines; zero rates = the historical fault-free run).
    nic_fail_rate: float = 0.0
    nic_degrade_rate: float = 0.0
    pod_outage_rate: float = 0.0
    mean_time_to_fail: float = 8.0
    mean_repair_time: float = 3.0
    # Crash survival (execution-only: excluded from the fingerprint).
    checkpoint_path: Optional[str] = None
    checkpoint_every: Optional[int] = None
    resume_path: Optional[str] = None
    # Telemetry export (execution-only: attaching a recorder never
    # changes a simulated byte, so none of these enter the fingerprint).
    trace_out: Optional[str] = None
    trace_format: str = "jsonl"
    metrics_out: Optional[str] = None

    def __post_init__(self) -> None:
        if self.policy not in FLEET_POLICY_NAMES:
            raise ConfigurationError(
                f"unknown policy {self.policy!r}; known: {FLEET_POLICY_NAMES}"
            )
        if self.engine not in ENGINE_NAMES:
            raise ConfigurationError(
                f"unknown engine {self.engine!r}; known: {ENGINE_NAMES}"
            )
        if self.score_mode not in ("batch", "loop"):
            raise ConfigurationError("score_mode must be 'batch' or 'loop'")
        if self.runtime not in RUNTIME_NAMES:
            raise ConfigurationError(
                f"unknown runtime {self.runtime!r}; known: {RUNTIME_NAMES}"
            )
        if self.epochs < 1:
            raise ConfigurationError("epochs must be >= 1")
        if self.jobs < 1:
            raise ConfigurationError("jobs must be >= 1")
        if self.quota < 1:
            raise ConfigurationError("quota must be >= 1")
        if not self.nf_pool:
            raise ConfigurationError("nf_pool must name at least one NF")
        # Normalise a list (e.g. straight from JSON) into a tuple.
        object.__setattr__(self, "nf_pool", tuple(self.nf_pool))
        parse_nic_mix(self.nic_mix)  # validates targets and weights
        self.topology()  # validates pods/pod_size
        self.event_config()  # validates the continuous-time knobs
        self.fault_config()  # validates the fault rates/means
        if self.pod_outage_rate > 0.0 and self.pods is None:
            raise ConfigurationError(
                "pod_outage_rate needs a fixed pod count (pods=N): outages "
                "are drawn per pod id up front"
            )
        if (self.checkpoint_path is None) != (self.checkpoint_every is None):
            raise ConfigurationError(
                "checkpoint_path and checkpoint_every go together"
            )
        if self.checkpoint_every is not None and self.checkpoint_every < 1:
            raise ConfigurationError("checkpoint_every must be >= 1")
        if self.trace_format not in TRACE_FORMATS:
            raise ConfigurationError(
                f"unknown trace_format {self.trace_format!r}; "
                f"known: {TRACE_FORMATS}"
            )

    # ------------------------------------------------------------------
    # Derived objects
    # ------------------------------------------------------------------
    def mix(self) -> dict[str, float]:
        """The parsed ``{target: weight}`` hardware mix."""
        return parse_nic_mix(self.nic_mix)

    def target_names(self) -> tuple[str, ...]:
        return tuple(self.mix())

    def topology(self) -> Topology:
        """The pod layout this config describes (flat when unset)."""
        return Topology(pods=self.pods, pod_size=self.pod_size)

    def make_runtime(self) -> Runtime:
        """A fresh execution runtime (caller owns ``close()``)."""
        return make_runtime(
            self.runtime, jobs=self.jobs if self.runtime == "process" else None
        )

    def event_config(self) -> EventConfig:
        return EventConfig(
            quantize_arrivals=self.quantize_arrivals,
            migration_duration=self.migration_duration,
            cross_pod_migration_duration=self.cross_pod_migration_duration,
            spinup_latency=self.spinup_latency,
            probe_period=self.probe_period,
            rebalance_period=self.rebalance_period,
            observe_changes=self.observe_changes,
        )

    def fault_config(self) -> FaultConfig:
        """The validated fault knobs (all-zero rates = fault-free)."""
        return FaultConfig(
            nic_fail_rate=self.nic_fail_rate,
            nic_degrade_rate=self.nic_degrade_rate,
            pod_outage_rate=self.pod_outage_rate,
            mean_time_to_fail=self.mean_time_to_fail,
            mean_repair_time=self.mean_repair_time,
        )

    def fault_schedule(self) -> Optional[FaultSchedule]:
        """The seeded fault trajectory, or ``None`` when rates are zero.

        Seeded like every other fleet stream — a dedicated derived
        stream per purpose — so turning faults on never perturbs churn,
        NIC mix, or scenario noise draws.
        """
        config = self.fault_config()
        if not config.any_faults:
            return None
        return FaultSchedule(
            config, seed=derive_seed(self.seed, "fleet-faults")
        )

    def fingerprint(self) -> dict:
        """What a checkpoint must match to be resumable into this config.

        Everything that shapes the trajectory stays (seed, policy,
        churn, hardware, faults, ``score_mode``); execution-only knobs
        (runtime, jobs, checkpoint/resume paths) are dropped — resuming
        a serial run under the process runtime is exactly the kind of
        thing the byte-identity contract promises to allow.
        """
        payload = self.to_dict()
        for key in (
            "runtime",
            "jobs",
            "checkpoint_path",
            "checkpoint_every",
            "resume_path",
            "trace_out",
            "trace_format",
            "metrics_out",
        ):
            payload.pop(key, None)
        return payload

    def churn(self) -> ChurnProcess:
        """The seeded churn process (identical derivation to the CLI's)."""
        return ChurnProcess(
            nf_names=self.nf_pool,
            seed=derive_seed(self.seed, "fleet-churn"),
            arrival_rate=self.arrival_rate,
            mean_lifetime=self.mean_lifetime,
            initial_services=self.initial_services,
        )

    def provisioner(self) -> NicProvisioner:
        """The seeded hardware provisioner (CLI-identical derivation)."""
        return NicProvisioner(
            self.mix(), seed=derive_seed(self.seed, "nic-mix")
        )

    # ------------------------------------------------------------------
    # Round-trip
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-ready dict; :meth:`from_dict` restores it exactly."""
        payload = asdict(self)
        payload["nf_pool"] = list(self.nf_pool)
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "FleetConfig":
        known = set(cls.__dataclass_fields__)
        unknown = set(payload) - known
        if unknown:
            raise ConfigurationError(
                f"unknown FleetConfig fields: {sorted(unknown)}"
            )
        return cls(**payload)

    @classmethod
    def from_cli_args(cls, args) -> "FleetConfig":
        """Build a config from the ``python -m repro.fleet`` namespace.

        ``--workers`` (deprecated alias of ``--jobs``) is honoured here
        with a warning so old invocations keep working.
        """
        jobs = args.jobs
        workers = getattr(args, "workers", None)
        if workers is not None:
            warnings.warn(
                "--workers is deprecated; use --jobs (the repo-wide name "
                "for worker-process counts)",
                DeprecationWarning,
                stacklevel=2,
            )
            jobs = workers
        nf_pool = tuple(
            name.strip() for name in args.nf_pool.split(",") if name.strip()
        )
        return cls(
            policy=args.policy,
            engine=args.engine,
            epochs=args.epochs,
            seed=args.seed,
            score_mode=args.score_mode,
            warm_start=bool(getattr(args, "warm_start", False)),
            nf_pool=nf_pool,
            arrival_rate=args.arrival_rate,
            mean_lifetime=args.mean_lifetime,
            initial_services=args.initial_services,
            nic_mix=args.nic_mix,
            pods=args.pods,
            pod_size=args.pod_size,
            quota=args.quota,
            runtime=args.runtime,
            jobs=jobs,
            quantize_arrivals=args.quantize_arrivals,
            migration_duration=args.migration_duration,
            cross_pod_migration_duration=args.cross_pod_migration_duration,
            spinup_latency=args.spinup_latency,
            probe_period=args.probe_period,
            nic_fail_rate=args.nic_fail_rate,
            nic_degrade_rate=args.nic_degrade_rate,
            pod_outage_rate=args.pod_outage_rate,
            mean_time_to_fail=args.mean_time_to_fail,
            mean_repair_time=args.mean_repair_time,
            checkpoint_path=args.checkpoint_path,
            checkpoint_every=args.checkpoint_every,
            resume_path=args.resume,
            trace_out=getattr(args, "trace_out", None),
            trace_format=getattr(args, "trace_format", "jsonl"),
            metrics_out=getattr(args, "metrics_out", None),
        )


# ----------------------------------------------------------------------
# Model training (moved here from __main__ so every front end shares it)
# ----------------------------------------------------------------------
def _build_target(
    policy: str,
    target: str,
    nf_pool: tuple[str, ...],
    seed: int,
    quota: int,
    jobs: int,
) -> dict:
    """Train exactly the predictors ``policy`` needs on one target.

    Seed streams come from :func:`repro.nic.spec.target_seed`: the
    default target keeps the CLI's historical single-NIC streams
    (byte-identical reports), secondary targets derive their own.
    """
    nic = SmartNic(get_spec(target), seed=target_seed(seed, target))
    if policy in ("yala", "rebalance"):
        yala = YalaSystem(nic, seed=target_seed(seed, target), quota=quota)
        yala.train(list(nf_pool), jobs=jobs)
        return {"yala": yala}
    if policy == "slomo":
        collector = ProfilingCollector(nic)
        slomo = {}
        for name in nf_pool:
            predictor = SlomoPredictor(
                name, seed=target_seed(seed, target, "slomo", name)
            )
            predictor.train(collector, make_nf(name), n_samples=quota)
            slomo[name] = predictor
        return {"slomo_predictors": slomo, "collector": collector, "nic": nic}
    # monopolization / greedy need no trained predictors.
    return {"collector": ProfilingCollector(nic), "nic": nic}


def build_model(
    policy: str,
    nf_pool: tuple[str, ...],
    seed: int,
    quota: int,
    jobs: int,
    targets: tuple[str, ...] = (DEFAULT_TARGET,),
) -> PlacementModel:
    """Train the predictors ``policy`` needs on every pool target."""
    model = PlacementModel(
        **_build_target(policy, targets[0], nf_pool, seed, quota, jobs)
    )
    for target in targets[1:]:
        model.add_target(
            **_build_target(policy, target, nf_pool, seed, quota, jobs)
        )
    return model


def build_model_for(config: FleetConfig) -> PlacementModel:
    """Train the placement model ``config`` needs (all mix targets)."""
    return build_model(
        config.policy,
        config.nf_pool,
        config.seed,
        config.quota,
        config.jobs,
        config.target_names(),
    )


# ----------------------------------------------------------------------
# The facade
# ----------------------------------------------------------------------
def simulate(
    config: FleetConfig,
    model: Optional[PlacementModel] = None,
    recorder: Optional[Recorder] = None,
) -> Union[FleetReport, EventReport]:
    """Run one fleet simulation described by ``config``.

    Trains the policy's predictors when no ``model`` is supplied
    (callers with a shared trained model — the experiments, sweep
    loops — pass their own and skip training). Returns a
    :class:`FleetReport` (``engine="epoch"``) or :class:`EventReport`
    (``engine="event"``); with the same knobs the report is
    byte-identical to the ``python -m repro.fleet`` CLI's JSON output,
    at any runtime/jobs setting — **including** when a telemetry
    ``recorder`` is attached (telemetry never perturbs results).

    When ``config.trace_out`` / ``config.metrics_out`` are set and no
    recorder is supplied, a :class:`~repro.obs.TraceRecorder` is
    created automatically and its trace / metrics snapshot written on
    completion.
    """
    if model is None:
        model = build_model_for(config)
    if recorder is None and (
        config.trace_out is not None or config.metrics_out is not None
    ):
        recorder = TraceRecorder()
    checkpoint = None
    if config.checkpoint_path is not None:
        checkpoint = Checkpointer(
            config.checkpoint_path,
            config.checkpoint_every,
            config.fingerprint(),
        )
    resume = None
    if config.resume_path is not None:
        _step, resume = load_checkpoint(
            config.resume_path, config.fingerprint()
        )
    runtime = config.make_runtime()
    try:
        if config.engine == "event":
            engine: Union[EventEngine, FleetEngine] = EventEngine(
                config.policy,
                config.churn(),
                model,
                score_mode=config.score_mode,
                provisioner=config.provisioner(),
                config=config.event_config(),
                runtime=runtime,
                topology=config.topology(),
                faults=config.fault_schedule(),
                recorder=recorder,
                warm_start=config.warm_start,
            )
        else:
            engine = FleetEngine(
                config.policy,
                config.churn(),
                model,
                score_mode=config.score_mode,
                provisioner=config.provisioner(),
                runtime=runtime,
                topology=config.topology(),
                faults=config.fault_schedule(),
                recorder=recorder,
                warm_start=config.warm_start,
            )
        report = engine.run(
            config.epochs, checkpoint=checkpoint, resume=resume
        )
    finally:
        runtime.close()
    if isinstance(recorder, TraceRecorder):
        if config.trace_out is not None:
            write_trace(recorder, config.trace_out, config.trace_format)
        if config.metrics_out is not None:
            write_metrics(recorder, config.metrics_out)
    return report


__all__ = [
    "DEFAULT_POOL",
    "ENGINE_NAMES",
    "FleetConfig",
    "build_model",
    "build_model_for",
    "simulate",
]
