"""The fleet engines: churn, dynamic traffic, placement, scoring.

This is the paper's §7.5 taken online. The one-shot evaluations place a
fixed arrival sequence (scheduling, §7.5.1) or probe one operating
point (diagnosis, §7.5.2); the fleet engines instead advance a
SmartNIC cluster through time while services arrive and depart
(:mod:`repro.fleet.churn`), every resident's traffic profile evolves
along its trace (:mod:`repro.fleet.traces`), and an online policy
decides placements and migrations using exactly the predictors the
paper's scheduler uses (:mod:`repro.fleet.policies`).

Two engines share one scoring core:

- :class:`FleetEngine` — the historical *time-stepped* engine. Each
  epoch proceeds in five phases:

  1. **Departures** — services whose lifetime ended leave; empty NICs
     retire.
  2. **Traffic evolution** — every remaining service's traffic becomes
     its trace's profile for this epoch (the dynamic-traffic regime of
     §7.5.2's MTBR sweep, generalised to all attributes).
  3. **Rebalancing** — the policy may migrate residents based on the
     *previous* epoch's measured drops (the diagnosis-triggered
     ``rebalance`` policy migrates the bottlenecked NF of each
     violating NIC, mirroring how §7.5.2's operator reacts to a
     diagnosis).
  4. **Arrivals** — new services are placed one by one (the online
     regime of §7.5.1, with predictions evaluated at the service's
     *current* traffic).
  5. **Ground-truth scoring** — the simulator runs every NIC's
     resident mix under the epoch's traffic, all uncached mixes in
     **one** :meth:`SmartNic.run_batch` call per hardware target
     (``score_mode="batch"``); ``score_mode="loop"`` solves the
     identical scenario lists with per-scenario :meth:`SmartNic.run`
     calls and is the bit-exactness oracle.

- :class:`EventEngine` — the *continuous-time* engine. It pops typed
  events (:mod:`repro.fleet.events`) off a deterministic queue and maps
  them onto the same five phases via the per-timestamp priority order:
  :class:`~repro.fleet.events.Departure` (phase 1) before
  :class:`~repro.fleet.events.TrafficChange` (phase 2) before
  :class:`~repro.fleet.events.MigrationComplete` and
  :class:`~repro.fleet.events.RebalanceTimer` (phase 3) before
  :class:`~repro.fleet.events.Arrival` (phase 4) before
  :class:`~repro.fleet.events.Probe` (phase 5). Scoring is *lazy*: the
  cluster is only scored at **observation points** — every probe, plus
  (``observe_changes``) every timestamp at which fleet state actually
  changed — and each observation gathers all NICs whose mix is not in
  the persistent mix cache into one ``run_batch`` call per hardware
  target, exactly like an epoch scoring pass. Between observation
  points SLA violations and drops are integrated left-Riemann style
  into second-granularity ``violation_service_seconds`` /
  ``drop_service_seconds``. Beyond the epoch engine's reach it models
  Poisson arrival *times* inside each epoch, traffic change points that
  sit between epochs (a flash crowd's mid-epoch onset), *timed
  migrations* (the service contends on source and destination for
  ``migration_duration`` seconds) and NIC spin-up latency (a booting
  NIC's residents score as full drops until ``ready_at``; boot
  completion becomes visible at the next observation point).

  Under :meth:`~repro.fleet.events.EventConfig.epoch_equivalent` —
  arrivals quantized to epoch boundaries, free migrations, no spin-up
  latency, unit probe/rebalance periods — the event engine reproduces
  the epoch engine's :class:`FleetReport` **byte-identically** (JSON
  and rendered text), which is the contract that lets the epoch engine
  remain the coarse, cheap twin.

Fleets may be **heterogeneous**: a :class:`~repro.fleet.cluster.
NicProvisioner` mixes hardware targets in one pool, each NIC is scored
on its own target's simulator, the policies consult that target's
trained predictors (:class:`~repro.fleet.policies.PlacementModel`), and
the report carries per-pool composition/utilisation/wastage breakdowns
next to the fleet-wide series.

The scored drops feed the SLA-violation, utilisation, wastage and
migration-cost time series of the :class:`FleetReport`, and are handed
to the policy as ``last_drops`` at the next rebalancing decision.
Everything is deterministic in ``(churn seed, nic mix, trained model,
event config)``: two runs with the same configuration produce
byte-identical JSON reports and — for the event engine — identical
event logs.
"""

from __future__ import annotations

import json
import math
from dataclasses import asdict, dataclass, field
from typing import Optional

from repro.errors import ConfigurationError, PlacementError
from repro.fleet.checkpoint import Checkpointer
from repro.fleet.churn import ChurnProcess
from repro.fleet.cluster import (
    CORES_PER_NF,
    Cluster,
    MigrationRecord,
    NicProvisioner,
    ServiceInstance,
    TimedMigration,
)
from repro.fleet.events import (
    Arrival,
    Departure,
    Event,
    EventConfig,
    EventQueue,
    MigrationComplete,
    MigrationStart,
    NicFail,
    NicRestore,
    PodFail,
    PodRestore,
    Probe,
    RebalanceTimer,
    TrafficChange,
)
from repro.fleet.faults import EpochFaultDriver, FaultSchedule, faults_payload
from repro.fleet.policies import FleetPolicy, PlacementModel, make_policy
from repro.fleet.runtime import PodScoreTask, Runtime, make_runtime
from repro.fleet.topology import Topology
from repro.nf.catalog import make_nf
from repro.obs import (
    NULL_RECORDER,
    Recorder,
    TelemetryAccumulator,
    telemetry_payload,
    use_recorder,
)

#: Version of the JSON report layout (:meth:`FleetReport.payload` /
#: :meth:`EventReport.payload`). Bumped whenever a field is added,
#: renamed or removed; see ``docs/fleet_report_schema.md``. Version 2
#: added ``schema_version`` itself and the ``topology`` descriptor;
#: version 3 added the ``faults`` section; version 4 the ``telemetry``
#: section (both always present — zeros/empty when inert); version 5
#: the ``telemetry.warm_start`` subsection (always present — all-zero
#: with ``enabled: false`` when warm-starting is off).
FLEET_REPORT_SCHEMA_VERSION = 5


@dataclass(frozen=True)
class EpochMetrics:
    """Scored fleet state at the end of one epoch."""

    epoch: int
    services: int
    nics_used: int
    arrivals: int
    departures: int
    migrations: int
    sla_violations: int
    violation_rate_pct: float
    utilisation_pct: float
    wastage_pct: float
    aggregate_throughput_mpps: float


@dataclass(frozen=True)
class PoolMetrics:
    """One hardware target's pool state at the end of one epoch."""

    epoch: int
    target: str
    nics_used: int
    services: int
    utilisation_pct: float
    wastage_pct: float


@dataclass
class FleetReport:
    """Trajectory of one fleet simulation."""

    policy: str
    seed: int
    epochs: int
    score_mode: str
    nic_mix: tuple[tuple[str, float], ...] = ()
    #: Pod/rack layout descriptor (:meth:`Topology.to_dict`). Purely
    #: descriptive — the same fleet scores identically at any runtime —
    #: but part of the report so consumers can attribute pod effects.
    topology: Optional[dict] = None
    metrics: list[EpochMetrics] = field(default_factory=list)
    pools: list[PoolMetrics] = field(default_factory=list)
    migrations: list[MigrationRecord] = field(default_factory=list)
    #: Schema-v3 fault section (:func:`~repro.fleet.faults.
    #: faults_payload`). Always present; all-zero for fault-free runs,
    #: so the report structure never depends on the fault config.
    faults: dict = field(default_factory=faults_payload)
    #: Schema-v4 telemetry section (:func:`~repro.obs.telemetry.
    #: telemetry_payload`): per-epoch solver iteration totals, per-pod
    #: scoring task counts, per-predictor residual aggregates. Always
    #: present and derived purely from simulation state — attaching a
    #: recorder (or none) never changes it, and it is byte-identical at
    #: any runtime/worker count.
    telemetry: dict = field(default_factory=telemetry_payload)

    # ------------------------------------------------------------------
    @property
    def mean_nics(self) -> float:
        return _mean([m.nics_used for m in self.metrics])

    @property
    def mean_utilisation_pct(self) -> float:
        return _mean([m.utilisation_pct for m in self.metrics])

    @property
    def mean_wastage_pct(self) -> float:
        return _mean([m.wastage_pct for m in self.metrics])

    @property
    def violation_rate_pct(self) -> float:
        """SLA violations over all (service, epoch) scoring points."""
        scored = sum(m.services for m in self.metrics)
        violated = sum(m.sla_violations for m in self.metrics)
        return 100.0 * violated / scored if scored else 0.0

    @property
    def total_migrations(self) -> int:
        return sum(m.migrations for m in self.metrics)

    def pool_summary(self) -> dict[str, dict[str, float]]:
        """Per-target means over the trajectory (NICs, utilisation, wastage).

        Epochs where a target provisioned no NIC count as zero NICs but
        are excluded from the utilisation/wastage means (an absent pool
        has no hardware to utilise or waste).
        """
        summary: dict[str, dict[str, float]] = {}
        targets = [name for name, _ in self.nic_mix] or sorted(
            {p.target for p in self.pools}
        )
        for target in targets:
            rows = [p for p in self.pools if p.target == target]
            active = [p for p in rows if p.nics_used > 0]
            summary[target] = {
                "mean_nics": _mean([p.nics_used for p in rows]),
                "mean_utilisation_pct": _mean(
                    [p.utilisation_pct for p in active]
                ),
                "mean_wastage_pct": _mean([p.wastage_pct for p in active]),
                "mean_services": _mean([p.services for p in rows]),
            }
        return summary

    # ------------------------------------------------------------------
    def payload(self) -> dict:
        """The trajectory as a JSON-ready dict (what :meth:`to_json` dumps)."""
        return {
            "schema_version": FLEET_REPORT_SCHEMA_VERSION,
            "policy": self.policy,
            "seed": self.seed,
            "epochs": self.epochs,
            "score_mode": self.score_mode,
            "topology": self.topology,
            "nic_mix": [
                {"target": name, "weight": weight}
                for name, weight in self.nic_mix
            ],
            "summary": {
                "mean_nics": self.mean_nics,
                "mean_utilisation_pct": self.mean_utilisation_pct,
                "mean_wastage_pct": self.mean_wastage_pct,
                "violation_rate_pct": self.violation_rate_pct,
                "total_migrations": self.total_migrations,
            },
            "pool_summary": self.pool_summary(),
            "faults": self.faults,
            "telemetry": self.telemetry,
            "metrics": [asdict(m) for m in self.metrics],
            "pools": [asdict(p) for p in self.pools],
            "migrations": [asdict(m) for m in self.migrations],
        }

    def to_json(self) -> str:
        """Deterministic JSON rendering of the whole trajectory."""
        return json.dumps(self.payload(), sort_keys=True, indent=2)

    def render(self) -> str:
        """Text report: configuration + per-pool header, per-epoch rows,
        summary footer."""
        header = (
            f"{'epoch':>5s} {'svcs':>5s} {'nics':>5s} {'arr':>4s} {'dep':>4s} "
            f"{'mig':>4s} {'viol':>5s} {'util%':>7s} {'waste%':>7s} "
            f"{'tput Mpps':>10s}"
        )
        mix = ",".join(f"{name}={weight:.2f}" for name, weight in self.nic_mix)
        topo = ""
        if self.topology:
            if self.topology.get("pod_size") is not None:
                topo = f"pod-size={self.topology['pod_size']}"
            elif self.topology.get("pods") is not None:
                topo = f"pods={self.topology['pods']}"
        lines = [
            f"fleet policy={self.policy} seed={self.seed} "
            f"epochs={self.epochs} score_mode={self.score_mode}"
            + (f" nic_mix={mix}" if mix else "")
            + (f" topology={topo}" if topo else ""),
        ]
        for target, stats in self.pool_summary().items():
            lines.append(
                f"pool {target}: mean NICs {stats['mean_nics']:.2f} | "
                f"utilisation {stats['mean_utilisation_pct']:.1f}% | "
                f"wastage {stats['mean_wastage_pct']:.1f}% | "
                f"mean services {stats['mean_services']:.2f}"
            )
        f = self.faults
        if f and (
            f["nic_failures"]
            or f["nic_degradations"]
            or f["pod_outages"]
            or f["services_evicted"]
        ):
            lines.append(
                f"faults: nic fail/degrade/restore {f['nic_failures']}/"
                f"{f['nic_degradations']}/{f['nic_restores']} | "
                f"pod outages {f['pod_outages']} | "
                f"evicted {f['services_evicted']} "
                f"lost {f['services_lost']} "
                f"replaced {f['services_replaced']} | "
                f"mean recover {f['mean_time_to_recover']:.2f}s"
            )
        warm = (self.telemetry or {}).get("warm_start")
        if warm and warm.get("enabled"):
            lines.append(
                f"warm-start: hits {warm['hits']} misses {warm['misses']} "
                f"invalidations {warm['invalidations']} | "
                f"warm iters {warm['warm_iterations']} over "
                f"{warm['warm_scenarios']} mixes (cold "
                f"{warm['cold_iterations']}/{warm['cold_scenarios']})"
            )
        lines.extend([header, "-" * len(header)])
        for m in self.metrics:
            lines.append(
                f"{m.epoch:5d} {m.services:5d} {m.nics_used:5d} "
                f"{m.arrivals:4d} {m.departures:4d} {m.migrations:4d} "
                f"{m.sla_violations:5d} {m.utilisation_pct:7.1f} "
                f"{m.wastage_pct:7.1f} {m.aggregate_throughput_mpps:10.3f}"
            )
        lines.append("-" * len(header))
        lines.append(
            f"mean NICs {self.mean_nics:.2f} | "
            f"utilisation {self.mean_utilisation_pct:.1f}% | "
            f"wastage {self.mean_wastage_pct:.1f}% | "
            f"SLA violations {self.violation_rate_pct:.2f}% | "
            f"migrations {self.total_migrations}"
        )
        return "\n".join(lines)


def _mean(values: list[float]) -> float:
    return sum(values) / len(values) if values else 0.0


# ----------------------------------------------------------------------
# Shared scoring core
# ----------------------------------------------------------------------
# Both engines score through these module-level helpers so the numbers
# can only agree: same cache keys, same scenario construction, same
# read-out iteration order (dict insertion order feeds float sums, so
# iteration order *is* part of the byte-determinism contract).


def _mix_key(residents: list[ServiceInstance]) -> tuple:
    return tuple((r.nf_name, r.traffic) for r in residents)


def _solo_throughput(
    model: PlacementModel, nf_name: str, traffic, target: str
) -> float:
    return (
        model.collector_for(target)
        .solo(make_nf(nf_name), traffic)
        .throughput_mpps
    )


def _warm_pairs(
    model: PlacementModel,
    targets: tuple[str, ...],
    pairs: list[tuple[str, object]],
    score_mode: str,
    runtime: Runtime,
) -> None:
    """Measure the given solo baselines into the collector caches.

    Every hardware target in the pool mix is warmed with the full
    (NF, traffic) pair set — placement probes evaluate candidates on
    any target, and a migration can move a service across pools, so
    each target's collector must know every pair's solo behaviour. The
    work executes wherever the ``runtime`` decides (worker processes
    split the uncached set into chunks); the cache entries are
    identical either way because solos are pure in ``(seed, pair)``.
    On the serial oracle, ``batch`` mode solves each target's uncached
    solos in one :meth:`ProfilingCollector.solo_many` call (one
    ``run_batch`` per target) and ``loop`` mode measures the identical
    set with per-pair scalar :meth:`ProfilingCollector.solo` calls —
    same cache entries, so both modes' policies and drop baselines see
    the same values.
    """
    for target in targets:
        runtime.warm_solos(
            model.collector_for(target), target, pairs, score_mode
        )


def _score_cluster(
    cluster: Cluster,
    model: PlacementModel,
    targets: tuple[str, ...],
    mix_cache: dict[tuple, list[tuple[float, float]]],
    score_mode: str,
    runtime: Runtime,
    now: Optional[float] = None,
    seed: int = 0,
    obs: Recorder = NULL_RECORDER,
    sim_time: float = 0.0,
    telemetry: Optional[TelemetryAccumulator] = None,
    warm_start: bool = False,
    warm_cache: Optional[dict] = None,
) -> tuple[dict[str, float], dict[str, float]]:
    """Measured drop and throughput of every resident service.

    Gathers every uncached multi-resident mix, groups the work **by
    pod** (the cluster's :class:`~repro.fleet.topology.Topology`; the
    flat default is one pod) into :class:`PodScoreTask`\\ s — each
    carrying its pod-derived seed — and hands the task list to the
    execution ``runtime``: the serial oracle solves pods in-process
    (``batch`` mode: one :meth:`SmartNic.run_batch` call per hardware
    target per pod; ``loop`` mode: per-scenario :meth:`SmartNic.run`
    calls, the bit-exactness oracle), the process runtime farms whole
    pods to workers. Results merge deterministically: per-pod partials
    are re-assembled in (pod, discovery) order and cache entries are
    written by the parent in the NIC-scan discovery order, so reports
    are byte-identical at any runtime and worker count. Solo baselines
    come from the collector caches; a mix is cached per (target, mix)
    since the same resident set performs differently on different
    hardware — and because the cache persists across observation
    points, only NICs whose mix actually changed ("dirty" NICs) cost a
    solve.

    ``now`` enables the continuous-time refinements (``None`` is the
    epoch engine's instantaneous world, kept bit-identical):

    - a NIC still booting (``ready_at > now``) is not solved; its
      resident services score as full drops (zero throughput);
    - a NIC's residents include the contending copies of in-flight
      migrations — they shape the mix (and the solve) but drops and
      throughputs are assigned only at each service's *home* NIC, the
      one serving its traffic.

    Fault refinements (inert without a fault schedule, keeping the
    fault-free path bit-identical):

    - a *degraded* NIC delivers ``capacity_fraction`` of its solved
      throughput. The derating happens at read-out — the mix cache
      stores undegraded values keyed ``(target, mix)``, so the same mix
      on a healthy NIC reuses the entry unchanged;
    - services in the re-placement queue (fault-evicted, not yet
      re-placed) score as full drops with zero throughput — they are
      not serving.

    Telemetry (``obs`` / ``sim_time`` / ``telemetry``) is strictly
    read-only with respect to results: it observes the solve (pod task
    shapes, per-mix iterations-to-converge, prediction-vs-ground-truth
    residuals) keyed by simulated time, and both engines feed it from
    this one site so the ``sim`` channel can only agree across engines.

    ``warm_start`` / ``warm_cache`` enable cross-pass incremental
    solving (see ``docs/incremental_solving.md``): ``warm_cache`` maps
    ``nic_id`` to the NIC's last converged per-resident throughput
    vector together with its structural key ``(target, resident NF
    names)``. A newly-dirty mix whose first hosting NIC's cached
    structure matches seeds the fixed point from the cached vector
    (only traffic moved — the converged point is nearby); a structure
    change counts as an invalidation and solves cold. After the pass,
    every solved multi-resident NIC's entry is refreshed from the mix
    cache (undegraded values — pure simulation state) and entries of
    departed NICs are pruned. The cache derives from sim history only
    and warm payloads travel inside the tasks, so warm runs stay
    byte-identical at any runtime/jobs count — but warm iterate paths
    differ from cold ones, which is why the default stays off (the
    oracle arm, like ``score_mode="loop"``).
    """
    topology = cluster.topology
    # pod -> target -> mix keys, NICs scanned in spin-up order; a mix
    # appearing in several pods is solved once, in its first pod
    # (values are pure in (target seed, mix), so where is irrelevant).
    pod_mixes: dict[int, dict[str, list[tuple]]] = {}
    mix_order: list[tuple] = []
    pending: set[tuple] = set()
    # Warm-start bookkeeping: per newly-dirty mix, the seed vector (or
    # None). The first NIC hosting a mix (spin-up scan order) decides —
    # deterministic, and pure in simulation history.
    warm_of: dict[tuple, Optional[tuple[float, ...]]] = {}
    warm_hits = warm_misses = warm_invalidations = 0
    for nic in cluster.nics:
        if now is not None and nic.ready_at > now:
            continue  # booting: residents score as full drops below
        if len(nic.residents) < 2:
            continue
        key = (nic.target, _mix_key(nic.residents))
        if key in mix_cache or key in pending:
            continue
        pending.add(key)
        mix_order.append(key)
        if warm_start:
            vector = None
            entry = warm_cache.get(nic.nic_id) if warm_cache else None
            structure = (nic.target, tuple(r.nf_name for r in nic.residents))
            if entry is None:
                warm_misses += 1
            elif entry[0] == structure:
                vector = entry[1]
                warm_hits += 1
            else:
                warm_invalidations += 1
            warm_of[key] = vector
        pod = topology.pod_of(nic.nic_id)
        pod_mixes.setdefault(pod, {}).setdefault(nic.target, []).append(
            key[1]
        )

    tasks: list[PodScoreTask] = []
    iterations_of: dict[tuple, int] = {}
    if mix_order:
        tasks = [
            PodScoreTask(
                pod_id=pod,
                seed=topology.pod_seed(seed, pod),
                mixes=tuple(
                    (target, tuple(keys)) for target, keys in groups.items()
                ),
                warm=(
                    tuple(
                        tuple(warm_of[(target, k)] for k in keys)
                        for target, keys in groups.items()
                    )
                    if warm_start
                    else ()
                ),
            )
            for pod, groups in sorted(pod_mixes.items())
        ]
        solved = runtime.score_pods(tasks, score_mode)
        rows: dict[tuple, list[float]] = {}
        for task, pod_result in zip(tasks, solved):
            for (target, keys), (group_rows, group_iters) in zip(
                task.mixes, pod_result
            ):
                for mkey, row, iters in zip(keys, group_rows, group_iters):
                    rows[(target, mkey)] = row
                    iterations_of[(target, mkey)] = iters
        for key in mix_order:
            target, mix_key = key
            entries = []
            for (name, traffic), achieved in zip(mix_key, rows[key]):
                solo = _solo_throughput(model, name, traffic, target)
                entries.append((max(0.0, 1.0 - achieved / solo), achieved))
            mix_cache[key] = entries

    # Telemetry for this scoring pass — observational only, and pure in
    # simulation state: iteration counts come back from the runtime but
    # are identical wherever (and however batched) the solve ran.
    iteration_counts = [iterations_of[key] for key in mix_order]
    warm_flags = (
        [warm_of[key] is not None for key in mix_order] if warm_start else None
    )
    if telemetry is not None:
        telemetry.record_scoring(
            sim_time,
            [(task.pod_id, task.scenario_count) for task in tasks],
            iteration_counts,
            warm_flags=warm_flags,
        )
        if warm_start:
            telemetry.record_warm_cache(
                warm_hits, warm_misses, warm_invalidations
            )
        for key in mix_order:
            target, mix_key = key
            predicted = model.predict_mix_throughputs(mix_key, target)
            if predicted is None:
                continue  # heuristic arm: no predictor, no residuals
            for (name, _), pred, (_, achieved) in zip(
                mix_key, predicted, mix_cache[key]
            ):
                telemetry.add_residual(f"{target}:{name}", pred - achieved)
    if obs.enabled:
        for count in iteration_counts:
            obs.histogram("solver.iterations", count)
        if warm_start:
            # Warm-only metric streams: emitted exclusively when the
            # knob is on, so a warm_start=False run's deterministic
            # channels stay byte-identical to pre-warm-start builds.
            for flag, count in zip(warm_flags, iteration_counts):
                obs.histogram(
                    "solver.iterations.warm" if flag else
                    "solver.iterations.cold",
                    count,
                )
            if warm_hits:
                obs.counter("warm_cache.hits", warm_hits)
            if warm_misses:
                obs.counter("warm_cache.misses", warm_misses)
            if warm_invalidations:
                obs.counter("warm_cache.invalidations", warm_invalidations)
        obs.event(
            sim_time, "score", chan="sim",
            mixes_solved=len(mix_order),
            iterations=sum(iteration_counts),
            pods=[[task.pod_id, task.scenario_count] for task in tasks],
        )

    drops: dict[str, float] = {}
    throughputs: dict[str, float] = {}
    for nic in cluster.nics:
        if now is not None and nic.ready_at > now:
            for resident in nic.residents:
                if cluster.is_home(nic, resident.instance_id):
                    drops[resident.instance_id] = 1.0
                    throughputs[resident.instance_id] = 0.0
            continue
        cap = nic.capacity_fraction
        if len(nic.residents) == 1:
            resident = nic.residents[0]
            if now is None or cluster.is_home(nic, resident.instance_id):
                solo = _solo_throughput(
                    model, resident.nf_name, resident.traffic, nic.target
                )
                if cap != 1.0:
                    achieved = solo * cap
                    drops[resident.instance_id] = max(
                        0.0, 1.0 - achieved / solo
                    )
                    throughputs[resident.instance_id] = achieved
                else:
                    drops[resident.instance_id] = 0.0
                    throughputs[resident.instance_id] = solo
            continue
        entries = mix_cache[(nic.target, _mix_key(nic.residents))]
        if warm_start and warm_cache is not None:
            # Refresh from the (undegraded) mix cache: pure simulation
            # state, so the cache replays identically from a checkpoint.
            warm_cache[nic.nic_id] = (
                (nic.target, tuple(r.nf_name for r in nic.residents)),
                tuple(achieved for _, achieved in entries),
            )
        for resident, (drop, throughput) in zip(nic.residents, entries):
            if now is None or cluster.is_home(nic, resident.instance_id):
                if cap != 1.0:
                    solo = _solo_throughput(
                        model, resident.nf_name, resident.traffic, nic.target
                    )
                    achieved = throughput * cap
                    drops[resident.instance_id] = max(
                        0.0, 1.0 - achieved / solo
                    )
                    throughputs[resident.instance_id] = achieved
                else:
                    drops[resident.instance_id] = drop
                    throughputs[resident.instance_id] = throughput
    # Queued (fault-evicted) services are not serving: full drop, zero
    # throughput, appended after every placed service so fault-free
    # insertion order is untouched.
    for entry in cluster.evicted:
        drops[entry.instance.instance_id] = 1.0
        throughputs[entry.instance.instance_id] = 0.0
    if warm_start and warm_cache is not None:
        live = {nic.nic_id for nic in cluster.nics}
        for nic_id in [k for k in warm_cache if k not in live]:
            del warm_cache[nic_id]
    return drops, throughputs


def _emit_epoch_row(obs: Recorder, t: float, row: EpochMetrics) -> None:
    """Emit one epoch-grid metrics row on the ``sim`` channel.

    Both engines call this with the :class:`EpochMetrics` row they just
    appended — the rows themselves are byte-identical under
    ``EventConfig.epoch_equivalent()`` (tier-1 pinned), so sourcing the
    event from the row makes cross-engine agreement structural.
    """
    obs.event(
        t, "epoch.metrics", chan="sim",
        epoch=row.epoch,
        services=row.services,
        nics_used=row.nics_used,
        arrivals=row.arrivals,
        departures=row.departures,
        migrations=row.migrations,
        sla_violations=row.sla_violations,
    )


def _live_services(cluster: Cluster) -> list[ServiceInstance]:
    """Every service the fleet is responsible for this instant: placed
    residents (home-NIC order) then the re-placement queue (eviction
    order). Both engines count services, violations and drop sums over
    this list, in this order — the iteration order feeds float sums,
    so it is part of the byte-determinism contract."""
    live = cluster.services
    if cluster.evicted:
        live = live + [entry.instance for entry in cluster.evicted]
    return live


def _failure_attribution(
    cluster: Cluster, drops: dict[str, float]
) -> tuple[int, float]:
    """Violations and summed drop attributable to active faults.

    Counted over (a) the re-placement queue — every queued service is
    fully down because a fault displaced it — and (b) home residents of
    currently *degraded* NICs, whose measured drop is the derated one.
    Returns ``(violation count, drop sum)``; both engines integrate
    these over time into the ``faults`` section's
    ``failure_violation_service_seconds`` /
    ``failure_drop_service_seconds``.
    """
    violations = 0
    drop_sum = 0.0
    for entry in cluster.evicted:
        drop_sum += 1.0
        if 1.0 > entry.instance.sla_drop_fraction:
            violations += 1
    for nic in cluster.nics:
        if not nic.is_degraded:
            continue
        for resident in nic.residents:
            if not cluster.is_home(nic, resident.instance_id):
                continue
            drop = drops.get(resident.instance_id)
            if drop is None:
                continue
            drop_sum += drop
            if drop > resident.sla_drop_fraction:
                violations += 1
    return violations, drop_sum


def _pool_rows(
    cluster: Cluster,
    provisioner: NicProvisioner,
    targets: tuple[str, ...],
    epoch: int,
) -> list[PoolMetrics]:
    """Per-target pool breakdown of one scored epoch.

    Services are counted at their home NIC (a migrating service is
    listed once, in its source pool) while core utilisation counts the
    destination copies too — an in-flight migration really does occupy
    cores in both pools.
    """
    rows = []
    for target in targets:
        pool = [nic for nic in cluster.nics if nic.target == target]
        pool_services = sum(
            1
            for nic in pool
            for r in nic.residents
            if cluster.is_home(nic, r.instance_id)
        )
        pool_total = sum(nic.spec.num_cores for nic in pool)
        pool_used = sum(nic.cores_used() for nic in pool)
        capacity = provisioner.spec_of(target).num_cores // CORES_PER_NF
        pool_min = math.ceil(pool_services / capacity)
        rows.append(
            PoolMetrics(
                epoch=epoch,
                target=target,
                nics_used=len(pool),
                services=pool_services,
                utilisation_pct=(
                    100.0 * pool_used / pool_total if pool_total else 0.0
                ),
                wastage_pct=(
                    100.0 * (len(pool) - pool_min) / pool_min
                    if pool_min
                    else 0.0
                ),
            )
        )
    return rows


def _validate_pool(
    policy: FleetPolicy | str,
    model: PlacementModel,
    score_mode: str,
    provisioner: Optional[NicProvisioner],
) -> tuple[FleetPolicy, NicProvisioner]:
    """Shared engine-constructor validation (both engines, same rules)."""
    if score_mode not in ("batch", "loop"):
        raise ConfigurationError("score_mode must be 'batch' or 'loop'")
    resolved = make_policy(policy) if isinstance(policy, str) else policy
    if provisioner is None:
        # Historical homogeneous behaviour: every NIC is the model's
        # default target.
        provisioner = NicProvisioner.constant(model.nic.spec)
    for target in provisioner.target_names:
        if target not in model.target_names:
            raise ConfigurationError(
                f"nic-mix target {target!r} has no placement model; "
                f"registered: {list(model.target_names)}"
            )
    return resolved, provisioner


class FleetEngine:
    """Drives one policy through the time-stepped fleet simulation.

    ``runtime`` names the execution runtime scoring runs on (a
    :class:`~repro.fleet.runtime.Runtime` instance, ``"serial"`` /
    ``"process"``, or ``None`` for serial) and ``topology`` the pod
    layout (``None`` = flat). Both are report-invariant: same seed ⇒
    byte-identical reports at any runtime/worker count.
    """

    def __init__(
        self,
        policy: FleetPolicy | str,
        churn: ChurnProcess,
        model: PlacementModel,
        score_mode: str = "batch",
        provisioner: Optional[NicProvisioner] = None,
        runtime: "Runtime | str | None" = None,
        topology: Optional[Topology] = None,
        faults: Optional[FaultSchedule] = None,
        recorder: Optional[Recorder] = None,
        warm_start: bool = False,
    ) -> None:
        self._policy, self._provisioner = _validate_pool(
            policy, model, score_mode, provisioner
        )
        self._churn = churn
        self._model = model
        self._targets = self._provisioner.target_names
        self._score_mode = score_mode
        self._runtime = make_runtime(runtime)
        self._topology = topology if topology is not None else Topology()
        self._faults = faults
        self._obs = recorder if recorder is not None else NULL_RECORDER
        #: Cross-epoch warm-started fixed points (default off — the
        #: oracle arm); see :func:`_score_cluster` and
        #: ``docs/incremental_solving.md``.
        self._warm_start = bool(warm_start)

    @property
    def policy_name(self) -> str:
        return self._policy.name

    @property
    def runtime(self) -> Runtime:
        return self._runtime

    # ------------------------------------------------------------------
    def run(
        self,
        epochs: int,
        checkpoint: Optional[Checkpointer] = None,
        resume: Optional[dict] = None,
    ) -> FleetReport:
        """Simulate ``epochs`` epochs; returns the scored trajectory.

        Stateless across calls: every invocation rebuilds the cluster
        and the scoring caches, so repeated runs of one engine are
        bit-identical.

        ``checkpoint`` snapshots the engine state after every interval
        of completed epochs; ``resume`` is a snapshot's state dict
        (:func:`~repro.fleet.checkpoint.load_checkpoint`), from which
        the run continues to a final report byte-identical to the
        uninterrupted one.
        """
        try:
            # The attached recorder doubles as the process-wide active
            # recorder for the run, so recorder-less layers (the batch
            # solver) can report exec-channel metrics into it.
            with use_recorder(self._obs):
                return self._run(epochs, checkpoint, resume)
        except BaseException:
            # The engine owns its runtime's lifecycle on error paths: a
            # failing run must not leak worker pools. (Success keeps
            # the pool warm for the next run; close() is idempotent and
            # the pool rebuilds on demand.)
            self._runtime.close()
            raise

    def _run(
        self,
        epochs: int,
        checkpoint: Optional[Checkpointer],
        resume: Optional[dict],
    ) -> FleetReport:
        if epochs < 1:
            raise ConfigurationError("epochs must be >= 1")
        obs = self._obs
        self._runtime.bind(
            {t: self._model.nic_for(t) for t in self._targets}
        )
        self._runtime.observe(obs)
        for target in self._targets:
            self._model.collector_for(target).observe(obs)
        if resume is not None:
            if resume.get("engine") != "epoch":
                raise ConfigurationError(
                    "this checkpoint was written by the event engine; "
                    "resume it with EventEngine.run"
                )
            start_epoch = resume["next_epoch"]
            if start_epoch > epochs:
                raise ConfigurationError(
                    f"checkpoint is {start_epoch} epochs in; the run is "
                    f"only {epochs}"
                )
            cluster = resume["cluster"]
            driver = resume["driver"]
            mix_cache = resume["mix_cache"]
            report = resume["report"]
            last_drops = resume["last_drops"]
            fail_viol_seconds = resume["fail_viol_seconds"]
            fail_drop_seconds = resume["fail_drop_seconds"]
            telemetry = resume["telemetry"]
            warm_cache = resume["warm_cache"]
            if self._warm_start:
                # The snapshot may predate the knob (a cold build epoch
                # resumed into a warm run): the engine's flag, not the
                # snapshot's, decides whether warm telemetry reports.
                telemetry.enable_warm()
        else:
            start_epoch = 0
            cluster = Cluster(self._provisioner, topology=self._topology)
            driver = None
            if self._faults is not None and self._faults.config.any_faults:
                driver = EpochFaultDriver(self._faults)
                driver.arm_pods(self._topology.pods)
                cluster.collect_new_nics = True
            mix_cache: dict[tuple, list[tuple[float, float]]] = {}
            report = FleetReport(
                policy=self._policy.name,
                seed=self._churn.seed,
                epochs=epochs,
                score_mode=self._score_mode,
                nic_mix=self._provisioner.mix,
                topology=self._topology.to_dict(),
            )
            last_drops = {}
            fail_viol_seconds = 0.0
            fail_drop_seconds = 0.0
            telemetry = TelemetryAccumulator()
            warm_cache: dict = {}
            if self._warm_start:
                telemetry.enable_warm()

        for epoch in range(start_epoch, epochs):
            now = float(epoch)
            cluster.now = now

            # 0. Fault transitions due at this boundary (restores
            # before outages before NIC faults — the event queue's
            # priority order at one timestamp).
            with obs.span(now, "phase.faults", epoch=epoch):
                if driver is not None:
                    driver.apply(cluster, now, obs=obs)

            # 1. Departures — placed services and queued evictees whose
            # lifetime ran out while they waited (those are *lost*).
            with obs.span(now, "phase.departures", epoch=epoch) as span:
                departures = 0
                for instance in cluster.services:
                    if instance.request.departure_epoch <= epoch:
                        cluster.remove(instance.instance_id)
                        departures += 1
                for entry in list(cluster.evicted):
                    if entry.instance.request.departure_epoch <= epoch:
                        cluster.drop_evicted(entry.instance.instance_id)
                        departures += 1
                span.add(departures=departures)

            # 2. Traffic evolution along each service's trace (queued
            # services keep evolving — they re-place at *current*
            # traffic).
            with obs.span(now, "phase.traffic", epoch=epoch) as span:
                for instance in cluster.services:
                    instance.traffic = (
                        instance.request.trace.profile_at(epoch)
                    )
                for entry in cluster.evicted:
                    entry.instance.traffic = (
                        entry.instance.request.trace.profile_at(epoch)
                    )
                span.add(services=len(cluster.services))

            # 2b. Warm this epoch's solo baselines (residents and
            # arrivals at their current traffic) through the collector,
            # in one run_batch call, so the policies' feasibility probes
            # and the scoring drops all hit the cache. The loop twin
            # warms the identical set with per-pair scalar solves.
            arrivals = self._churn.arrivals_for(epoch)
            pairs = [
                (r.nf_name, r.traffic) for r in _live_services(cluster)
            ]
            pairs.extend(
                (request.nf_name, request.trace.profile_at(epoch))
                for request in arrivals
            )
            with obs.span(now, "phase.warm", epoch=epoch, pairs=len(pairs)):
                _warm_pairs(
                    self._model, self._targets, pairs, self._score_mode,
                    self._runtime,
                )

            # 3. Failover drain (evicted services re-place through the
            # policy's own strategy), then rebalancing on the previous
            # epoch's measured drops.
            with obs.span(now, "phase.rebalance", epoch=epoch) as span:
                if cluster.evicted:
                    self._policy.replace_evicted(
                        cluster, epoch, self._model
                    )
                migrations_before = len(cluster.migration_log)
                self._policy.rebalance(
                    cluster, epoch, self._model, last_drops
                )
                migrations = len(cluster.migration_log) - migrations_before
                span.add(migrations=migrations)

            # 4. Arrivals, placed online one by one. During a pod
            # outage placement can be impossible; the arrival waits in
            # the re-placement queue.
            with obs.span(
                now, "phase.arrivals", epoch=epoch, arrivals=len(arrivals)
            ):
                for request in arrivals:
                    instance = ServiceInstance(
                        request=request,
                        traffic=request.trace.profile_at(epoch),
                    )
                    try:
                        nic_id = self._policy.choose_nic(
                            cluster, instance, self._model
                        )
                        cluster.place(instance, nic_id)
                    except PlacementError:
                        cluster.enqueue_evicted(instance)

            # 5. Ground-truth scoring of every NIC's resident mix.
            with obs.span(now, "phase.score", epoch=epoch):
                drops, throughputs = _score_cluster(
                    cluster, self._model, self._targets, mix_cache,
                    self._score_mode, self._runtime, seed=self._churn.seed,
                    obs=obs, sim_time=now, telemetry=telemetry,
                    warm_start=self._warm_start, warm_cache=warm_cache,
                )
            last_drops = drops
            live = _live_services(cluster)
            violations = sum(
                1
                for instance in live
                if drops[instance.instance_id] > instance.sla_drop_fraction
            )
            fail_viol, fail_drop = _failure_attribution(cluster, drops)
            # One epoch spans exactly one second: the epoch integral
            # adds value * 1.0 terms in epoch order, matching the event
            # engine's left-Riemann sums bit for bit on the grid.
            fail_viol_seconds += float(fail_viol)
            fail_drop_seconds += fail_drop

            services = len(live)
            total_cores = sum(nic.spec.num_cores for nic in cluster.nics)
            used_cores = sum(nic.cores_used() for nic in cluster.nics)
            min_nics = math.ceil(services / cluster.max_residents_per_nic)
            row = EpochMetrics(
                epoch=epoch,
                services=services,
                nics_used=cluster.nics_used,
                arrivals=len(arrivals),
                departures=departures,
                migrations=migrations,
                sla_violations=violations,
                violation_rate_pct=(
                    100.0 * violations / services if services else 0.0
                ),
                utilisation_pct=(
                    100.0 * used_cores / total_cores if total_cores else 0.0
                ),
                wastage_pct=(
                    100.0 * (cluster.nics_used - min_nics) / min_nics
                    if min_nics
                    else 0.0
                ),
                aggregate_throughput_mpps=sum(throughputs.values()),
            )
            report.metrics.append(row)
            if obs.enabled:
                _emit_epoch_row(obs, now, row)
            report.pools.extend(
                _pool_rows(cluster, self._provisioner, self._targets, epoch)
            )

            if checkpoint is not None:
                checkpoint.maybe_save(
                    epoch + 1,
                    {
                        "engine": "epoch",
                        "next_epoch": epoch + 1,
                        "cluster": cluster,
                        "driver": driver,
                        "mix_cache": mix_cache,
                        "report": report,
                        "last_drops": last_drops,
                        "fail_viol_seconds": fail_viol_seconds,
                        "fail_drop_seconds": fail_drop_seconds,
                        "telemetry": telemetry,
                        "warm_cache": warm_cache,
                    },
                )
        report.migrations = list(cluster.migration_log)
        report.faults = faults_payload(
            cluster, fail_viol_seconds, fail_drop_seconds
        )
        report.telemetry = telemetry.payload()
        return report


# ----------------------------------------------------------------------
# Continuous-time event engine
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ObservationRecord:
    """One scored observation point of the event engine."""

    time: float
    kind: str  # "probe" (scheduled grid) or "change" (state changed)
    services: int
    nics_used: int
    sla_violations: int
    drop_sum: float  # sum of measured per-service drops
    aggregate_throughput_mpps: float


@dataclass
class EventReport:
    """Continuous-time trajectory: the epoch-grid :class:`FleetReport`
    plus the event engine's second-granularity series."""

    fleet: FleetReport
    horizon: float
    config: EventConfig
    observations: list[ObservationRecord] = field(default_factory=list)
    events_processed: int = 0
    event_counts: dict[str, int] = field(default_factory=dict)
    event_log: list[str] = field(default_factory=list)
    #: Left-Riemann integral of the SLA-violation count over time
    #: (unit: service-seconds in violation).
    violation_service_seconds: float = 0.0
    #: Left-Riemann integral of the summed throughput-drop fractions
    #: (unit: service-seconds of lost throughput).
    drop_service_seconds: float = 0.0
    migrations_started: int = 0
    migrations_completed: int = 0
    migrations_cancelled: int = 0
    timed_migrations: list[TimedMigration] = field(default_factory=list)

    @property
    def probes(self) -> int:
        return sum(1 for o in self.observations if o.kind == "probe")

    # ------------------------------------------------------------------
    def payload(self) -> dict:
        return {
            "schema_version": FLEET_REPORT_SCHEMA_VERSION,
            "engine": "event",
            "horizon": self.horizon,
            "config": asdict(self.config),
            "summary": {
                "observations": len(self.observations),
                "probes": self.probes,
                "events_processed": self.events_processed,
                "event_counts": dict(self.event_counts),
                "violation_service_seconds": self.violation_service_seconds,
                "drop_service_seconds": self.drop_service_seconds,
                "migrations_started": self.migrations_started,
                "migrations_completed": self.migrations_completed,
                "migrations_cancelled": self.migrations_cancelled,
            },
            "observations": [asdict(o) for o in self.observations],
            "timed_migrations": [asdict(m) for m in self.timed_migrations],
            "event_log": list(self.event_log),
            "fleet": self.fleet.payload(),
        }

    def to_json(self) -> str:
        """Deterministic JSON: the fleet payload nested under ``fleet``
        plus the continuous-time series."""
        return json.dumps(self.payload(), sort_keys=True, indent=2)

    def render(self) -> str:
        """The fleet table followed by a continuous-time footer."""
        lines = [self.fleet.render()]
        lines.append(
            f"event engine: horizon {self.horizon:g}s | "
            f"observations {len(self.observations)} "
            f"({self.probes} probes) | events {self.events_processed}"
        )
        lines.append(
            f"violation-seconds {self.violation_service_seconds:.3f} | "
            f"drop-seconds {self.drop_service_seconds:.3f} | "
            f"migrations started {self.migrations_started} / "
            f"completed {self.migrations_completed} / "
            f"cancelled {self.migrations_cancelled}"
        )
        return "\n".join(lines)


class EventEngine:
    """Drives one policy through the continuous-time fleet simulation.

    Same constructor contract as :class:`FleetEngine` plus an
    :class:`~repro.fleet.events.EventConfig`. ``run(horizon)`` advances
    the fleet to ``horizon`` seconds (one epoch of the time-stepped
    engine = one second) and returns an :class:`EventReport` whose
    ``fleet`` member is byte-identical to ``FleetEngine.run(horizon)``'s
    report under :meth:`EventConfig.epoch_equivalent`.
    """

    def __init__(
        self,
        policy: FleetPolicy | str,
        churn: ChurnProcess,
        model: PlacementModel,
        score_mode: str = "batch",
        provisioner: Optional[NicProvisioner] = None,
        config: Optional[EventConfig] = None,
        runtime: "Runtime | str | None" = None,
        topology: Optional[Topology] = None,
        faults: Optional[FaultSchedule] = None,
        recorder: Optional[Recorder] = None,
        warm_start: bool = False,
    ) -> None:
        self._policy, self._provisioner = _validate_pool(
            policy, model, score_mode, provisioner
        )
        self._churn = churn
        self._model = model
        self._targets = self._provisioner.target_names
        self._score_mode = score_mode
        self._config = config if config is not None else EventConfig()
        self._runtime = make_runtime(runtime)
        self._topology = topology if topology is not None else Topology()
        self._faults = faults
        self._obs = recorder if recorder is not None else NULL_RECORDER
        #: Cross-pass warm-started fixed points (default off — the
        #: oracle arm); see :func:`_score_cluster`.
        self._warm_start = bool(warm_start)

    @property
    def policy_name(self) -> str:
        return self._policy.name

    @property
    def config(self) -> EventConfig:
        return self._config

    @property
    def runtime(self) -> Runtime:
        return self._runtime

    # ------------------------------------------------------------------
    def run(
        self,
        horizon: float,
        checkpoint: Optional[Checkpointer] = None,
        resume: Optional[dict] = None,
    ) -> EventReport:
        """Simulate ``horizon`` seconds; returns the scored trajectory.

        Stateless across calls, like :meth:`FleetEngine.run`. The
        ``checkpoint`` / ``resume`` contract also mirrors the epoch
        engine's: snapshots are taken after on-grid probes (the epoch
        grid, so one ``--checkpoint-every`` knob serves both engines)
        and a resumed run finishes byte-identical to the uninterrupted
        one.
        """
        try:
            with use_recorder(self._obs):
                return self._run(horizon, checkpoint, resume)
        except BaseException:
            self._runtime.close()
            raise

    def _run(
        self,
        horizon: float,
        checkpoint: Optional[Checkpointer],
        resume: Optional[dict],
    ) -> EventReport:
        horizon = float(horizon)
        if not horizon >= 1.0:
            raise ConfigurationError("horizon must be >= 1 second")
        cfg = self._config
        obs = self._obs
        epochs = int(math.ceil(horizon))
        self._runtime.bind(
            {t: self._model.nic_for(t) for t in self._targets}
        )
        self._runtime.observe(obs)
        for target in self._targets:
            self._model.collector_for(target).observe(obs)
        schedule = (
            self._faults
            if self._faults is not None and self._faults.config.any_faults
            else None
        )

        if resume is not None:
            if resume.get("engine") != "event":
                raise ConfigurationError(
                    "this checkpoint was written by the epoch engine; "
                    "resume it with FleetEngine.run"
                )
            cluster = resume["cluster"]
            queue = resume["queue"]
            instances = resume["instances"]
            mix_cache = resume["mix_cache"]
            report = resume["report"]
            if report.horizon != horizon:
                raise ConfigurationError(
                    f"checkpoint was written for horizon "
                    f"{report.horizon:g}, not {horizon:g}"
                )
            last_drops = resume["last_drops"]
            prev_t = resume["prev_t"]
            prev_violations = resume["prev_violations"]
            prev_drop_sum = resume["prev_drop_sum"]
            prev_fail_viol = resume["prev_fail_viol"]
            prev_fail_drop = resume["prev_fail_drop"]
            fail_viol_seconds = resume["fail_viol_seconds"]
            fail_drop_seconds = resume["fail_drop_seconds"]
            arrivals_since = resume["arrivals_since"]
            departures_since = resume["departures_since"]
            migrations_at_probe = resume["migrations_at_probe"]
            probe_index = resume["probe_index"]
            rebalance_index = resume["rebalance_index"]
            telemetry = resume["telemetry"]
            warm_cache = resume["warm_cache"]
            if self._warm_start:
                # Same rule as the epoch engine: the engine's flag, not
                # the snapshot's, decides whether warm telemetry
                # reports.
                telemetry.enable_warm()
        else:
            cluster = Cluster(self._provisioner, topology=self._topology)
            cluster.migration_duration = cfg.migration_duration
            cluster.cross_pod_migration_duration = (
                cfg.cross_pod_migration_duration
            )
            cluster.spinup_latency = cfg.spinup_latency
            if schedule is not None:
                cluster.collect_new_nics = True
            mix_cache: dict[tuple, list[tuple[float, float]]] = {}
            queue = EventQueue()
            instances: dict[str, ServiceInstance] = {}
            report = EventReport(
                fleet=FleetReport(
                    policy=self._policy.name,
                    seed=self._churn.seed,
                    epochs=epochs,
                    score_mode=self._score_mode,
                    nic_mix=self._provisioner.mix,
                    topology=self._topology.to_dict(),
                ),
                horizon=horizon,
                config=cfg,
            )

            # Static schedule: every epoch's timed arrivals, the probe
            # and rebalance grids (chained through their handlers), and
            # — with faults — every armed pod outage (NIC faults arm
            # dynamically as their NICs spin up).
            for epoch in range(epochs):
                for when, request in self._churn.arrival_times_for(
                    epoch, quantize=cfg.quantize_arrivals
                ):
                    if when < horizon:
                        queue.push(Arrival(time=when, request=request))
            queue.push(Probe(time=0.0))
            queue.push(RebalanceTimer(time=0.0))
            if (
                schedule is not None
                and schedule.config.pod_outage_rate > 0.0
            ):
                if self._topology.pods is None:
                    raise ConfigurationError(
                        "pod outages need a fixed pod count "
                        "(Topology(pods=N))"
                    )
                for pod_id in range(self._topology.pods):
                    outage = schedule.pod_outage(pod_id)
                    if outage is not None and outage.start < horizon:
                        queue.push(
                            PodFail(time=outage.start, pod_id=pod_id)
                        )

            last_drops: dict[str, float] = {}
            prev_t = 0.0
            prev_violations = 0
            prev_drop_sum = 0.0
            prev_fail_viol = 0
            prev_fail_drop = 0.0
            fail_viol_seconds = 0.0
            fail_drop_seconds = 0.0
            arrivals_since = 0
            departures_since = 0
            migrations_at_probe = 0
            probe_index = 0
            rebalance_index = 0
            telemetry = TelemetryAccumulator()
            warm_cache = {}
            if self._warm_start:
                telemetry.enable_warm()

        def arm_new_nics() -> None:
            # Arm the drawn fault of every NIC provisioned since the
            # last call; onset is relative to the spin-up instant, so
            # every armed event lies strictly in the future.
            if schedule is None:
                return
            for nic in cluster.take_new_nics():
                fault = schedule.nic_fault(nic.nic_id)
                if fault is not None:
                    when = nic.spun_up_at + fault.after
                    if when < horizon:
                        queue.push(
                            NicFail(
                                time=when,
                                nic_id=nic.nic_id,
                                mode=fault.mode,
                                capacity=fault.capacity,
                                repair=fault.repair,
                            )
                        )

        while queue and queue.peek().time < horizon:
            t = queue.peek().time
            cluster.now = t
            dirty = False
            probe_due = False

            while queue and queue.peek().time == t:
                event = self._pop(queue, report)

                # Fault transitions emit "sim"-channel events mirroring
                # EpochFaultDriver.apply exactly (same names, fields,
                # success conditions, and — at one timestamp — the same
                # order, because the driver applies categories in this
                # queue's priority order), so the sim stream agrees
                # across engines under aligned faults.
                if isinstance(event, NicRestore):
                    if cluster.restore_nic(event.nic_id):
                        dirty = True
                        obs.event(
                            t, "fault.nic_restore", chan="sim",
                            nic=event.nic_id,
                        )

                elif isinstance(event, PodRestore):
                    # The pod accepts spin-ups again; nothing scored
                    # changes at this instant, so no observation.
                    cluster.restore_pod(event.pod_id)
                    obs.event(
                        t, "fault.pod_restore", chan="sim",
                        pod=event.pod_id,
                    )

                elif isinstance(event, PodFail):
                    outage = schedule.pod_outage(event.pod_id)
                    if cluster.fail_pod(event.pod_id):
                        dirty = True
                        obs.event(
                            t, "fault.pod_fail", chan="sim",
                            pod=event.pod_id,
                        )
                        if outage.end < horizon:
                            queue.push(
                                PodRestore(
                                    time=outage.end, pod_id=event.pod_id
                                )
                            )

                elif isinstance(event, NicFail):
                    if event.mode == "fail":
                        if cluster.fail_nic(event.nic_id):
                            dirty = True
                            obs.event(
                                t, "fault.nic_fail", chan="sim",
                                nic=event.nic_id,
                            )
                    elif cluster.degrade_nic(event.nic_id, event.capacity):
                        dirty = True
                        obs.event(
                            t, "fault.nic_degrade", chan="sim",
                            nic=event.nic_id, capacity=event.capacity,
                        )
                        when = t + event.repair
                        if when < horizon:
                            queue.push(
                                NicRestore(time=when, nic_id=event.nic_id)
                            )

                elif isinstance(event, Departure):
                    if event.instance_id in instances:
                        if cluster.is_evicted(event.instance_id):
                            # Its lifetime ran out while it waited in
                            # the re-placement queue: lost, not served.
                            cluster.drop_evicted(event.instance_id)
                        else:
                            cluster.remove(event.instance_id)
                        del instances[event.instance_id]
                        departures_since += 1
                        dirty = True

                elif isinstance(event, TrafficChange):
                    instance = instances.get(event.instance_id)
                    if instance is not None:
                        trace = instance.request.trace
                        fresh = trace.profile_at(t)
                        if fresh != instance.traffic:
                            dirty = True
                        instance.traffic = fresh
                        nxt = trace.next_change_after(t)
                        if nxt is not None and nxt < horizon:
                            queue.push(
                                TrafficChange(nxt, event.instance_id)
                            )

                elif isinstance(event, MigrationComplete):
                    record = cluster.migration_of(event.instance_id)
                    if record is not None and record.end_time == t:
                        cluster.complete_migration(event.instance_id)
                        dirty = True
                        obs.event(
                            t, "migration.complete",
                            instance=event.instance_id,
                        )

                elif isinstance(event, RebalanceTimer):
                    if cluster.evicted and self._policy.replace_evicted(
                        cluster, int(math.floor(t)), self._model
                    ):
                        dirty = True
                    moved = self._policy.rebalance(
                        cluster, int(math.floor(t)), self._model, last_drops
                    )
                    if self._launch_migrations(cluster, queue, report, horizon):
                        dirty = True
                    elif moved:
                        dirty = True  # instantaneous (duration-0) moves
                    rebalance_index += 1
                    nxt = rebalance_index * cfg.rebalance_period
                    if nxt < horizon:
                        queue.push(RebalanceTimer(time=nxt))

                elif isinstance(event, Arrival):
                    # Gather the whole same-time arrival group (they are
                    # contiguous in the queue) so their solo baselines
                    # warm in one batch, like an epoch's phase 2b.
                    group = [event]
                    while (
                        queue
                        and queue.peek().time == t
                        and isinstance(queue.peek(), Arrival)
                    ):
                        group.append(self._pop(queue, report))
                    requests = [e.request for e in group]
                    pairs = [
                        (r.nf_name, r.traffic) for r in cluster.services
                    ]
                    pairs.extend(
                        (rq.nf_name, rq.trace.profile_at(t))
                        for rq in requests
                    )
                    _warm_pairs(
                        self._model, self._targets, pairs,
                        self._score_mode, self._runtime,
                    )
                    for request in requests:
                        instance = ServiceInstance(
                            request=request,
                            traffic=request.trace.profile_at(t),
                        )
                        try:
                            nic_id = self._policy.choose_nic(
                                cluster, instance, self._model
                            )
                            cluster.place(instance, nic_id)
                        except PlacementError:
                            # Nowhere to put it (e.g. every pod is in
                            # outage): it waits in the queue.
                            cluster.enqueue_evicted(instance)
                        instances[request.instance_id] = instance
                        departs = float(request.departure_epoch)
                        if departs < horizon:
                            queue.push(
                                Departure(departs, request.instance_id)
                            )
                        nxt = request.trace.next_change_after(t)
                        if nxt is not None and nxt < horizon:
                            queue.push(
                                TrafficChange(nxt, request.instance_id)
                            )
                    arrivals_since += len(requests)
                    dirty = True

                elif isinstance(event, Probe):
                    probe_due = True
                    probe_index += 1
                    nxt = probe_index * cfg.probe_period
                    if nxt < horizon:
                        queue.push(Probe(time=nxt))

            arm_new_nics()
            if not (probe_due or (dirty and cfg.observe_changes)):
                continue

            # Observation point: lazy scoring of the current fleet.
            _warm_pairs(
                self._model,
                self._targets,
                [(r.nf_name, r.traffic) for r in cluster.services],
                self._score_mode,
                self._runtime,
            )
            drops, throughputs = _score_cluster(
                cluster, self._model, self._targets, mix_cache,
                self._score_mode, self._runtime, now=t,
                seed=self._churn.seed,
                obs=obs, sim_time=t, telemetry=telemetry,
                warm_start=self._warm_start, warm_cache=warm_cache,
            )
            live = _live_services(cluster)
            violated = [
                instance.instance_id
                for instance in live
                if drops[instance.instance_id] > instance.sla_drop_fraction
            ]
            drop_sum = sum(drops[r.instance_id] for r in live)
            fail_viol, fail_drop = _failure_attribution(cluster, drops)

            report.violation_service_seconds += (t - prev_t) * prev_violations
            report.drop_service_seconds += (t - prev_t) * prev_drop_sum
            fail_viol_seconds += (t - prev_t) * prev_fail_viol
            fail_drop_seconds += (t - prev_t) * prev_fail_drop
            prev_t, prev_violations, prev_drop_sum = (
                t, len(violated), drop_sum,
            )
            prev_fail_viol, prev_fail_drop = fail_viol, fail_drop

            report.observations.append(
                ObservationRecord(
                    time=t,
                    kind="probe" if probe_due else "change",
                    services=len(live),
                    nics_used=cluster.nics_used,
                    sla_violations=len(violated),
                    drop_sum=drop_sum,
                    aggregate_throughput_mpps=sum(throughputs.values()),
                )
            )
            last_drops = drops

            grid_probe = probe_due and t == math.floor(t)
            if grid_probe:
                # On-grid probe: emit the epoch row the time-stepped
                # engine would have emitted, from counters accumulated
                # since the previous grid probe.
                epoch = int(t)
                services = len(live)
                total_cores = sum(
                    nic.spec.num_cores for nic in cluster.nics
                )
                used_cores = sum(nic.cores_used() for nic in cluster.nics)
                min_nics = math.ceil(
                    services / cluster.max_residents_per_nic
                )
                started = cluster.total_migrations_started
                row = EpochMetrics(
                    epoch=epoch,
                    services=services,
                    nics_used=cluster.nics_used,
                    arrivals=arrivals_since,
                    departures=departures_since,
                    migrations=started - migrations_at_probe,
                    sla_violations=len(violated),
                    violation_rate_pct=(
                        100.0 * len(violated) / services
                        if services
                        else 0.0
                    ),
                    utilisation_pct=(
                        100.0 * used_cores / total_cores
                        if total_cores
                        else 0.0
                    ),
                    wastage_pct=(
                        100.0 * (cluster.nics_used - min_nics) / min_nics
                        if min_nics
                        else 0.0
                    ),
                    aggregate_throughput_mpps=sum(throughputs.values()),
                )
                report.fleet.metrics.append(row)
                if obs.enabled:
                    _emit_epoch_row(obs, t, row)
                report.fleet.pools.extend(
                    _pool_rows(
                        cluster, self._provisioner, self._targets, epoch
                    )
                )
                arrivals_since = 0
                departures_since = 0
                migrations_at_probe = started

            if probe_due:
                # Time-aware policy hooks; any migration they start is
                # observed at the next event (its completion at latest).
                if violated:
                    self._policy.on_violation(
                        cluster, t, self._model, drops, violated
                    )
                self._policy.on_probe(cluster, t, self._model, drops)
                self._launch_migrations(cluster, queue, report, horizon)
                arm_new_nics()  # hooks may have spun up NICs

            if checkpoint is not None and grid_probe:
                checkpoint.maybe_save(
                    int(t) + 1,
                    {
                        "engine": "event",
                        "cluster": cluster,
                        "queue": queue,
                        "instances": instances,
                        "mix_cache": mix_cache,
                        "report": report,
                        "last_drops": last_drops,
                        "prev_t": prev_t,
                        "prev_violations": prev_violations,
                        "prev_drop_sum": prev_drop_sum,
                        "prev_fail_viol": prev_fail_viol,
                        "prev_fail_drop": prev_fail_drop,
                        "fail_viol_seconds": fail_viol_seconds,
                        "fail_drop_seconds": fail_drop_seconds,
                        "arrivals_since": arrivals_since,
                        "departures_since": departures_since,
                        "migrations_at_probe": migrations_at_probe,
                        "probe_index": probe_index,
                        "rebalance_index": rebalance_index,
                        "telemetry": telemetry,
                        "warm_cache": warm_cache,
                    },
                )

        # Close the integrals out to the horizon.
        report.violation_service_seconds += (horizon - prev_t) * prev_violations
        report.drop_service_seconds += (horizon - prev_t) * prev_drop_sum
        fail_viol_seconds += (horizon - prev_t) * prev_fail_viol
        fail_drop_seconds += (horizon - prev_t) * prev_fail_drop

        report.fleet.migrations = list(cluster.migration_log)
        report.fleet.faults = faults_payload(
            cluster, fail_viol_seconds, fail_drop_seconds
        )
        report.fleet.telemetry = telemetry.payload()
        report.migrations_started = cluster.total_migrations_started
        report.migrations_completed = len(cluster.timed_migrations)
        report.migrations_cancelled = cluster.migrations_cancelled
        report.timed_migrations = list(cluster.timed_migrations)
        return report

    # ------------------------------------------------------------------
    def _pop(self, queue: EventQueue, report: EventReport) -> Event:
        """Pop the next event, recording it in the log and the counts."""
        event = queue.pop()
        report.events_processed += 1
        name = type(event).__name__
        report.event_counts[name] = report.event_counts.get(name, 0) + 1
        report.event_log.append(f"{event.time:.6f} {event.describe()}")
        obs = self._obs
        if obs.enabled:
            # Engine channel: the queue is engine mechanics, but its
            # contents are pure simulation state — deterministic at any
            # runtime/worker count.
            obs.event(
                event.time, "event.pop", type=name,
                detail=event.describe(),
            )
        return event

    def _launch_migrations(
        self,
        cluster: Cluster,
        queue: EventQueue,
        report: EventReport,
        horizon: float,
    ) -> bool:
        """Schedule completions for migrations a policy just started.

        Timed migrations begin synchronously inside the policy (it
        mutates the cluster it was handed); the engine drains the
        cluster's pending list, logs a :class:`MigrationStart` marker
        per move and queues the matching :class:`MigrationComplete`.
        Returns whether anything was started.
        """
        obs = self._obs
        pending = cluster.take_pending_migrations()
        for record in pending:
            marker = MigrationStart(
                time=record.start_time,
                instance_id=record.instance_id,
                from_nic=record.from_nic,
                to_nic=record.to_nic,
                duration=record.duration,
            )
            name = type(marker).__name__
            report.event_counts[name] = report.event_counts.get(name, 0) + 1
            report.event_log.append(
                f"{marker.time:.6f} {marker.describe()}"
            )
            if obs.enabled:
                obs.event(
                    record.start_time, "migration.start",
                    instance=record.instance_id,
                    from_nic=record.from_nic,
                    to_nic=record.to_nic,
                    duration=record.duration,
                )
            if record.end_time < horizon:
                queue.push(
                    MigrationComplete(record.end_time, record.instance_id)
                )
        return bool(pending)


__all__ = [
    "EpochMetrics",
    "EventEngine",
    "EventReport",
    "FLEET_REPORT_SCHEMA_VERSION",
    "FleetEngine",
    "FleetReport",
    "ObservationRecord",
    "PoolMetrics",
]
