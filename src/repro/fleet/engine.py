"""The fleet epoch loop: churn, dynamic traffic, placement, scoring.

This is the paper's §7.5 taken online. The one-shot evaluations place a
fixed arrival sequence (scheduling, §7.5.1) or probe one operating
point (diagnosis, §7.5.2); the fleet engine instead advances a
SmartNIC cluster through discrete *epochs* in which services arrive
and depart (:mod:`repro.fleet.churn`), every resident's traffic profile
evolves along its trace (:mod:`repro.fleet.traces`), and an online
policy decides placements and migrations using exactly the predictors
the paper's scheduler uses (:mod:`repro.fleet.policies`).

Each epoch proceeds in five phases:

1. **Departures** — services whose lifetime ended leave; empty NICs
   retire.
2. **Traffic evolution** — every remaining service's traffic becomes
   its trace's profile for this epoch (the dynamic-traffic regime of
   §7.5.2's MTBR sweep, generalised to all attributes).
3. **Rebalancing** — the policy may migrate residents based on the
   *previous* epoch's measured drops (the diagnosis-triggered
   ``rebalance`` policy migrates the bottlenecked NF of each violating
   NIC, mirroring how §7.5.2's operator reacts to a diagnosis).
4. **Arrivals** — new services are placed one by one (the online
   regime of §7.5.1, with predictions evaluated at the service's
   *current* traffic).
5. **Ground-truth scoring** — the simulator runs every NIC's resident
   mix under the epoch's traffic. All uncached solo baselines and
   co-run mixes across the whole cluster are solved in **one**
   :meth:`SmartNic.run_batch` call per hardware target per epoch
   (``score_mode="batch"``); ``score_mode="loop"`` solves the identical
   scenario lists with per-scenario :meth:`SmartNic.run` calls and is
   the bit-exactness oracle — reports from the two modes must be equal
   to the last bit.

Fleets may be **heterogeneous**: a :class:`~repro.fleet.cluster.
NicProvisioner` mixes hardware targets in one pool, each NIC is scored
on its own target's simulator, the policies consult that target's
trained predictors (:class:`~repro.fleet.policies.PlacementModel`), and
the report carries per-pool composition/utilisation/wastage breakdowns
next to the fleet-wide series.

The scored drops feed the SLA-violation, utilisation, wastage and
migration-cost time series of the :class:`FleetReport`, and are handed
to the policy as ``last_drops`` at the next epoch's rebalancing phase.
Everything is deterministic in ``(churn seed, nic mix, trained
model)``: two runs with the same configuration produce byte-identical
JSON reports.
"""

from __future__ import annotations

import json
import math
from dataclasses import asdict, dataclass, field
from typing import Optional

from repro.errors import ConfigurationError
from repro.fleet.churn import ChurnProcess
from repro.fleet.cluster import (
    CORES_PER_NF,
    Cluster,
    MigrationRecord,
    NicProvisioner,
    ServiceInstance,
)
from repro.fleet.policies import FleetPolicy, PlacementModel, make_policy
from repro.nf.catalog import make_nf


@dataclass(frozen=True)
class EpochMetrics:
    """Scored fleet state at the end of one epoch."""

    epoch: int
    services: int
    nics_used: int
    arrivals: int
    departures: int
    migrations: int
    sla_violations: int
    violation_rate_pct: float
    utilisation_pct: float
    wastage_pct: float
    aggregate_throughput_mpps: float


@dataclass(frozen=True)
class PoolMetrics:
    """One hardware target's pool state at the end of one epoch."""

    epoch: int
    target: str
    nics_used: int
    services: int
    utilisation_pct: float
    wastage_pct: float


@dataclass
class FleetReport:
    """Trajectory of one fleet simulation."""

    policy: str
    seed: int
    epochs: int
    score_mode: str
    nic_mix: tuple[tuple[str, float], ...] = ()
    metrics: list[EpochMetrics] = field(default_factory=list)
    pools: list[PoolMetrics] = field(default_factory=list)
    migrations: list[MigrationRecord] = field(default_factory=list)

    # ------------------------------------------------------------------
    @property
    def mean_nics(self) -> float:
        return _mean([m.nics_used for m in self.metrics])

    @property
    def mean_utilisation_pct(self) -> float:
        return _mean([m.utilisation_pct for m in self.metrics])

    @property
    def mean_wastage_pct(self) -> float:
        return _mean([m.wastage_pct for m in self.metrics])

    @property
    def violation_rate_pct(self) -> float:
        """SLA violations over all (service, epoch) scoring points."""
        scored = sum(m.services for m in self.metrics)
        violated = sum(m.sla_violations for m in self.metrics)
        return 100.0 * violated / scored if scored else 0.0

    @property
    def total_migrations(self) -> int:
        return sum(m.migrations for m in self.metrics)

    def pool_summary(self) -> dict[str, dict[str, float]]:
        """Per-target means over the trajectory (NICs, utilisation, wastage).

        Epochs where a target provisioned no NIC count as zero NICs but
        are excluded from the utilisation/wastage means (an absent pool
        has no hardware to utilise or waste).
        """
        summary: dict[str, dict[str, float]] = {}
        targets = [name for name, _ in self.nic_mix] or sorted(
            {p.target for p in self.pools}
        )
        for target in targets:
            rows = [p for p in self.pools if p.target == target]
            active = [p for p in rows if p.nics_used > 0]
            summary[target] = {
                "mean_nics": _mean([p.nics_used for p in rows]),
                "mean_utilisation_pct": _mean(
                    [p.utilisation_pct for p in active]
                ),
                "mean_wastage_pct": _mean([p.wastage_pct for p in active]),
                "mean_services": _mean([p.services for p in rows]),
            }
        return summary

    # ------------------------------------------------------------------
    def to_json(self) -> str:
        """Deterministic JSON rendering of the whole trajectory."""
        payload = {
            "policy": self.policy,
            "seed": self.seed,
            "epochs": self.epochs,
            "score_mode": self.score_mode,
            "nic_mix": [
                {"target": name, "weight": weight}
                for name, weight in self.nic_mix
            ],
            "summary": {
                "mean_nics": self.mean_nics,
                "mean_utilisation_pct": self.mean_utilisation_pct,
                "mean_wastage_pct": self.mean_wastage_pct,
                "violation_rate_pct": self.violation_rate_pct,
                "total_migrations": self.total_migrations,
            },
            "pool_summary": self.pool_summary(),
            "metrics": [asdict(m) for m in self.metrics],
            "pools": [asdict(p) for p in self.pools],
            "migrations": [asdict(m) for m in self.migrations],
        }
        return json.dumps(payload, sort_keys=True, indent=2)

    def render(self) -> str:
        """Text report: configuration + per-pool header, per-epoch rows,
        summary footer."""
        header = (
            f"{'epoch':>5s} {'svcs':>5s} {'nics':>5s} {'arr':>4s} {'dep':>4s} "
            f"{'mig':>4s} {'viol':>5s} {'util%':>7s} {'waste%':>7s} "
            f"{'tput Mpps':>10s}"
        )
        mix = ",".join(f"{name}={weight:.2f}" for name, weight in self.nic_mix)
        lines = [
            f"fleet policy={self.policy} seed={self.seed} "
            f"epochs={self.epochs} score_mode={self.score_mode}"
            + (f" nic_mix={mix}" if mix else ""),
        ]
        for target, stats in self.pool_summary().items():
            lines.append(
                f"pool {target}: mean NICs {stats['mean_nics']:.2f} | "
                f"utilisation {stats['mean_utilisation_pct']:.1f}% | "
                f"wastage {stats['mean_wastage_pct']:.1f}% | "
                f"mean services {stats['mean_services']:.2f}"
            )
        lines.extend([header, "-" * len(header)])
        for m in self.metrics:
            lines.append(
                f"{m.epoch:5d} {m.services:5d} {m.nics_used:5d} "
                f"{m.arrivals:4d} {m.departures:4d} {m.migrations:4d} "
                f"{m.sla_violations:5d} {m.utilisation_pct:7.1f} "
                f"{m.wastage_pct:7.1f} {m.aggregate_throughput_mpps:10.3f}"
            )
        lines.append("-" * len(header))
        lines.append(
            f"mean NICs {self.mean_nics:.2f} | "
            f"utilisation {self.mean_utilisation_pct:.1f}% | "
            f"wastage {self.mean_wastage_pct:.1f}% | "
            f"SLA violations {self.violation_rate_pct:.2f}% | "
            f"migrations {self.total_migrations}"
        )
        return "\n".join(lines)


def _mean(values: list[float]) -> float:
    return sum(values) / len(values) if values else 0.0


class FleetEngine:
    """Drives one policy through the time-stepped fleet simulation."""

    def __init__(
        self,
        policy: FleetPolicy | str,
        churn: ChurnProcess,
        model: PlacementModel,
        score_mode: str = "batch",
        provisioner: Optional[NicProvisioner] = None,
    ) -> None:
        if score_mode not in ("batch", "loop"):
            raise ConfigurationError("score_mode must be 'batch' or 'loop'")
        self._policy = make_policy(policy) if isinstance(policy, str) else policy
        self._churn = churn
        self._model = model
        if provisioner is None:
            # Historical homogeneous behaviour: every NIC is the
            # model's default target.
            provisioner = NicProvisioner.constant(model.nic.spec)
        for target in provisioner.target_names:
            if target not in model.target_names:
                raise ConfigurationError(
                    f"nic-mix target {target!r} has no placement model; "
                    f"registered: {list(model.target_names)}"
                )
        self._provisioner = provisioner
        self._targets = provisioner.target_names
        self._score_mode = score_mode

    @property
    def policy_name(self) -> str:
        return self._policy.name

    # ------------------------------------------------------------------
    def run(self, epochs: int) -> FleetReport:
        """Simulate ``epochs`` epochs; returns the scored trajectory.

        Stateless across calls: every invocation rebuilds the cluster
        and the scoring caches, so repeated runs of one engine are
        bit-identical.
        """
        if epochs < 1:
            raise ConfigurationError("epochs must be >= 1")
        cluster = Cluster(self._provisioner)
        mix_cache: dict[tuple, list[tuple[float, float]]] = {}
        report = FleetReport(
            policy=self._policy.name,
            seed=self._churn.seed,
            epochs=epochs,
            score_mode=self._score_mode,
            nic_mix=self._provisioner.mix,
        )
        last_drops: dict[str, float] = {}

        for epoch in range(epochs):
            # 1. Departures.
            departures = 0
            for instance in cluster.services:
                if instance.request.departure_epoch <= epoch:
                    cluster.remove(instance.instance_id)
                    departures += 1

            # 2. Traffic evolution along each service's trace.
            for instance in cluster.services:
                instance.traffic = instance.request.trace.profile_at(epoch)

            # 2b. Warm this epoch's solo baselines (residents and
            # arrivals at their current traffic) through the collector,
            # in one run_batch call, so the policies' feasibility probes
            # and the scoring drops all hit the cache. The loop twin
            # warms the identical set with per-pair scalar solves.
            arrivals = self._churn.arrivals_for(epoch)
            self._warm_solos(cluster, arrivals, epoch)

            # 3. Policy rebalancing on the previous epoch's measured drops.
            migrations_before = len(cluster.migration_log)
            self._policy.rebalance(cluster, epoch, self._model, last_drops)
            migrations = len(cluster.migration_log) - migrations_before

            # 4. Arrivals, placed online one by one.
            for request in arrivals:
                instance = ServiceInstance(
                    request=request, traffic=request.trace.profile_at(epoch)
                )
                nic_id = self._policy.choose_nic(cluster, instance, self._model)
                cluster.place(instance, nic_id)

            # 5. Ground-truth scoring of every NIC's resident mix.
            drops, throughputs = self._score_epoch(cluster, mix_cache)
            last_drops = drops
            violations = sum(
                1
                for instance in cluster.services
                if drops[instance.instance_id] > instance.sla_drop_fraction
            )

            services = len(cluster.services)
            total_cores = sum(nic.spec.num_cores for nic in cluster.nics)
            used_cores = sum(nic.cores_used() for nic in cluster.nics)
            min_nics = math.ceil(services / cluster.max_residents_per_nic)
            report.metrics.append(
                EpochMetrics(
                    epoch=epoch,
                    services=services,
                    nics_used=cluster.nics_used,
                    arrivals=len(arrivals),
                    departures=departures,
                    migrations=migrations,
                    sla_violations=violations,
                    violation_rate_pct=(
                        100.0 * violations / services if services else 0.0
                    ),
                    utilisation_pct=(
                        100.0 * used_cores / total_cores if total_cores else 0.0
                    ),
                    wastage_pct=(
                        100.0 * (cluster.nics_used - min_nics) / min_nics
                        if min_nics
                        else 0.0
                    ),
                    aggregate_throughput_mpps=sum(throughputs.values()),
                )
            )
            report.pools.extend(self._pool_metrics(cluster, epoch))
        report.migrations = list(cluster.migration_log)
        return report

    def _pool_metrics(self, cluster: Cluster, epoch: int) -> list[PoolMetrics]:
        """Per-target pool breakdown of one scored epoch."""
        rows = []
        for target in self._targets:
            pool = [nic for nic in cluster.nics if nic.target == target]
            pool_services = sum(len(nic.residents) for nic in pool)
            pool_total = sum(nic.spec.num_cores for nic in pool)
            pool_used = sum(nic.cores_used() for nic in pool)
            capacity = self._provisioner.spec_of(target).num_cores // CORES_PER_NF
            pool_min = math.ceil(pool_services / capacity)
            rows.append(
                PoolMetrics(
                    epoch=epoch,
                    target=target,
                    nics_used=len(pool),
                    services=pool_services,
                    utilisation_pct=(
                        100.0 * pool_used / pool_total if pool_total else 0.0
                    ),
                    wastage_pct=(
                        100.0 * (len(pool) - pool_min) / pool_min
                        if pool_min
                        else 0.0
                    ),
                )
            )
        return rows

    # ------------------------------------------------------------------
    # Epoch scoring
    # ------------------------------------------------------------------
    @staticmethod
    def _mix_key(residents: list[ServiceInstance]) -> tuple:
        return tuple((r.nf_name, r.traffic) for r in residents)

    def _warm_solos(self, cluster: Cluster, arrivals, epoch: int) -> None:
        """Measure this epoch's solo baselines into the collector caches.

        Every hardware target in the pool mix is warmed with the full
        (NF, traffic) pair set — placement probes evaluate candidates on
        any target, and a migration can move a service across pools, so
        each target's collector must know every pair's solo behaviour.
        ``batch`` mode solves each target's uncached solos in one
        :meth:`ProfilingCollector.solo_many` call (one ``run_batch``
        per target); ``loop`` mode measures the identical set with
        per-pair scalar :meth:`ProfilingCollector.solo` calls — same
        cache entries, so both modes' policies and drop baselines see
        the same values.
        """
        pairs = [(r.nf_name, r.traffic) for r in cluster.services]
        pairs.extend(
            (request.nf_name, request.trace.profile_at(epoch))
            for request in arrivals
        )
        for target in self._targets:
            collector = self._model.collector_for(target)
            if self._score_mode == "batch":
                collector.solo_many(
                    [(make_nf(name), traffic) for name, traffic in pairs]
                )
            else:
                for name, traffic in pairs:
                    collector.solo(make_nf(name), traffic)

    def _solo_throughput(self, nf_name: str, traffic, target: str) -> float:
        return (
            self._model.collector_for(target)
            .solo(make_nf(nf_name), traffic)
            .throughput_mpps
        )

    def _score_epoch(
        self,
        cluster: Cluster,
        mix_cache: dict[tuple, list[tuple[float, float]]],
    ) -> tuple[dict[str, float], dict[str, float]]:
        """Measured drop and throughput of every resident service.

        Builds one scenario list per hardware target covering every
        uncached multi-resident mix on that target's NICs and solves
        each list in a single :meth:`SmartNic.run_batch` call (``batch``
        mode — one call per spec group per epoch) or with per-scenario
        :meth:`SmartNic.run` calls (``loop`` mode, the bit-exactness
        oracle), then reads both modes' results identically. Solo
        baselines come from the collector caches warmed at the top of
        the epoch; a mix is cached per (target, mix) since the same
        resident set performs differently on different hardware.
        """
        scenarios: dict[str, list[list]] = {t: [] for t in self._targets}
        mix_slots: dict[tuple, int] = {}
        for nic in cluster.nics:
            if len(nic.residents) < 2:
                continue
            key = (nic.target, self._mix_key(nic.residents))
            if key not in mix_cache and key not in mix_slots:
                mix_slots[key] = len(scenarios[nic.target])
                scenarios[nic.target].append(
                    [
                        make_nf(name).demand(traffic, instance=f"{name}#{j}")
                        for j, (name, traffic) in enumerate(key[1])
                    ]
                )

        solved: dict[str, list] = {}
        for target in self._targets:
            batch = scenarios[target]
            if not batch:
                solved[target] = []
            elif self._score_mode == "batch":
                solved[target] = self._model.nic_for(target).run_batch(batch)
            else:
                nic_sim = self._model.nic_for(target)
                solved[target] = [nic_sim.run(scenario) for scenario in batch]

        for key, slot in mix_slots.items():
            target, mix_key = key
            result = solved[target][slot]
            entries = []
            for j, (name, traffic) in enumerate(mix_key):
                achieved = result.throughput_of(f"{name}#{j}")
                solo = self._solo_throughput(name, traffic, target)
                entries.append((max(0.0, 1.0 - achieved / solo), achieved))
            mix_cache[key] = entries

        drops: dict[str, float] = {}
        throughputs: dict[str, float] = {}
        for nic in cluster.nics:
            if len(nic.residents) == 1:
                resident = nic.residents[0]
                drops[resident.instance_id] = 0.0
                throughputs[resident.instance_id] = self._solo_throughput(
                    resident.nf_name, resident.traffic, nic.target
                )
                continue
            entries = mix_cache[(nic.target, self._mix_key(nic.residents))]
            for resident, (drop, throughput) in zip(nic.residents, entries):
                drops[resident.instance_id] = drop
                throughputs[resident.instance_id] = throughput
        return drops, throughputs


def simulate(
    policy: str,
    epochs: int,
    churn: ChurnProcess,
    model: PlacementModel,
    score_mode: str = "batch",
    provisioner: Optional[NicProvisioner] = None,
) -> FleetReport:
    """One-call convenience wrapper around :class:`FleetEngine`."""
    return FleetEngine(
        policy, churn, model, score_mode=score_mode, provisioner=provisioner
    ).run(epochs)


__all__ = [
    "EpochMetrics",
    "FleetEngine",
    "FleetReport",
    "PoolMetrics",
    "simulate",
]
