"""The fleet epoch loop: churn, dynamic traffic, placement, scoring.

This is the paper's §7.5 taken online. The one-shot evaluations place a
fixed arrival sequence (scheduling, §7.5.1) or probe one operating
point (diagnosis, §7.5.2); the fleet engine instead advances a
SmartNIC cluster through discrete *epochs* in which services arrive
and depart (:mod:`repro.fleet.churn`), every resident's traffic profile
evolves along its trace (:mod:`repro.fleet.traces`), and an online
policy decides placements and migrations using exactly the predictors
the paper's scheduler uses (:mod:`repro.fleet.policies`).

Each epoch proceeds in five phases:

1. **Departures** — services whose lifetime ended leave; empty NICs
   retire.
2. **Traffic evolution** — every remaining service's traffic becomes
   its trace's profile for this epoch (the dynamic-traffic regime of
   §7.5.2's MTBR sweep, generalised to all attributes).
3. **Rebalancing** — the policy may migrate residents based on the
   *previous* epoch's measured drops (the diagnosis-triggered
   ``rebalance`` policy migrates the bottlenecked NF of each violating
   NIC, mirroring how §7.5.2's operator reacts to a diagnosis).
4. **Arrivals** — new services are placed one by one (the online
   regime of §7.5.1, with predictions evaluated at the service's
   *current* traffic).
5. **Ground-truth scoring** — the simulator runs every NIC's resident
   mix under the epoch's traffic. All uncached solo baselines and
   co-run mixes across the whole cluster are solved in **one**
   :meth:`SmartNic.run_batch` call per epoch (``score_mode="batch"``);
   ``score_mode="loop"`` solves the identical scenario list with
   per-scenario :meth:`SmartNic.run` calls and is the bit-exactness
   oracle — reports from the two modes must be equal to the last bit.

The scored drops feed the SLA-violation, utilisation, wastage and
migration-cost time series of the :class:`FleetReport`, and are handed
to the policy as ``last_drops`` at the next epoch's rebalancing phase.
Everything is deterministic in ``(churn seed, trained model)``: two
runs with the same configuration produce byte-identical JSON reports.
"""

from __future__ import annotations

import json
import math
from dataclasses import asdict, dataclass, field

from repro.errors import ConfigurationError
from repro.fleet.churn import ChurnProcess
from repro.fleet.cluster import Cluster, MigrationRecord, ServiceInstance
from repro.fleet.policies import FleetPolicy, PlacementModel, make_policy
from repro.nf.catalog import make_nf


@dataclass(frozen=True)
class EpochMetrics:
    """Scored fleet state at the end of one epoch."""

    epoch: int
    services: int
    nics_used: int
    arrivals: int
    departures: int
    migrations: int
    sla_violations: int
    violation_rate_pct: float
    utilisation_pct: float
    wastage_pct: float
    aggregate_throughput_mpps: float


@dataclass
class FleetReport:
    """Trajectory of one fleet simulation."""

    policy: str
    seed: int
    epochs: int
    score_mode: str
    metrics: list[EpochMetrics] = field(default_factory=list)
    migrations: list[MigrationRecord] = field(default_factory=list)

    # ------------------------------------------------------------------
    @property
    def mean_nics(self) -> float:
        return _mean([m.nics_used for m in self.metrics])

    @property
    def mean_utilisation_pct(self) -> float:
        return _mean([m.utilisation_pct for m in self.metrics])

    @property
    def mean_wastage_pct(self) -> float:
        return _mean([m.wastage_pct for m in self.metrics])

    @property
    def violation_rate_pct(self) -> float:
        """SLA violations over all (service, epoch) scoring points."""
        scored = sum(m.services for m in self.metrics)
        violated = sum(m.sla_violations for m in self.metrics)
        return 100.0 * violated / scored if scored else 0.0

    @property
    def total_migrations(self) -> int:
        return sum(m.migrations for m in self.metrics)

    # ------------------------------------------------------------------
    def to_json(self) -> str:
        """Deterministic JSON rendering of the whole trajectory."""
        payload = {
            "policy": self.policy,
            "seed": self.seed,
            "epochs": self.epochs,
            "score_mode": self.score_mode,
            "summary": {
                "mean_nics": self.mean_nics,
                "mean_utilisation_pct": self.mean_utilisation_pct,
                "mean_wastage_pct": self.mean_wastage_pct,
                "violation_rate_pct": self.violation_rate_pct,
                "total_migrations": self.total_migrations,
            },
            "metrics": [asdict(m) for m in self.metrics],
            "migrations": [asdict(m) for m in self.migrations],
        }
        return json.dumps(payload, sort_keys=True, indent=2)

    def render(self) -> str:
        """Text report: per-epoch rows plus a summary footer."""
        header = (
            f"{'epoch':>5s} {'svcs':>5s} {'nics':>5s} {'arr':>4s} {'dep':>4s} "
            f"{'mig':>4s} {'viol':>5s} {'util%':>7s} {'waste%':>7s} "
            f"{'tput Mpps':>10s}"
        )
        lines = [
            f"fleet policy={self.policy} seed={self.seed} "
            f"epochs={self.epochs} score_mode={self.score_mode}",
            header,
            "-" * len(header),
        ]
        for m in self.metrics:
            lines.append(
                f"{m.epoch:5d} {m.services:5d} {m.nics_used:5d} "
                f"{m.arrivals:4d} {m.departures:4d} {m.migrations:4d} "
                f"{m.sla_violations:5d} {m.utilisation_pct:7.1f} "
                f"{m.wastage_pct:7.1f} {m.aggregate_throughput_mpps:10.3f}"
            )
        lines.append("-" * len(header))
        lines.append(
            f"mean NICs {self.mean_nics:.2f} | "
            f"utilisation {self.mean_utilisation_pct:.1f}% | "
            f"wastage {self.mean_wastage_pct:.1f}% | "
            f"SLA violations {self.violation_rate_pct:.2f}% | "
            f"migrations {self.total_migrations}"
        )
        return "\n".join(lines)


def _mean(values: list[float]) -> float:
    return sum(values) / len(values) if values else 0.0


class FleetEngine:
    """Drives one policy through the time-stepped fleet simulation."""

    def __init__(
        self,
        policy: FleetPolicy | str,
        churn: ChurnProcess,
        model: PlacementModel,
        score_mode: str = "batch",
    ) -> None:
        if score_mode not in ("batch", "loop"):
            raise ConfigurationError("score_mode must be 'batch' or 'loop'")
        self._policy = make_policy(policy) if isinstance(policy, str) else policy
        self._churn = churn
        self._model = model
        self._nic = model.nic
        self._collector = model.collector
        self._score_mode = score_mode

    @property
    def policy_name(self) -> str:
        return self._policy.name

    # ------------------------------------------------------------------
    def run(self, epochs: int) -> FleetReport:
        """Simulate ``epochs`` epochs; returns the scored trajectory.

        Stateless across calls: every invocation rebuilds the cluster
        and the scoring caches, so repeated runs of one engine are
        bit-identical.
        """
        if epochs < 1:
            raise ConfigurationError("epochs must be >= 1")
        cluster = Cluster(self._nic.spec)
        mix_cache: dict[tuple, list[tuple[float, float]]] = {}
        report = FleetReport(
            policy=self._policy.name,
            seed=self._churn.seed,
            epochs=epochs,
            score_mode=self._score_mode,
        )
        last_drops: dict[str, float] = {}

        for epoch in range(epochs):
            # 1. Departures.
            departures = 0
            for instance in cluster.services:
                if instance.request.departure_epoch <= epoch:
                    cluster.remove(instance.instance_id)
                    departures += 1

            # 2. Traffic evolution along each service's trace.
            for instance in cluster.services:
                instance.traffic = instance.request.trace.profile_at(epoch)

            # 2b. Warm this epoch's solo baselines (residents and
            # arrivals at their current traffic) through the collector,
            # in one run_batch call, so the policies' feasibility probes
            # and the scoring drops all hit the cache. The loop twin
            # warms the identical set with per-pair scalar solves.
            arrivals = self._churn.arrivals_for(epoch)
            self._warm_solos(cluster, arrivals, epoch)

            # 3. Policy rebalancing on the previous epoch's measured drops.
            migrations_before = len(cluster.migration_log)
            self._policy.rebalance(cluster, epoch, self._model, last_drops)
            migrations = len(cluster.migration_log) - migrations_before

            # 4. Arrivals, placed online one by one.
            for request in arrivals:
                instance = ServiceInstance(
                    request=request, traffic=request.trace.profile_at(epoch)
                )
                nic_id = self._policy.choose_nic(cluster, instance, self._model)
                cluster.place(instance, nic_id)

            # 5. Ground-truth scoring of every NIC's resident mix.
            drops, throughputs = self._score_epoch(cluster, mix_cache)
            last_drops = drops
            violations = sum(
                1
                for instance in cluster.services
                if drops[instance.instance_id] > instance.sla_drop_fraction
            )

            services = len(cluster.services)
            total_cores = cluster.nics_used * self._nic.spec.num_cores
            used_cores = sum(nic.cores_used() for nic in cluster.nics)
            min_nics = math.ceil(services / cluster.max_residents_per_nic)
            report.metrics.append(
                EpochMetrics(
                    epoch=epoch,
                    services=services,
                    nics_used=cluster.nics_used,
                    arrivals=len(arrivals),
                    departures=departures,
                    migrations=migrations,
                    sla_violations=violations,
                    violation_rate_pct=(
                        100.0 * violations / services if services else 0.0
                    ),
                    utilisation_pct=(
                        100.0 * used_cores / total_cores if total_cores else 0.0
                    ),
                    wastage_pct=(
                        100.0 * (cluster.nics_used - min_nics) / min_nics
                        if min_nics
                        else 0.0
                    ),
                    aggregate_throughput_mpps=sum(throughputs.values()),
                )
            )
        report.migrations = list(cluster.migration_log)
        return report

    # ------------------------------------------------------------------
    # Epoch scoring
    # ------------------------------------------------------------------
    @staticmethod
    def _mix_key(residents: list[ServiceInstance]) -> tuple:
        return tuple((r.nf_name, r.traffic) for r in residents)

    def _warm_solos(self, cluster: Cluster, arrivals, epoch: int) -> None:
        """Measure this epoch's solo baselines into the collector cache.

        ``batch`` mode solves every uncached solo in one
        :meth:`ProfilingCollector.solo_many` call (one ``run_batch``);
        ``loop`` mode measures the identical set with per-pair scalar
        :meth:`ProfilingCollector.solo` calls — same cache entries, so
        both modes' policies and drop baselines see the same values.
        """
        pairs = [(r.nf_name, r.traffic) for r in cluster.services]
        pairs.extend(
            (request.nf_name, request.trace.profile_at(epoch))
            for request in arrivals
        )
        if self._score_mode == "batch":
            self._collector.solo_many(
                [(make_nf(name), traffic) for name, traffic in pairs]
            )
        else:
            for name, traffic in pairs:
                self._collector.solo(make_nf(name), traffic)

    def _solo_throughput(self, nf_name: str, traffic) -> float:
        return self._collector.solo(make_nf(nf_name), traffic).throughput_mpps

    def _score_epoch(
        self,
        cluster: Cluster,
        mix_cache: dict[tuple, list[tuple[float, float]]],
    ) -> tuple[dict[str, float], dict[str, float]]:
        """Measured drop and throughput of every resident service.

        Builds one scenario list covering every uncached multi-resident
        mix on the cluster and solves it in a single
        :meth:`SmartNic.run_batch` call (``batch`` mode) or with
        per-scenario :meth:`SmartNic.run` calls (``loop`` mode, the
        bit-exactness oracle), then reads both modes' results
        identically. Solo baselines come from the collector cache
        warmed at the top of the epoch.
        """
        scenarios: list[list] = []
        mix_slots: dict[tuple, int] = {}
        for nic in cluster.nics:
            if len(nic.residents) < 2:
                continue
            mix_key = self._mix_key(nic.residents)
            if mix_key not in mix_cache and mix_key not in mix_slots:
                mix_slots[mix_key] = len(scenarios)
                scenarios.append(
                    [
                        make_nf(name).demand(traffic, instance=f"{name}#{j}")
                        for j, (name, traffic) in enumerate(mix_key)
                    ]
                )

        if self._score_mode == "batch":
            solved = self._nic.run_batch(scenarios) if scenarios else []
        else:
            solved = [self._nic.run(scenario) for scenario in scenarios]

        for mix_key, slot in mix_slots.items():
            result = solved[slot]
            entries = []
            for j, (name, traffic) in enumerate(mix_key):
                achieved = result.throughput_of(f"{name}#{j}")
                solo = self._solo_throughput(name, traffic)
                entries.append((max(0.0, 1.0 - achieved / solo), achieved))
            mix_cache[mix_key] = entries

        drops: dict[str, float] = {}
        throughputs: dict[str, float] = {}
        for nic in cluster.nics:
            if len(nic.residents) == 1:
                resident = nic.residents[0]
                drops[resident.instance_id] = 0.0
                throughputs[resident.instance_id] = self._solo_throughput(
                    resident.nf_name, resident.traffic
                )
                continue
            entries = mix_cache[self._mix_key(nic.residents)]
            for resident, (drop, throughput) in zip(nic.residents, entries):
                drops[resident.instance_id] = drop
                throughputs[resident.instance_id] = throughput
        return drops, throughputs


def simulate(
    policy: str,
    epochs: int,
    churn: ChurnProcess,
    model: PlacementModel,
    score_mode: str = "batch",
) -> FleetReport:
    """One-call convenience wrapper around :class:`FleetEngine`."""
    return FleetEngine(policy, churn, model, score_mode=score_mode).run(epochs)


__all__ = ["EpochMetrics", "FleetEngine", "FleetReport", "simulate"]
