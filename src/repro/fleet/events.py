"""Typed events and the deterministic queue of the continuous-time fleet.

The event engine (:class:`repro.fleet.engine.EventEngine`) advances the
fleet in *continuous* time by popping events off an :class:`EventQueue`.
Determinism is structural: events are totally ordered by
``(time, priority, seq)`` —

- ``time`` is the simulation clock in seconds (one epoch of the
  time-stepped engine spans one second);
- ``priority`` is fixed per event *type* and mirrors the phase order of
  the epoch engine, so events sharing a timestamp replay the epoch
  phases exactly (departures before traffic changes before rebalancing
  before arrivals before scoring);
- ``seq`` is the queue's monotone insertion counter, which makes ties
  within one ``(time, priority)`` bucket FIFO in scheduling order.

Because the order is a pure function of what was scheduled (never of
heap internals or hash order), two runs with the same seed pop the
identical event sequence, which is what the event-log determinism tests
pin.

:class:`MigrationStart` is special: migrations *begin* synchronously
inside a policy hook (the policy mutates the cluster it was handed), so
the engine records the start marker directly in its event log and only
the matching :class:`MigrationComplete` travels through the queue.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import ClassVar

from repro.errors import ConfigurationError
from repro.fleet.churn import ServiceRequest


@dataclass(frozen=True)
class Event:
    """Base event: a point on the simulation clock."""

    #: Tie-break rank among events sharing a timestamp; mirrors the
    #: epoch engine's phase order (see the class docstrings below).
    priority: ClassVar[int] = 99

    time: float

    def __post_init__(self) -> None:
        if self.time < 0.0:
            raise ConfigurationError("event time must be >= 0")

    def describe(self) -> str:
        """One-line rendering used by the engine's event log."""
        return type(self).__name__.lower()


@dataclass(frozen=True)
class NicRestore(Event):
    """A degraded NIC's repair completes (epoch fault phase 0).

    Fault transitions order *before* every workload event at a shared
    timestamp — restores first, so capacity freed by a repair is
    visible to everything else happening at that instant — mirroring
    the epoch engine's phase-0 fault application.
    """

    priority: ClassVar[int] = -4

    nic_id: int = -1

    def describe(self) -> str:
        return f"nic-restore nic{self.nic_id}"


@dataclass(frozen=True)
class PodRestore(Event):
    """A pod outage ends; the pod accepts spin-ups again."""

    priority: ClassVar[int] = -3

    pod_id: int = -1

    def describe(self) -> str:
        return f"pod-restore pod{self.pod_id}"


@dataclass(frozen=True)
class PodFail(Event):
    """A whole pod goes dark: every NIC in it hard-fails at once."""

    priority: ClassVar[int] = -2

    pod_id: int = -1

    def describe(self) -> str:
        return f"pod-fail pod{self.pod_id}"


@dataclass(frozen=True)
class NicFail(Event):
    """One NIC's drawn fault fires: hard failure or degradation."""

    priority: ClassVar[int] = -1

    nic_id: int = -1
    mode: str = "fail"  # "fail" (permanent) or "degrade" (repairable)
    #: Capacity fraction while degraded (unused in fail mode).
    capacity: float = 1.0
    #: Seconds until the matching :class:`NicRestore` (degrade mode).
    repair: float = 0.0

    def describe(self) -> str:
        if self.mode == "degrade":
            return (
                f"nic-fail nic{self.nic_id} degrade "
                f"cap={self.capacity:.2f}"
            )
        return f"nic-fail nic{self.nic_id} fail"


@dataclass(frozen=True)
class Departure(Event):
    """A service's lifetime ended (epoch phase 1)."""

    priority: ClassVar[int] = 0

    instance_id: str = ""

    def describe(self) -> str:
        return f"departure {self.instance_id}"


@dataclass(frozen=True)
class TrafficChange(Event):
    """One service's trace reaches a change point (epoch phase 2)."""

    priority: ClassVar[int] = 1

    instance_id: str = ""

    def describe(self) -> str:
        return f"traffic-change {self.instance_id}"


@dataclass(frozen=True)
class MigrationComplete(Event):
    """An in-flight migration lands on its destination NIC.

    Ordered before the rebalance timer so a migration completing
    exactly on a decision boundary is visible to that decision.
    """

    priority: ClassVar[int] = 2

    instance_id: str = ""

    def describe(self) -> str:
        return f"migration-complete {self.instance_id}"


@dataclass(frozen=True)
class MigrationStart(Event):
    """Log marker for a migration beginning (never queued — migrations
    start synchronously inside the policy hook that decided them)."""

    priority: ClassVar[int] = 3

    instance_id: str = ""
    from_nic: int = -1
    to_nic: int = -1
    duration: float = 0.0

    def describe(self) -> str:
        return (
            f"migration-start {self.instance_id} "
            f"nic{self.from_nic}->nic{self.to_nic} ({self.duration:g}s)"
        )


@dataclass(frozen=True)
class RebalanceTimer(Event):
    """Periodic rebalancing decision point (epoch phase 3)."""

    priority: ClassVar[int] = 4

    def describe(self) -> str:
        return "rebalance-timer"


@dataclass(frozen=True)
class Arrival(Event):
    """A new service arrives and must be placed (epoch phase 4)."""

    priority: ClassVar[int] = 5

    request: ServiceRequest = field(default=None)  # type: ignore[assignment]

    def describe(self) -> str:
        return f"arrival {self.request.instance_id} nf={self.request.nf_name}"


@dataclass(frozen=True)
class Probe(Event):
    """Scheduled scoring observation point (epoch phase 5)."""

    priority: ClassVar[int] = 6

    def describe(self) -> str:
        return "probe"


#: Every concrete event type, in priority order.
EVENT_TYPES: tuple[type[Event], ...] = (
    NicRestore,
    PodRestore,
    PodFail,
    NicFail,
    Departure,
    TrafficChange,
    MigrationComplete,
    MigrationStart,
    RebalanceTimer,
    Arrival,
    Probe,
)


class EventQueue:
    """Min-heap of events under the stable ``(time, priority, seq)`` order.

    ``seq`` (a monotone insertion counter) guarantees the heap never
    compares two :class:`Event` objects directly, so ties are FIFO in
    scheduling order and the pop sequence is a pure function of the
    pushes — the foundation of the event engine's byte-determinism.
    """

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, int, Event]] = []
        # A plain int, not itertools.count: the queue must pickle for
        # engine checkpoints, and a resumed queue must keep counting
        # where it left off.
        self._seq = 0

    def push(self, event: Event) -> None:
        heapq.heappush(
            self._heap, (event.time, event.priority, self._seq, event)
        )
        self._seq += 1

    def pop(self) -> Event:
        return heapq.heappop(self._heap)[-1]

    def peek(self) -> Event:
        return self._heap[0][-1]

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)


@dataclass(frozen=True)
class EventConfig:
    """Continuous-time knobs of the :class:`~repro.fleet.engine.EventEngine`.

    The defaults enable the continuous behaviours (sub-epoch arrival
    times, observation of off-grid change points); the
    :meth:`epoch_equivalent` preset quantizes everything back onto the
    epoch grid, under which the event engine must reproduce the epoch
    engine's reports byte-identically.
    """

    #: Snap Poisson arrival times to their epoch boundary.
    quantize_arrivals: bool = False
    #: Seconds a migration keeps the service resident on *both* NICs
    #: (0 = instantaneous, the epoch engine's free-migration model).
    migration_duration: float = 0.0
    #: Seconds a migration that crosses a *pod* boundary takes instead
    #: of ``migration_duration`` (state transfer over the fabric costs
    #: more than within a pod); ``None`` = no distinction.
    cross_pod_migration_duration: float | None = None
    #: Seconds a freshly provisioned NIC delivers zero throughput.
    spinup_latency: float = 0.0
    #: Seconds between scheduled scoring probes (grid starts at t=0).
    probe_period: float = 1.0
    #: Seconds between rebalancing decision points (grid starts at t=0).
    rebalance_period: float = 1.0
    #: Score at off-grid timestamps where cluster state changed (extra
    #: observation points between probes; never duplicates a probe).
    observe_changes: bool = True

    def __post_init__(self) -> None:
        if self.migration_duration < 0.0:
            raise ConfigurationError("migration_duration must be >= 0")
        if (
            self.cross_pod_migration_duration is not None
            and self.cross_pod_migration_duration < 0.0
        ):
            raise ConfigurationError(
                "cross_pod_migration_duration must be >= 0"
            )
        if self.spinup_latency < 0.0:
            raise ConfigurationError("spinup_latency must be >= 0")
        if self.probe_period <= 0.0:
            raise ConfigurationError("probe_period must be > 0")
        if self.rebalance_period <= 0.0:
            raise ConfigurationError("rebalance_period must be > 0")

    @classmethod
    def epoch_equivalent(cls) -> "EventConfig":
        """The quantized preset under which the event engine must equal
        the epoch engine byte for byte."""
        return cls(
            quantize_arrivals=True,
            migration_duration=0.0,
            spinup_latency=0.0,
            probe_period=1.0,
            rebalance_period=1.0,
        )


__all__ = [
    "Arrival",
    "Departure",
    "EVENT_TYPES",
    "Event",
    "EventConfig",
    "EventQueue",
    "MigrationComplete",
    "MigrationStart",
    "NicFail",
    "NicRestore",
    "PodFail",
    "PodRestore",
    "Probe",
    "RebalanceTimer",
    "TrafficChange",
]
