"""Seeded dynamic traffic generators for the fleet simulator.

A :class:`TrafficTrace` maps an epoch index to the
:class:`~repro.traffic.profile.TrafficProfile` one service offers in
that epoch. Traces are *pure functions* of ``(kind, base, seed,
params, epoch)`` — no mutable state — so a trajectory is bit-identical
however often or in whatever order epochs are evaluated, which is what
lets the engine's batched epoch scoring and its looped reference twin
see exactly the same traffic.

Kinds:

- ``static`` — the base profile every epoch;
- ``diurnal`` — sinusoidal day/night swing of flow count and MTBR with
  a seeded phase (the classic ISP load curve);
- ``burst`` — base profile with seeded short bursts that multiply the
  flow count (microburst-heavy services);
- ``flash_crowd`` — one seeded onset epoch after which flow count jumps
  and then decays geometrically back towards the base (flash-crowd /
  breaking-news shape);
- ``random_walk`` — multiplicative random walk over flow count and
  MTBR (slowly wandering tenants).

All generated profiles are clamped to the library's admissible
attribute ranges.

**Continuous time.** :meth:`TrafficTrace.profile_at` accepts *float*
times so the event engine can evaluate traffic between epoch
boundaries. Seed-driven kinds (``burst``, ``random_walk``) derive their
per-epoch streams from ``floor(t)`` as a plain ``int``, which makes
``profile_at(3)`` and ``profile_at(3.0)`` bit-identical — the property
the epoch-equivalence contract of the event engine rests on. ``diurnal``
and ``flash_crowd`` are continuous formulas of ``t`` that coincide with
the historical integer-epoch values on the grid. A trace also exposes
its *change points* (:meth:`TrafficTrace.next_change_after`): the times
at which the offered profile is re-evaluated — every integer for the
dynamic kinds, plus the flash-crowd onset, which may sit mid-epoch when
``onset_time`` is given (the scenario the epoch clock cannot see).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.rng import SeedLike, derive_seed, make_rng, normalize_seed
from repro.traffic.profile import HEADER_BYTES, TrafficProfile

#: Trace kinds the fleet can draw from.
TRACE_KINDS: tuple[str, ...] = (
    "static",
    "diurnal",
    "burst",
    "flash_crowd",
    "random_walk",
)

_MAX_FLOWS = 500_000
_MAX_MTBR = 1100.0


def _clamped(base: TrafficProfile, flow_mult: float, mtbr_mult: float) -> TrafficProfile:
    """Scale flow count / MTBR of ``base`` and clamp to admissible ranges."""
    flows = int(round(base.flow_count * flow_mult))
    flows = max(1, min(_MAX_FLOWS, flows))
    mtbr = min(_MAX_MTBR, max(0.0, base.mtbr * mtbr_mult))
    profile = base.with_attribute("flow_count", flows)
    return profile.with_attribute("mtbr", mtbr)


@dataclass(frozen=True)
class TrafficTrace:
    """One service's deterministic traffic trajectory."""

    kind: str
    base: TrafficProfile = field(default_factory=TrafficProfile)
    seed: int = 0
    #: diurnal period in epochs (a "day").
    period: int = 24
    #: relative swing of the diurnal sine / walk step scale.
    amplitude: float = 0.5
    #: per-epoch burst probability (``burst`` kind).
    burst_probability: float = 0.15
    #: flow-count multiplier applied during a burst / at flash onset.
    surge_factor: float = 4.0
    #: geometric decay of the flash-crowd surge per epoch.
    decay: float = 0.7
    #: explicit flash-crowd onset time (may be mid-epoch); ``None``
    #: draws the historical seeded integer onset in ``[1, period)``.
    onset_time: float | None = None

    def __post_init__(self) -> None:
        if self.kind not in TRACE_KINDS:
            raise ConfigurationError(
                f"unknown trace kind {self.kind!r}; known: {TRACE_KINDS}"
            )
        if self.period < 2:
            raise ConfigurationError("period must be >= 2 epochs")
        if not 0.0 <= self.amplitude < 1.0:
            raise ConfigurationError("amplitude must be in [0, 1)")
        if not 0.0 <= self.burst_probability <= 1.0:
            raise ConfigurationError("burst_probability must be in [0, 1]")
        if self.surge_factor < 1.0:
            raise ConfigurationError("surge_factor must be >= 1")
        if not 0.0 < self.decay < 1.0:
            raise ConfigurationError("decay must be in (0, 1)")
        if self.onset_time is not None and self.onset_time <= 0.0:
            raise ConfigurationError("onset_time must be > 0")

    # ------------------------------------------------------------------
    # The seed-derived constants below (flash onset, diurnal phase) are
    # drawn once and cached on the instance: at datacenter scale the
    # engine evaluates tens of thousands of traces per epoch, and
    # rebuilding a Generator per call dominates the actual trigonometry.
    # The cached value is exactly the historical draw, so every profile
    # stays bit-identical. (frozen dataclass => object.__setattr__.)
    def _onset(self) -> float:
        """Flash-crowd onset time (explicit, or the seeded epoch draw)."""
        if self.onset_time is not None:
            return self.onset_time
        cached = self.__dict__.get("_onset_cache")
        if cached is None:
            cached = int(
                make_rng(derive_seed(self.seed, "onset")).integers(
                    1, self.period
                )
            )
            object.__setattr__(self, "_onset_cache", cached)
        return cached

    def _phase(self) -> float:
        """Diurnal phase offset in ``[0, 1)`` (seeded, per-trace)."""
        cached = self.__dict__.get("_phase_cache")
        if cached is None:
            cached = float(
                make_rng(derive_seed(self.seed, "phase")).uniform(0.0, 1.0)
            )
            object.__setattr__(self, "_phase_cache", cached)
        return cached

    def profile_at(self, t: float) -> TrafficProfile:
        """Traffic profile this trace offers at time ``t`` (pure).

        ``t`` may be a float (continuous time, one epoch = one second);
        integer and float representations of the same epoch yield
        bit-identical profiles, so the event engine's continuous clock
        and the epoch engine's integer clock agree on the grid.
        """
        if t < 0:
            raise ConfigurationError("epoch must be >= 0")
        # Seed streams of the discrete kinds hash the *int* epoch, so
        # profile_at(3) == profile_at(3.0) to the last bit.
        epoch = int(math.floor(t))
        if self.kind == "static":
            return self.base
        if self.kind == "diurnal":
            phase = self._phase()
            # t % period keeps the trace *exactly* periodic (no float
            # drift from ever-growing angles); continuous in t.
            angle = 2.0 * math.pi * ((t % self.period) / self.period + phase)
            swing = 1.0 + self.amplitude * math.sin(angle)
            return _clamped(self.base, swing, swing)
        if self.kind == "burst":
            rng = make_rng(derive_seed(self.seed, "burst", epoch))
            if rng.random() < self.burst_probability:
                return _clamped(self.base, self.surge_factor, 1.0)
            return self.base
        if self.kind == "flash_crowd":
            onset = self._onset()
            if t < onset:
                return self.base
            surge = 1.0 + (self.surge_factor - 1.0) * self.decay ** (t - onset)
            return _clamped(self.base, surge, 1.0)
        # random_walk: cumulative product of seeded per-epoch steps. The
        # walk is reconstructed from epoch 0 so evaluation stays pure;
        # epochs are small integers, so the O(epoch) replay is cheap.
        log_flow = log_mtbr = 0.0
        step = 0.35 * self.amplitude
        for walk_epoch in range(1, epoch + 1):
            rng = make_rng(derive_seed(self.seed, "walk", walk_epoch))
            log_flow += step * float(rng.standard_normal())
            log_mtbr += step * float(rng.standard_normal())
        return _clamped(self.base, math.exp(log_flow), math.exp(log_mtbr))

    def next_change_after(self, t: float) -> float | None:
        """Next time ``> t`` at which the offered profile is re-evaluated.

        ``None`` means the profile never changes again (``static``). The
        dynamic kinds re-evaluate at every epoch boundary; a flash crowd
        additionally changes at its (possibly mid-epoch) onset. The
        event engine chains :class:`~repro.fleet.events.TrafficChange`
        events through this method, so a trace whose onset sits between
        two integers is observed exactly at that instant — the scenario
        the epoch clock quantizes away.
        """
        if t < 0:
            raise ConfigurationError("epoch must be >= 0")
        if self.kind == "static":
            return None
        next_boundary = float(math.floor(t) + 1)
        if self.kind == "flash_crowd":
            onset = float(self._onset())
            if t < onset < next_boundary:
                return onset
        return next_boundary


def make_trace(
    kind: str,
    base: TrafficProfile | None = None,
    seed: SeedLike = None,
    **params,
) -> TrafficTrace:
    """Build a trace of ``kind`` with a normalised integer seed."""
    normalised = normalize_seed(seed)
    return TrafficTrace(
        kind=kind,
        base=base if base is not None else TrafficProfile(),
        seed=normalised if normalised is not None else 0,
        **params,
    )


def random_trace(
    seed: SeedLike = None,
    kinds: tuple[str, ...] = TRACE_KINDS,
    base: TrafficProfile | None = None,
) -> TrafficTrace:
    """Draw a random trace: kind, base profile perturbation and params.

    The churn process uses this to give every arriving service its own
    traffic personality. Deterministic in ``seed``.
    """
    rng = make_rng(seed)
    kind = str(rng.choice(kinds))
    if base is None:
        flows = int(rng.integers(2_000, 120_000))
        packet = int(rng.integers(HEADER_BYTES + 10, 1500))
        mtbr = float(rng.uniform(50.0, 900.0))
        base = TrafficProfile(flows, packet, mtbr)
    return TrafficTrace(
        kind=kind,
        base=base,
        seed=int(rng.integers(0, 2**63 - 1)),
        period=int(rng.integers(8, 32)),
        amplitude=float(rng.uniform(0.2, 0.7)),
        burst_probability=float(rng.uniform(0.05, 0.3)),
        surge_factor=float(rng.uniform(2.0, 6.0)),
        decay=float(rng.uniform(0.5, 0.85)),
    )
