"""Fleet state: SmartNICs, resident services, migration bookkeeping.

A :class:`Cluster` tracks which service instance runs on which NIC of a
homogeneous SmartNIC pool. NICs are spun up on demand (placement onto
``nic_id=None``), retire automatically when their last resident leaves,
and every migration is appended to an ordered log so a trajectory can
be replayed and compared bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import PlacementError
from repro.fleet.churn import ServiceRequest
from repro.nic.spec import NicSpecification
from repro.traffic.profile import TrafficProfile

#: Cores every NF instance occupies (the paper gives each NF two).
CORES_PER_NF = 2


@dataclass
class ServiceInstance:
    """A placed service: its request plus the current epoch's traffic.

    Exposes ``nf_name`` / ``traffic`` / ``sla_drop_fraction`` so the
    shared strategy predicates (:mod:`repro.fleet.policies`) treat fleet
    residents and one-shot :class:`~repro.usecases.scheduling.NfArrival`
    objects uniformly.
    """

    request: ServiceRequest
    traffic: TrafficProfile

    @property
    def instance_id(self) -> str:
        return self.request.instance_id

    @property
    def nf_name(self) -> str:
        return self.request.nf_name

    @property
    def sla_drop_fraction(self) -> float:
        return self.request.sla_drop_fraction


@dataclass
class FleetNic:
    """One SmartNIC of the fleet and its resident services."""

    nic_id: int
    residents: list[ServiceInstance] = field(default_factory=list)

    def cores_used(self) -> int:
        return CORES_PER_NF * len(self.residents)


@dataclass(frozen=True)
class MigrationRecord:
    """One service move between NICs (``from_nic is None`` = placement)."""

    epoch: int
    instance_id: str
    from_nic: int
    to_nic: int
    reason: str


class Cluster:
    """Mutable fleet state with deterministic bookkeeping."""

    def __init__(self, spec: NicSpecification) -> None:
        self._spec = spec
        self._nics: list[FleetNic] = []
        self._next_nic_id = 0
        self._by_instance: dict[str, FleetNic] = {}
        self.migration_log: list[MigrationRecord] = []
        self.total_placements = 0
        self.total_departures = 0

    @property
    def spec(self) -> NicSpecification:
        return self._spec

    @property
    def max_residents_per_nic(self) -> int:
        return self._spec.num_cores // CORES_PER_NF

    @property
    def nics(self) -> list[FleetNic]:
        """Active (non-empty) NICs in spin-up order."""
        return list(self._nics)

    @property
    def nics_used(self) -> int:
        return len(self._nics)

    @property
    def services(self) -> list[ServiceInstance]:
        """All residents in (NIC spin-up, placement) order."""
        return [r for nic in self._nics for r in nic.residents]

    def nic_of(self, instance_id: str) -> FleetNic:
        try:
            return self._by_instance[instance_id]
        except KeyError:
            raise PlacementError(f"unknown instance {instance_id!r}") from None

    # ------------------------------------------------------------------
    def place(self, instance: ServiceInstance, nic_id: int | None = None) -> int:
        """Place ``instance`` on NIC ``nic_id`` (``None`` = a new NIC)."""
        if instance.instance_id in self._by_instance:
            raise PlacementError(f"{instance.instance_id!r} is already placed")
        if nic_id is None:
            nic = FleetNic(nic_id=self._next_nic_id)
            self._next_nic_id += 1
            self._nics.append(nic)
        else:
            nic = self._find(nic_id)
            if len(nic.residents) >= self.max_residents_per_nic:
                raise PlacementError(f"NIC {nic_id} is full")
        nic.residents.append(instance)
        self._by_instance[instance.instance_id] = nic
        self.total_placements += 1
        return nic.nic_id

    def remove(self, instance_id: str) -> None:
        """Remove a departing service; retire the NIC if now empty."""
        nic = self.nic_of(instance_id)
        nic.residents = [
            r for r in nic.residents if r.instance_id != instance_id
        ]
        del self._by_instance[instance_id]
        self.total_departures += 1
        if not nic.residents:
            self._nics.remove(nic)

    def migrate(
        self,
        instance_id: str,
        to_nic_id: int | None,
        epoch: int,
        reason: str = "rebalance",
    ) -> int:
        """Move a service to another (or a fresh) NIC and log the move."""
        source = self.nic_of(instance_id)
        if to_nic_id == source.nic_id:
            raise PlacementError("migration target is the current NIC")
        if to_nic_id is not None:
            target = self._find(to_nic_id)
            if len(target.residents) >= self.max_residents_per_nic:
                raise PlacementError(f"NIC {to_nic_id} is full")
        instance = next(
            r for r in source.residents if r.instance_id == instance_id
        )
        source.residents = [
            r for r in source.residents if r.instance_id != instance_id
        ]
        del self._by_instance[instance_id]
        if not source.residents:
            self._nics.remove(source)
        placed_on = self.place(instance, to_nic_id)
        self.total_placements -= 1  # a move, not a new placement
        self.migration_log.append(
            MigrationRecord(
                epoch=epoch,
                instance_id=instance_id,
                from_nic=source.nic_id,
                to_nic=placed_on,
                reason=reason,
            )
        )
        return placed_on

    # ------------------------------------------------------------------
    def _find(self, nic_id: int) -> FleetNic:
        for nic in self._nics:
            if nic.nic_id == nic_id:
                return nic
        raise PlacementError(f"unknown NIC {nic_id}")
