"""Fleet state: SmartNICs, resident services, migration bookkeeping.

A :class:`Cluster` tracks which service instance runs on which NIC of a
SmartNIC pool. NICs are spun up on demand (placement onto
``nic_id=None``), retire automatically when their last resident leaves,
and every migration is appended to an ordered log so a trajectory can
be replayed and compared bit-for-bit.

Pools may be **heterogeneous**: a :class:`NicProvisioner` decides which
registered hardware target each newly spun-up NIC instantiates — a pure
function of ``(seed, spin-up ordinal)``, so a mixed
BlueField-2/Pensando fleet provisions the identical NIC sequence on
every run regardless of how churn interleaves placements. Constructing
a cluster from a bare :class:`NicSpecification` keeps the historical
homogeneous behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError, PlacementError
from repro.fleet.churn import ServiceRequest
from repro.nic.spec import NicSpecification, get_spec
from repro.rng import derive_seed, make_rng
from repro.traffic.profile import TrafficProfile

#: Cores every NF instance occupies (the paper gives each NF two).
CORES_PER_NF = 2


def parse_nic_mix(text: str) -> dict[str, float]:
    """Parse a ``--nic-mix`` string into ``{target: weight}``.

    ``"bluefield2=0.7,pensando=0.3"`` — weights are relative (they need
    not sum to 1); a bare target name means weight 1. Target names must
    be registered (:func:`repro.nic.spec.get_spec`).
    """
    mix: dict[str, float] = {}
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        name, sep, weight_text = part.partition("=")
        name = name.strip()
        try:
            # A bare name means weight 1; a '=' with nothing after it
            # is a typo, not a default.
            weight = float(weight_text) if sep else 1.0
        except ValueError:
            raise ConfigurationError(
                f"bad nic-mix weight in {part!r}"
            ) from None
        if weight <= 0:
            raise ConfigurationError(f"nic-mix weight must be > 0 in {part!r}")
        if name in mix:
            raise ConfigurationError(f"duplicate nic-mix target {name!r}")
        get_spec(name)  # validates the target exists
        mix[name] = weight
    if not mix:
        raise ConfigurationError("nic-mix must name at least one target")
    return mix


class NicProvisioner:
    """Seeded hardware-target source for newly provisioned NICs.

    The spec of the ``n``-th NIC a cluster ever spins up is a pure
    function of ``(seed, n)``: a weighted draw over the mix for
    heterogeneous pools, constant for single-target pools.
    """

    def __init__(
        self,
        mix: dict[str, float],
        seed: int = 0,
        _specs: dict[str, NicSpecification] | None = None,
    ) -> None:
        if not mix:
            raise ConfigurationError("provisioner mix must be non-empty")
        # ``_specs`` lets :meth:`constant` supply an (possibly
        # unregistered) spec object directly; everyone else resolves
        # through the target registry.
        self._specs = (
            _specs if _specs is not None
            else {name: get_spec(name) for name in mix}
        )
        total = float(sum(mix.values()))
        if total <= 0:
            raise ConfigurationError("provisioner mix weights must be > 0")
        self._mix = tuple((name, weight / total) for name, weight in mix.items())
        self._names = tuple(name for name, _ in self._mix)
        self._weights = [weight for _, weight in self._mix]
        self._seed = seed

    @classmethod
    def constant(cls, spec: NicSpecification) -> "NicProvisioner":
        """A homogeneous pool of ``spec`` (which may be unregistered)."""
        return cls({spec.name: 1.0}, seed=0, _specs={spec.name: spec})

    @property
    def mix(self) -> tuple[tuple[str, float], ...]:
        """Normalised ``(target, weight)`` pairs, in declaration order."""
        return self._mix

    @property
    def target_names(self) -> tuple[str, ...]:
        return self._names

    def spec_of(self, target: str) -> NicSpecification:
        try:
            return self._specs[target]
        except KeyError:
            raise ConfigurationError(
                f"target {target!r} is not in the pool mix {self._names}"
            ) from None

    def spec_for(self, ordinal: int) -> NicSpecification:
        """Spec of the ``ordinal``-th provisioned NIC (pure function)."""
        if len(self._names) == 1:
            return self._specs[self._names[0]]
        rng = make_rng(derive_seed(self._seed, "nic-spec", ordinal))
        index = int(rng.choice(len(self._names), p=self._weights))
        return self._specs[self._names[index]]


@dataclass
class ServiceInstance:
    """A placed service: its request plus the current epoch's traffic.

    Exposes ``nf_name`` / ``traffic`` / ``sla_drop_fraction`` so the
    shared strategy predicates (:mod:`repro.fleet.policies`) treat fleet
    residents and one-shot :class:`~repro.usecases.scheduling.NfArrival`
    objects uniformly.
    """

    request: ServiceRequest
    traffic: TrafficProfile

    @property
    def instance_id(self) -> str:
        return self.request.instance_id

    @property
    def nf_name(self) -> str:
        return self.request.nf_name

    @property
    def sla_drop_fraction(self) -> float:
        return self.request.sla_drop_fraction


@dataclass
class FleetNic:
    """One SmartNIC of the fleet and its resident services."""

    nic_id: int
    spec: NicSpecification
    residents: list[ServiceInstance] = field(default_factory=list)

    @property
    def target(self) -> str:
        """Hardware target name of this NIC (its spec's name)."""
        return self.spec.name

    @property
    def max_residents(self) -> int:
        return self.spec.num_cores // CORES_PER_NF

    def cores_used(self) -> int:
        return CORES_PER_NF * len(self.residents)


@dataclass(frozen=True)
class MigrationRecord:
    """One service move between NICs (``from_nic is None`` = placement)."""

    epoch: int
    instance_id: str
    from_nic: int
    to_nic: int
    reason: str


class Cluster:
    """Mutable fleet state with deterministic bookkeeping."""

    def __init__(self, pool: NicSpecification | NicProvisioner) -> None:
        if isinstance(pool, NicSpecification):
            pool = NicProvisioner.constant(pool)
        self._provisioner = pool
        self._nics: list[FleetNic] = []
        self._next_nic_id = 0
        self._by_instance: dict[str, FleetNic] = {}
        self.migration_log: list[MigrationRecord] = []
        self.total_placements = 0
        self.total_departures = 0

    @property
    def provisioner(self) -> NicProvisioner:
        return self._provisioner

    @property
    def spec(self) -> NicSpecification:
        """The pool's primary spec (first mix entry; the only one for
        homogeneous pools)."""
        return self._provisioner.spec_of(self._provisioner.target_names[0])

    @property
    def max_residents_per_nic(self) -> int:
        """Capacity of the roomiest target in the pool mix.

        Per-NIC capacity lives on :attr:`FleetNic.max_residents`; this
        pool-level bound feeds the wastage baseline (the fewest NICs any
        packing could use assumes best-case hardware).
        """
        return max(
            self._provisioner.spec_of(name).num_cores // CORES_PER_NF
            for name in self._provisioner.target_names
        )

    @property
    def nics(self) -> list[FleetNic]:
        """Active (non-empty) NICs in spin-up order."""
        return list(self._nics)

    @property
    def nics_used(self) -> int:
        return len(self._nics)

    @property
    def services(self) -> list[ServiceInstance]:
        """All residents in (NIC spin-up, placement) order."""
        return [r for nic in self._nics for r in nic.residents]

    def nic_of(self, instance_id: str) -> FleetNic:
        try:
            return self._by_instance[instance_id]
        except KeyError:
            raise PlacementError(f"unknown instance {instance_id!r}") from None

    # ------------------------------------------------------------------
    def place(self, instance: ServiceInstance, nic_id: int | None = None) -> int:
        """Place ``instance`` on NIC ``nic_id`` (``None`` = a new NIC)."""
        if instance.instance_id in self._by_instance:
            raise PlacementError(f"{instance.instance_id!r} is already placed")
        if nic_id is None:
            nic = FleetNic(
                nic_id=self._next_nic_id,
                spec=self._provisioner.spec_for(self._next_nic_id),
            )
            self._next_nic_id += 1
            self._nics.append(nic)
        else:
            nic = self._find(nic_id)
            if len(nic.residents) >= nic.max_residents:
                raise PlacementError(f"NIC {nic_id} is full")
        nic.residents.append(instance)
        self._by_instance[instance.instance_id] = nic
        self.total_placements += 1
        return nic.nic_id

    def remove(self, instance_id: str) -> None:
        """Remove a departing service; retire the NIC if now empty."""
        nic = self.nic_of(instance_id)
        nic.residents = [
            r for r in nic.residents if r.instance_id != instance_id
        ]
        del self._by_instance[instance_id]
        self.total_departures += 1
        if not nic.residents:
            self._nics.remove(nic)

    def migrate(
        self,
        instance_id: str,
        to_nic_id: int | None,
        epoch: int,
        reason: str = "rebalance",
    ) -> int:
        """Move a service to another (or a fresh) NIC and log the move."""
        source = self.nic_of(instance_id)
        if to_nic_id == source.nic_id:
            raise PlacementError("migration target is the current NIC")
        if to_nic_id is not None:
            target = self._find(to_nic_id)
            if len(target.residents) >= target.max_residents:
                raise PlacementError(f"NIC {to_nic_id} is full")
        instance = next(
            r for r in source.residents if r.instance_id == instance_id
        )
        source.residents = [
            r for r in source.residents if r.instance_id != instance_id
        ]
        del self._by_instance[instance_id]
        if not source.residents:
            self._nics.remove(source)
        placed_on = self.place(instance, to_nic_id)
        self.total_placements -= 1  # a move, not a new placement
        self.migration_log.append(
            MigrationRecord(
                epoch=epoch,
                instance_id=instance_id,
                from_nic=source.nic_id,
                to_nic=placed_on,
                reason=reason,
            )
        )
        return placed_on

    # ------------------------------------------------------------------
    def _find(self, nic_id: int) -> FleetNic:
        for nic in self._nics:
            if nic.nic_id == nic_id:
                return nic
        raise PlacementError(f"unknown NIC {nic_id}")
