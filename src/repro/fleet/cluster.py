"""Fleet state: SmartNICs, resident services, migration bookkeeping.

A :class:`Cluster` tracks which service instance runs on which NIC of a
SmartNIC pool. NICs are spun up on demand (placement onto
``nic_id=None``), retire automatically when their last resident leaves,
and every migration is appended to an ordered log so a trajectory can
be replayed and compared bit-for-bit.

Pools may be **heterogeneous**: a :class:`NicProvisioner` decides which
registered hardware target each newly spun-up NIC instantiates — a pure
function of ``(seed, spin-up ordinal)``, so a mixed
BlueField-2/Pensando fleet provisions the identical NIC sequence on
every run regardless of how churn interleaves placements. Constructing
a cluster from a bare :class:`NicSpecification` keeps the historical
homogeneous behaviour.

**Continuous time.** For the event engine the cluster also models the
two costs the epoch world treats as free:

- *Timed migrations* — with ``migration_duration > 0`` a
  :meth:`Cluster.migrate` call begins an in-flight move: the service
  stays **resident on both NICs** (it contends for cores, memory and
  accelerators on source *and* destination — state transfer is not
  free) until :meth:`complete_migration` lands it, ``duration`` seconds
  later. The engine drains :meth:`take_pending_migrations` after every
  policy hook to schedule the completion events. Its home NIC (the one
  serving its traffic) remains the source until completion.
- *Spin-up latency* — a NIC provisioned at ``now`` is only
  ``ready_at = now + spinup_latency``; before that its residents
  deliver zero throughput (they are booting, and score as full drops).

Both default to zero, under which every code path is bit-identical to
the historical instantaneous model the epoch engine runs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.errors import ConfigurationError, PlacementError
from repro.fleet.churn import ServiceRequest
from repro.fleet.topology import Topology
from repro.nic.spec import NicSpecification, get_spec
from repro.rng import derive_seed, make_rng
from repro.traffic.profile import TrafficProfile

#: Cores every NF instance occupies (the paper gives each NF two).
CORES_PER_NF = 2


def parse_nic_mix(text: str) -> dict[str, float]:
    """Parse a ``--nic-mix`` string into ``{target: weight}``.

    ``"bluefield2=0.7,pensando=0.3"`` — weights are relative (they need
    not sum to 1); a bare target name means weight 1. Target names must
    be registered (:func:`repro.nic.spec.get_spec`).
    """
    mix: dict[str, float] = {}
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        name, sep, weight_text = part.partition("=")
        name = name.strip()
        try:
            # A bare name means weight 1; a '=' with nothing after it
            # is a typo, not a default.
            weight = float(weight_text) if sep else 1.0
        except ValueError:
            raise ConfigurationError(
                f"bad nic-mix weight in {part!r}"
            ) from None
        if weight <= 0:
            raise ConfigurationError(f"nic-mix weight must be > 0 in {part!r}")
        if name in mix:
            raise ConfigurationError(f"duplicate nic-mix target {name!r}")
        get_spec(name)  # validates the target exists
        mix[name] = weight
    if not mix:
        raise ConfigurationError("nic-mix must name at least one target")
    return mix


class NicProvisioner:
    """Seeded hardware-target source for newly provisioned NICs.

    The spec of the ``n``-th NIC a cluster ever spins up is a pure
    function of ``(seed, n)``: a weighted draw over the mix for
    heterogeneous pools, constant for single-target pools.
    """

    def __init__(
        self,
        mix: dict[str, float],
        seed: int = 0,
        _specs: dict[str, NicSpecification] | None = None,
    ) -> None:
        if not mix:
            raise ConfigurationError("provisioner mix must be non-empty")
        # ``_specs`` lets :meth:`constant` supply an (possibly
        # unregistered) spec object directly; everyone else resolves
        # through the target registry.
        self._specs = (
            _specs if _specs is not None
            else {name: get_spec(name) for name in mix}
        )
        total = float(sum(mix.values()))
        if total <= 0:
            raise ConfigurationError("provisioner mix weights must be > 0")
        self._mix = tuple((name, weight / total) for name, weight in mix.items())
        self._names = tuple(name for name, _ in self._mix)
        self._weights = [weight for _, weight in self._mix]
        self._seed = seed

    @classmethod
    def constant(cls, spec: NicSpecification) -> "NicProvisioner":
        """A homogeneous pool of ``spec`` (which may be unregistered)."""
        return cls({spec.name: 1.0}, seed=0, _specs={spec.name: spec})

    @property
    def mix(self) -> tuple[tuple[str, float], ...]:
        """Normalised ``(target, weight)`` pairs, in declaration order."""
        return self._mix

    @property
    def target_names(self) -> tuple[str, ...]:
        return self._names

    def spec_of(self, target: str) -> NicSpecification:
        try:
            return self._specs[target]
        except KeyError:
            raise ConfigurationError(
                f"target {target!r} is not in the pool mix {self._names}"
            ) from None

    def spec_for(self, ordinal: int) -> NicSpecification:
        """Spec of the ``ordinal``-th provisioned NIC (pure function)."""
        if len(self._names) == 1:
            return self._specs[self._names[0]]
        rng = make_rng(derive_seed(self._seed, "nic-spec", ordinal))
        index = int(rng.choice(len(self._names), p=self._weights))
        return self._specs[self._names[index]]


@dataclass
class ServiceInstance:
    """A placed service: its request plus the current epoch's traffic.

    Exposes ``nf_name`` / ``traffic`` / ``sla_drop_fraction`` so the
    shared strategy predicates (:mod:`repro.fleet.policies`) treat fleet
    residents and one-shot :class:`~repro.usecases.scheduling.NfArrival`
    objects uniformly.
    """

    request: ServiceRequest
    traffic: TrafficProfile

    @property
    def instance_id(self) -> str:
        return self.request.instance_id

    @property
    def nf_name(self) -> str:
        return self.request.nf_name

    @property
    def sla_drop_fraction(self) -> float:
        return self.request.sla_drop_fraction


@dataclass
class FleetNic:
    """One SmartNIC of the fleet and its resident services."""

    nic_id: int
    spec: NicSpecification
    residents: list[ServiceInstance] = field(default_factory=list)
    #: Time this NIC finishes booting (0.0 = ready since the start;
    #: residents of a not-yet-ready NIC deliver zero throughput).
    ready_at: float = 0.0
    #: Time this NIC was provisioned (fault onsets are relative to it).
    spun_up_at: float = 0.0
    #: Usable fraction of the hardware (1.0 = healthy; a degraded NIC
    #: hosts fewer services and delivers proportionally less
    #: throughput until its repair restores it).
    capacity_fraction: float = 1.0

    @property
    def target(self) -> str:
        """Hardware target name of this NIC (its spec's name)."""
        return self.spec.name

    @property
    def is_degraded(self) -> bool:
        return self.capacity_fraction != 1.0

    @property
    def max_residents(self) -> int:
        if self.capacity_fraction != 1.0:
            return (
                int(self.spec.num_cores * self.capacity_fraction)
                // CORES_PER_NF
            )
        return self.spec.num_cores // CORES_PER_NF

    def cores_used(self) -> int:
        return CORES_PER_NF * len(self.residents)


@dataclass(frozen=True)
class MigrationRecord:
    """One service move between NICs (``from_nic is None`` = placement)."""

    epoch: int
    instance_id: str
    from_nic: int
    to_nic: int
    reason: str


@dataclass
class EvictedService:
    """A service a fault pushed off its NIC, awaiting re-placement."""

    instance: ServiceInstance
    from_nic: int
    evicted_at: float


@dataclass(frozen=True)
class ReplacementRecord:
    """One drained re-placement: an evicted service landing again."""

    instance_id: str
    from_nic: int
    to_nic: int
    evicted_at: float
    replaced_at: float


@dataclass(frozen=True)
class TimedMigration:
    """A migration with real duration: in flight over [start, end)."""

    instance_id: str
    from_nic: int
    to_nic: int
    start_time: float
    end_time: float
    reason: str

    @property
    def duration(self) -> float:
        return self.end_time - self.start_time


class Cluster:
    """Mutable fleet state with deterministic bookkeeping."""

    def __init__(
        self,
        pool: NicSpecification | NicProvisioner,
        topology: Topology | None = None,
    ) -> None:
        if isinstance(pool, NicSpecification):
            pool = NicProvisioner.constant(pool)
        self._provisioner = pool
        self._topology = topology if topology is not None else Topology()
        self._nics: list[FleetNic] = []
        # Id index over the *active* list above: datacenter-scale
        # fleets (the sharded-scoring benchmark runs 5k NICs) make a
        # linear scan per placement the bottleneck.
        self._nic_index: dict[int, FleetNic] = {}
        self._next_nic_id = 0
        self._by_instance: dict[str, FleetNic] = {}
        self.migration_log: list[MigrationRecord] = []
        self.total_placements = 0
        self.total_departures = 0
        # Continuous-time state (all inert at their defaults — the
        # epoch engine never touches them).
        self.now: float = 0.0
        self.migration_duration: float = 0.0
        #: When set, a migration that crosses a pod boundary takes this
        #: long instead of ``migration_duration`` (state transfer over
        #: the fabric vs within a pod); ``None`` means no distinction.
        self.cross_pod_migration_duration: float | None = None
        self.spinup_latency: float = 0.0
        self.total_migrations_started = 0
        self.migrations_cancelled = 0
        self.timed_migrations: list[TimedMigration] = []
        self._in_flight: dict[str, TimedMigration] = {}
        self._pending_migrations: list[TimedMigration] = []
        # Fault state (all inert until a fault schedule drives it).
        #: Re-placement queue: services evicted by faults, in eviction
        #: order (the order policies drain them in).
        self.evicted: list[EvictedService] = []
        self._evicted_ids: set[str] = set()
        #: Pods currently in outage (spin-ups there are refused).
        self.down_pods: set[int] = set()
        self._failed_nic_ids: set[int] = set()
        #: Drained re-placements (the faults report section).
        self.replacements: list[ReplacementRecord] = []
        self.nics_failed = 0
        self.nics_degraded = 0
        self.nics_restored = 0
        self.pods_failed = 0
        self.pods_restored = 0
        self.services_evicted = 0
        #: Queued services whose lifetime ended before re-placement.
        self.services_lost = 0
        #: When set (engines running a fault schedule), newly spun-up
        #: NICs are queued for :meth:`take_new_nics` so the driving
        #: engine can arm their drawn faults.
        self.collect_new_nics = False
        self._new_nics: list[FleetNic] = []

    @property
    def provisioner(self) -> NicProvisioner:
        return self._provisioner

    @property
    def topology(self) -> Topology:
        return self._topology

    def pod_of(self, nic_id: int) -> int:
        """Pod of NIC ``nic_id`` under this cluster's topology."""
        return self._topology.pod_of(nic_id)

    @property
    def spec(self) -> NicSpecification:
        """The pool's primary spec (first mix entry; the only one for
        homogeneous pools)."""
        return self._provisioner.spec_of(self._provisioner.target_names[0])

    @property
    def max_residents_per_nic(self) -> int:
        """Capacity of the roomiest target in the pool mix.

        Per-NIC capacity lives on :attr:`FleetNic.max_residents`; this
        pool-level bound feeds the wastage baseline (the fewest NICs any
        packing could use assumes best-case hardware).
        """
        return max(
            self._provisioner.spec_of(name).num_cores // CORES_PER_NF
            for name in self._provisioner.target_names
        )

    @property
    def nics(self) -> list[FleetNic]:
        """Active (non-empty) NICs in spin-up order."""
        return list(self._nics)

    @property
    def nics_used(self) -> int:
        return len(self._nics)

    @property
    def services(self) -> list[ServiceInstance]:
        """All residents in (NIC spin-up, placement) order.

        A migrating service is resident on two NICs; it is listed once,
        at its *home* (serving) NIC — the source until the migration
        completes.
        """
        if not self._in_flight:
            return [r for nic in self._nics for r in nic.residents]
        return [
            r
            for nic in self._nics
            for r in nic.residents
            if self._by_instance.get(r.instance_id) is nic
        ]

    def nic_of(self, instance_id: str) -> FleetNic:
        try:
            return self._by_instance[instance_id]
        except KeyError:
            raise PlacementError(f"unknown instance {instance_id!r}") from None

    # ------------------------------------------------------------------
    # Continuous-time queries
    # ------------------------------------------------------------------
    def is_home(self, nic: FleetNic, instance_id: str) -> bool:
        """Is ``nic`` the NIC currently *serving* this instance?

        False only for the destination copy of an in-flight migration
        (which contends there but does not serve traffic yet).
        """
        return self._by_instance.get(instance_id) is nic

    def is_migrating(self, instance_id: str) -> bool:
        return instance_id in self._in_flight

    def migration_of(self, instance_id: str) -> TimedMigration | None:
        """The in-flight migration of ``instance_id``, if any.

        The event engine uses this to discard stale completion events: a
        departure cancels the migration, so a completion whose record is
        gone (or superseded by a later move) must be a no-op.
        """
        return self._in_flight.get(instance_id)

    @property
    def in_flight_migrations(self) -> tuple[TimedMigration, ...]:
        return tuple(self._in_flight.values())

    # ------------------------------------------------------------------
    def place(self, instance: ServiceInstance, nic_id: int | None = None) -> int:
        """Place ``instance`` on NIC ``nic_id`` (``None`` = a new NIC)."""
        if instance.instance_id in self._by_instance:
            raise PlacementError(f"{instance.instance_id!r} is already placed")
        if nic_id is None:
            nic = self._spin_up()
        else:
            nic = self._find(nic_id)
            if len(nic.residents) >= nic.max_residents:
                raise PlacementError(f"NIC {nic_id} is full")
        nic.residents.append(instance)
        self._by_instance[instance.instance_id] = nic
        self.total_placements += 1
        return nic.nic_id

    def remove(self, instance_id: str) -> None:
        """Remove a departing service; retire the NIC if now empty.

        Removing a service that is mid-migration cancels the migration:
        its destination copy vanishes too (nothing lands later).
        """
        nic = self.nic_of(instance_id)
        record = self._in_flight.pop(instance_id, None)
        if record is not None:
            dest = self._find(record.to_nic)
            dest.residents = [
                r for r in dest.residents if r.instance_id != instance_id
            ]
            self.migrations_cancelled += 1
            if not dest.residents:
                self._retire(dest)
        nic.residents = [
            r for r in nic.residents if r.instance_id != instance_id
        ]
        del self._by_instance[instance_id]
        self.total_departures += 1
        if not nic.residents:
            self._retire(nic)

    def migrate(
        self,
        instance_id: str,
        to_nic_id: int | None,
        epoch: int,
        reason: str = "rebalance",
    ) -> int:
        """Move a service to another (or a fresh) NIC and log the move.

        With ``migration_duration > 0`` the move is *timed*: it begins
        now (the service becomes co-resident on the destination) and
        only completes — home NIC switches, move logged —
        ``migration_duration`` seconds later, when the driving engine
        calls :meth:`complete_migration`. A move that crosses a pod
        boundary takes :attr:`cross_pod_migration_duration` instead when
        that is set. At duration zero the move is the historical
        instantaneous one.
        """
        source = self.nic_of(instance_id)
        duration = self._duration_for(source.nic_id, to_nic_id)
        if duration > 0.0:
            return self.begin_migration(
                instance_id,
                to_nic_id,
                start=self.now,
                duration=duration,
                reason=reason,
            )
        if to_nic_id == source.nic_id:
            raise PlacementError("migration target is the current NIC")
        if to_nic_id is not None:
            target = self._find(to_nic_id)
            if len(target.residents) >= target.max_residents:
                raise PlacementError(f"NIC {to_nic_id} is full")
        instance = next(
            r for r in source.residents if r.instance_id == instance_id
        )
        source.residents = [
            r for r in source.residents if r.instance_id != instance_id
        ]
        del self._by_instance[instance_id]
        if not source.residents:
            self._retire(source)
        placed_on = self.place(instance, to_nic_id)
        self.total_placements -= 1  # a move, not a new placement
        self.total_migrations_started += 1
        self.migration_log.append(
            MigrationRecord(
                epoch=epoch,
                instance_id=instance_id,
                from_nic=source.nic_id,
                to_nic=placed_on,
                reason=reason,
            )
        )
        return placed_on

    def _duration_for(self, from_nic_id: int, to_nic_id: int | None) -> float:
        """Duration a move between these NICs takes under the topology.

        A ``None`` destination is the NIC about to be spun up, whose id
        is already determined (``_next_nic_id``) — so whether the move
        crosses a pod boundary is knowable before provisioning it.
        """
        dest = (
            to_nic_id if to_nic_id is not None else self._next_available_id()
        )
        if (
            self.cross_pod_migration_duration is not None
            and self._topology.is_cross_pod(from_nic_id, dest)
        ):
            return self.cross_pod_migration_duration
        return self.migration_duration

    # ------------------------------------------------------------------
    # Timed migrations
    # ------------------------------------------------------------------
    def begin_migration(
        self,
        instance_id: str,
        to_nic_id: int | None,
        start: float,
        duration: float,
        reason: str = "rebalance",
    ) -> int:
        """Start an in-flight migration; returns the destination NIC id.

        The service keeps serving on its source NIC while a contending
        copy occupies the destination; :meth:`complete_migration` (at
        ``start + duration``) performs the hand-over. The new record is
        queued for :meth:`take_pending_migrations` so the event engine
        can schedule the completion event.
        """
        if duration <= 0.0:
            raise PlacementError("timed migration needs duration > 0")
        if instance_id in self._in_flight:
            raise PlacementError(f"{instance_id!r} is already migrating")
        source = self.nic_of(instance_id)
        if to_nic_id == source.nic_id:
            raise PlacementError("migration target is the current NIC")
        if to_nic_id is None:
            dest = self._spin_up()
        else:
            dest = self._find(to_nic_id)
            if len(dest.residents) >= dest.max_residents:
                raise PlacementError(f"NIC {to_nic_id} is full")
        instance = next(
            r for r in source.residents if r.instance_id == instance_id
        )
        dest.residents.append(instance)  # the contending copy
        record = TimedMigration(
            instance_id=instance_id,
            from_nic=source.nic_id,
            to_nic=dest.nic_id,
            start_time=start,
            end_time=start + duration,
            reason=reason,
        )
        self._in_flight[instance_id] = record
        self._pending_migrations.append(record)
        self.total_migrations_started += 1
        return dest.nic_id

    def complete_migration(self, instance_id: str) -> TimedMigration:
        """Land an in-flight migration: the destination becomes home."""
        try:
            record = self._in_flight.pop(instance_id)
        except KeyError:
            raise PlacementError(
                f"{instance_id!r} has no migration in flight"
            ) from None
        source = self._by_instance[instance_id]
        dest = self._find(record.to_nic)
        source.residents = [
            r for r in source.residents if r.instance_id != instance_id
        ]
        if not source.residents:
            self._retire(source)
        self._by_instance[instance_id] = dest
        self.timed_migrations.append(record)
        self.migration_log.append(
            MigrationRecord(
                epoch=int(math.floor(record.end_time)),
                instance_id=instance_id,
                from_nic=record.from_nic,
                to_nic=record.to_nic,
                reason=record.reason,
            )
        )
        return record

    def take_pending_migrations(self) -> list[TimedMigration]:
        """Drain migrations begun since the last drain (engine hook)."""
        pending = self._pending_migrations
        self._pending_migrations = []
        return pending

    # ------------------------------------------------------------------
    # Fault transitions (distinct from retirement: these evict)
    # ------------------------------------------------------------------
    def _evict_resident(self, nic: FleetNic, instance: ServiceInstance) -> None:
        """Push one home resident of ``nic`` into the re-placement
        queue, cancelling its in-flight migration (if any)."""
        instance_id = instance.instance_id
        record = self._in_flight.pop(instance_id, None)
        if record is not None:
            # The copy on the *other* NIC (the destination — the home
            # copy is the one being evicted) vanishes with the move.
            other = self._nic_index.get(record.to_nic)
            if other is not None and other is not nic:
                other.residents = [
                    r for r in other.residents
                    if r.instance_id != instance_id
                ]
                if not other.residents:
                    self._retire(other)
            self.migrations_cancelled += 1
        nic.residents = [
            r for r in nic.residents if r.instance_id != instance_id
        ]
        del self._by_instance[instance_id]
        self.evicted.append(
            EvictedService(
                instance=instance, from_nic=nic.nic_id, evicted_at=self.now
            )
        )
        self._evicted_ids.add(instance_id)
        self.services_evicted += 1

    def fail_nic(self, nic_id: int) -> bool:
        """Hard-fail a NIC: evict every home resident into the queue,
        cancel in-flight migrations touching it, drop it from the fleet.

        Unlike :meth:`_retire` the id is recorded as *failed* (never a
        valid placement target again) and the eviction/failure counters
        feed the report's ``faults`` section. Returns whether the NIC
        was alive (re-failing a gone NIC is a no-op).
        """
        nic = self._nic_index.get(nic_id)
        if nic is None:
            return False
        for instance in list(nic.residents):
            if self._by_instance.get(instance.instance_id) is nic:
                self._evict_resident(nic, instance)
            else:
                # Destination copy of an in-flight migration: the move
                # dies, the service keeps serving at home.
                record = self._in_flight.pop(instance.instance_id, None)
                if record is not None:
                    self.migrations_cancelled += 1
                nic.residents = [
                    r for r in nic.residents
                    if r.instance_id != instance.instance_id
                ]
        if nic.nic_id in self._nic_index:
            self._retire(nic)
        self._failed_nic_ids.add(nic_id)
        self.nics_failed += 1
        return True

    def degrade_nic(self, nic_id: int, capacity_fraction: float) -> bool:
        """Degrade a NIC to ``capacity_fraction``, evicting residents
        beyond the shrunken capacity (newest first). Returns whether
        the NIC was alive to degrade."""
        if not 0.0 < capacity_fraction < 1.0:
            raise ConfigurationError(
                "capacity_fraction must be in (0, 1); use fail_nic for "
                "total loss"
            )
        nic = self._nic_index.get(nic_id)
        if nic is None:
            return False
        nic.capacity_fraction = capacity_fraction
        self.nics_degraded += 1
        while len(nic.residents) > nic.max_residents:
            instance = nic.residents[-1]
            if self._by_instance.get(instance.instance_id) is nic:
                self._evict_resident(nic, instance)
            else:
                record = self._in_flight.pop(instance.instance_id, None)
                if record is not None:
                    self.migrations_cancelled += 1
                nic.residents = nic.residents[:-1]
        if not nic.residents:
            self._retire(nic)
        return True

    def restore_nic(self, nic_id: int) -> bool:
        """Repair a degraded NIC back to full capacity. Returns whether
        anything changed (the NIC may have emptied and retired, or
        hard-failed in a pod outage, before its repair arrived)."""
        nic = self._nic_index.get(nic_id)
        if nic is None or nic.capacity_fraction == 1.0:
            return False
        nic.capacity_fraction = 1.0
        self.nics_restored += 1
        return True

    def fail_pod(self, pod_id: int) -> bool:
        """Take a whole pod down: hard-fail every NIC in it and refuse
        spin-ups there until :meth:`restore_pod`."""
        if pod_id in self.down_pods:
            return False
        self.down_pods.add(pod_id)
        for nic in list(self._nics):
            if self._topology.pod_of(nic.nic_id) == pod_id:
                self.fail_nic(nic.nic_id)
        self.pods_failed += 1
        return True

    def restore_pod(self, pod_id: int) -> bool:
        """End a pod outage: the pod accepts spin-ups again (its failed
        NICs stay gone — replacement hardware spins up on demand)."""
        if pod_id not in self.down_pods:
            return False
        self.down_pods.discard(pod_id)
        self.pods_restored += 1
        return True

    # ------------------------------------------------------------------
    # Re-placement queue
    # ------------------------------------------------------------------
    def enqueue_evicted(
        self, instance: ServiceInstance, from_nic: int = -1
    ) -> None:
        """Queue a service that cannot be placed right now (e.g. every
        eligible pod is in outage): it waits in the re-placement queue
        exactly like a fault evictee. ``from_nic=-1`` marks a service
        that never held a NIC."""
        if instance.instance_id in self._by_instance:
            raise PlacementError(
                f"{instance.instance_id!r} is placed; faults evict via "
                "fail_nic/degrade_nic"
            )
        self.evicted.append(
            EvictedService(
                instance=instance, from_nic=from_nic, evicted_at=self.now
            )
        )
        self._evicted_ids.add(instance.instance_id)
        self.services_evicted += 1

    def is_evicted(self, instance_id: str) -> bool:
        return instance_id in self._evicted_ids

    def drop_evicted(self, instance_id: str) -> EvictedService:
        """A queued service's lifetime ended before re-placement: it is
        lost (counted in the faults section, never re-placed)."""
        entry = self._take_evicted(instance_id)
        self.services_lost += 1
        return entry

    def record_replacement(self, instance_id: str, to_nic: int) -> None:
        """Record a drained re-placement (the policy already placed the
        instance on ``to_nic``); logs time-to-recover bookkeeping."""
        entry = self._take_evicted(instance_id)
        self.replacements.append(
            ReplacementRecord(
                instance_id=instance_id,
                from_nic=entry.from_nic,
                to_nic=to_nic,
                evicted_at=entry.evicted_at,
                replaced_at=self.now,
            )
        )

    def _take_evicted(self, instance_id: str) -> EvictedService:
        for entry in self.evicted:
            if entry.instance.instance_id == instance_id:
                self.evicted = [
                    e for e in self.evicted
                    if e.instance.instance_id != instance_id
                ]
                self._evicted_ids.discard(instance_id)
                return entry
        raise PlacementError(f"{instance_id!r} is not in the evicted queue")

    def take_new_nics(self) -> list[FleetNic]:
        """Drain NICs spun up since the last drain (fault-arming hook;
        empty unless :attr:`collect_new_nics` is set)."""
        fresh = self._new_nics
        self._new_nics = []
        return fresh

    # ------------------------------------------------------------------
    def _next_available_id(self) -> int:
        """The id the next spin-up will use, skipping pods in outage."""
        nic_id = self._next_nic_id
        if self.down_pods:
            pods = self._topology.pods
            if pods is not None and len(self.down_pods) >= pods:
                raise PlacementError(
                    "no pod can host a new NIC (all pods are down)"
                )
            if self._topology.is_flat and 0 in self.down_pods:
                raise PlacementError(
                    "no pod can host a new NIC (the fleet's single pod "
                    "is down)"
                )
            while self._topology.pod_of(nic_id) in self.down_pods:
                nic_id += 1
        return nic_id

    def _spin_up(self) -> FleetNic:
        """Provision the next NIC (ready after the spin-up latency).

        During a pod outage the ids that would land in a down pod are
        burned (skipped, never provisioned) — pod membership is a pure
        function of the id, so re-using them later would resurrect
        hardware inside the failure domain.
        """
        self._next_nic_id = self._next_available_id()
        nic = FleetNic(
            nic_id=self._next_nic_id,
            spec=self._provisioner.spec_for(self._next_nic_id),
            ready_at=self.now + self.spinup_latency,
            spun_up_at=self.now,
        )
        self._next_nic_id += 1
        self._nics.append(nic)
        self._nic_index[nic.nic_id] = nic
        if self.collect_new_nics:
            self._new_nics.append(nic)
        return nic

    def _retire(self, nic: FleetNic) -> None:
        """Drop an emptied NIC from the fleet (and the id index)."""
        self._nics.remove(nic)
        del self._nic_index[nic.nic_id]

    def _find(self, nic_id: int) -> FleetNic:
        try:
            return self._nic_index[nic_id]
        except KeyError:
            raise PlacementError(f"unknown NIC {nic_id}") from None
