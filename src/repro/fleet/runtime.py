"""Execution runtimes: where the fleet's scoring work actually runs.

Both fleet engines (:class:`~repro.fleet.engine.FleetEngine` and
:class:`~repro.fleet.engine.EventEngine`) funnel their per-epoch /
per-observation ground-truth solving through one :class:`Runtime`
interface — the SimBricks local/parallel/distributed-runtime shape: the
engine describes *what* must be solved (per-pod mix scenarios, solo
baselines) and the runtime decides *where*:

- :class:`SerialRuntime` — everything in-process, the historical code
  path and the byte-exactness **oracle arm** (like ``score_mode="loop"``
  and ``pad_small_groups=False`` before it);
- :class:`ProcessRuntime` — pods are solved in worker processes
  (``jobs`` of them), solo-baseline batches are split into contiguous
  chunks across the pool.

**Why parallelism cannot change a single byte.** Every solved value is
a pure function of ``(simulator seed, scenario)``: the NIC's
measurement noise is derived per scenario (``derive_seed`` over the
workload reprs — ``SmartNic._noise_for``), never drawn from a shared
stream, and ``run_batch`` is bit-identical to per-scenario ``run``.
Workers receive pickled copies of the engine's own simulators, so a
scenario solves to the identical float no matter which worker (or the
parent) executes it, and no matter how scenarios are grouped into
batches. Each :class:`PodScoreTask` additionally carries a per-pod
derived seed (:meth:`Topology.pod_seed
<repro.fleet.topology.Topology.pod_seed>`) — keyed to the *pod*, never
the worker — so future pod-local stochastic refinements inherit the
same guarantee, exactly like ``YalaSystem.train(jobs=)``'s per-NF
derived seeds. The merge is deterministic because results are
re-assembled in task order and every cache insert happens in the parent
in a fixed iteration order. Net contract, enforced by tier-1: **same
seed ⇒ byte-identical reports at any runtime and any worker count.**

Naming: worker-process counts are called ``jobs`` everywhere in this
repo (the experiment runner's ``--jobs``, ``YalaSystem.train(jobs=)``);
:class:`ProcessRuntime` follows suit and accepts ``workers=`` only as a
deprecated alias.
"""

from __future__ import annotations

import multiprocessing
import os
import time
import warnings
from concurrent.futures import (
    BrokenExecutor,
    CancelledError,
    ProcessPoolExecutor,
)
from concurrent.futures import TimeoutError as PoolTimeout
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Optional, Sequence

from repro.errors import ConfigurationError
from repro.nf.catalog import make_nf
from repro.obs import NULL_RECORDER, Recorder
from repro.rng import derive_seed

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.nic.nic import SmartNic, WorkloadResult
    from repro.profiling.collector import ProfilingCollector


@dataclass(frozen=True)
class PodScoreTask:
    """One pod's uncached multi-resident mixes, ready to solve.

    ``mixes`` holds ``(target, mix_keys)`` groups — one per hardware
    target that has work in this pod — where each mix key is the
    ``(nf_name, traffic)`` tuple of one NIC's residents in placement
    order. The task ships *keys*, not scenario objects: workers rebuild
    the NF demands locally (cheap, and far less pickling than shipping
    compiled scenarios).
    """

    pod_id: int
    #: Per-pod derived seed (pure in ``(seed, pod_id)``; see module doc).
    seed: int
    mixes: tuple[tuple[str, tuple[tuple, ...]], ...]
    #: Warm-start payload, aligned with ``mixes``: one tuple per
    #: ``(target, mix_keys)`` group holding, per mix key, either
    #: ``None`` (cold) or the last converged per-resident throughput
    #: tuple this mix's fixed point should start from. Empty (the
    #: default) when warm-starting is off, so cold tasks pickle and
    #: compare exactly as before. The payload travels *in the task* —
    #: never in worker state — so any worker (or the parent, or a
    #: crash-recovery re-execution) solves from the identical iterate.
    warm: tuple[tuple[Optional[tuple[float, ...]], ...], ...] = ()

    @property
    def scenario_count(self) -> int:
        return sum(len(keys) for _, keys in self.mixes)


def solve_solos(
    nic_sim: "SmartNic", pairs: Sequence[tuple], score_mode: str
) -> list["WorkloadResult"]:
    """Solve the solo baseline of every ``(nf_name, traffic)`` pair.

    Pure in ``(nic_sim seed, pair)`` and bit-identical to
    :meth:`SmartNic.run_solo` on each pair (``run_solo`` is ``run`` of a
    one-workload scenario, and ``run_batch`` reproduces ``run``
    exactly) — so a solo computed in a worker equals one computed by the
    collector in the parent. ``batch`` solves all pairs in one
    ``run_batch`` call; ``loop`` is the per-scenario oracle.
    """
    nfs = [make_nf(name) for name, _ in pairs]
    scenarios = [[nf.demand(traffic)] for nf, (_, traffic) in zip(nfs, pairs)]
    if score_mode == "batch":
        solved = nic_sim.run_batch(scenarios)
    else:
        solved = [nic_sim.run(scenario) for scenario in scenarios]
    return [result[nf.name] for nf, result in zip(nfs, solved)]


def solve_pod(
    nics_by_target: dict, task: PodScoreTask, score_mode: str
) -> list[tuple[list[list[float]], list[int]]]:
    """Solve one pod's mixes; returns throughputs plus iteration counts.

    Output is aligned with ``task.mixes``: one ``(rows, iterations)``
    pair per ``(target, mix_keys)`` group, where ``rows`` holds one row
    per mix with one float per resident (in mix order) and
    ``iterations`` the per-mix iterations-to-converge of the fixed
    point (identical in batch and loop modes — the iterate path is
    bit-identical, so convergence lands on the same step; telemetry
    relies on this). Rebuilds each mix's demands exactly as the
    engines' scoring core always has — ``make_nf(name).demand(traffic,
    instance=f"{name}#{j}")`` — so the solved scenarios are identical
    objects to the serial path's.
    """
    out: list[tuple[list[list[float]], list[int]]] = []
    for g, (target, mix_keys) in enumerate(task.mixes):
        nic_sim = nics_by_target[target]
        scenarios = [
            [
                make_nf(name).demand(traffic, instance=f"{name}#{j}")
                for j, (name, traffic) in enumerate(key)
            ]
            for key in mix_keys
        ]
        warms = None
        if task.warm:
            group_warm = task.warm[g]
            if any(vec is not None for vec in group_warm):
                warms = [
                    None
                    if vec is None
                    else {
                        f"{name}#{j}": value
                        for j, ((name, _), value) in enumerate(zip(key, vec))
                    }
                    for key, vec in zip(mix_keys, group_warm)
                ]
        if score_mode == "batch":
            solved = nic_sim.run_batch(scenarios, warm_starts=warms)
        elif warms is None:
            solved = [nic_sim.run(scenario) for scenario in scenarios]
        else:
            solved = [
                nic_sim.run(scenario, initial=warm)
                for scenario, warm in zip(scenarios, warms)
            ]
        out.append((
            [
                [
                    result.throughput_of(f"{name}#{j}")
                    for j, (name, _) in enumerate(key)
                ]
                for key, result in zip(mix_keys, solved)
            ],
            [int(result.iterations) for result in solved],
        ))
    return out


# ----------------------------------------------------------------------
# Worker-process plumbing
# ----------------------------------------------------------------------
#: The worker's pickled copies of the engine's simulators, installed by
#: the pool initializer. Values are pure functions of (seed, scenario),
#: so a copy answers identically to the parent's original.
_WORKER_NICS: Optional[dict] = None


def _init_worker(nics_by_target: dict) -> None:
    global _WORKER_NICS
    _WORKER_NICS = nics_by_target


def _worker_solos(
    target: str, pairs: tuple, score_mode: str
) -> list["WorkloadResult"]:
    return solve_solos(_WORKER_NICS[target], pairs, score_mode)


def _worker_pod(task: PodScoreTask, score_mode: str) -> list:
    return solve_pod(_WORKER_NICS, task, score_mode)


# ----------------------------------------------------------------------
# Runtimes
# ----------------------------------------------------------------------
class Runtime:
    """Where the engines' scoring work executes.

    An engine :meth:`bind`\\ s its hardware targets' simulators once per
    run, then issues two kinds of work — both byte-deterministic at any
    implementation:

    - :meth:`warm_solos` — measure the uncached solo baselines of a
      ``(nf_name, traffic)`` pair list into a target's collector cache;
    - :meth:`score_pods` — solve a list of per-pod mix tasks and return
      their per-resident throughputs in task order.
    """

    name = "base"
    #: Worker-process count (1 for in-process runtimes).
    jobs = 1
    #: Attached telemetry recorder (never ``None``; see :meth:`observe`).
    _obs: Recorder = NULL_RECORDER

    def observe(self, recorder: Optional[Recorder]) -> None:
        """Attach a telemetry recorder.

        Runtimes report only into the *non-deterministic* channels —
        wall-clock timings (per-pod solve spans, the Chrome trace's
        pod tracks) and exec counters (dispatches, retries, pool
        rebuilds) — because where work ran must never leak into
        deterministic output. Engines call this once per run.
        """
        self._obs = recorder if recorder is not None else NULL_RECORDER

    def bind(self, nics_by_target: dict) -> None:
        """Attach the simulators scoring will run against (idempotent;
        rebinding different simulators re-provisions workers)."""
        raise NotImplementedError

    def warm_solos(
        self,
        collector: "ProfilingCollector",
        target: str,
        pairs: Sequence[tuple],
        score_mode: str,
    ) -> None:
        raise NotImplementedError

    def score_pods(
        self, tasks: Sequence[PodScoreTask], score_mode: str
    ) -> list[list[tuple[list[list[float]], list[int]]]]:
        raise NotImplementedError

    def close(self) -> None:
        """Release any held execution resources (idempotent)."""

    def __enter__(self) -> "Runtime":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class SerialRuntime(Runtime):
    """Everything in the engine's own process — the oracle arm.

    ``warm_solos`` is exactly the historical warm phase
    (:meth:`ProfilingCollector.solo_many` in batch mode, per-pair
    :meth:`ProfilingCollector.solo` in loop mode); ``score_pods`` runs
    the shared :func:`solve_pod` helper pod by pod.
    """

    name = "serial"
    jobs = 1

    def __init__(self) -> None:
        self._nics: dict = {}

    def bind(self, nics_by_target: dict) -> None:
        self._nics = dict(nics_by_target)

    def warm_solos(self, collector, target, pairs, score_mode) -> None:
        if score_mode == "batch":
            collector.solo_many(
                [(make_nf(name), traffic) for name, traffic in pairs]
            )
        else:
            for name, traffic in pairs:
                collector.solo(make_nf(name), traffic)

    def score_pods(self, tasks, score_mode):
        obs = self._obs
        if not obs.enabled:
            return [solve_pod(self._nics, task, score_mode) for task in tasks]
        # One wall span per pod: these become the per-pod tracks of the
        # Chrome trace export (timing channel only — never a record).
        out = []
        for task in tasks:
            with obs.wall_span(
                "runtime.solve_pod", track=task.pod_id,
                pod=task.pod_id, scenarios=task.scenario_count,
            ):
                out.append(solve_pod(self._nics, task, score_mode))
        return out


class ProcessRuntime(Runtime):
    """Pods solve in ``jobs`` worker processes — and worker deaths are
    survivable, not fatal.

    The pool is created lazily on the first big-enough batch and
    initialised with pickled copies of the bound simulators; it is
    keyed to those simulator objects, so binding a different model's
    NICs (a fresh engine) transparently rebuilds it. Small work batches
    (fewer than ``min_parallel_items`` scenarios) are solved inline —
    the submit/pickle round-trip costs more than the solve — which
    changes nothing numerically because inline and worker solving are
    the same pure functions, and the threshold depends only on batch
    size, never on timing.

    **Crash recovery.** A worker that is OOM-killed, segfaults, or
    hangs poisons a stock :class:`ProcessPoolExecutor`: every in-flight
    future raises ``BrokenProcessPool`` and the pool is unusable. Here
    each future is collected with a per-task ``task_timeout``; tasks
    that fail with a *pool* failure (broken pool, timeout, cancelled)
    are retried up to ``max_retries`` times against a freshly rebuilt
    pool (with ``retry_backoff * 2**attempt`` seconds of backoff), and
    whatever still fails is re-executed **serially, in task order**, in
    the parent. Because every task is a pure function of ``(seed,
    scenario)``, the recovered results are byte-identical to an
    undisturbed run — worker deaths may cost time, never bytes. Real
    task exceptions (a bug in the solve itself) propagate immediately;
    only infrastructure failures are retried.
    """

    name = "process"

    def __init__(
        self,
        jobs: Optional[int] = None,
        workers: Optional[int] = None,
        min_parallel_items: int = 24,
        task_timeout: Optional[float] = 300.0,
        max_retries: int = 2,
        retry_backoff: float = 0.05,
    ) -> None:
        if workers is not None:
            warnings.warn(
                "ProcessRuntime(workers=...) is deprecated; use jobs= "
                "(the repo-wide name for worker-process counts)",
                DeprecationWarning,
                stacklevel=2,
            )
            if jobs is None:
                jobs = workers
        if jobs is None:
            jobs = max(1, os.cpu_count() or 1)
        if jobs < 1:
            raise ConfigurationError("jobs must be >= 1")
        if min_parallel_items < 1:
            raise ConfigurationError("min_parallel_items must be >= 1")
        if task_timeout is not None and task_timeout <= 0:
            raise ConfigurationError("task_timeout must be positive or None")
        if max_retries < 0:
            raise ConfigurationError("max_retries must be >= 0")
        if retry_backoff < 0:
            raise ConfigurationError("retry_backoff must be >= 0")
        self.jobs = jobs
        self._min_items = min_parallel_items
        self._task_timeout = task_timeout
        self._max_retries = max_retries
        self._retry_backoff = retry_backoff
        self._nics: dict = {}
        self._pool: Optional[ProcessPoolExecutor] = None
        self._pool_key: Optional[tuple] = None
        self._serial = SerialRuntime()
        #: Pool-failure recoveries performed (observability; tests and
        #: the fault-recovery benchmark assert on it).
        self.recoveries = 0

    # ------------------------------------------------------------------
    def observe(self, recorder: Optional[Recorder]) -> None:
        super().observe(recorder)
        self._serial.observe(recorder)

    def bind(self, nics_by_target: dict) -> None:
        self._nics = dict(nics_by_target)
        self._serial.bind(self._nics)

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if not self._nics:
            raise ConfigurationError("ProcessRuntime used before bind()")
        key = tuple(sorted((t, id(nic)) for t, nic in self._nics.items()))
        if self._pool is not None and key == self._pool_key:
            return self._pool
        self.close()
        methods = multiprocessing.get_all_start_methods()
        context = multiprocessing.get_context(
            "fork" if "fork" in methods else None
        )
        self._pool = ProcessPoolExecutor(
            max_workers=self.jobs,
            mp_context=context,
            initializer=_init_worker,
            initargs=(self._nics,),
        )
        self._pool_key = key
        return self._pool

    def close(self) -> None:
        pool, self._pool, self._pool_key = self._pool, None, None
        if pool is not None:
            pool.shutdown()

    def _abort_pool(self) -> None:
        """Tear down a (possibly broken) pool without waiting on it.

        ``shutdown(wait=True)`` on a pool with a hung worker never
        returns, so cancel what can be cancelled, terminate whatever
        worker processes are still alive, and let :meth:`_ensure_pool`
        build a fresh pool on the next attempt.
        """
        pool, self._pool, self._pool_key = self._pool, None, None
        if pool is None:
            return
        worker_map = getattr(pool, "_processes", None)
        processes = list(worker_map.values()) if worker_map else []
        try:
            pool.shutdown(wait=False, cancel_futures=True)
        except Exception:
            pass
        for proc in processes:
            try:
                if proc.is_alive():
                    proc.terminate()
            except Exception:
                pass

    def _maybe_inject_fault(self, pool: ProcessPoolExecutor) -> None:
        """Test seam, called once per submitted batch; a no-op here.
        :class:`FaultInjectingRuntime` overrides it to kill workers on
        a seeded schedule."""

    def _run_resilient(
        self,
        items: list,
        submit_one: Callable,
        solve_serial: Callable,
    ) -> list:
        """Run ``items`` through the pool, surviving worker failures.

        Results come back aligned with ``items`` regardless of which
        attempt (or the serial fallback) produced each one — the merge
        order, and therefore every downstream byte, is fixed by the
        item order alone.
        """
        obs = self._obs
        results: list = [None] * len(items)
        pending = list(range(len(items)))
        obs.exec_counter("runtime.tasks_dispatched", len(items))
        for attempt in range(self._max_retries + 1):
            if not pending:
                return results
            if attempt > 0:
                obs.exec_counter("runtime.task_retries", len(pending))
            pool = self._ensure_pool()
            try:
                futures = {
                    i: submit_one(pool, items[i]) for i in pending
                }
            except BrokenExecutor:
                self._recover(attempt)
                continue
            self._maybe_inject_fault(pool)
            failed: list[int] = []
            for i in pending:
                try:
                    results[i] = futures[i].result(
                        timeout=self._task_timeout
                    )
                except (
                    BrokenExecutor,
                    CancelledError,
                    PoolTimeout,
                    TimeoutError,
                ):
                    failed.append(i)
            if failed:
                self._recover(attempt)
            pending = failed
        # Last resort: deterministic serial re-execution in the parent,
        # in task order — byte-identical to a worker having solved it.
        if pending:
            obs.exec_counter("runtime.serial_reexecutions", len(pending))
        for i in pending:
            results[i] = solve_serial(items[i])
        return results

    def _recover(self, attempt: int) -> None:
        self.recoveries += 1
        self._obs.exec_counter("runtime.pool_rebuilds")
        self._abort_pool()
        if self._retry_backoff > 0:
            time.sleep(self._retry_backoff * (2.0**attempt))

    # ------------------------------------------------------------------
    def warm_solos(self, collector, target, pairs, score_mode) -> None:
        # Dedupe against the collector cache in request order — the
        # identical key discipline as ProfilingCollector.solo_many.
        uncached: list[tuple] = []
        seen: set[tuple] = set()
        for name, traffic in pairs:
            nf = make_nf(name)
            key = (nf.name, nf.pattern.value, traffic)
            if key in seen or collector.solo_cached(nf, traffic):
                continue
            seen.add(key)
            uncached.append((name, traffic))
        if not uncached:
            return
        if self.jobs == 1 or len(uncached) < self._min_items:
            self._serial.warm_solos(collector, target, uncached, score_mode)
            return
        chunks = _chunk(uncached, self.jobs)
        solved = self._run_resilient(
            chunks,
            lambda pool, chunk: pool.submit(
                _worker_solos, target, tuple(chunk), score_mode
            ),
            lambda chunk: solve_solos(self._nics[target], chunk, score_mode),
        )
        for chunk, chunk_results in zip(chunks, solved):
            for (name, traffic), result in zip(chunk, chunk_results):
                collector.install_solo(make_nf(name), traffic, result)

    def score_pods(self, tasks, score_mode):
        total = sum(task.scenario_count for task in tasks)
        if self.jobs == 1 or len(tasks) < 2 or total < self._min_items:
            return self._serial.score_pods(tasks, score_mode)
        with self._obs.wall_span(
            "runtime.score_pods", pods=len(tasks), scenarios=total,
        ):
            return self._run_resilient(
                list(tasks),
                lambda pool, task: pool.submit(_worker_pod, task, score_mode),
                lambda task: solve_pod(self._nics, task, score_mode),
            )


class FaultInjectingRuntime(ProcessRuntime):
    """A :class:`ProcessRuntime` that murders its own workers.

    Verification arm for the crash-recovery contract: after every
    ``kill_every``-th submitted batch it SIGKILLs one pool worker,
    chosen by a seed derived purely from ``(kill_seed, batch index)`` —
    never from pids or timing — so a given configuration always kills
    the same victims at the same points. Tier-1 pins that a fleet run
    under this runtime produces **byte-identical reports** to
    :class:`SerialRuntime`; the perf gate pins that recovery costs
    bounded time. Test/benchmark-only: it is deliberately not
    reachable from :data:`RUNTIME_NAMES` or the CLI.
    """

    name = "fault-injecting"

    def __init__(
        self,
        jobs: Optional[int] = None,
        kill_every: int = 3,
        kill_seed: int = 0,
        max_kills: Optional[int] = None,
        **kwargs,
    ) -> None:
        super().__init__(jobs=jobs, **kwargs)
        if kill_every < 1:
            raise ConfigurationError("kill_every must be >= 1")
        if max_kills is not None and max_kills < 0:
            raise ConfigurationError("max_kills must be >= 0")
        self._kill_every = kill_every
        self._kill_seed = kill_seed
        self._max_kills = max_kills
        self._batches = 0
        #: Workers actually killed (tests assert faults really fired).
        self.kills = 0

    def _maybe_inject_fault(self, pool: ProcessPoolExecutor) -> None:
        self._batches += 1
        if self._batches % self._kill_every != 0:
            return
        if self._max_kills is not None and self.kills >= self._max_kills:
            return
        worker_map = getattr(pool, "_processes", None) or {}
        procs = [p for p in worker_map.values() if p.is_alive()]
        if not procs:
            return
        victim = procs[
            derive_seed(self._kill_seed, "kill", self._batches) % len(procs)
        ]
        victim.kill()
        self.kills += 1


def _chunk(items: list, parts: int) -> list[list]:
    """Split ``items`` into up to ``parts`` contiguous, near-equal
    chunks (deterministic: depends only on the list and the count)."""
    parts = min(parts, len(items))
    size, extra = divmod(len(items), parts)
    chunks, start = [], 0
    for i in range(parts):
        end = start + size + (1 if i < extra else 0)
        chunks.append(items[start:end])
        start = end
    return chunks


#: Runtime names the CLI and :class:`~repro.fleet.config.FleetConfig`
#: accept.
RUNTIME_NAMES: tuple[str, ...] = ("serial", "process")


def make_runtime(
    runtime: "Runtime | str | None", jobs: Optional[int] = None
) -> Runtime:
    """Resolve a runtime argument: an instance passes through, a name
    instantiates (``jobs`` applies to ``process``), ``None`` is serial."""
    if runtime is None:
        return SerialRuntime()
    if isinstance(runtime, Runtime):
        return runtime
    if runtime == "serial":
        return SerialRuntime()
    if runtime == "process":
        return ProcessRuntime(jobs=jobs)
    raise ConfigurationError(
        f"unknown runtime {runtime!r}; known: {RUNTIME_NAMES}"
    )


__all__ = [
    "FaultInjectingRuntime",
    "PodScoreTask",
    "ProcessRuntime",
    "RUNTIME_NAMES",
    "Runtime",
    "SerialRuntime",
    "make_runtime",
    "solve_pod",
    "solve_solos",
]
