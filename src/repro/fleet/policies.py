"""Online placement and rebalancing policies for the fleet.

Two layers:

- :class:`PlacementModel` — the strategy predicates shared between the
  one-shot Table 6 scheduler (:mod:`repro.usecases.scheduling`) and the
  fleet: additive utilisation estimation (greedy), SLOMO predicted
  feasibility (memory-only) and Yala predicted feasibility
  (multi-resource). The predicates operate on any resident objects
  exposing ``nf_name`` / ``traffic`` / ``sla_drop_fraction`` —
  one-shot ``NfArrival`` records and fleet ``ServiceInstance``\\ s alike
  — and take an optional hardware ``target`` so heterogeneous pools
  evaluate every candidate NIC with the predictors trained for *its*
  hardware.
- :class:`FleetPolicy` subclasses — the online decision rules: where an
  arriving service goes (``choose_nic``) and, once per epoch, whether
  resident services should migrate (``rebalance``). The
  ``rebalance`` policy is the diagnosis-triggered one: it places like
  Yala, watches the previous epoch's measured drops, and migrates the
  bottlenecked NF of every SLA-violating NIC.

Under the continuous-time event engine policies additionally see
*time-aware hooks*: :meth:`FleetPolicy.on_probe` fires after every
scoring observation and :meth:`FleetPolicy.on_violation` whenever an
observation measures SLA violations — both carry the observation time
``t``, which may sit between epoch boundaries. The default hooks do
nothing (the epoch-equivalence contract requires it); the ``rebalance``
policy opts into mid-epoch reaction with ``react_at_probes=True``,
migrating violators the instant a probe sees them instead of waiting
for the next rebalance timer.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Optional, Protocol, Sequence

from repro.errors import ConfigurationError, PlacementError
from repro.fleet.cluster import Cluster, ServiceInstance
from repro.nf.catalog import make_nf
from repro.nic.counters import PerfCounters
from repro.traffic.profile import TrafficProfile

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.predictor import YalaSystem
    from repro.core.slomo import SlomoPredictor


class Resident(Protocol):
    """What the strategy predicates need to know about one service."""

    @property
    def nf_name(self) -> str: ...

    @property
    def traffic(self) -> TrafficProfile: ...

    @property
    def sla_drop_fraction(self) -> float: ...


class _TargetModel:
    """One hardware target's predictors inside a :class:`PlacementModel`."""

    __slots__ = ("yala", "slomo", "collector", "nic")

    def __init__(self, yala, slomo, collector, nic) -> None:
        if yala is None and (collector is None or nic is None):
            raise ConfigurationError(
                "PlacementModel needs a YalaSystem or an explicit "
                "collector + nic (greedy/monopolization-only use)"
            )
        self.yala = yala
        self.slomo = slomo or {}
        self.collector = collector if collector is not None else yala.collector
        self.nic = nic if nic is not None else yala.nic


class PlacementModel:
    """Strategy predicates shared by Table 6 and the fleet policies.

    The model is **multi-target**: each registered hardware target has
    its own simulator, collector and trained predictors, and every
    predicate takes an optional ``target`` (a spec name) naming the
    hardware the candidate placement would run on. The constructor
    registers the first target — the *default*, used whenever ``target``
    is omitted, which keeps the one-shot Table 6 scheduler single-target
    — and :meth:`add_target` registers the rest of a heterogeneous
    fleet's pool.
    """

    def __init__(
        self,
        yala: Optional["YalaSystem"] = None,
        slomo_predictors: Optional[dict[str, "SlomoPredictor"]] = None,
        collector=None,
        nic=None,
    ) -> None:
        first = _TargetModel(yala, slomo_predictors, collector, nic)
        self._default = first.nic.spec.name
        self._targets: dict[str, _TargetModel] = {self._default: first}
        # greedy_utilisation is additive over residents, and placement
        # probes it once per candidate NIC per arrival — memoise the
        # per-resident bandwidth term (values come from the collector's
        # cached solo runs, so caching changes nothing numerically).
        self._mem_bw_cache: dict[tuple, float] = {}

    def add_target(
        self,
        yala: Optional["YalaSystem"] = None,
        slomo_predictors: Optional[dict[str, "SlomoPredictor"]] = None,
        collector=None,
        nic=None,
    ) -> str:
        """Register another hardware target's predictors; returns its name."""
        entry = _TargetModel(yala, slomo_predictors, collector, nic)
        name = entry.nic.spec.name
        if name in self._targets:
            raise ConfigurationError(f"target {name!r} is already registered")
        self._targets[name] = entry
        return name

    def _target(self, target: Optional[str]) -> _TargetModel:
        if target is None:
            target = self._default
        try:
            return self._targets[target]
        except KeyError:
            raise PlacementError(
                f"no placement model for target {target!r}; "
                f"registered: {sorted(self._targets)}"
            ) from None

    @property
    def default_target(self) -> str:
        return self._default

    @property
    def target_names(self) -> tuple[str, ...]:
        """Registered targets, default first (registration order)."""
        return tuple(self._targets)

    @property
    def collector(self):
        return self._targets[self._default].collector

    def collector_for(self, target: Optional[str] = None):
        return self._target(target).collector

    @property
    def nic(self):
        return self._targets[self._default].nic

    def nic_for(self, target: Optional[str] = None):
        return self._target(target).nic

    # ------------------------------------------------------------------
    def solo_throughput(
        self, resident: Resident, target: Optional[str] = None
    ) -> float:
        """Measured solo throughput of one resident (collector-cached)."""
        return self._target(target).collector.solo(
            make_nf(resident.nf_name), resident.traffic
        ).throughput_mpps

    def _resident_mem_bw(
        self, resident: Resident, entry: _TargetModel, target_name: str
    ) -> float:
        key = (target_name, resident.nf_name, resident.traffic)
        if key not in self._mem_bw_cache:
            counters = entry.collector.solo(
                make_nf(resident.nf_name), resident.traffic
            ).counters
            self._mem_bw_cache[key] = (counters.memrd + counters.memwr) * 64.0
        return self._mem_bw_cache[key]

    def greedy_utilisation(
        self,
        residents: Sequence[Resident],
        target: Optional[str] = None,
        capacity: float = 1.0,
    ) -> float:
        """Additive utilisation estimate of one NIC (greedy's view).

        ``capacity`` is the NIC's usable fraction
        (:attr:`FleetNic.capacity_fraction
        <repro.fleet.cluster.FleetNic.capacity_fraction>`): a degraded
        NIC offers proportionally less bandwidth, so the same residents
        fill it sooner. At the healthy default the arithmetic is
        bit-identical to the capacity-blind estimate.
        """
        entry = self._target(target)
        name = target if target is not None else self._default
        mem_bw = 0.0
        for resident in residents:
            mem_bw += self._resident_mem_bw(resident, entry, name)
        if capacity != 1.0:
            return mem_bw / (entry.nic.spec.dram_bandwidth_bpus * capacity)
        return mem_bw / entry.nic.spec.dram_bandwidth_bpus

    def predict_mix_throughputs(
        self, placements: Sequence[tuple], target: Optional[str] = None
    ) -> Optional[list[float]]:
        """Model-predicted per-service throughputs for one colocation mix.

        ``placements`` is a sequence of ``(nf_name, traffic)`` pairs —
        exactly the scoring core's mix-key shape. Returns ``None`` when
        the target carries no Yala predictor (the heuristic arms have
        no model to be wrong): telemetry's prediction-vs-ground-truth
        residuals simply stay empty there. Pure in the trained model
        and the mix, so residual aggregates built on it are
        byte-deterministic across engines, runtimes and resume.
        """
        entry = self._target(target)
        if entry.yala is None:
            return None
        return entry.yala.predict_colocation(
            [(name, traffic) for name, traffic in placements]
        )

    def predicted_feasible_yala(
        self,
        residents: Sequence[Resident],
        target: Optional[str] = None,
        capacity: float = 1.0,
    ) -> bool:
        """Every resident keeps its SLA according to Yala's predictions.

        On a degraded NIC (``capacity < 1``) every predicted throughput
        is scaled by the capacity fraction before the SLA check — the
        same derating ground-truth scoring applies — so feasibility
        probes see degraded hardware as the tighter fit it really is.
        """
        entry = self._target(target)
        if entry.yala is None:
            raise PlacementError("yala feasibility needs a trained YalaSystem")
        placements = [(r.nf_name, r.traffic) for r in residents]
        predictions = entry.yala.predict_colocation(placements)
        for resident, predicted in zip(residents, predictions):
            if capacity != 1.0:
                predicted = predicted * capacity
            solo = entry.yala.predictor_of(resident.nf_name).predict_solo(
                resident.traffic
            )
            drop = max(0.0, 1.0 - predicted / solo)
            if drop > resident.sla_drop_fraction:
                return False
        return True

    def predicted_feasible_slomo(
        self,
        residents: Sequence[Resident],
        target: Optional[str] = None,
        capacity: float = 1.0,
    ) -> bool:
        """Every resident keeps its SLA according to SLOMO (memory-only).

        ``capacity`` derates the predicted throughputs exactly like
        :meth:`predicted_feasible_yala`.
        """
        entry = self._target(target)
        for i, resident in enumerate(residents):
            slomo = entry.slomo.get(resident.nf_name)
            if slomo is None:
                raise PlacementError(
                    f"no SLOMO predictor for {resident.nf_name!r}"
                )
            competitor_counters = [
                entry.collector.solo(make_nf(r.nf_name), r.traffic).counters
                for j, r in enumerate(residents)
                if j != i
            ]
            aggregated = PerfCounters.aggregate(competitor_counters)
            predicted = slomo.predict(
                aggregated,
                resident.traffic,
                n_competitors=len(competitor_counters),
            )
            if capacity != 1.0:
                predicted = predicted * capacity
            solo = self.solo_throughput(resident, target)
            if max(0.0, 1.0 - predicted / solo) > resident.sla_drop_fraction:
                return False
        return True


# ----------------------------------------------------------------------
# Fleet policies
# ----------------------------------------------------------------------
class FleetPolicy:
    """Base online policy: placement plus (optional) rebalancing."""

    name = "base"

    def choose_nic(
        self, cluster: Cluster, instance: ServiceInstance, model: PlacementModel
    ) -> int | None:
        """NIC id the instance should join, or ``None`` for a new NIC."""
        raise NotImplementedError

    def rebalance(
        self,
        cluster: Cluster,
        epoch: int,
        model: PlacementModel,
        last_drops: dict[str, float],
    ) -> int:
        """Apply migrations for this epoch; returns how many moved."""
        return 0

    # ------------------------------------------------------------------
    # Time-aware hooks (continuous-time event engine)
    # ------------------------------------------------------------------
    def on_probe(
        self,
        cluster: Cluster,
        t: float,
        model: PlacementModel,
        drops: dict[str, float],
    ) -> int:
        """Called after every scored observation at time ``t``.

        ``drops`` are the freshly measured per-service throughput
        drops. May migrate (via ``cluster.migrate``); returns how many
        services moved. Default: none — the epoch-equivalence contract
        requires built-in policies to stay quiet here.
        """
        return 0

    def on_violation(
        self,
        cluster: Cluster,
        t: float,
        model: PlacementModel,
        drops: dict[str, float],
        violated: list[str],
    ) -> int:
        """Called when the observation at ``t`` measured SLA violations.

        ``violated`` lists the violating instance ids in scoring order.
        Runs before :meth:`on_probe`. Default: no reaction.
        """
        return 0

    # ------------------------------------------------------------------
    # Failover (fault injection)
    # ------------------------------------------------------------------
    def replace_evicted(
        self, cluster: Cluster, epoch: int, model: PlacementModel
    ) -> int:
        """Drain the re-placement queue of fault-evicted services.

        Each evicted service goes back through this policy's own
        ``choose_nic`` — failover is just placement again, so every
        policy self-heals with its usual strategy. Services the policy
        cannot place right now (e.g. every pod is down) stay queued and
        are retried at the next drain. Returns how many were re-placed.
        """
        placed = 0
        for entry in list(cluster.evicted):
            instance = entry.instance
            try:
                nic_id = self.choose_nic(cluster, instance, model)
                placed_on = cluster.place(instance, nic_id)
            except PlacementError:
                continue  # stays queued until capacity comes back
            cluster.record_replacement(instance.instance_id, placed_on)
            placed += 1
        return placed

    # ------------------------------------------------------------------
    def _open_nics(self, cluster: Cluster):
        """Non-full NICs in spin-up order (per-NIC capacity)."""
        return [
            nic
            for nic in cluster.nics
            if len(nic.residents) < nic.max_residents
        ]


class MonopolizationPolicy(FleetPolicy):
    """One service per NIC: no contention, maximal wastage."""

    name = "monopolization"

    def choose_nic(self, cluster, instance, model):
        return None


class GreedyPolicy(FleetPolicy):
    """Utilisation-based first fit (E3/Meili style, contention-blind).

    Each candidate NIC is judged on its own hardware target, so a mixed
    pool falls back across targets naturally: when every NIC of one type
    is saturated, the first fit keeps walking into the other pool.
    """

    name = "greedy"

    def choose_nic(self, cluster, instance, model):
        candidates = sorted(
            self._open_nics(cluster),
            key=lambda nic: (
                len(nic.residents),
                model.greedy_utilisation(
                    nic.residents, nic.target, nic.capacity_fraction
                ),
            ),
        )
        for nic in candidates:
            if (
                model.greedy_utilisation(
                    nic.residents + [instance],
                    nic.target,
                    nic.capacity_fraction,
                )
                <= 1.0
            ):
                return nic.nic_id
        return None


class _PredictedFeasibilityPolicy(FleetPolicy):
    """First fit over the fullest NICs whose prediction keeps all SLAs.

    Feasibility is evaluated per candidate NIC on that NIC's hardware
    target (its spec names the trained predictors to consult), so
    heterogeneous pools pick whichever hardware still has predicted
    head-room.
    """

    def _feasible(self, residents, model, target, capacity=1.0) -> bool:
        raise NotImplementedError

    def choose_nic(self, cluster, instance, model):
        candidates = sorted(
            self._open_nics(cluster), key=lambda nic: -len(nic.residents)
        )
        for nic in candidates:
            if self._feasible(
                nic.residents + [instance],
                model,
                nic.target,
                nic.capacity_fraction,
            ):
                return nic.nic_id
        return None


class SlomoPolicy(_PredictedFeasibilityPolicy):
    name = "slomo"

    def _feasible(self, residents, model, target, capacity=1.0):
        return model.predicted_feasible_slomo(residents, target, capacity)


class YalaPolicy(_PredictedFeasibilityPolicy):
    name = "yala"

    def _feasible(self, residents, model, target, capacity=1.0):
        return model.predicted_feasible_yala(residents, target, capacity)


class DiagnosisRebalancePolicy(YalaPolicy):
    """Yala placement plus diagnosis-triggered migration (§7.5.2 online).

    After every scored epoch the engine hands the policy the measured
    per-service throughput drops. For each NIC hosting an SLA violation
    the policy migrates the *bottlenecked NF* — the resident with the
    worst measured drop — to the fullest NIC where Yala predicts all
    SLAs hold, or to a fresh NIC when no such target exists.

    Under a non-flat :class:`~repro.fleet.topology.Topology` the policy
    is **topology-aware** (``pod_local_preference``, on by default):
    candidate NICs in the violating NIC's own pod are tried before any
    cross-pod candidate (fullest-first within each tier), because a
    cross-pod move copies service state over the fabric and can carry a
    longer timed-migration cost
    (``EventConfig.cross_pod_migration_duration``). On a flat topology
    every NIC shares pod 0, so the preference is inert and the candidate
    order — and therefore every report — is unchanged.
    """

    name = "rebalance"

    def __init__(
        self,
        max_migrations_per_epoch: int = 4,
        react_at_probes: bool = False,
        pod_local_preference: bool = True,
    ) -> None:
        if max_migrations_per_epoch < 1:
            raise ConfigurationError("max_migrations_per_epoch must be >= 1")
        self._max_migrations = max_migrations_per_epoch
        self._react_at_probes = react_at_probes
        self._pod_local = pod_local_preference

    def rebalance(self, cluster, epoch, model, last_drops):
        return self._migrate_violators(cluster, epoch, model, last_drops)

    def on_violation(self, cluster, t, model, drops, violated):
        """React mid-epoch (opt-in): migrate violators the moment a
        probe measures them instead of waiting for the next timer."""
        if not self._react_at_probes:
            return 0
        return self._migrate_violators(
            cluster, int(math.floor(t)), model, drops
        )

    def _migrate_violators(self, cluster, epoch, model, drops):
        moved = 0
        # A migrated service carries its stale measured drop until the
        # next scoring, so exclude it from later NICs' violation scans —
        # otherwise one service could ping-pong through the whole
        # migration budget in a single epoch.
        relocated: set[str] = set()
        for nic in cluster.nics:  # snapshot: migrations mutate the fleet
            if moved >= self._max_migrations:
                break
            if len(nic.residents) < 2:
                # A solo resident cannot be in contention; a stale
                # violating drop from a departed co-runner's epoch
                # must not trigger a pointless migration.
                continue
            violated = [
                r
                for r in nic.residents
                if r.instance_id not in relocated
                and not cluster.is_migrating(r.instance_id)
                and drops.get(r.instance_id, 0.0) > r.sla_drop_fraction
            ]
            if not violated:
                continue
            worst = max(
                violated, key=lambda r: drops[r.instance_id]
            )
            target = None
            home_pod = cluster.pod_of(nic.nic_id)
            candidates = sorted(
                (
                    n
                    for n in cluster.nics
                    if n.nic_id != nic.nic_id
                    and len(n.residents) < n.max_residents
                ),
                # Pod-local candidates first (cross-pod moves cost
                # more), fullest-first within each tier; on a flat
                # topology the first component is constant and the
                # order is the historical one.
                key=lambda n: (
                    (
                        0
                        if not self._pod_local
                        or cluster.pod_of(n.nic_id) == home_pod
                        else 1
                    ),
                    -len(n.residents),
                ),
            )
            for candidate in candidates:
                if model.predicted_feasible_yala(
                    candidate.residents + [worst],
                    candidate.target,
                    candidate.capacity_fraction,
                ):
                    target = candidate.nic_id
                    break
            relocated.add(worst.instance_id)
            cluster.migrate(
                worst.instance_id, target, epoch, reason="sla-violation"
            )
            moved += 1
        return moved


#: Policy names the fleet CLI and experiment accept.
FLEET_POLICY_NAMES: tuple[str, ...] = (
    "monopolization",
    "greedy",
    "slomo",
    "yala",
    "rebalance",
)

_POLICIES = {
    "monopolization": MonopolizationPolicy,
    "greedy": GreedyPolicy,
    "slomo": SlomoPolicy,
    "yala": YalaPolicy,
    "rebalance": DiagnosisRebalancePolicy,
}


def make_policy(name: str, **params) -> FleetPolicy:
    """Instantiate a fleet policy by name."""
    try:
        cls = _POLICIES[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown policy {name!r}; known: {FLEET_POLICY_NAMES}"
        ) from None
    return cls(**params)
