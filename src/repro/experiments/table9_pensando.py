"""Table 9: generalisation to a second SoC SmartNIC (Pensando).

A Firewall NF (hardware flow-table walk) runs on the Pensando NIC
profile under memory contention and dynamic traffic; Yala and SLOMO are
trained and evaluated exactly as on BlueField-2. The same model family
must transfer because the architectural style (shared memory subsystem,
RR-queue accelerators) is the same. The Pensando predictors live in the
shared multi-target experiment context
(:meth:`repro.experiments.context.ExperimentContext.target`), trained
with this experiment's historical seed streams so the rendered table is
bit-identical to the pre-multi-target standalone training; scoring runs
through the batch engine's standalone driver
(:func:`repro.experiments.batch.score_standalone`).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.predictor import CompetitorSpec, YalaSystem
from repro.experiments.batch import (
    EvaluationCase,
    score_standalone,
    summarize_accuracy,
)
from repro.experiments.common import (
    EXPERIMENT_SEED,
    ExperimentScale,
    fmt,
    get_scale,
    render_table,
)
from repro.experiments.context import (
    ExperimentContext,
    TargetContext,
    get_context,
)
from repro.nf.catalog import make_nf
from repro.nic.nic import SmartNic
from repro.nic.spec import get_spec, target_seed
from repro.profiling.collector import ProfilingCollector
from repro.profiling.contention import ContentionLevel
from repro.rng import derive_seed, make_rng
from repro.traffic.profile import TrafficProfile

#: Hardware target this experiment generalises to.
TARGET = "pensando"


@dataclass
class Table9Result:
    slomo_mape: float
    slomo_acc5: float
    slomo_acc10: float
    yala_mape: float
    yala_acc5: float
    yala_acc10: float

    def render(self) -> str:
        return render_table(
            [
                "NF",
                "SLOMO MAPE%", "SLOMO ±5%", "SLOMO ±10%",
                "Yala MAPE%", "Yala ±5%", "Yala ±10%",
            ],
            [
                [
                    "firewall (Pensando)",
                    fmt(self.slomo_mape), fmt(self.slomo_acc5), fmt(self.slomo_acc10),
                    fmt(self.yala_mape), fmt(self.yala_acc5), fmt(self.yala_acc10),
                ]
            ],
            title="Table 9 — generalisation to the Pensando SmartNIC",
        )


def build_cases(
    collector: ProfilingCollector,
    scale: str | ExperimentScale,
    seed: int = EXPERIMENT_SEED,
) -> list[EvaluationCase]:
    """Sample the Table 9 case list (same rng order as the seed loop)."""
    resolved = get_scale(scale)
    firewall = make_nf("firewall")
    rng = make_rng(seed)
    # Points are drawn up front (same rng order as the seed loop); all
    # ground-truth co-runs solve as one profiling batch.
    configs = []
    for _ in range(resolved.random_profiles):
        traffic = TrafficProfile(
            int(rng.uniform(1_000, 500_000)), int(rng.uniform(64, 1500)), 600.0
        )
        contention = ContentionLevel(
            mem_car=float(rng.uniform(30.0, 250.0)),
            mem_wss_mb=float(rng.uniform(2.0, 12.0)),
        )
        configs.append((traffic, contention))
    samples = collector.profile_many(
        [(firewall, contention, traffic) for traffic, contention in configs]
    )
    cases = []
    for (traffic, contention), sample in zip(configs, samples):
        cases.append(
            EvaluationCase(
                target="firewall",
                traffic=traffic,
                truth=sample.throughput_mpps,
                competitors=(CompetitorSpec.bench(contention),),
                slomo_counters=collector.bench_counters(contention),
                slomo_n_competitors=contention.actor_count,
            )
        )
    return cases


def _pensando_target(
    resolved: ExperimentScale, seed: int
) -> TargetContext:
    """The Pensando target context Table 9 trains and scores on.

    The shared multi-target context serves the harness seed; a run at a
    custom seed gets an equivalent private (uncached) target context so
    the seed threading stays exact.
    """
    if seed == EXPERIMENT_SEED:
        return get_context(resolved).target(TARGET)
    spec = get_spec(TARGET)
    nic = SmartNic(spec, seed=target_seed(seed, TARGET))
    return TargetContext(
        target=TARGET,
        scale=resolved,
        seed=seed,
        nic=nic,
        yala=YalaSystem(
            nic, seed=target_seed(seed, TARGET, "yala"), quota=resolved.quota
        ),
    )


def warm_context(context: ExperimentContext, seed: int = EXPERIMENT_SEED) -> None:
    """Pre-train the Pensando predictors :func:`run` needs.

    The parallel experiment runner calls this before forking workers so
    they inherit the trained Table 9 target through copy-on-write, the
    same way the default target is pre-trained.
    """
    target = context.target(TARGET)
    target.yala_for("firewall", seed=derive_seed(seed, "t9-yala"))
    target.slomo_for("firewall", seed=derive_seed(seed, "t9-slomo"))


def run(scale: str = "default", seed: int = EXPERIMENT_SEED) -> Table9Result:
    """Regenerate Table 9 from the shared multi-target context."""
    resolved = get_scale(scale)
    target = _pensando_target(resolved, seed)
    # Historical seed streams ("t9-*" tags predate the multi-target
    # context): the trained predictors — and the rendered table — are
    # bit-identical to the old standalone training path.
    yala = target.yala_for("firewall", seed=derive_seed(seed, "t9-yala"))
    slomo = target.slomo_for("firewall", seed=derive_seed(seed, "t9-slomo"))

    cases = build_cases(target.collector, resolved, seed)
    summary = summarize_accuracy(score_standalone(cases, yala=yala, slomo=slomo))
    return Table9Result(
        slomo_mape=summary.slomo_mape,
        slomo_acc5=summary.slomo_acc5,
        slomo_acc10=summary.slomo_acc10,
        yala_mape=summary.yala_mape,
        yala_acc5=summary.yala_acc5,
        yala_acc10=summary.yala_acc10,
    )
