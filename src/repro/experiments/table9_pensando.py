"""Table 9: generalisation to a second SoC SmartNIC (Pensando).

A Firewall NF (hardware flow-table walk) runs on the Pensando NIC
profile under memory contention and dynamic traffic; Yala and SLOMO are
trained and evaluated exactly as on BlueField-2. The same model family
must transfer because the architectural style (shared memory subsystem,
RR-queue accelerators) is the same.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.slomo import SlomoPredictor
from repro.core.predictor import YalaPredictor
from repro.experiments.common import EXPERIMENT_SEED, fmt, get_scale, render_table
from repro.ml.metrics import mape, within_tolerance_accuracy
from repro.nf.catalog import make_nf
from repro.nic.nic import SmartNic
from repro.nic.spec import pensando_spec
from repro.profiling.collector import ProfilingCollector
from repro.profiling.contention import ContentionLevel
from repro.rng import derive_seed, make_rng
from repro.traffic.profile import TrafficProfile


@dataclass
class Table9Result:
    slomo_mape: float
    slomo_acc5: float
    slomo_acc10: float
    yala_mape: float
    yala_acc5: float
    yala_acc10: float

    def render(self) -> str:
        return render_table(
            [
                "NF",
                "SLOMO MAPE%", "SLOMO ±5%", "SLOMO ±10%",
                "Yala MAPE%", "Yala ±5%", "Yala ±10%",
            ],
            [
                [
                    "firewall (Pensando)",
                    fmt(self.slomo_mape), fmt(self.slomo_acc5), fmt(self.slomo_acc10),
                    fmt(self.yala_mape), fmt(self.yala_acc5), fmt(self.yala_acc10),
                ]
            ],
            title="Table 9 — generalisation to the Pensando SmartNIC",
        )


def run(scale: str = "default", seed: int = EXPERIMENT_SEED) -> Table9Result:
    """Regenerate Table 9."""
    resolved = get_scale(scale)
    nic = SmartNic(pensando_spec(), seed=derive_seed(seed, "pensando"))
    collector = ProfilingCollector(nic)
    firewall = make_nf("firewall")
    rng = make_rng(seed)

    yala = YalaPredictor(firewall, collector, seed=derive_seed(seed, "t9-yala"))
    yala.train(quota=resolved.quota)
    slomo = SlomoPredictor("firewall", seed=derive_seed(seed, "t9-slomo"))
    slomo.train(collector, firewall, n_samples=resolved.slomo_samples)

    truths, yala_preds, slomo_preds = [], [], []
    for _ in range(resolved.random_profiles):
        traffic = TrafficProfile(
            int(rng.uniform(1_000, 500_000)), int(rng.uniform(64, 1500)), 600.0
        )
        contention = ContentionLevel(
            mem_car=float(rng.uniform(30.0, 250.0)),
            mem_wss_mb=float(rng.uniform(2.0, 12.0)),
        )
        truth = collector.profile_one(firewall, contention, traffic).throughput_mpps
        counters = collector.bench_counters(contention)
        truths.append(truth)
        yala_preds.append(
            yala.predict(traffic, [__bench_spec(contention)])
        )
        slomo_preds.append(
            slomo.predict(counters, traffic, n_competitors=contention.actor_count)
        )
    truths_arr = np.array(truths)
    return Table9Result(
        slomo_mape=mape(truths_arr, np.array(slomo_preds)),
        slomo_acc5=within_tolerance_accuracy(truths_arr, np.array(slomo_preds), 5.0),
        slomo_acc10=within_tolerance_accuracy(truths_arr, np.array(slomo_preds), 10.0),
        yala_mape=mape(truths_arr, np.array(yala_preds)),
        yala_acc5=within_tolerance_accuracy(truths_arr, np.array(yala_preds), 5.0),
        yala_acc10=within_tolerance_accuracy(truths_arr, np.array(yala_preds), 10.0),
    )


def __bench_spec(contention: ContentionLevel):
    from repro.core.predictor import CompetitorSpec

    return CompetitorSpec.bench(contention)
