"""Figure 3: traffic attributes change contention behaviour.

(a) FlowStats throughput vs mem-bench cache access rate for three
traffic profiles (4K / 8K / 16K flows).

(b) Prediction error of a fixed-profile model (SLOMO) on the default
profile vs. on randomly drawn other profiles, for FlowStats,
FlowClassifier and FlowTracker — scored without extrapolation through
the batch engine's ``slomo_raw`` arm
(:mod:`repro.experiments.batch`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.batch import EvaluationCase, group_by_target, score_cases
from repro.experiments.common import (
    EXPERIMENT_SEED,
    ExperimentScale,
    fmt,
    get_scale,
    render_table,
)
from repro.experiments.context import ExperimentContext, get_context
from repro.nf.catalog import make_nf
from repro.nf.synthetic import mem_bench
from repro.profiling.contention import ContentionLevel
from repro.rng import make_rng
from repro.traffic.profile import TrafficProfile

_PART_B_NFS = ("flowstats", "flowclassifier", "flowtracker")


@dataclass
class Fig3Result:
    """Throughput series (a) and error distributions (b)."""

    cars: list[float]
    series: dict[int, list[float]]  # flow count -> throughput per CAR
    default_errors: dict[str, list[float]]
    other_errors: dict[str, list[float]]

    def render(self) -> str:
        rows = [
            [f"{flows // 1000}K flows"] + [fmt(v, 3) for v in values]
            for flows, values in self.series.items()
        ]
        part_a = render_table(
            ["profile"] + [fmt(c, 0) for c in self.cars],
            rows,
            title="Figure 3(a) — FlowStats tput (Mpps) vs competing CAR (Mref/s)",
        )
        rows_b = []
        for name in self.default_errors:
            rows_b.append(
                [
                    name,
                    fmt(float(np.median(self.default_errors[name]))),
                    fmt(float(np.median(self.other_errors[name]))),
                ]
            )
        part_b = render_table(
            ["NF", "median err % (default)", "median err % (other profiles)"],
            rows_b,
            title="Figure 3(b) — fixed-profile model under traffic change",
        )
        return part_a + "\n\n" + part_b


def build_cases(
    context: ExperimentContext,
    scale: str | ExperimentScale,
    seed: int = EXPERIMENT_SEED,
) -> list[EvaluationCase]:
    """Sample the part-(b) case list (same rng order as the seed loop).

    ``tag`` records which error bucket the case belongs to:
    ``"default"`` for the default traffic profile, ``"other"`` for the
    randomly drawn ones (§2.2.2).
    """
    resolved = get_scale(scale)
    collector = context.yala.collector
    rng = make_rng(seed)
    cases = []
    for name in _PART_B_NFS:
        nf = make_nf(name)
        for index in range(resolved.random_profiles):
            contention = ContentionLevel(
                mem_car=float(rng.uniform(30, 250)),
                mem_wss_mb=float(rng.uniform(2, 12)),
            )
            counters = collector.bench_counters(contention)
            # Half the evaluations on the default profile, half on
            # random profiles with up to 500K flows (§2.2.2).
            if index % 2 == 0:
                traffic = TrafficProfile()
                bucket = "default"
            else:
                traffic = TrafficProfile(
                    int(rng.uniform(1_000, 500_000)), 1500, 600.0
                )
                bucket = "other"
            truth = collector.profile_one(nf, contention, traffic).throughput_mpps
            cases.append(
                EvaluationCase(
                    target=name,
                    traffic=traffic,
                    truth=truth,
                    slomo_counters=counters,
                    slomo_n_competitors=contention.actor_count,
                    tag=bucket,
                )
            )
    return cases


def run(scale: str = "default", seed: int = EXPERIMENT_SEED) -> Fig3Result:
    """Regenerate Figure 3."""
    resolved = get_scale(scale)
    context = get_context(resolved)
    nic = context.nic

    # ------------------------------------------------------------- (a)
    cars = list(np.linspace(25.0, 250.0, resolved.sweep_points))
    series: dict[int, list[float]] = {}
    flowstats = make_nf("flowstats")
    for flows in (4_000, 8_000, 16_000):
        traffic = TrafficProfile(flows, 1500, 600.0)
        series[flows] = [
            nic.run(
                [flowstats.demand(traffic), mem_bench(float(car), wss_mb=10.0)]
            ).throughput_of("flowstats")
            for car in cars
        ]

    # ------------------------------------------------------------- (b)
    # Figure 3(b) shows the *fixed-profile* model without
    # extrapolation — the motivation for traffic awareness.
    cases = build_cases(context, resolved, seed)
    scored = score_cases(context, cases, yala=False, slomo=False, slomo_raw=True)
    groups = group_by_target(scored)
    default_errors: dict[str, list[float]] = {}
    other_errors: dict[str, list[float]] = {}
    for name in _PART_B_NFS:
        default_errors[name] = []
        other_errors[name] = []
        for index in groups.get(name, []):
            case = scored[index]
            bucket = default_errors if case.tag == "default" else other_errors
            bucket[name].append(case.slomo_raw_error_pct)
    return Fig3Result(
        cars=cars,
        series=series,
        default_errors=default_errors,
        other_errors=other_errors,
    )
