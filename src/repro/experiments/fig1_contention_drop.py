"""Figure 1: throughput drop of the evaluation NFs under co-location.

Each target NF is co-located with up to three other NFs drawn randomly
from the catalog; we report the median / 95th / 99th percentile drop
ratios against the solo baseline.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SimulationError
from repro.experiments.common import EXPERIMENT_SEED, fmt, get_scale, render_table
from repro.nf.catalog import EVALUATION_NF_NAMES, make_nf
from repro.nic.nic import SmartNic
from repro.nic.spec import bluefield2_spec
from repro.rng import make_rng
from repro.traffic.profile import TrafficProfile


@dataclass
class Fig1Result:
    """Per-NF drop percentiles (percent)."""

    drops: dict[str, list[float]]

    def percentiles(self, nf_name: str) -> tuple[float, float, float]:
        values = self.drops[nf_name]
        return (
            float(np.percentile(values, 50)),
            float(np.percentile(values, 95)),
            float(np.percentile(values, 99)),
        )

    def render(self) -> str:
        rows = []
        for name in self.drops:
            median, p95, p99 = self.percentiles(name)
            rows.append([name, fmt(median), fmt(p95), fmt(p99)])
        return render_table(
            ["NF", "median drop %", "95%ile drop %", "99%ile drop %"],
            rows,
            title="Figure 1 — throughput drop under random co-location",
        )


def run(scale: str = "default", seed: int = EXPERIMENT_SEED) -> Fig1Result:
    """Regenerate Figure 1.

    The whole drop sweep — per-target solo baselines plus every sampled
    co-location — is built as one scenario list and solved in a single
    :meth:`SmartNic.run_batch` call. The competitor sampling keeps the
    seed loop's rng order (draws never depended on run results), and
    infeasible combinations are skipped from the returned per-scenario
    errors exactly where the loop's ``try/except`` skipped them, so the
    rendered figure is unchanged.
    """
    resolved = get_scale(scale)
    nic = SmartNic(bluefield2_spec(), seed=seed)
    rng = make_rng(seed)
    traffic = TrafficProfile()
    combos = max(resolved.combos_per_nf * 3, 8)

    scenarios: list[list] = []
    combo_slots: dict[str, list[int]] = {}
    solo_slots: dict[str, int] = {}
    for target_name in EVALUATION_NF_NAMES:
        target = make_nf(target_name)
        solo_slots[target_name] = len(scenarios)
        scenarios.append([target.demand(traffic)])
        slots = combo_slots.setdefault(target_name, [])
        for _ in range(combos):
            n_competitors = int(rng.integers(1, 4))
            competitor_names = [
                str(rng.choice(EVALUATION_NF_NAMES)) for _ in range(n_competitors)
            ]
            demands = [target.demand(traffic)]
            for index, name in enumerate(competitor_names):
                demands.append(
                    make_nf(name).demand(traffic, instance=f"{name}#{index}")
                )
            slots.append(len(scenarios))
            scenarios.append(demands)
    solved = nic.run_batch(scenarios, on_error="return")

    drops: dict[str, list[float]] = {}
    for target_name in EVALUATION_NF_NAMES:
        solo_result = solved[solo_slots[target_name]]
        if isinstance(solo_result, Exception):
            # The seed loop ran solo baselines outside its try/except.
            raise solo_result
        solo = solo_result.throughput_of(target_name)
        samples = []
        for slot in combo_slots[target_name]:
            result = solved[slot]
            if isinstance(result, Exception):
                if isinstance(result, SimulationError):
                    continue
                raise result
            achieved = result.throughput_of(target_name)
            samples.append(100.0 * max(0.0, 1.0 - achieved / solo))
        drops[target_name] = samples
    return Fig1Result(drops=drops)
