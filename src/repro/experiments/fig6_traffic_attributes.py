"""Figure 6: FlowStats throughput as a function of traffic attributes.

(a) Throughput vs flow count against mem-bench working sets of 0.5, 5
and 10 MB: piece-wise decline that flattens once the LLC share is
saturated.

(b) Normalised throughput vs competing working set at five packet
sizes: FlowStats processes only headers, so the curves must collapse
onto each other (packet-size insensitivity — the basis for attribute
pruning).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.common import EXPERIMENT_SEED, fmt, get_scale, render_table
from repro.nf.catalog import make_nf
from repro.nf.synthetic import mem_bench
from repro.nic.nic import SmartNic
from repro.nic.spec import bluefield2_spec
from repro.traffic.profile import TrafficProfile

WSS_SETTINGS_MB: tuple[float, ...] = (0.5, 5.0, 10.0)
PACKET_SIZES: tuple[int, ...] = (64, 128, 256, 512, 1024)
_CAR = 100.0


@dataclass
class Fig6Result:
    """Flow-count series (a) and normalised packet-size series (b)."""

    flow_counts: list[int]
    by_wss: dict[float, list[float]]  # wss MB -> tput per flow count
    by_packet_size: dict[int, list[float]]  # pkt -> normalised tput per wss

    def render(self) -> str:
        rows_a = [
            [f"WSS {wss} MB"] + [fmt(v, 3) for v in values]
            for wss, values in self.by_wss.items()
        ]
        part_a = render_table(
            ["series"] + [f"{f // 1000}K" for f in self.flow_counts],
            rows_a,
            title="Figure 6(a) — FlowStats tput (Mpps) vs flow count",
        )
        rows_b = [
            [f"{pkt} B"] + [fmt(v, 3) for v in values]
            for pkt, values in self.by_packet_size.items()
        ]
        part_b = render_table(
            ["packet size"] + [f"WSS {w} MB" for w in WSS_SETTINGS_MB],
            rows_b,
            title="Figure 6(b) — normalised FlowStats tput vs competing WSS",
        )
        return part_a + "\n\n" + part_b


def run(scale: str = "default", seed: int = EXPERIMENT_SEED) -> Fig6Result:
    """Regenerate Figure 6."""
    resolved = get_scale(scale)
    nic = SmartNic(bluefield2_spec(), seed=seed, noise_std=0.0)
    flowstats = make_nf("flowstats")

    flow_counts = [
        int(f)
        for f in np.linspace(1_000, 70_000, max(resolved.sweep_points, 5))
    ]
    by_wss: dict[float, list[float]] = {}
    for wss in WSS_SETTINGS_MB:
        values = []
        for flows in flow_counts:
            traffic = TrafficProfile(flows, 1500, 600.0)
            result = nic.run(
                [flowstats.demand(traffic), mem_bench(_CAR, wss_mb=wss)]
            )
            values.append(result.throughput_of("flowstats"))
        by_wss[wss] = values

    by_packet_size: dict[int, list[float]] = {}
    for packet_size in PACKET_SIZES:
        traffic = TrafficProfile(16_000, packet_size, 600.0)
        solo = nic.run_solo(flowstats.demand(traffic)).throughput_mpps
        values = []
        for wss in WSS_SETTINGS_MB:
            result = nic.run(
                [flowstats.demand(traffic), mem_bench(_CAR, wss_mb=wss)]
            )
            values.append(result.throughput_of("flowstats") / solo)
        by_packet_size[packet_size] = values
    return Fig6Result(
        flow_counts=flow_counts,
        by_wss=by_wss,
        by_packet_size=by_packet_size,
    )
