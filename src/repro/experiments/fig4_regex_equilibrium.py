"""Figure 4: round-robin equilibrium on the regex accelerator.

Co-run the closed-loop synthetic regex-NF with regex-bench while the
bench's request arrival rate sweeps upward. The paper's two signature
observations must appear: a linear throughput decline for regex-NF, and
an equilibrium where both workloads settle at the same rate, with the
equilibrium level depending on regex-NF's MTBR.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.common import EXPERIMENT_SEED, fmt, get_scale, render_table
from repro.nf.synthetic import regex_bench, regex_nf
from repro.nic.nic import SmartNic
from repro.nic.spec import bluefield2_spec
from repro.traffic.profile import TrafficProfile

#: MTBR settings of regex-NF, as in the paper's legend (matches/MB).
MTBR_SETTINGS: tuple[float, ...] = (194.0, 220.0, 417.0, 628.0)

#: Small-packet profile so the NIC line rate never caps request rates.
_SMALL_PACKETS = TrafficProfile(flow_count=1_000, packet_size=86, mtbr=194.0)


@dataclass
class Fig4Result:
    """Throughput curves per MTBR setting."""

    arrival_rates: list[float]
    nf_series: dict[float, list[float]]  # mtbr -> regex-NF tput per rate
    bench_series: dict[float, list[float]]

    def equilibrium(self, mtbr: float) -> float:
        """Equilibrium throughput (tail of the curve)."""
        return self.nf_series[mtbr][-1]

    def render(self) -> str:
        rows = []
        for mtbr in self.nf_series:
            rows.append(
                [f"regex-NF @{mtbr:.0f}"]
                + [fmt(v, 2) for v in self.nf_series[mtbr]]
            )
            rows.append(
                [f"bench (vs @{mtbr:.0f})"]
                + [fmt(v, 2) for v in self.bench_series[mtbr]]
            )
        return render_table(
            ["series"] + [fmt(r, 1) for r in self.arrival_rates],
            rows,
            title="Figure 4 — throughput (Mpps) vs regex-bench arrival rate (Mpps)",
        )


def run(scale: str = "default", seed: int = EXPERIMENT_SEED) -> Fig4Result:
    """Regenerate Figure 4."""
    resolved = get_scale(scale)
    nic = SmartNic(bluefield2_spec(), seed=seed, noise_std=0.0)
    points = max(resolved.sweep_points * 2, 8)
    arrival_rates = list(np.linspace(0.001, 40.0, points))

    nf_series: dict[float, list[float]] = {}
    bench_series: dict[float, list[float]] = {}
    for mtbr in MTBR_SETTINGS:
        nf = regex_nf(mtbr=mtbr, payload_bytes=32.0)
        nf_values, bench_values = [], []
        for rate in arrival_rates:
            bench = regex_bench(float(rate), mtbr=417.0, payload_bytes=32.0)
            result = nic.run([nf.demand(_SMALL_PACKETS), bench])
            nf_values.append(result.throughput_of("regex-nf"))
            bench_values.append(result.throughput_of("regex-bench"))
        nf_series[mtbr] = nf_values
        bench_series[mtbr] = bench_values
    return Fig4Result(
        arrival_rates=arrival_rates,
        nf_series=nf_series,
        bench_series=bench_series,
    )
