"""Shared experiment configuration and rendering helpers."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.traffic.profile import TrafficProfile

#: Seed used by the whole experiment harness.
EXPERIMENT_SEED = 2025


@dataclass(frozen=True)
class ExperimentScale:
    """Knobs that trade experiment fidelity for runtime."""

    name: str
    quota: int  # Yala adaptive-profiling quota per NF
    slomo_samples: int  # SLOMO training samples per NF
    traffic_profiles: int  # distinct traffic profiles per NF
    combos_per_nf: int  # sampled competitor combinations per target NF
    random_profiles: int  # random traffic profiles in traffic deep dives
    sweep_points: int  # points per 1-D sweep
    sequences: int  # scheduling sequences
    arrivals: int  # NFs per scheduling sequence
    fleet_epochs: int = 8  # epochs of the fleet serving simulation
    fleet_arrival_rate: float = 1.2  # fleet service arrivals per epoch


SCALES: dict[str, ExperimentScale] = {
    "smoke": ExperimentScale(
        name="smoke",
        quota=120,
        slomo_samples=120,
        traffic_profiles=2,
        combos_per_nf=3,
        random_profiles=8,
        sweep_points=4,
        sequences=1,
        arrivals=10,
        fleet_epochs=8,
        fleet_arrival_rate=1.2,
    ),
    "default": ExperimentScale(
        name="default",
        quota=400,
        slomo_samples=400,
        traffic_profiles=3,
        combos_per_nf=6,
        random_profiles=20,
        sweep_points=6,
        sequences=2,
        arrivals=24,
        fleet_epochs=16,
        fleet_arrival_rate=1.5,
    ),
    "full": ExperimentScale(
        name="full",
        quota=400,
        slomo_samples=400,
        traffic_profiles=9,
        combos_per_nf=15,
        random_profiles=60,
        sweep_points=9,
        sequences=5,
        arrivals=60,
        fleet_epochs=40,
        fleet_arrival_rate=2.0,
    ),
}


def get_scale(scale: str | ExperimentScale) -> ExperimentScale:
    """Resolve a scale name or pass an explicit scale through."""
    if isinstance(scale, ExperimentScale):
        return scale
    try:
        return SCALES[scale]
    except KeyError:
        raise ConfigurationError(
            f"unknown scale {scale!r}; known: {sorted(SCALES)}"
        ) from None


def evaluation_traffic_profiles(count: int, seed: int = 17) -> list[TrafficProfile]:
    """The "9 distinct traffic profiles" of §7.2 (deterministic).

    The default profile first, then spread over flow count, packet size
    and MTBR.
    """
    if count < 1:
        raise ConfigurationError("count must be >= 1")
    presets = [
        TrafficProfile(16_000, 1500, 600.0),
        TrafficProfile(64_000, 1500, 600.0),
        TrafficProfile(4_000, 1500, 600.0),
        TrafficProfile(16_000, 512, 600.0),
        TrafficProfile(16_000, 1500, 150.0),
        TrafficProfile(200_000, 1024, 400.0),
        TrafficProfile(16_000, 1500, 1000.0),
        TrafficProfile(100_000, 256, 800.0),
        TrafficProfile(350_000, 1500, 300.0),
    ]
    if count <= len(presets):
        return presets[:count]
    rng = np.random.default_rng(seed)
    extra = [
        TrafficProfile(
            int(rng.uniform(1_000, 500_000)),
            int(rng.uniform(64, 1500)),
            float(rng.uniform(0.0, 1100.0)),
        )
        for _ in range(count - len(presets))
    ]
    return presets + extra


def render_table(
    headers: list[str], rows: list[list[object]], title: str = ""
) -> str:
    """Render an ASCII table like the paper's result tables."""
    cells = [[str(c) for c in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in cells)) if cells else len(headers[i])
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    rule = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(rule)
    for row in cells:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def fmt(value: float, digits: int = 1) -> str:
    """Format a number for table rendering."""
    return f"{value:.{digits}f}"
