"""Figure 5: execution pattern decides how contention composes.

Throughput of a synthetic pipeline NF (top) and run-to-completion NF
(bottom) as a function of competing cache access rate (memory) and
competing match rate (regex accelerator). The pipeline NF must stay flat
against memory contention while the regex stage is its slowest stage
(O1); the run-to-completion NF must decrease monotonically in both
dimensions (O2).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.common import EXPERIMENT_SEED, fmt, get_scale, render_table
from repro.nf.synthetic import mem_bench, pipeline_probe_nf, regex_bench, rtc_probe_nf
from repro.nic.nic import SmartNic
from repro.nic.spec import bluefield2_spec
from repro.traffic.profile import TrafficProfile

#: Competing regex match rates, Kmatches/s (paper's legend).
MATCH_RATES: tuple[float, ...] = (0.0, 520.0, 2340.0, 2600.0)
#: regex-bench request rate used to reach the match rates (Mpps).
_BENCH_RATE = 2.0
_BENCH_PAYLOAD = 1024.0


@dataclass
class Fig5Result:
    """Throughput grids (Kpps) indexed [match_rate][car_index]."""

    cars: list[float]
    pipeline: dict[float, list[float]]
    run_to_completion: dict[float, list[float]]

    def render(self) -> str:
        def table(series: dict[float, list[float]], label: str) -> str:
            rows = [
                [f"{int(match)} Kmatch/s"] + [fmt(v, 0) for v in values]
                for match, values in series.items()
            ]
            return render_table(
                ["competing match rate"] + [fmt(c, 0) for c in self.cars],
                rows,
                title=f"Figure 5 ({label}) — tput (Kpps) vs competing CAR (Mref/s)",
            )

        return (
            table(self.pipeline, "top: pipeline NF")
            + "\n\n"
            + table(self.run_to_completion, "bottom: run-to-completion NF")
        )


def run(scale: str = "default", seed: int = EXPERIMENT_SEED) -> Fig5Result:
    """Regenerate Figure 5."""
    resolved = get_scale(scale)
    nic = SmartNic(bluefield2_spec(), seed=seed, noise_std=0.0)
    traffic = TrafficProfile()
    cars = list(np.linspace(30.0, 246.0, resolved.sweep_points))

    grids: dict[str, dict[float, list[float]]] = {}
    for builder in (pipeline_probe_nf, rtc_probe_nf):
        nf = builder()
        series: dict[float, list[float]] = {}
        for match_rate in MATCH_RATES:
            matches_per_request = (match_rate / 1000.0) / _BENCH_RATE
            mtbr = matches_per_request * 1e6 / _BENCH_PAYLOAD
            values = []
            for car in cars:
                workloads = [
                    nf.demand(traffic),
                    mem_bench(float(car), wss_mb=8.0, cores=3),
                ]
                if match_rate > 0:
                    workloads.append(
                        regex_bench(
                            _BENCH_RATE,
                            mtbr=mtbr,
                            payload_bytes=_BENCH_PAYLOAD,
                            cores=1,
                        )
                    )
                result = nic.run(workloads)
                values.append(1000.0 * result.throughput_of(nf.name))
            series[match_rate] = values
        grids[nf.name] = series
    return Fig5Result(
        cars=cars,
        pipeline=grids["p-nf"],
        run_to_completion=grids["r-nf"],
    )
