"""Fleet serving: the §7.5 use cases run online over time.

Every policy drives the *same* seeded churn/traffic schedule through
the fleet simulator (:mod:`repro.fleet.engine`): services arrive and
depart, traffic evolves along per-service traces, the policy places
and (for ``rebalance``) migrates services, and the simulator scores
every NIC's residents. The rendered table is the dynamic analogue of
Table 6 — wastage and SLA violations — plus the serving-system columns
a one-shot snapshot cannot express: utilisation, aggregate throughput
and migration count.

Two registry entries share this module: ``fleet`` runs the
time-stepped epoch engine; ``fleet-event`` (:func:`run_event`) runs the
continuous-time event engine with sub-epoch Poisson arrival times, and
appends each policy's second-granularity violation/drop integrals to
the table.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments.common import EXPERIMENT_SEED, fmt, get_scale, render_table
from repro.experiments.context import get_context
from repro.fleet.config import FleetConfig, simulate
from repro.fleet.engine import EventReport, FleetReport
from repro.fleet.policies import FLEET_POLICY_NAMES, PlacementModel
from repro.nf.catalog import EVALUATION_NF_NAMES


@dataclass
class FleetResult:
    reports: dict[str, FleetReport]
    #: Continuous-time reports, populated when ``engine="event"``.
    event_reports: dict[str, EventReport] = field(default_factory=dict)

    def render(self) -> str:
        rows = []
        for name, report in self.reports.items():
            mean_tput = (
                sum(m.aggregate_throughput_mpps for m in report.metrics)
                / len(report.metrics)
                if report.metrics
                else 0.0
            )
            rows.append(
                [
                    name,
                    fmt(report.mean_nics, 1),
                    fmt(report.mean_utilisation_pct),
                    fmt(report.mean_wastage_pct),
                    fmt(report.violation_rate_pct),
                    fmt(mean_tput, 2),
                    report.total_migrations,
                ]
            )
        table = render_table(
            [
                "policy",
                "mean NICs",
                "utilisation %",
                "wastage %",
                "SLA violations %",
                "mean tput Mpps",
                "migrations",
            ],
            rows,
            title="Fleet — traffic-aware serving over time (dynamic Table 6)",
        )
        if not self.event_reports:
            return table
        lines = [table]
        for name, report in self.event_reports.items():
            lines.append(
                f"event {name}: violation-seconds "
                f"{report.violation_service_seconds:.3f} | drop-seconds "
                f"{report.drop_service_seconds:.3f} | observations "
                f"{len(report.observations)} ({report.probes} probes)"
            )
        return "\n".join(lines)


def run(
    scale: str = "default",
    seed: int = EXPERIMENT_SEED,
    engine: str = "epoch",
) -> FleetResult:
    """Run every fleet policy over one shared churn schedule."""
    resolved = get_scale(scale)
    context = get_context(resolved)
    slomo = {name: context.slomo_for(name) for name in EVALUATION_NF_NAMES}
    model = PlacementModel(yala=context.yala, slomo_predictors=slomo)
    reports: dict[str, FleetReport] = {}
    event_reports: dict[str, EventReport] = {}
    for name in FLEET_POLICY_NAMES:
        config = FleetConfig(
            policy=name,
            engine=engine,
            epochs=resolved.fleet_epochs,
            seed=seed,
            nf_pool=tuple(EVALUATION_NF_NAMES),
            arrival_rate=resolved.fleet_arrival_rate,
        )
        report = simulate(config, model=model)
        if engine == "event":
            assert isinstance(report, EventReport)
            event_reports[name] = report
            reports[name] = report.fleet
        else:
            assert isinstance(report, FleetReport)
            reports[name] = report
    return FleetResult(reports=reports, event_reports=event_reports)


def run_event(scale: str = "default", seed: int = EXPERIMENT_SEED) -> FleetResult:
    """The ``fleet-event`` registry entry: continuous-time engine."""
    return run(scale=scale, seed=seed, engine="event")
