"""Fleet serving: the §7.5 use cases run online over time.

Every policy drives the *same* seeded churn/traffic schedule through
the time-stepped fleet simulator (:mod:`repro.fleet.engine`): services
arrive and depart, traffic evolves along per-service traces, the
policy places and (for ``rebalance``) migrates services, and the
simulator scores every NIC's residents each epoch. The rendered table
is the dynamic analogue of Table 6 — wastage and SLA violations — plus
the serving-system columns a one-shot snapshot cannot express:
utilisation, aggregate throughput and migration count.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import EXPERIMENT_SEED, fmt, get_scale, render_table
from repro.experiments.context import get_context
from repro.fleet.churn import ChurnProcess
from repro.fleet.engine import FleetEngine, FleetReport
from repro.fleet.policies import FLEET_POLICY_NAMES, PlacementModel, make_policy
from repro.nf.catalog import EVALUATION_NF_NAMES
from repro.rng import derive_seed


@dataclass
class FleetResult:
    reports: dict[str, FleetReport]

    def render(self) -> str:
        rows = []
        for name, report in self.reports.items():
            mean_tput = (
                sum(m.aggregate_throughput_mpps for m in report.metrics)
                / len(report.metrics)
                if report.metrics
                else 0.0
            )
            rows.append(
                [
                    name,
                    fmt(report.mean_nics, 1),
                    fmt(report.mean_utilisation_pct),
                    fmt(report.mean_wastage_pct),
                    fmt(report.violation_rate_pct),
                    fmt(mean_tput, 2),
                    report.total_migrations,
                ]
            )
        return render_table(
            [
                "policy",
                "mean NICs",
                "utilisation %",
                "wastage %",
                "SLA violations %",
                "mean tput Mpps",
                "migrations",
            ],
            rows,
            title="Fleet — traffic-aware serving over time (dynamic Table 6)",
        )


def run(scale: str = "default", seed: int = EXPERIMENT_SEED) -> FleetResult:
    """Run every fleet policy over one shared churn schedule."""
    resolved = get_scale(scale)
    context = get_context(resolved)
    slomo = {name: context.slomo_for(name) for name in EVALUATION_NF_NAMES}
    model = PlacementModel(yala=context.yala, slomo_predictors=slomo)
    churn = ChurnProcess(
        nf_names=EVALUATION_NF_NAMES,
        seed=derive_seed(seed, "fleet-churn"),
        arrival_rate=resolved.fleet_arrival_rate,
    )
    reports = {}
    for name in FLEET_POLICY_NAMES:
        engine = FleetEngine(make_policy(name), churn, model)
        reports[name] = engine.run(resolved.fleet_epochs)
    return FleetResult(reports=reports)
