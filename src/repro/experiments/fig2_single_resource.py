"""Figure 2: single-resource models fail under multi-resource contention.

(a) Apply a memory-only model (SLOMO) and a regex-only model (Yala's
queueing model used alone) to FlowMonitor under combined memory + regex
contention; report the error distributions.

(b) Compose the two single-resource models with naive sum / min
composition for a run-to-completion NF (NF1) and a pipeline NF (NF2)
and report the MAPE of each composition.

The SLOMO arm of (a) and the memory-model arm of (b) are scored in
batched passes (:mod:`repro.experiments.batch` /
:meth:`MemoryContentionModel.predict_batch`); the white-box queueing
evaluations stay per-case — they are closed-form and cheap.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.baselines import compose_min, compose_sum
from repro.experiments.batch import EvaluationCase, score_cases
from repro.experiments.common import (
    EXPERIMENT_SEED,
    ExperimentScale,
    fmt,
    get_scale,
    render_table,
)
from repro.experiments.context import ExperimentContext, get_context
from repro.ml.metrics import error_box_stats
from repro.nf.catalog import make_nf
from repro.nf.synthetic import nf1, nf2
from repro.nic.workload import ExecutionPattern
from repro.profiling.contention import ContentionLevel
from repro.traffic.profile import TrafficProfile
from repro.core.predictor import YalaPredictor
from repro.rng import derive_seed


@dataclass
class Fig2Result:
    """Error distributions (a) and composition MAPEs (b)."""

    memory_only_errors: list[float]
    regex_only_errors: list[float]
    composition_mape: dict[tuple[str, str], float]  # (nf, approach) -> MAPE

    def box(self, which: str) -> dict[str, float]:
        errors = (
            self.memory_only_errors if which == "memory" else self.regex_only_errors
        )
        return error_box_stats(np.array(errors))

    def render(self) -> str:
        mem_box = self.box("memory")
        regex_box = self.box("regex")
        part_a = render_table(
            ["model", "median err %", "p95 err %", "max err %"],
            [
                ["memory-only (SLOMO)", fmt(mem_box["median"]), fmt(mem_box["p95"]), fmt(mem_box["max"])],
                ["regex-only", fmt(regex_box["median"]), fmt(regex_box["p95"]), fmt(regex_box["max"])],
            ],
            title="Figure 2(a) — single-resource models under multi-resource contention",
        )
        rows = [
            [nf, approach, fmt(mape)]
            for (nf, approach), mape in sorted(self.composition_mape.items())
        ]
        part_b = render_table(
            ["NF", "composition", "MAPE %"],
            rows,
            title="Figure 2(b) — naive composition of single-resource models",
        )
        return part_a + "\n\n" + part_b


def _contention_grid(points: int) -> list[ContentionLevel]:
    cars = np.linspace(60.0, 250.0, points)
    rates = np.linspace(0.4, 1.8, points)
    return [
        ContentionLevel(mem_car=float(c), regex_rate=float(r), regex_mtbr=800.0)
        for c in cars
        for r in rates
    ]


def build_cases(
    context: ExperimentContext, scale: str | ExperimentScale
) -> list[EvaluationCase]:
    """FlowMonitor cases over the part-(a) contention grid.

    ``tag`` carries the grid's contention level so the regex-only arm
    can re-derive its bench share per case.
    """
    resolved = get_scale(scale)
    collector = context.yala.collector
    target = make_nf("flowmonitor")
    traffic = TrafficProfile()
    cases = []
    for contention in _contention_grid(resolved.sweep_points):
        truth = collector.profile_one(target, contention, traffic).throughput_mpps
        cases.append(
            EvaluationCase(
                target="flowmonitor",
                traffic=traffic,
                truth=truth,
                slomo_counters=collector.bench_counters(contention),
                slomo_n_competitors=contention.actor_count,
                tag=contention,
            )
        )
    return cases


def run(scale: str = "default", seed: int = EXPERIMENT_SEED) -> Fig2Result:
    """Regenerate Figure 2."""
    resolved = get_scale(scale)
    context = get_context(resolved)
    collector = context.yala.collector
    traffic = TrafficProfile()

    # ------------------------------------------------------------- (a)
    target = make_nf("flowmonitor")
    yala_fm = context.yala.predictor_of("flowmonitor")
    cases = build_cases(context, resolved)
    memory_errors, regex_errors = [], []
    solo = collector.solo(target, traffic).throughput_mpps
    for case in score_cases(context, cases, yala=False):
        contention = case.tag
        share = yala_fm._bench_share("regex", contention)
        regex_pred = yala_fm._accelerator_throughput(
            "regex", traffic, [share] if share else [], solo
        )
        memory_errors.append(case.slomo_error_pct)
        regex_errors.append(100.0 * abs(regex_pred - case.truth) / case.truth)

    # ------------------------------------------------------------- (b)
    composition_mape: dict[tuple[str, str], float] = {}
    for label, builder, pattern in (
        ("NF1", nf1, ExecutionPattern.RUN_TO_COMPLETION),
        ("NF2", nf2, ExecutionPattern.PIPELINE),
    ):
        nf = builder(pattern)
        predictor = YalaPredictor(
            nf, collector, seed=derive_seed(seed, "fig2", label)
        )
        predictor.train(
            quota=max(resolved.quota // 2, 100), detect_pattern=False
        )
        grid = [
            contention.with_compression(1.0)
            if nf.uses_accelerators() and "compression" in nf.uses_accelerators()
            else contention
            for contention in _contention_grid(max(resolved.sweep_points - 2, 2))
        ]
        truths = [
            collector.profile_one(nf, contention, traffic).throughput_mpps
            for contention in grid
        ]
        solo = collector.solo(nf, traffic).throughput_mpps
        counters = [collector.bench_counters(contention) for contention in grid]
        # One batched GBR pass covers the whole grid's memory arm.
        memory_preds = predictor.memory_model.predict_batch(
            counters,
            [traffic] * len(grid),
            [contention.actor_count for contention in grid],
        )
        sums, mins = [], []
        for i, contention in enumerate(grid):
            per_resource = [float(memory_preds[i])]
            for accelerator in predictor.accel_models:
                share = predictor._bench_share(accelerator, contention)
                per_resource.append(
                    predictor._accelerator_throughput(
                        accelerator, traffic, [share] if share else [], solo
                    )
                )
            truth = truths[i]
            sums.append(
                100.0 * abs(compose_sum(solo, per_resource) - truth) / truth
            )
            mins.append(
                100.0 * abs(compose_min(solo, per_resource) - truth) / truth
            )
        composition_mape[(label, "sum")] = float(np.mean(sums))
        composition_mape[(label, "min")] = float(np.mean(mins))
    return Fig2Result(
        memory_only_errors=memory_errors,
        regex_only_errors=regex_errors,
        composition_mape=composition_mape,
    )
