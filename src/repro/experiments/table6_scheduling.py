"""Table 6: contention-aware scheduling use case.

Random NF arrival sequences are placed onto a growing SmartNIC cluster
with four strategies (monopolization, utilisation-greedy, SLOMO-aware,
Yala-aware); resource wastage is scored against an oracle packing and
SLA violations against simulator ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import EXPERIMENT_SEED, fmt, get_scale, render_table
from repro.experiments.context import get_context
from repro.nf.catalog import EVALUATION_NF_NAMES
from repro.rng import derive_seed
from repro.usecases.scheduling import Scheduler, SchedulingResult, random_arrivals


@dataclass
class Table6Result:
    results: dict[str, SchedulingResult]

    def render(self) -> str:
        rows = [
            [
                name,
                fmt(result.mean_wastage_pct),
                fmt(result.mean_violation_pct),
            ]
            for name, result in self.results.items()
        ]
        return render_table(
            ["strategy", "resource wastage %", "SLA violations %"],
            rows,
            title="Table 6 — contention-aware scheduling",
        )


def run(scale: str = "default", seed: int = EXPERIMENT_SEED) -> Table6Result:
    """Regenerate Table 6."""
    resolved = get_scale(scale)
    context = get_context(resolved)
    slomo = {name: context.slomo_for(name) for name in EVALUATION_NF_NAMES}
    scheduler = Scheduler(context.yala, slomo_predictors=slomo)
    sequences = [
        random_arrivals(
            resolved.arrivals, seed=derive_seed(seed, "arrivals", index)
        )
        for index in range(resolved.sequences)
    ]
    return Table6Result(results=scheduler.evaluate(sequences))
