"""Table 4: composition approaches vs execution patterns.

The synthetic NFs NF1 (memory + regex) and NF2 (memory + regex +
compression), each in a pipeline and a run-to-completion variant, are
predicted under multi-resource bench contention with three composition
rules over identical per-resource models: naive sum, naive min, and
Yala's execution-pattern-based choice (Eq. 2 / Eq. 3).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.baselines import compose_min, compose_sum
from repro.core.composition import compose
from repro.core.predictor import YalaPredictor
from repro.experiments.common import EXPERIMENT_SEED, fmt, get_scale, render_table
from repro.experiments.context import get_context
from repro.nf.synthetic import nf1, nf2
from repro.nic.workload import ExecutionPattern
from repro.profiling.contention import ContentionLevel
from repro.rng import derive_seed, make_rng
from repro.traffic.profile import TrafficProfile


@dataclass
class Table4Row:
    nf_label: str
    pattern: str
    sum_mape: float
    min_mape: float
    yala_mape: float


@dataclass
class Table4Result:
    rows: list[Table4Row]

    def render(self) -> str:
        table_rows = [
            [r.nf_label, r.pattern, fmt(r.sum_mape), fmt(r.min_mape), fmt(r.yala_mape)]
            for r in self.rows
        ]
        return render_table(
            ["NF", "pattern", "sum MAPE%", "min MAPE%", "Yala MAPE%"],
            table_rows,
            title="Table 4 — composition approaches across execution patterns",
        )


def run(scale: str = "default", seed: int = EXPERIMENT_SEED) -> Table4Result:
    """Regenerate Table 4."""
    resolved = get_scale(scale)
    context = get_context(resolved)
    collector = context.yala.collector
    rng = make_rng(seed)
    traffic = TrafficProfile()
    n_points = max(resolved.combos_per_nf * 2, 6)

    rows = []
    for label, builder in (("NF1", nf1), ("NF2", nf2)):
        for pattern in (ExecutionPattern.PIPELINE, ExecutionPattern.RUN_TO_COMPLETION):
            nf = builder(pattern)
            predictor = YalaPredictor(
                nf, collector, seed=derive_seed(seed, "table4", label, pattern.value)
            )
            predictor.train(
                quota=max(resolved.quota // 2, 100), detect_pattern=True
            )
            solo = collector.solo(nf, traffic).throughput_mpps
            # Contention levels are drawn up front (same rng order as the
            # seed loop) and their ground-truth co-runs solved as one
            # profiling batch; the rendered table is unchanged.
            levels = [
                ContentionLevel(
                    mem_car=float(rng.uniform(40.0, 250.0)),
                    mem_wss_mb=float(rng.uniform(2.0, 12.0)),
                    regex_rate=float(rng.uniform(0.2, 1.6)),
                    regex_mtbr=float(rng.uniform(200.0, 1000.0)),
                    compression_rate=(
                        float(rng.uniform(0.2, 1.2)) if label == "NF2" else 0.0
                    ),
                )
                for _ in range(n_points)
            ]
            truths = [
                sample.throughput_mpps
                for sample in collector.profile_many(
                    [(nf, contention, traffic) for contention in levels]
                )
            ]
            sums, mins, yalas = [], [], []
            for contention, truth in zip(levels, truths):
                counters = collector.bench_counters(contention)
                per_resource = [
                    predictor.memory_model.predict(
                        counters, traffic, contention.actor_count
                    )
                ]
                for accelerator in predictor.accel_models:
                    share = predictor._bench_share(accelerator, contention)
                    per_resource.append(
                        predictor._accelerator_throughput(
                            accelerator,
                            traffic,
                            [share] if share else [],
                            solo,
                        )
                    )
                sums.append(
                    100.0 * abs(compose_sum(solo, per_resource) - truth) / truth
                )
                mins.append(
                    100.0 * abs(compose_min(solo, per_resource) - truth) / truth
                )
                yalas.append(
                    100.0
                    * abs(compose(predictor.pattern, solo, per_resource) - truth)
                    / truth
                )
            rows.append(
                Table4Row(
                    nf_label=label,
                    pattern=pattern.value,
                    sum_mape=float(np.mean(sums)),
                    min_mape=float(np.mean(mins)),
                    yala_mape=float(np.mean(yalas)),
                )
            )
    return Table4Result(rows=rows)
