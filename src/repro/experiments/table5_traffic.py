"""Table 5 + Figure 7(b): traffic-awareness deep dive.

Traffic-sensitive NFs co-run with mem-bench only (memory contention,
the setting SLOMO was built for) while traffic profiles are drawn
randomly; Yala's traffic-aware models are compared against SLOMO with
sensitivity extrapolation. Figure 7(b) splits errors on the flow-count
deviation between training and testing: low (<= 20%) vs high (> 20%),
and additionally reports SLOMO without extrapolation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.predictor import CompetitorSpec
from repro.experiments.common import EXPERIMENT_SEED, fmt, get_scale, render_table
from repro.experiments.context import get_context
from repro.ml.metrics import mape, within_tolerance_accuracy
from repro.nf.catalog import make_nf
from repro.profiling.contention import ContentionLevel
from repro.rng import make_rng
from repro.traffic.profile import TrafficProfile

#: The traffic-sensitive NFs of Table 5.
TABLE5_NFS: tuple[str, ...] = (
    "nids",
    "flowclassifier",
    "nat",
    "flowtracker",
    "flowstats",
    "flowmonitor",
    "iptunnel",
)


@dataclass
class Table5Row:
    nf_name: str
    slomo_mape: float
    slomo_acc5: float
    slomo_acc10: float
    yala_mape: float
    yala_acc5: float
    yala_acc10: float


@dataclass
class Table5Result:
    rows: list[Table5Row]
    fig7b: dict[tuple[str, str], list[float]]  # (predictor, range) -> errors

    def render(self) -> str:
        table_rows = [
            [
                r.nf_name,
                fmt(r.slomo_mape), fmt(r.slomo_acc5), fmt(r.slomo_acc10),
                fmt(r.yala_mape), fmt(r.yala_acc5), fmt(r.yala_acc10),
            ]
            for r in sorted(self.rows, key=lambda r: r.yala_mape)
        ]
        part_a = render_table(
            [
                "NF",
                "SLOMO MAPE%", "SLOMO ±5%", "SLOMO ±10%",
                "Yala MAPE%", "Yala ±5%", "Yala ±10%",
            ],
            table_rows,
            title="Table 5 — memory-only contention, dynamic traffic profiles",
        )
        rows_b = []
        for predictor in ("yala", "slomo", "slomo-no-extrapolation"):
            low = self.fig7b.get((predictor, "low"), [])
            high = self.fig7b.get((predictor, "high"), [])
            rows_b.append(
                [
                    predictor,
                    fmt(float(np.median(low))) if low else "-",
                    fmt(float(np.median(high))) if high else "-",
                ]
            )
        part_b = render_table(
            ["predictor", "median err % (low dev.)", "median err % (high dev.)"],
            rows_b,
            title="Figure 7(b) — error vs flow-count deviation from training",
        )
        return part_a + "\n\n" + part_b


def run(scale: str = "default", seed: int = EXPERIMENT_SEED) -> Table5Result:
    """Regenerate Table 5 and Figure 7(b)."""
    resolved = get_scale(scale)
    context = get_context(resolved)
    yala = context.yala
    collector = yala.collector
    rng = make_rng(seed)

    rows = []
    fig7b: dict[tuple[str, str], list[float]] = {}
    for target_name in TABLE5_NFS:
        target = make_nf(target_name)
        slomo = context.slomo_for(target_name)
        train_flows = slomo.train_traffic.flow_count
        truths, yala_preds, slomo_preds = [], [], []
        for index in range(resolved.random_profiles):
            # A third of the profiles stay within ±20% of the training
            # flow count (Fig. 7b's "low deviation" range); the rest
            # roam the full space up to 500K flows.
            if index % 3 == 0:
                flows = int(train_flows * rng.uniform(0.8, 1.2))
            else:
                flows = int(rng.uniform(1_000, 500_000))
            traffic = TrafficProfile(
                flows,
                int(rng.uniform(64, 1500)),
                float(rng.uniform(0.0, 1100.0)),
            )
            contention = ContentionLevel(
                mem_car=float(rng.uniform(30.0, 250.0)),
                mem_wss_mb=float(rng.uniform(2.0, 12.0)),
            )
            truth = collector.profile_one(target, contention, traffic).throughput_mpps
            counters = collector.bench_counters(contention)
            yala_pred = yala.predict(
                target_name, traffic, [CompetitorSpec.bench(contention)]
            )
            slomo_pred = slomo.predict(
                counters, traffic, n_competitors=contention.actor_count
            )
            truths.append(truth)
            yala_preds.append(yala_pred)
            slomo_preds.append(slomo_pred)

            deviation = abs(traffic.flow_count - train_flows) / train_flows
            bucket = "low" if deviation <= 0.2 else "high"
            fig7b.setdefault(("yala", bucket), []).append(
                100.0 * abs(yala_pred - truth) / truth
            )
            fig7b.setdefault(("slomo", bucket), []).append(
                100.0 * abs(slomo_pred - truth) / truth
            )
            raw = slomo.predict(
                counters, traffic, extrapolate=False,
                n_competitors=contention.actor_count,
            )
            fig7b.setdefault(("slomo-no-extrapolation", bucket), []).append(
                100.0 * abs(raw - truth) / truth
            )
        truths_arr = np.array(truths)
        rows.append(
            Table5Row(
                nf_name=target_name,
                slomo_mape=mape(truths_arr, np.array(slomo_preds)),
                slomo_acc5=within_tolerance_accuracy(
                    truths_arr, np.array(slomo_preds), 5.0
                ),
                slomo_acc10=within_tolerance_accuracy(
                    truths_arr, np.array(slomo_preds), 10.0
                ),
                yala_mape=mape(truths_arr, np.array(yala_preds)),
                yala_acc5=within_tolerance_accuracy(
                    truths_arr, np.array(yala_preds), 5.0
                ),
                yala_acc10=within_tolerance_accuracy(
                    truths_arr, np.array(yala_preds), 10.0
                ),
            )
        )
    return Table5Result(rows=rows, fig7b=fig7b)
