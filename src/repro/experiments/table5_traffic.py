"""Table 5 + Figure 7(b): traffic-awareness deep dive.

Traffic-sensitive NFs co-run with mem-bench only (memory contention,
the setting SLOMO was built for) while traffic profiles are drawn
randomly; Yala's traffic-aware models are compared against SLOMO with
sensitivity extrapolation. Figure 7(b) splits errors on the flow-count
deviation between training and testing: low (<= 20%) vs high (> 20%),
and additionally reports SLOMO without extrapolation. Scoring runs
through the shared batch engine (:mod:`repro.experiments.batch`), with
the no-extrapolation SLOMO arm scored in the same batched pass.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.predictor import CompetitorSpec
from repro.experiments.batch import (
    EvaluationCase,
    group_by_target,
    score_cases,
    summarize_accuracy,
)
from repro.experiments.common import (
    EXPERIMENT_SEED,
    ExperimentScale,
    fmt,
    get_scale,
    render_table,
)
from repro.experiments.context import ExperimentContext, get_context
from repro.nf.catalog import make_nf
from repro.profiling.contention import ContentionLevel
from repro.rng import make_rng
from repro.traffic.profile import TrafficProfile

#: The traffic-sensitive NFs of Table 5.
TABLE5_NFS: tuple[str, ...] = (
    "nids",
    "flowclassifier",
    "nat",
    "flowtracker",
    "flowstats",
    "flowmonitor",
    "iptunnel",
)


@dataclass
class Table5Row:
    nf_name: str
    slomo_mape: float
    slomo_acc5: float
    slomo_acc10: float
    yala_mape: float
    yala_acc5: float
    yala_acc10: float


@dataclass
class Table5Result:
    rows: list[Table5Row]
    fig7b: dict[tuple[str, str], list[float]]  # (predictor, range) -> errors

    def render(self) -> str:
        table_rows = [
            [
                r.nf_name,
                fmt(r.slomo_mape), fmt(r.slomo_acc5), fmt(r.slomo_acc10),
                fmt(r.yala_mape), fmt(r.yala_acc5), fmt(r.yala_acc10),
            ]
            for r in sorted(self.rows, key=lambda r: r.yala_mape)
        ]
        part_a = render_table(
            [
                "NF",
                "SLOMO MAPE%", "SLOMO ±5%", "SLOMO ±10%",
                "Yala MAPE%", "Yala ±5%", "Yala ±10%",
            ],
            table_rows,
            title="Table 5 — memory-only contention, dynamic traffic profiles",
        )
        rows_b = []
        for predictor in ("yala", "slomo", "slomo-no-extrapolation"):
            low = self.fig7b.get((predictor, "low"), [])
            high = self.fig7b.get((predictor, "high"), [])
            rows_b.append(
                [
                    predictor,
                    fmt(float(np.median(low))) if low else "-",
                    fmt(float(np.median(high))) if high else "-",
                ]
            )
        part_b = render_table(
            ["predictor", "median err % (low dev.)", "median err % (high dev.)"],
            rows_b,
            title="Figure 7(b) — error vs flow-count deviation from training",
        )
        return part_a + "\n\n" + part_b


def build_cases(
    context: ExperimentContext,
    scale: str | ExperimentScale,
    seed: int = EXPERIMENT_SEED,
) -> list[EvaluationCase]:
    """Sample the Table 5 case list (same rng order as the seed loop).

    ``tag`` carries the Figure 7(b) deviation bucket (``"low"`` when the
    drawn flow count stays within ±20% of SLOMO's training flow count).
    """
    resolved = get_scale(scale)
    collector = context.yala.collector
    rng = make_rng(seed)
    # Traffic/contention points are drawn up front (SLOMO training and
    # the batched profiling consume no randomness from this stream, so
    # the draws match the seed loop) and the ground-truth co-runs solve
    # as one profiling batch.
    configs = []
    for target_name in TABLE5_NFS:
        train_flows = context.slomo_for(target_name).train_traffic.flow_count
        for index in range(resolved.random_profiles):
            # A third of the profiles stay within ±20% of the training
            # flow count (Fig. 7b's "low deviation" range); the rest
            # roam the full space up to 500K flows.
            if index % 3 == 0:
                flows = int(train_flows * rng.uniform(0.8, 1.2))
            else:
                flows = int(rng.uniform(1_000, 500_000))
            traffic = TrafficProfile(
                flows,
                int(rng.uniform(64, 1500)),
                float(rng.uniform(0.0, 1100.0)),
            )
            contention = ContentionLevel(
                mem_car=float(rng.uniform(30.0, 250.0)),
                mem_wss_mb=float(rng.uniform(2.0, 12.0)),
            )
            deviation = abs(traffic.flow_count - train_flows) / train_flows
            configs.append((target_name, traffic, contention, deviation))
    samples = collector.profile_many(
        [
            (make_nf(target_name), contention, traffic)
            for target_name, traffic, contention, _ in configs
        ]
    )
    cases = []
    for (target_name, traffic, contention, deviation), sample in zip(
        configs, samples
    ):
        cases.append(
            EvaluationCase(
                target=target_name,
                traffic=traffic,
                truth=sample.throughput_mpps,
                competitors=(CompetitorSpec.bench(contention),),
                slomo_counters=collector.bench_counters(contention),
                slomo_n_competitors=contention.actor_count,
                tag="low" if deviation <= 0.2 else "high",
            )
        )
    return cases


def run(scale: str = "default", seed: int = EXPERIMENT_SEED) -> Table5Result:
    """Regenerate Table 5 and Figure 7(b)."""
    resolved = get_scale(scale)
    context = get_context(resolved)
    cases = build_cases(context, resolved, seed)
    scored = score_cases(context, cases, slomo_raw=True)
    groups = group_by_target(scored)

    rows = []
    fig7b: dict[tuple[str, str], list[float]] = {}
    for target_name in TABLE5_NFS:
        subset = [scored[i] for i in groups.get(target_name, [])]
        for case in subset:
            bucket = case.tag
            fig7b.setdefault(("yala", bucket), []).append(case.yala_error_pct)
            fig7b.setdefault(("slomo", bucket), []).append(case.slomo_error_pct)
            fig7b.setdefault(("slomo-no-extrapolation", bucket), []).append(
                case.slomo_raw_error_pct
            )
        summary = summarize_accuracy(subset)
        rows.append(
            Table5Row(
                nf_name=target_name,
                slomo_mape=summary.slomo_mape,
                slomo_acc5=summary.slomo_acc5,
                slomo_acc10=summary.slomo_acc10,
                yala_mape=summary.yala_mape,
                yala_acc5=summary.yala_acc5,
                yala_acc10=summary.yala_acc10,
            )
        )
    return Table5Result(rows=rows, fig7b=fig7b)
