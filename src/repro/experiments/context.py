"""Shared trained-model context for the experiment harness.

Training a Yala predictor plus a SLOMO baseline for all nine evaluation
NFs costs tens of thousands of simulated co-runs; the experiments share
one trained context per (scale, seed) so the harness does not retrain
per table. Contexts are cached in-process.

The context is a **multi-target** container: every registered hardware
target (:func:`repro.nic.spec.get_spec`) gets its own
:class:`TargetContext` — one simulator, one profiling collector, one
:class:`YalaSystem` and per-NF SLOMO baselines — built lazily on first
access and trained with per-target derived seeds. The default target
(:data:`repro.nic.spec.DEFAULT_TARGET`, the BlueField-2 testbed) keeps
the seed layout the harness has always used, so every existing table and
figure renders bit-identically; secondary targets (the Pensando NIC of
Table 9) derive their simulator seed as ``derive_seed(seed, target)``
and train predictors on demand instead of bulk-training the whole NF
catalog. ``context.nic`` / ``context.yala`` / ``context.slomo_for``
remain the default-target shorthand the experiments use.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.predictor import YalaPredictor, YalaSystem
from repro.core.slomo import SlomoPredictor
from repro.errors import ConfigurationError
from repro.experiments.common import EXPERIMENT_SEED, ExperimentScale, get_scale
from repro.nf.catalog import EVALUATION_NF_NAMES, make_nf
from repro.nic.nic import SmartNic
from repro.nic.spec import DEFAULT_TARGET, get_spec, target_seed
from repro.profiling.collector import ProfilingCollector
from repro.rng import SeedLike, normalize_seed


@dataclass
class TargetContext:
    """Trained predictors for one hardware target.

    Predictors train lazily: :meth:`yala_for` / :meth:`slomo_for` train
    on first request (with per-target derived seeds unless the caller
    pins an explicit stream) and cache the result, so a target only pays
    for the NFs the selected experiments actually evaluate.
    """

    target: str
    scale: ExperimentScale
    seed: int
    nic: SmartNic
    yala: YalaSystem
    slomo: dict[str, SlomoPredictor] = field(default_factory=dict)
    _slomo_seeds: dict[str, int] = field(default_factory=dict)

    @property
    def collector(self) -> ProfilingCollector:
        return self.yala.collector

    def yala_for(self, nf_name: str, seed: SeedLike = None) -> YalaPredictor:
        """Train-on-demand Yala predictor for one NF on this target."""
        return self.yala.train_one(nf_name, seed=seed)

    def slomo_for(self, nf_name: str, seed: SeedLike = None) -> SlomoPredictor:
        """Train-on-demand SLOMO baseline for one NF on this target.

        As with :meth:`yala_for`, an explicit ``seed`` that conflicts
        with the seed an already-trained baseline used raises instead
        of silently returning the differently-seeded predictor.
        """
        seed_int = normalize_seed(seed)
        if nf_name in self.slomo:
            if seed_int is not None and self._slomo_seeds[nf_name] != seed_int:
                raise ConfigurationError(
                    f"SLOMO baseline for {nf_name!r} on {self.target!r} is "
                    f"already trained with seed {self._slomo_seeds[nf_name]}; "
                    "request explicit seed streams before the first training"
                )
            return self.slomo[nf_name]
        if seed_int is None:
            seed_int = self._slomo_seed(nf_name)
        predictor = SlomoPredictor(nf_name, seed=seed_int)
        predictor.train(
            self.yala.collector,
            make_nf(nf_name),
            n_samples=self.scale.slomo_samples,
        )
        self.slomo[nf_name] = predictor
        self._slomo_seeds[nf_name] = seed_int
        return predictor

    def _slomo_seed(self, nf_name: str) -> int:
        return target_seed(self.seed, self.target, "slomo", nf_name)


@dataclass
class ExperimentContext:
    """Trained predictors shared across experiments, per hardware target."""

    scale: ExperimentScale
    seed: int = EXPERIMENT_SEED
    nf_names: tuple[str, ...] = EVALUATION_NF_NAMES
    _targets: dict[str, TargetContext] = field(default_factory=dict)

    # ------------------------------------------------------------------
    def target(
        self, name: str = DEFAULT_TARGET, train_jobs: int = 1
    ) -> TargetContext:
        """The (lazily built) per-target context for ``name``.

        Building the default target trains the full evaluation NF set,
        exactly as the pre-multi-target context did (``train_jobs > 1``
        parallelises that bulk training; it only applies to the call
        that actually builds the target, never sticks to the context);
        secondary targets come up untrained and train per NF on demand.
        """
        if name not in self._targets:
            spec = get_spec(name)
            nic = SmartNic(spec, seed=target_seed(self.seed, name))
            if name == DEFAULT_TARGET:
                yala = YalaSystem(nic, seed=self.seed, quota=self.scale.quota)
                yala.train(list(self.nf_names), jobs=train_jobs)
            else:
                # The "yala" tag keeps the system's per-NF streams
                # independent from the simulator's noise stream.
                yala = YalaSystem(
                    nic,
                    seed=target_seed(self.seed, name, "yala"),
                    quota=self.scale.quota,
                )
            self._targets[name] = TargetContext(
                target=name,
                scale=self.scale,
                seed=self.seed,
                nic=nic,
                yala=yala,
            )
        return self._targets[name]

    @property
    def built_targets(self) -> tuple[str, ...]:
        """Targets built so far, in build order."""
        return tuple(self._targets)

    # ------------------------------------------------------------------
    # Default-target shorthand (what the per-table experiments use).
    # ------------------------------------------------------------------
    @property
    def nic(self) -> SmartNic:
        return self.target().nic

    @property
    def yala(self) -> YalaSystem:
        return self.target().yala

    def slomo_for(self, nf_name: str) -> SlomoPredictor:
        """Train-on-demand SLOMO baseline on the default target."""
        return self.target().slomo_for(nf_name)


_CONTEXTS: dict[tuple[str, tuple[str, ...]], ExperimentContext] = {}


def get_context(
    scale: str | ExperimentScale = "default",
    nf_names: tuple[str, ...] = EVALUATION_NF_NAMES,
    train_jobs: int = 1,
) -> ExperimentContext:
    """Return (building if needed) the shared trained context.

    Target contexts inside are lazy — requesting the context costs
    nothing until an experiment touches a target. ``train_jobs > 1``
    eagerly builds the *default* target with that much training
    parallelism (see :meth:`YalaSystem.train`; results are identical
    to a serial build), restoring the pre-multi-target semantics where
    the caller asking for parallelism pays for the build — a later
    serial caller never forks surprise worker processes.
    """
    resolved = get_scale(scale)
    key = (resolved.name, tuple(sorted(nf_names)))
    if key not in _CONTEXTS:
        _CONTEXTS[key] = ExperimentContext(scale=resolved, nf_names=nf_names)
    context = _CONTEXTS[key]
    if train_jobs > 1:
        context.target(train_jobs=train_jobs)
    return context


def clear_contexts() -> None:
    """Drop cached contexts (tests use this to control memory)."""
    _CONTEXTS.clear()
