"""Shared trained-model context for the experiment harness.

Training a Yala predictor plus a SLOMO baseline for all nine evaluation
NFs costs tens of thousands of simulated co-runs; the experiments share
one trained context per (scale, seed) so the harness does not retrain
per table. Contexts are cached in-process.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.predictor import YalaSystem
from repro.core.slomo import SlomoPredictor
from repro.experiments.common import EXPERIMENT_SEED, ExperimentScale, get_scale
from repro.nf.catalog import EVALUATION_NF_NAMES, make_nf
from repro.nic.nic import SmartNic
from repro.nic.spec import bluefield2_spec
from repro.rng import derive_seed


@dataclass
class ExperimentContext:
    """Trained predictors shared across experiments."""

    scale: ExperimentScale
    nic: SmartNic
    yala: YalaSystem
    slomo: dict[str, SlomoPredictor] = field(default_factory=dict)

    def slomo_for(self, nf_name: str) -> SlomoPredictor:
        """Train-on-demand SLOMO baseline for one NF."""
        if nf_name not in self.slomo:
            predictor = SlomoPredictor(
                nf_name, seed=derive_seed(EXPERIMENT_SEED, "slomo", nf_name)
            )
            predictor.train(
                self.yala.collector,
                make_nf(nf_name),
                n_samples=self.scale.slomo_samples,
            )
            self.slomo[nf_name] = predictor
        return self.slomo[nf_name]


_CONTEXTS: dict[tuple[str, tuple[str, ...]], ExperimentContext] = {}


def get_context(
    scale: str | ExperimentScale = "default",
    nf_names: tuple[str, ...] = EVALUATION_NF_NAMES,
    train_jobs: int = 1,
) -> ExperimentContext:
    """Return (building if needed) the shared trained context.

    ``train_jobs > 1`` trains the per-NF predictors in parallel worker
    processes (see :meth:`YalaSystem.train`); the trained context is
    identical to a serial build.
    """
    resolved = get_scale(scale)
    key = (resolved.name, tuple(sorted(nf_names)))
    if key not in _CONTEXTS:
        nic = SmartNic(bluefield2_spec(), seed=EXPERIMENT_SEED)
        yala = YalaSystem(nic, seed=EXPERIMENT_SEED, quota=resolved.quota)
        yala.train(list(nf_names), jobs=train_jobs)
        _CONTEXTS[key] = ExperimentContext(scale=resolved, nic=nic, yala=yala)
    return _CONTEXTS[key]


def clear_contexts() -> None:
    """Drop cached contexts (tests use this to control memory)."""
    _CONTEXTS.clear()
