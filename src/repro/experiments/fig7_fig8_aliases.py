"""Figure 7 / Figure 8 convenience aliases.

Figure 7(a) is produced by :mod:`repro.experiments.table3_multi_resource`
(its contention-level error split), Figure 7(b) by
:mod:`repro.experiments.table5_traffic` (its deviation-range error
split), and Figure 8 by :mod:`repro.experiments.table8_profiling` (its
quota sweep). These thin wrappers exist so every figure number has a
direct ``run()`` entry point.
"""

from __future__ import annotations

from repro.experiments import table3_multi_resource, table5_traffic, table8_profiling
from repro.experiments.common import EXPERIMENT_SEED


def run_fig7a(scale: str = "default", seed: int = EXPERIMENT_SEED):
    """Figure 7(a): error distribution vs regex contention level."""
    return table3_multi_resource.run(scale=scale, seed=seed)


def run_fig7b(scale: str = "default", seed: int = EXPERIMENT_SEED):
    """Figure 7(b): error distribution vs traffic deviation."""
    return table5_traffic.run(scale=scale, seed=seed)


def run_fig8(scale: str = "default", seed: int = EXPERIMENT_SEED):
    """Figure 8: prediction error vs profiling quota."""
    return table8_profiling.run(scale=scale, seed=seed)
