"""Batch-first evaluation engine shared by the paper experiments.

The accuracy experiments (Tables 2/3/5/9, Figures 2/3) all follow one
shape: sample a set of colocation cases, measure the simulator ground
truth per case, then score Yala and SLOMO predictions against it. The
seed implementations issued one ``predict`` call per case, paying the
scaler/ensemble dispatch overhead thousands of times per table; this
module factors the scoring into a case record (:class:`EvaluationCase`)
plus batch drivers that group cases per target NF and route every
memory-model evaluation through the batched predictor APIs
(:meth:`YalaSystem.predict_batch` / :meth:`YalaPredictor.predict_many` /
:meth:`SlomoPredictor.predict_batch`).

Batching is a wall-clock optimisation, never a numerical one: each
driver has a reference twin (:func:`score_cases_looped`,
:func:`score_standalone_looped`) that replays the seed's per-case calls,
and tier-1 tests pin the two bit-identical on every experiment's case
list.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Optional

import numpy as np

from repro.core.predictor import CompetitorSpec, YalaPredictor
from repro.core.slomo import SlomoPredictor
from repro.errors import ConfigurationError
from repro.ml.metrics import mape, within_tolerance_accuracy
from repro.nic.counters import PerfCounters
from repro.traffic.profile import TrafficProfile


@dataclass(frozen=True)
class EvaluationCase:
    """One colocation scenario with its measured ground truth.

    ``competitors`` is what Yala scores (catalogued NFs and/or synthetic
    benches); ``slomo_counters``/``slomo_n_competitors`` carry the
    contention features SLOMO scores, which the experiments compute
    exactly as the seed loops did (aggregate solo counters for NF
    competitors, cached bench counters for bench mixes). ``tag`` is an
    experiment-specific bucket key (e.g. the Figure 7 contention or
    deviation bucket) that rides along untouched.
    """

    target: str
    traffic: TrafficProfile
    truth: float
    competitors: tuple[CompetitorSpec, ...] = ()
    slomo_counters: Optional[PerfCounters] = None
    slomo_n_competitors: int = 1
    tag: Hashable = None


@dataclass(frozen=True)
class ScoredCase:
    """An :class:`EvaluationCase` with its predictions attached."""

    case: EvaluationCase
    yala: Optional[float] = None
    slomo: Optional[float] = None
    slomo_raw: Optional[float] = None  # SLOMO without extrapolation

    @property
    def target(self) -> str:
        return self.case.target

    @property
    def truth(self) -> float:
        return self.case.truth

    @property
    def tag(self) -> Hashable:
        return self.case.tag

    def _error_pct(self, predicted: Optional[float]) -> float:
        if predicted is None:
            raise ConfigurationError("prediction was not scored for this case")
        return 100.0 * abs(predicted - self.truth) / self.truth

    @property
    def yala_error_pct(self) -> float:
        return self._error_pct(self.yala)

    @property
    def slomo_error_pct(self) -> float:
        return self._error_pct(self.slomo)

    @property
    def slomo_raw_error_pct(self) -> float:
        return self._error_pct(self.slomo_raw)


@dataclass(frozen=True)
class AccuracySummary:
    """The accuracy-table row shape shared by Tables 2/3/5/9."""

    slomo_mape: float
    slomo_acc5: float
    slomo_acc10: float
    yala_mape: float
    yala_acc5: float
    yala_acc10: float


def summarize_accuracy(scored: list[ScoredCase]) -> AccuracySummary:
    """MAPE / ±5% / ±10% accuracy of both predictors over ``scored``.

    Arrays are assembled in case order, matching the seed loops'
    append-then-``np.array`` aggregation bit-for-bit.
    """
    truths = np.array([s.truth for s in scored])
    yala = np.array([s.yala for s in scored])
    slomo = np.array([s.slomo for s in scored])
    return AccuracySummary(
        slomo_mape=mape(truths, slomo),
        slomo_acc5=within_tolerance_accuracy(truths, slomo, 5.0),
        slomo_acc10=within_tolerance_accuracy(truths, slomo, 10.0),
        yala_mape=mape(truths, yala),
        yala_acc5=within_tolerance_accuracy(truths, yala, 5.0),
        yala_acc10=within_tolerance_accuracy(truths, yala, 10.0),
    )


def group_by_target(cases: list) -> dict[str, list[int]]:
    """Case indices per target NF, targets in first-seen order.

    Works on :class:`EvaluationCase` and :class:`ScoredCase` alike —
    both expose ``.target``.
    """
    groups: dict[str, list[int]] = {}
    for index, case in enumerate(cases):
        groups.setdefault(case.target, []).append(index)
    return groups


def _require_slomo_features(case: EvaluationCase) -> PerfCounters:
    if case.slomo_counters is None:
        raise ConfigurationError(
            f"case for {case.target!r} has no slomo_counters; build cases "
            "with SLOMO features or score with slomo=False"
        )
    return case.slomo_counters


def score_cases(
    context,
    cases: list[EvaluationCase],
    yala: bool = True,
    slomo: bool = True,
    slomo_raw: bool = False,
) -> list[ScoredCase]:
    """Score ``cases`` through the shared trained ``context``, batched.

    Yala predictions run as one :meth:`YalaSystem.predict_batch` call
    over the whole case list (the system groups the memory-model work
    per involved predictor internally); SLOMO predictions run as one
    :meth:`SlomoPredictor.predict_batch` call per target NF.
    ``slomo_raw`` additionally scores SLOMO with sensitivity
    extrapolation disabled (Figures 3b and 7b). Output order matches
    input order, and every prediction is bit-identical to the per-case
    reference :func:`score_cases_looped`.
    """
    yala_preds: list[Optional[float]] = [None] * len(cases)
    slomo_preds: list[Optional[float]] = [None] * len(cases)
    raw_preds: list[Optional[float]] = [None] * len(cases)
    if yala and cases:
        yala_preds = list(
            context.yala.predict_batch(
                [(c.target, c.traffic, list(c.competitors)) for c in cases]
            )
        )
    if slomo or slomo_raw:
        for target, indices in group_by_target(cases).items():
            predictor = context.slomo_for(target)
            counters = [_require_slomo_features(cases[i]) for i in indices]
            traffics = [cases[i].traffic for i in indices]
            competitors = [cases[i].slomo_n_competitors for i in indices]
            if slomo and slomo_raw:
                # Both arms share one GBR pass; they differ only in the
                # cheap per-row extrapolation step.
                extrapolated, raw = predictor.predict_batch_both(
                    counters, traffics, competitors
                )
                for i, value, raw_value in zip(indices, extrapolated, raw):
                    slomo_preds[i] = value
                    raw_preds[i] = raw_value
            elif slomo:
                for i, value in zip(
                    indices,
                    predictor.predict_batch(counters, traffics, competitors),
                ):
                    slomo_preds[i] = value
            else:
                for i, value in zip(
                    indices,
                    predictor.predict_batch(
                        counters, traffics, competitors, extrapolate=False
                    ),
                ):
                    raw_preds[i] = value
    return [
        ScoredCase(case=case, yala=yala_preds[i], slomo=slomo_preds[i],
                   slomo_raw=raw_preds[i])
        for i, case in enumerate(cases)
    ]


def score_cases_looped(
    context,
    cases: list[EvaluationCase],
    yala: bool = True,
    slomo: bool = True,
    slomo_raw: bool = False,
) -> list[ScoredCase]:
    """Reference scorer: one predict call per case (the seed loops).

    Kept as the equivalence oracle for tests and the experiments
    perf benchmark; :func:`score_cases` must match it bit-for-bit.
    """
    scored = []
    for case in cases:
        predictor = context.slomo_for(case.target) if (slomo or slomo_raw) else None
        scored.append(
            ScoredCase(
                case=case,
                yala=context.yala.predict(
                    case.target, case.traffic, list(case.competitors)
                )
                if yala
                else None,
                slomo=predictor.predict(
                    _require_slomo_features(case),
                    case.traffic,
                    n_competitors=case.slomo_n_competitors,
                )
                if slomo
                else None,
                slomo_raw=predictor.predict(
                    _require_slomo_features(case),
                    case.traffic,
                    extrapolate=False,
                    n_competitors=case.slomo_n_competitors,
                )
                if slomo_raw
                else None,
            )
        )
    return scored


def score_standalone(
    cases: list[EvaluationCase],
    yala: Optional[YalaPredictor] = None,
    slomo: Optional[SlomoPredictor] = None,
    slomo_raw: bool = False,
) -> list[ScoredCase]:
    """Score cases against standalone predictors (no trained context).

    Used by experiments that train their own single-NF predictors
    outside the shared context (Table 9's Pensando transfer). Yala runs
    through :meth:`YalaPredictor.predict_many`, SLOMO through
    :meth:`SlomoPredictor.predict_batch`; both are bit-identical to the
    per-case reference :func:`score_standalone_looped`.
    """
    yala_preds: list[Optional[float]] = [None] * len(cases)
    slomo_preds: list[Optional[float]] = [None] * len(cases)
    raw_preds: list[Optional[float]] = [None] * len(cases)
    if yala is not None and cases:
        yala_preds = list(
            yala.predict_many(
                [(c.traffic, list(c.competitors)) for c in cases]
            )
        )
    if slomo is not None and cases:
        counters = [_require_slomo_features(c) for c in cases]
        traffics = [c.traffic for c in cases]
        competitors = [c.slomo_n_competitors for c in cases]
        if slomo_raw:
            slomo_preds, raw_preds = slomo.predict_batch_both(
                counters, traffics, competitors
            )
        else:
            slomo_preds = list(
                slomo.predict_batch(counters, traffics, competitors)
            )
    return [
        ScoredCase(case=case, yala=yala_preds[i], slomo=slomo_preds[i],
                   slomo_raw=raw_preds[i])
        for i, case in enumerate(cases)
    ]


def score_standalone_looped(
    cases: list[EvaluationCase],
    yala: Optional[YalaPredictor] = None,
    slomo: Optional[SlomoPredictor] = None,
    slomo_raw: bool = False,
) -> list[ScoredCase]:
    """Per-case reference twin of :func:`score_standalone`."""
    scored = []
    for case in cases:
        scored.append(
            ScoredCase(
                case=case,
                yala=yala.predict(case.traffic, list(case.competitors))
                if yala is not None
                else None,
                slomo=slomo.predict(
                    _require_slomo_features(case),
                    case.traffic,
                    n_competitors=case.slomo_n_competitors,
                )
                if slomo is not None
                else None,
                slomo_raw=slomo.predict(
                    _require_slomo_features(case),
                    case.traffic,
                    extrapolate=False,
                    n_competitors=case.slomo_n_competitors,
                )
                if slomo is not None and slomo_raw
                else None,
            )
        )
    return scored
