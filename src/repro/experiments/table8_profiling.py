"""Table 8 + Figure 8: profiling cost vs model accuracy.

Traffic-sensitive NFs are trained three ways — full-grid profiling
(orders of magnitude more samples), random profiling at the adaptive
quota, and Yala's adaptive profiling — and evaluated on a common test
set of (traffic, contention) points. Figure 8 varies the quota (0.5x,
1x, 1.5x) for FlowClassifier.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.memory_model import MemoryContentionModel
from repro.experiments.common import EXPERIMENT_SEED, fmt, get_scale, render_table
from repro.ml.metrics import mape, within_tolerance_accuracy
from repro.nf.catalog import make_nf
from repro.nic.nic import SmartNic
from repro.nic.spec import bluefield2_spec
from repro.profiling.adaptive import AdaptiveProfiler
from repro.profiling.collector import ProfilingCollector
from repro.profiling.contention import ContentionLevel
from repro.profiling.sampling import full_profile, random_profile
from repro.rng import derive_seed, make_rng
from repro.traffic.profile import TrafficProfile

#: NFs evaluated in Table 8.
TABLE8_NFS: tuple[str, ...] = (
    "flowclassifier",
    "nat",
    "flowtracker",
    "flowmonitor",
    "flowstats",
    "iptunnel",
)


@dataclass
class Table8Row:
    nf_name: str
    full_cost: int
    full_mape: float
    full_acc10: float
    random_mape: float
    random_acc10: float
    adaptive_mape: float
    adaptive_acc10: float


@dataclass
class Table8Result:
    rows: list[Table8Row]
    quota: int
    fig8: dict[str, dict[float, float]]  # strategy -> quota multiple -> MAPE

    def render(self) -> str:
        table_rows = [
            [
                r.nf_name,
                f"{r.full_cost / self.quota:.0f}x",
                fmt(r.full_mape), fmt(r.full_acc10),
                fmt(r.random_mape), fmt(r.random_acc10),
                fmt(r.adaptive_mape), fmt(r.adaptive_acc10),
            ]
            for r in self.rows
        ]
        part_a = render_table(
            [
                "NF", "full P.C.",
                "full MAPE%", "full ±10%",
                "random MAPE%", "random ±10%",
                "adaptive MAPE%", "adaptive ±10%",
            ],
            table_rows,
            title=f"Table 8 — profiling strategies at quota {self.quota}",
        )
        rows_b = []
        for strategy, series in self.fig8.items():
            rows_b.append(
                [strategy] + [fmt(series[k]) for k in sorted(series)]
            )
        multiples = sorted(next(iter(self.fig8.values()))) if self.fig8 else []
        part_b = render_table(
            ["strategy"] + [f"{m}x quota" for m in multiples],
            rows_b,
            title="Figure 8 — FlowClassifier MAPE vs profiling quota",
        )
        return part_a + "\n\n" + part_b


def _test_points(
    collector: ProfilingCollector, nf, count: int, seed: int
) -> list[tuple]:
    rng = make_rng(seed)
    configs = []
    for _ in range(count):
        traffic = TrafficProfile(
            int(rng.uniform(1_000, 500_000)),
            int(rng.uniform(64, 1500)),
            float(rng.uniform(0.0, 1100.0)),
        )
        contention = ContentionLevel(
            mem_car=float(rng.uniform(20.0, 250.0)),
            mem_wss_mb=float(rng.uniform(2.0, 12.0)),
        )
        configs.append((traffic, contention))
    # Independent held-out points: one ground-truth profiling batch.
    samples = collector.profile_many(
        [(nf, contention, traffic) for traffic, contention in configs]
    )
    return [
        (traffic, contention, sample.throughput_mpps)
        for (traffic, contention), sample in zip(configs, samples)
    ]


def _evaluate(model: MemoryContentionModel, collector, points) -> tuple[float, float]:
    truths = np.array([truth for _, __, truth in points])
    preds = np.array(
        [
            model.predict(collector.bench_counters(contention), traffic)
            for traffic, contention, _ in points
        ]
    )
    return mape(truths, preds), within_tolerance_accuracy(truths, preds, 10.0)


def _train(
    strategy: str,
    collector: ProfilingCollector,
    nf,
    quota: int,
    seed: int,
    grid: int,
) -> tuple[MemoryContentionModel, int]:
    """Train a traffic-aware memory model with one profiling strategy."""
    if strategy == "full":
        dataset = full_profile(
            collector,
            nf,
            attributes=["flow_count", "packet_size", "mtbr"],
            grid_points={
                "flow_count": grid,
                "packet_size": max(grid // 2, 4),
                "mtbr": max(grid // 2, 4),
            },
            contention_levels_per_point=3,
            seed=seed,
        )
        cost = len(dataset)
    elif strategy == "random":
        dataset = random_profile(collector, nf, quota=quota, seed=seed)
        cost = quota
    else:
        report = AdaptiveProfiler(collector, quota=quota, seed=seed).profile(nf)
        dataset = report.dataset
        cost = report.samples_used
    model = MemoryContentionModel(nf.name, seed=derive_seed(seed, strategy))
    model.fit(dataset)
    return model, cost


def run(scale: str = "default", seed: int = EXPERIMENT_SEED) -> Table8Result:
    """Regenerate Table 8 and Figure 8."""
    resolved = get_scale(scale)
    quota = resolved.quota
    # The full grid must dwarf the adaptive quota (the paper's full
    # profiling costs ~3200x); scaled down here for tractability but
    # always several times the quota.
    grid = 14 if resolved.name != "smoke" else 8

    rows = []
    fig8: dict[str, dict[float, float]] = {"random": {}, "adaptive": {}}
    nic = SmartNic(bluefield2_spec(), seed=seed)
    collector = ProfilingCollector(nic)
    for nf_name in TABLE8_NFS:
        nf = make_nf(nf_name)
        points = _test_points(
            collector, nf, resolved.random_profiles, derive_seed(seed, nf_name)
        )
        results = {}
        costs = {}
        for strategy in ("full", "random", "adaptive"):
            model, cost = _train(
                strategy, collector, nf, quota, derive_seed(seed, nf_name, strategy), grid
            )
            results[strategy] = _evaluate(model, collector, points)
            costs[strategy] = cost
        rows.append(
            Table8Row(
                nf_name=nf_name,
                full_cost=costs["full"],
                full_mape=results["full"][0],
                full_acc10=results["full"][1],
                random_mape=results["random"][0],
                random_acc10=results["random"][1],
                adaptive_mape=results["adaptive"][0],
                adaptive_acc10=results["adaptive"][1],
            )
        )

    # Figure 8: FlowClassifier, quota multiples.
    nf = make_nf("flowclassifier")
    points = _test_points(collector, nf, resolved.random_profiles, derive_seed(seed, "fig8"))
    for multiple in (0.5, 1.0, 1.5):
        q = max(int(quota * multiple), 20)
        for strategy in ("random", "adaptive"):
            model, _ = _train(
                strategy, collector, nf, q, derive_seed(seed, "fig8", strategy, multiple), grid
            )
            fig8[strategy][multiple] = _evaluate(model, collector, points)[0]
    return Table8Result(rows=rows, quota=quota, fig8=fig8)
