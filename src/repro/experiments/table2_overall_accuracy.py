"""Table 2: overall prediction accuracy under multi-resource contention
and varying traffic attributes.

Every evaluation NF is co-located with up to three other NFs (sampled
combinations) under several distinct traffic profiles; Yala and SLOMO
predict the target's throughput, scored by MAPE / ±5% Acc. / ±10% Acc.
against the simulator ground truth. Scoring runs through the shared
batch engine (:mod:`repro.experiments.batch`): case sampling keeps the
seed loop's rng order, predictions are batched per predictor.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.predictor import CompetitorSpec
from repro.errors import SimulationError
from repro.experiments.batch import (
    EvaluationCase,
    group_by_target,
    score_cases,
    summarize_accuracy,
)
from repro.experiments.common import (
    EXPERIMENT_SEED,
    ExperimentScale,
    evaluation_traffic_profiles,
    fmt,
    get_scale,
    render_table,
)
from repro.experiments.context import ExperimentContext, get_context
from repro.nf.catalog import EVALUATION_NF_NAMES, make_nf
from repro.nic.counters import PerfCounters
from repro.rng import make_rng


@dataclass
class AccuracyRow:
    """One NF's accuracy numbers for both predictors."""

    nf_name: str
    slomo_mape: float
    slomo_acc5: float
    slomo_acc10: float
    yala_mape: float
    yala_acc5: float
    yala_acc10: float


@dataclass
class Table2Result:
    """All rows plus aggregate means."""

    rows: list[AccuracyRow]

    @property
    def mean_yala_mape(self) -> float:
        return float(np.mean([r.yala_mape for r in self.rows]))

    @property
    def mean_slomo_mape(self) -> float:
        return float(np.mean([r.slomo_mape for r in self.rows]))

    @property
    def improvement_pct(self) -> float:
        """Relative MAPE reduction of Yala vs SLOMO, percent."""
        if self.mean_slomo_mape == 0:
            return 0.0
        return 100.0 * (1.0 - self.mean_yala_mape / self.mean_slomo_mape)

    def render(self) -> str:
        rows = [
            [
                r.nf_name,
                fmt(r.slomo_mape), fmt(r.slomo_acc5), fmt(r.slomo_acc10),
                fmt(r.yala_mape), fmt(r.yala_acc5), fmt(r.yala_acc10),
            ]
            for r in sorted(self.rows, key=lambda r: r.yala_mape)
        ]
        rows.append(
            [
                "MEAN",
                fmt(self.mean_slomo_mape), "", "",
                fmt(self.mean_yala_mape), "", "",
            ]
        )
        return render_table(
            [
                "NF",
                "SLOMO MAPE%", "SLOMO ±5%", "SLOMO ±10%",
                "Yala MAPE%", "Yala ±5%", "Yala ±10%",
            ],
            rows,
            title=(
                "Table 2 — overall accuracy "
                f"(Yala improves MAPE by {fmt(self.improvement_pct)}%)"
            ),
        )


def build_cases(
    context: ExperimentContext,
    scale: str | ExperimentScale,
    seed: int = EXPERIMENT_SEED,
) -> list[EvaluationCase]:
    """Sample the Table 2 case list (same rng order as the seed loop)."""
    resolved = get_scale(scale)
    collector = context.yala.collector
    rng = make_rng(seed)
    profiles = evaluation_traffic_profiles(resolved.traffic_profiles)
    # Sample every combination first (the draws never depended on the
    # measured truths), then solve all ground-truth co-runs in one
    # batch; infeasible combinations are skipped from the per-request
    # errors exactly where the seed loop's ``try/except`` skipped them.
    combos: list[tuple[str, object, list[str]]] = []
    for target_name in EVALUATION_NF_NAMES:
        for traffic in profiles:
            for _ in range(resolved.combos_per_nf):
                n_competitors = int(rng.integers(1, 4))
                competitor_names = [
                    str(rng.choice(EVALUATION_NF_NAMES))
                    for _ in range(n_competitors)
                ]
                combos.append((target_name, traffic, competitor_names))
    outcomes = collector.co_run_many(
        [
            (
                make_nf(target_name),
                traffic,
                [(make_nf(c), traffic) for c in competitor_names],
            )
            for target_name, traffic, competitor_names in combos
        ],
        on_error="return",
    )
    cases = []
    for (target_name, traffic, competitor_names), outcome in zip(combos, outcomes):
        if isinstance(outcome, Exception):
            if isinstance(outcome, SimulationError):
                continue
            raise outcome
        cases.append(
            EvaluationCase(
                target=target_name,
                traffic=traffic,
                truth=outcome.throughput_mpps,
                competitors=tuple(
                    CompetitorSpec.nf(c, traffic) for c in competitor_names
                ),
                slomo_counters=PerfCounters.aggregate(
                    [
                        collector.solo(make_nf(c), traffic).counters
                        for c in competitor_names
                    ]
                ),
                slomo_n_competitors=len(competitor_names),
            )
        )
    return cases


def run(scale: str = "default", seed: int = EXPERIMENT_SEED) -> Table2Result:
    """Regenerate Table 2."""
    resolved = get_scale(scale)
    context = get_context(resolved)
    cases = build_cases(context, resolved, seed)
    scored = score_cases(context, cases)
    groups = group_by_target(scored)
    rows = []
    for target_name in EVALUATION_NF_NAMES:
        summary = summarize_accuracy(
            [scored[i] for i in groups.get(target_name, [])]
        )
        rows.append(
            AccuracyRow(
                nf_name=target_name,
                slomo_mape=summary.slomo_mape,
                slomo_acc5=summary.slomo_acc5,
                slomo_acc10=summary.slomo_acc10,
                yala_mape=summary.yala_mape,
                yala_acc5=summary.yala_acc5,
                yala_acc10=summary.yala_acc10,
            )
        )
    return Table2Result(rows=rows)
