"""Experiment harness: regenerates every table and figure of the paper.

One module per experiment (``fig1`` ... ``fig8``, ``table2`` ...
``table9``), each exposing a ``run(scale=...)`` function returning a
structured result with a ``render()`` method that prints the same rows
or series the paper reports. ``python -m repro.experiments`` runs them
all and writes the measured numbers used in EXPERIMENTS.md.

Scales: ``smoke`` (seconds, used by unit tests), ``default`` (used by
the benchmark suite), ``full`` (used for EXPERIMENTS.md).
"""

from repro.experiments.common import (
    ExperimentScale,
    SCALES,
    evaluation_traffic_profiles,
    render_table,
)

__all__ = [
    "ExperimentScale",
    "SCALES",
    "evaluation_traffic_profiles",
    "render_table",
]
