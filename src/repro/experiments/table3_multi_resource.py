"""Table 3 + Figure 7(a): multi-resource contention deep dive.

NIDS and FlowMonitor (both regex users) co-run with mem-bench and
regex-bench at varying contention levels under the *default* traffic
profile, isolating the multi-resource modeling from traffic awareness.
Figure 7(a) splits FlowMonitor's errors by regex contention level
(low: bench MTBR <= 600, high: > 600).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.predictor import CompetitorSpec
from repro.experiments.common import EXPERIMENT_SEED, fmt, get_scale, render_table
from repro.experiments.context import get_context
from repro.ml.metrics import mape, within_tolerance_accuracy
from repro.nf.catalog import make_nf
from repro.profiling.contention import ContentionLevel
from repro.rng import make_rng
from repro.traffic.profile import TrafficProfile

_TARGETS = ("nids", "flowmonitor")


@dataclass
class Table3Row:
    nf_name: str
    slomo_mape: float
    slomo_acc5: float
    slomo_acc10: float
    yala_mape: float
    yala_acc5: float
    yala_acc10: float


@dataclass
class Table3Result:
    rows: list[Table3Row]
    fig7a_low: dict[str, list[float]]  # predictor -> errors, low contention
    fig7a_high: dict[str, list[float]]

    def render(self) -> str:
        table_rows = [
            [
                r.nf_name,
                fmt(r.slomo_mape), fmt(r.slomo_acc5), fmt(r.slomo_acc10),
                fmt(r.yala_mape), fmt(r.yala_acc5), fmt(r.yala_acc10),
            ]
            for r in self.rows
        ]
        part_a = render_table(
            [
                "NF",
                "SLOMO MAPE%", "SLOMO ±5%", "SLOMO ±10%",
                "Yala MAPE%", "Yala ±5%", "Yala ±10%",
            ],
            table_rows,
            title="Table 3 — multi-resource contention, fixed default traffic",
        )
        rows_b = []
        for predictor in ("yala", "slomo"):
            rows_b.append(
                [
                    predictor,
                    fmt(float(np.median(self.fig7a_low[predictor]))),
                    fmt(float(np.median(self.fig7a_high[predictor]))),
                ]
            )
        part_b = render_table(
            ["predictor", "median err % (low regex)", "median err % (high regex)"],
            rows_b,
            title="Figure 7(a) — FlowMonitor error vs regex contention level",
        )
        return part_a + "\n\n" + part_b


def run(scale: str = "default", seed: int = EXPERIMENT_SEED) -> Table3Result:
    """Regenerate Table 3 and Figure 7(a)."""
    resolved = get_scale(scale)
    context = get_context(resolved)
    yala = context.yala
    collector = yala.collector
    rng = make_rng(seed)
    traffic = TrafficProfile()

    rows = []
    fig7a_low: dict[str, list[float]] = {"yala": [], "slomo": []}
    fig7a_high: dict[str, list[float]] = {"yala": [], "slomo": []}
    n_points = max(resolved.combos_per_nf * 3, 9)
    for target_name in _TARGETS:
        target = make_nf(target_name)
        slomo = context.slomo_for(target_name)
        truths, yala_preds, slomo_preds, bench_mtbrs = [], [], [], []
        for _ in range(n_points):
            bench_mtbr = float(rng.uniform(100.0, 1100.0))
            contention = ContentionLevel(
                mem_car=float(rng.uniform(30.0, 250.0)),
                mem_wss_mb=float(rng.uniform(2.0, 12.0)),
                regex_rate=float(rng.uniform(0.2, 1.8)),
                regex_mtbr=bench_mtbr,
            )
            truth = collector.profile_one(target, contention, traffic).throughput_mpps
            yala_pred = yala.predict(
                target_name, traffic, [CompetitorSpec.bench(contention)]
            )
            slomo_pred = slomo.predict(
                collector.bench_counters(contention),
                traffic,
                n_competitors=contention.actor_count,
            )
            truths.append(truth)
            yala_preds.append(yala_pred)
            slomo_preds.append(slomo_pred)
            bench_mtbrs.append(bench_mtbr)
            if target_name == "flowmonitor":
                bucket_y = fig7a_low if bench_mtbr <= 600.0 else fig7a_high
                bucket_y["yala"].append(100.0 * abs(yala_pred - truth) / truth)
                bucket_y["slomo"].append(100.0 * abs(slomo_pred - truth) / truth)
        truths_arr = np.array(truths)
        rows.append(
            Table3Row(
                nf_name=target_name,
                slomo_mape=mape(truths_arr, np.array(slomo_preds)),
                slomo_acc5=within_tolerance_accuracy(
                    truths_arr, np.array(slomo_preds), 5.0
                ),
                slomo_acc10=within_tolerance_accuracy(
                    truths_arr, np.array(slomo_preds), 10.0
                ),
                yala_mape=mape(truths_arr, np.array(yala_preds)),
                yala_acc5=within_tolerance_accuracy(
                    truths_arr, np.array(yala_preds), 5.0
                ),
                yala_acc10=within_tolerance_accuracy(
                    truths_arr, np.array(yala_preds), 10.0
                ),
            )
        )
    return Table3Result(rows=rows, fig7a_low=fig7a_low, fig7a_high=fig7a_high)
