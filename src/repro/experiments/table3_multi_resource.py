"""Table 3 + Figure 7(a): multi-resource contention deep dive.

NIDS and FlowMonitor (both regex users) co-run with mem-bench and
regex-bench at varying contention levels under the *default* traffic
profile, isolating the multi-resource modeling from traffic awareness.
Figure 7(a) splits FlowMonitor's errors by regex contention level
(low: bench MTBR <= 600, high: > 600). Scoring runs through the shared
batch engine (:mod:`repro.experiments.batch`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.predictor import CompetitorSpec
from repro.experiments.batch import (
    EvaluationCase,
    group_by_target,
    score_cases,
    summarize_accuracy,
)
from repro.experiments.common import (
    EXPERIMENT_SEED,
    ExperimentScale,
    fmt,
    get_scale,
    render_table,
)
from repro.experiments.context import ExperimentContext, get_context
from repro.nf.catalog import make_nf
from repro.profiling.contention import ContentionLevel
from repro.rng import make_rng
from repro.traffic.profile import TrafficProfile

_TARGETS = ("nids", "flowmonitor")


@dataclass
class Table3Row:
    nf_name: str
    slomo_mape: float
    slomo_acc5: float
    slomo_acc10: float
    yala_mape: float
    yala_acc5: float
    yala_acc10: float


@dataclass
class Table3Result:
    rows: list[Table3Row]
    fig7a_low: dict[str, list[float]]  # predictor -> errors, low contention
    fig7a_high: dict[str, list[float]]

    def render(self) -> str:
        table_rows = [
            [
                r.nf_name,
                fmt(r.slomo_mape), fmt(r.slomo_acc5), fmt(r.slomo_acc10),
                fmt(r.yala_mape), fmt(r.yala_acc5), fmt(r.yala_acc10),
            ]
            for r in self.rows
        ]
        part_a = render_table(
            [
                "NF",
                "SLOMO MAPE%", "SLOMO ±5%", "SLOMO ±10%",
                "Yala MAPE%", "Yala ±5%", "Yala ±10%",
            ],
            table_rows,
            title="Table 3 — multi-resource contention, fixed default traffic",
        )
        rows_b = []
        for predictor in ("yala", "slomo"):
            rows_b.append(
                [
                    predictor,
                    fmt(float(np.median(self.fig7a_low[predictor]))),
                    fmt(float(np.median(self.fig7a_high[predictor]))),
                ]
            )
        part_b = render_table(
            ["predictor", "median err % (low regex)", "median err % (high regex)"],
            rows_b,
            title="Figure 7(a) — FlowMonitor error vs regex contention level",
        )
        return part_a + "\n\n" + part_b


def build_cases(
    context: ExperimentContext,
    scale: str | ExperimentScale,
    seed: int = EXPERIMENT_SEED,
) -> list[EvaluationCase]:
    """Sample the Table 3 case list (same rng order as the seed loop).

    ``tag`` carries the regex-bench MTBR used for the Figure 7(a)
    low/high contention split.
    """
    resolved = get_scale(scale)
    collector = context.yala.collector
    rng = make_rng(seed)
    traffic = TrafficProfile()
    n_points = max(resolved.combos_per_nf * 3, 9)
    # Contention levels are drawn up front (same rng order as the seed
    # loop) and all ground-truth co-runs solve as one profiling batch.
    configs = []
    for target_name in _TARGETS:
        for _ in range(n_points):
            bench_mtbr = float(rng.uniform(100.0, 1100.0))
            contention = ContentionLevel(
                mem_car=float(rng.uniform(30.0, 250.0)),
                mem_wss_mb=float(rng.uniform(2.0, 12.0)),
                regex_rate=float(rng.uniform(0.2, 1.8)),
                regex_mtbr=bench_mtbr,
            )
            configs.append((target_name, contention, bench_mtbr))
    samples = collector.profile_many(
        [
            (make_nf(target_name), contention, traffic)
            for target_name, contention, _ in configs
        ]
    )
    cases = []
    for (target_name, contention, bench_mtbr), sample in zip(configs, samples):
        cases.append(
            EvaluationCase(
                target=target_name,
                traffic=traffic,
                truth=sample.throughput_mpps,
                competitors=(CompetitorSpec.bench(contention),),
                slomo_counters=collector.bench_counters(contention),
                slomo_n_competitors=contention.actor_count,
                tag=bench_mtbr,
            )
        )
    return cases


def run(scale: str = "default", seed: int = EXPERIMENT_SEED) -> Table3Result:
    """Regenerate Table 3 and Figure 7(a)."""
    resolved = get_scale(scale)
    context = get_context(resolved)
    cases = build_cases(context, resolved, seed)
    scored = score_cases(context, cases)
    groups = group_by_target(scored)

    rows = []
    fig7a_low: dict[str, list[float]] = {"yala": [], "slomo": []}
    fig7a_high: dict[str, list[float]] = {"yala": [], "slomo": []}
    for target_name in _TARGETS:
        subset = [scored[i] for i in groups.get(target_name, [])]
        if target_name == "flowmonitor":
            for case in subset:
                bucket = fig7a_low if case.tag <= 600.0 else fig7a_high
                bucket["yala"].append(case.yala_error_pct)
                bucket["slomo"].append(case.slomo_error_pct)
        summary = summarize_accuracy(subset)
        rows.append(
            Table3Row(
                nf_name=target_name,
                slomo_mape=summary.slomo_mape,
                slomo_acc5=summary.slomo_acc5,
                slomo_acc10=summary.slomo_acc10,
                yala_mape=summary.yala_mape,
                yala_acc5=summary.yala_acc5,
                yala_acc10=summary.yala_acc10,
            )
        )
    return Table3Result(rows=rows, fig7a_low=fig7a_low, fig7a_high=fig7a_high)
