"""Run all (or selected) experiments and print their rendered tables.

``python -m repro.experiments --scale default`` regenerates every table
and figure; ``--only table2,fig4`` restricts the set. Output of the
``full`` scale is what EXPERIMENTS.md records.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable

from repro.experiments import (
    fig1_contention_drop,
    fig2_single_resource,
    fig3_traffic_motivation,
    fig4_regex_equilibrium,
    fig5_execution_patterns,
    fig6_traffic_attributes,
    table2_overall_accuracy,
    table3_multi_resource,
    table4_composition,
    table5_traffic,
    table6_scheduling,
    table7_diagnosis,
    table8_profiling,
    table9_pensando,
)

#: Experiment registry: id -> run() callable. Figure 7 is produced by
#: the table3 (7a) and table5 (7b) modules; Figure 8 by table8.
EXPERIMENTS: dict[str, Callable] = {
    "fig1": fig1_contention_drop.run,
    "fig2": fig2_single_resource.run,
    "fig3": fig3_traffic_motivation.run,
    "fig4": fig4_regex_equilibrium.run,
    "fig5": fig5_execution_patterns.run,
    "fig6": fig6_traffic_attributes.run,
    "table2": table2_overall_accuracy.run,
    "table3+fig7a": table3_multi_resource.run,
    "table4": table4_composition.run,
    "table5+fig7b": table5_traffic.run,
    "table6": table6_scheduling.run,
    "table7": table7_diagnosis.run,
    "table8+fig8": table8_profiling.run,
    "table9": table9_pensando.run,
}


def run_experiments(
    names: list[str] | None = None, scale: str = "default"
) -> dict[str, object]:
    """Run the selected experiments and return their result objects."""
    selected = names or list(EXPERIMENTS)
    results = {}
    for name in selected:
        matches = [key for key in EXPERIMENTS if name in key.split("+") or key == name]
        if not matches:
            raise KeyError(f"unknown experiment {name!r}; known: {list(EXPERIMENTS)}")
        for key in matches:
            if key in results:
                continue
            start = time.time()
            results[key] = EXPERIMENTS[key](scale=scale)
            print(f"# {key} finished in {time.time() - start:.1f}s", file=sys.stderr)
    return results


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--scale", default="default", choices=("smoke", "default", "full")
    )
    parser.add_argument(
        "--only",
        default=None,
        help="comma-separated experiment ids (e.g. table2,fig4)",
    )
    args = parser.parse_args(argv)
    names = args.only.split(",") if args.only else None
    results = run_experiments(names, scale=args.scale)
    for key, result in results.items():
        print()
        print(f"=== {key} ===")
        print(result.render())
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI entry
    raise SystemExit(main())
