"""Run all (or selected) experiments and print their rendered tables.

``python -m repro.experiments --scale default`` regenerates every table
and figure; ``--only table2,fig4`` restricts the set. ``--jobs N`` runs
the selected experiments in N worker processes: every experiment is
deterministic given its own seeds, so results are identical to a serial
run — only the wall-clock changes. Rendered tables go to stdout;
per-experiment wall-clock timing lines (``# <id> finished in ...s``) go
to *stderr* so piped table output stays clean. The experiments listed
in :data:`CONTEXT_EXPERIMENTS` share one pre-trained model context per
(scale, seed) — the runner warms it before forking workers. Output of
the ``full`` scale is what EXPERIMENTS.md records.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable

from repro.experiments import (
    fig1_contention_drop,
    fig2_single_resource,
    fig3_traffic_motivation,
    fig4_regex_equilibrium,
    fig5_execution_patterns,
    fig6_traffic_attributes,
    fleet_serving,
    table2_overall_accuracy,
    table3_multi_resource,
    table4_composition,
    table5_traffic,
    table6_scheduling,
    table7_diagnosis,
    table8_profiling,
    table9_pensando,
)

__all__ = [
    "CONTEXT_EXPERIMENTS",
    "EXPERIMENTS",
    "main",
    "run_experiments",
]

#: Experiments that evaluate through the shared trained context
#: (repro.experiments.context). Only these benefit from pre-training it
#: before forking parallel workers. All except ``table9`` use the
#: default (BlueField-2) target; ``table9`` uses the Pensando target of
#: the same multi-target context.
CONTEXT_EXPERIMENTS: frozenset[str] = frozenset(
    {
        "fig2",
        "fig3",
        "table2",
        "table3+fig7a",
        "table4",
        "table5+fig7b",
        "table6",
        "table7",
        "table9",
        "fleet",
        "fleet-event",
    }
)

#: Experiment registry: id -> run() callable. Figure 7 is produced by
#: the table3 (7a) and table5 (7b) modules; Figure 8 by table8.
EXPERIMENTS: dict[str, Callable] = {
    "fig1": fig1_contention_drop.run,
    "fig2": fig2_single_resource.run,
    "fig3": fig3_traffic_motivation.run,
    "fig4": fig4_regex_equilibrium.run,
    "fig5": fig5_execution_patterns.run,
    "fig6": fig6_traffic_attributes.run,
    "table2": table2_overall_accuracy.run,
    "table3+fig7a": table3_multi_resource.run,
    "table4": table4_composition.run,
    "table5+fig7b": table5_traffic.run,
    "table6": table6_scheduling.run,
    "table7": table7_diagnosis.run,
    "table8+fig8": table8_profiling.run,
    "table9": table9_pensando.run,
    "fleet": fleet_serving.run,
    "fleet-event": fleet_serving.run_event,
}


def _select(names: list[str] | None) -> list[str]:
    """Resolve (possibly partial) experiment names to registry keys."""
    selected = names or list(EXPERIMENTS)
    keys: list[str] = []
    for name in selected:
        matches = [key for key in EXPERIMENTS if name in key.split("+") or key == name]
        if not matches:
            raise KeyError(f"unknown experiment {name!r}; known: {list(EXPERIMENTS)}")
        for key in matches:
            if key not in keys:
                keys.append(key)
    return keys


def _run_one(key: str, scale: str) -> tuple[str, object, float]:
    """Run one experiment (worker-process entry point)."""
    start = time.perf_counter()
    result = EXPERIMENTS[key](scale=scale)
    return key, result, time.perf_counter() - start


def run_experiments(
    names: list[str] | None = None,
    scale: str = "default",
    jobs: int = 1,
    pretrain_context: bool = True,
) -> dict[str, object]:
    """Run the selected experiments and return their result objects.

    With ``jobs > 1`` experiments run in worker processes. The shared
    trained context is built once in this process first (with NF-level
    training parallelism) so that fork-based workers inherit it instead
    of retraining; on platforms without fork, workers rebuild it
    deterministically. The warm-up is skipped automatically when no
    selected experiment uses the shared context (and can be forced off
    with ``pretrain_context=False``).
    """
    keys = _select(names)
    results: dict[str, object] = {}
    if jobs <= 1 or len(keys) == 1:
        for key in keys:
            _, results[key], elapsed = _run_one(key, scale)
            print(f"# {key} finished in {elapsed:.1f}s", file=sys.stderr)
        return results

    from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait

    if pretrain_context and any(key in CONTEXT_EXPERIMENTS for key in keys):
        # Pre-train the shared context's targets the selected
        # experiments use, so forked workers inherit the trained
        # predictors through copy-on-write memory.
        from repro.experiments.context import get_context

        context = get_context(scale)
        if any(
            key in CONTEXT_EXPERIMENTS and key != "table9" for key in keys
        ):
            # Default target: the full NF catalog, trained with the
            # runner's parallelism (identical results at any job count).
            context.target(train_jobs=jobs)
        if "table9" in keys:
            table9_pensando.warm_context(context)

    completed: dict[str, object] = {}
    with ProcessPoolExecutor(max_workers=min(jobs, len(keys))) as pool:
        futures = {pool.submit(_run_one, key, scale): key for key in keys}
        remaining = set(futures)
        while remaining:
            done, remaining = wait(remaining, return_when=FIRST_COMPLETED)
            for future in done:
                key, result, elapsed = future.result()
                completed[key] = result
                print(f"# {key} finished in {elapsed:.1f}s", file=sys.stderr)
    for key in keys:  # registry order, independent of completion order
        results[key] = completed[key]
    return results


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--scale", default="default", choices=("smoke", "default", "full")
    )
    parser.add_argument(
        "--only",
        default=None,
        help="comma-separated experiment ids (e.g. table2,fig4)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for experiments (1 = serial; results are "
        "identical at any job count; per-experiment timing lines are "
        "printed to stderr, rendered tables to stdout)",
    )
    args = parser.parse_args(argv)
    if args.jobs < 1:
        parser.error("--jobs must be >= 1")
    names = args.only.split(",") if args.only else None
    results = run_experiments(names, scale=args.scale, jobs=args.jobs)
    for key, result in results.items():
        print()
        print(f"=== {key} ===")
        print(result.render())
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI entry
    raise SystemExit(main())
