"""Table 7: bottleneck diagnosis use case.

FlowStats, FlowMonitor and IPComp Gateway co-run with mem-bench and
regex-bench while the traffic MTBR sweeps from 0 to 1100 matches/MB
(memory contention fixed). Ground truth comes from the simulator's
hotspot report; Yala answers with the resource whose per-resource
predicted throughput is lowest, SLOMO can only ever answer "memory".
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.predictor import YalaPredictor
from repro.experiments.common import EXPERIMENT_SEED, fmt, get_scale, render_table
from repro.experiments.context import get_context
from repro.nf.catalog import make_nf
from repro.profiling.contention import ContentionLevel
from repro.rng import derive_seed
from repro.usecases.diagnosis import BottleneckDiagnoser, DiagnosisOutcome

#: NFs diagnosed in Table 7.
TABLE7_NFS: tuple[str, ...] = ("flowstats", "flowmonitor", "ipcomp")

#: Fixed memory contention during the MTBR sweep, and the regex-bench
#: rate — chosen so the true bottleneck shifts across the sweep
#: (memory/compression at low MTBR, regex at high MTBR).
_MEMORY = ContentionLevel(mem_car=240.0, mem_wss_mb=10.0)
_REGEX_RATE = 0.8


@dataclass
class Table7Result:
    outcomes: dict[str, DiagnosisOutcome]

    def render(self) -> str:
        rows = [
            [name, fmt(outcome.slomo_pct), fmt(outcome.yala_pct)]
            for name, outcome in self.outcomes.items()
        ]
        return render_table(
            ["NF", "SLOMO correct %", "Yala correct %"],
            rows,
            title="Table 7 — bottleneck identification correctness",
        )


def run(scale: str = "default", seed: int = EXPERIMENT_SEED) -> Table7Result:
    """Regenerate Table 7."""
    resolved = get_scale(scale)
    context = get_context(resolved)
    collector = context.yala.collector
    mtbr_values = list(np.linspace(0.0, 1100.0, max(resolved.sweep_points, 5)))

    outcomes: dict[str, DiagnosisOutcome] = {}
    for nf_name in TABLE7_NFS:
        nf = make_nf(nf_name)
        if nf_name in context.yala.trained_names:
            predictor = context.yala.predictor_of(nf_name)
        else:
            # IPComp Gateway is not in the Table 2 training set; train a
            # standalone predictor for it.
            predictor = YalaPredictor(
                nf, collector, seed=derive_seed(seed, "table7", nf_name)
            )
            predictor.train(quota=resolved.quota)
        diagnoser = BottleneckDiagnoser(collector, predictor)
        outcomes[nf_name] = diagnoser.sweep(
            nf, mtbr_values, memory_contention=_MEMORY, regex_rate=_REGEX_RATE
        )
    return Table7Result(outcomes=outcomes)
