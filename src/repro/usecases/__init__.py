"""Operational use cases built on the predictors (paper §7.5).

- :mod:`repro.usecases.scheduling` — contention-aware NF placement onto
  a cluster of SmartNICs (Table 6): Monopolization / utilisation-Greedy
  / SLOMO-aware / Yala-aware, scored for resource wastage against an
  oracle packing and for SLA violations against ground truth.
- :mod:`repro.usecases.diagnosis` — performance-bottleneck
  identification under shifting traffic (Table 7).
"""

from repro.usecases.diagnosis import BottleneckDiagnoser, DiagnosisOutcome
from repro.usecases.scheduling import (
    NfArrival,
    PlacementOutcome,
    Scheduler,
    SchedulingResult,
    random_arrivals,
)

__all__ = [
    "BottleneckDiagnoser",
    "DiagnosisOutcome",
    "NfArrival",
    "PlacementOutcome",
    "Scheduler",
    "SchedulingResult",
    "random_arrivals",
]
