"""Contention-aware NF scheduling onto a SmartNIC cluster (§7.5.1).

The operator places arriving NFs one by one onto a growing pool of
SmartNICs, maximising utilisation while keeping every NF's throughput
drop within its SLA. Strategies:

- **monopolization** — one NF per NIC (no contention, huge wastage);
- **greedy** — utilisation-based first-available placement in the style
  of E3/Meili [47, 60]: additive resource-vector feasibility, most
  head-room first; no contention awareness;
- **slomo** — contention-aware via SLOMO predictions (memory-only);
- **yala** — contention-aware via Yala's multi-resource predictions.

Outcomes are scored against ground truth (the simulator actually runs
each NIC's final residents) for SLA violations, and against an oracle
packing for resource wastage, mirroring Table 6. The paper's "optimal"
is an offline exhaustive search; at 500 arrivals that is infeasible, so
the oracle here is best-fit-decreasing with true-simulation feasibility
checks plus a repacking pass — documented in DESIGN.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.core.predictor import YalaSystem
from repro.core.slomo import SlomoPredictor
from repro.errors import ConfigurationError
from repro.fleet.policies import PlacementModel
from repro.nf.catalog import EVALUATION_NF_NAMES, make_nf
from repro.rng import SeedLike, make_rng
from repro.traffic.profile import TrafficProfile

#: Cores every NF instance occupies (the paper gives each NF two).
_CORES_PER_NF = 2


@dataclass(frozen=True)
class NfArrival:
    """One NF arriving to the cluster with its SLA."""

    nf_name: str
    sla_drop_fraction: float  # max allowed throughput drop vs solo
    traffic: TrafficProfile = TrafficProfile()

    def __post_init__(self) -> None:
        if not 0.0 < self.sla_drop_fraction < 1.0:
            raise ConfigurationError("SLA drop fraction must be in (0, 1)")


def random_arrivals(
    count: int,
    seed: SeedLike = None,
    nf_names: tuple[str, ...] = EVALUATION_NF_NAMES,
    sla_range: tuple[float, float] = (0.05, 0.20),
) -> list[NfArrival]:
    """A random arrival sequence (paper: 500 NFs, SLA 5-20% drop)."""
    if count < 1:
        raise ConfigurationError("count must be >= 1")
    rng = make_rng(seed)
    return [
        NfArrival(
            nf_name=str(rng.choice(nf_names)),
            sla_drop_fraction=float(rng.uniform(*sla_range)),
        )
        for _ in range(count)
    ]


@dataclass
class PlacementOutcome:
    """Result of placing one arrival sequence with one strategy."""

    strategy: str
    nics_used: int
    violations: int
    total_nfs: int
    assignments: list[list[int]] = field(default_factory=list)  # arrival idx per NIC

    @property
    def violation_rate_pct(self) -> float:
        return 100.0 * self.violations / self.total_nfs if self.total_nfs else 0.0

    def wastage_pct(self, oracle_nics: int) -> float:
        """Extra NICs used relative to the oracle packing, percent."""
        if oracle_nics <= 0:
            raise ConfigurationError("oracle_nics must be positive")
        return 100.0 * (self.nics_used - oracle_nics) / oracle_nics


@dataclass
class SchedulingResult:
    """Aggregated Table 6 numbers across sequences."""

    strategy: str
    mean_wastage_pct: float
    mean_violation_pct: float
    sequences: int


class Scheduler:
    """Places NF arrival sequences using a chosen strategy."""

    def __init__(
        self,
        yala: YalaSystem,
        slomo_predictors: Optional[dict[str, SlomoPredictor]] = None,
    ) -> None:
        self._yala = yala
        self._nic = yala.nic
        # Strategy predicates live in the fleet policy layer so the
        # one-shot Table 6 scheduler and the fleet engine share them.
        self._model = PlacementModel(yala=yala, slomo_predictors=slomo_predictors)
        # Ground-truth co-run results are deterministic, so repeated
        # what-if evaluations of the same resident mix (the oracle
        # packing re-probes mixes constantly) are served from cache.
        self._drops_cache: dict[tuple, list[float]] = {}

    # ------------------------------------------------------------------
    # Ground truth helpers
    # ------------------------------------------------------------------
    def _solo_throughput(self, arrival: NfArrival) -> float:
        return self._model.solo_throughput(arrival)

    @staticmethod
    def _drops_key(residents: list[NfArrival]) -> tuple:
        """Cache key of one resident mix (SLAs don't affect the physics)."""
        return tuple((r.nf_name, r.traffic) for r in residents)

    def _true_drops(self, residents: list[NfArrival]) -> list[float]:
        """Measured drop fraction of every resident on one NIC."""
        return self._true_drops_many([residents])[0]

    def _true_drops_many(
        self, resident_lists: list[list[NfArrival]]
    ) -> list[list[float]]:
        """Batch ground truth: all uncached NIC mixes solve in one call.

        The scheduling what-ifs — scoring every NIC of a placement, the
        oracle's feasibility probes — are independent simulator runs, so
        they route through :meth:`SmartNic.run_batch` (identical results
        to per-mix :meth:`SmartNic.run` calls).
        """
        scenarios = []
        slots = []
        enqueued: set[tuple] = set()
        for i, residents in enumerate(resident_lists):
            key = self._drops_key(residents)
            if len(residents) == 1 or key in self._drops_cache or key in enqueued:
                continue
            enqueued.add(key)
            slots.append(i)
            scenarios.append(
                [
                    make_nf(r.nf_name).demand(r.traffic, instance=f"{r.nf_name}#{j}")
                    for j, r in enumerate(residents)
                ]
            )
        if scenarios:
            for i, result in zip(slots, self._nic.run_batch(scenarios)):
                residents = resident_lists[i]
                drops = []
                for j, resident in enumerate(residents):
                    solo = self._solo_throughput(resident)
                    achieved = result.throughput_of(f"{resident.nf_name}#{j}")
                    drops.append(max(0.0, 1.0 - achieved / solo))
                self._drops_cache[self._drops_key(residents)] = drops
        return [
            [0.0]
            if len(residents) == 1
            else self._drops_cache[self._drops_key(residents)]
            for residents in resident_lists
        ]

    def _true_feasible(self, residents: list[NfArrival]) -> bool:
        drops = self._true_drops(residents)
        return all(
            drop <= resident.sla_drop_fraction
            for drop, resident in zip(drops, residents)
        )

    # ------------------------------------------------------------------
    # Strategy predicates (shared with the fleet — repro.fleet.policies)
    # ------------------------------------------------------------------
    def _predicted_feasible_yala(self, residents: list[NfArrival]) -> bool:
        return self._model.predicted_feasible_yala(residents)

    def _predicted_feasible_slomo(self, residents: list[NfArrival]) -> bool:
        return self._model.predicted_feasible_slomo(residents)

    def _greedy_utilisation(self, residents: list[NfArrival]) -> float:
        """Additive utilisation estimate of one NIC (greedy's view)."""
        return self._model.greedy_utilisation(residents)

    # ------------------------------------------------------------------
    # Placement
    # ------------------------------------------------------------------
    def place(self, arrivals: list[NfArrival], strategy: str) -> PlacementOutcome:
        """Place ``arrivals`` one by one using ``strategy``."""
        if strategy not in ("monopolization", "greedy", "slomo", "yala"):
            raise ConfigurationError(f"unknown strategy {strategy!r}")
        max_per_nic = self._nic.spec.num_cores // _CORES_PER_NF
        nics: list[list[int]] = []

        for index, arrival in enumerate(arrivals):
            placed = False
            if strategy == "monopolization":
                nics.append([index])
                continue

            candidates = [
                i for i, residents in enumerate(nics) if len(residents) < max_per_nic
            ]
            if strategy == "greedy":
                # Most available head-room first, additive feasibility.
                candidates.sort(key=lambda i: (len(nics[i]), self._greedy_utilisation(
                    [arrivals[j] for j in nics[i]]
                )))
                for i in candidates:
                    residents = [arrivals[j] for j in nics[i]] + [arrival]
                    if self._greedy_utilisation(residents) <= 1.0:
                        nics[i].append(index)
                        placed = True
                        break
            else:
                feasible = (
                    self._predicted_feasible_yala
                    if strategy == "yala"
                    else self._predicted_feasible_slomo
                )
                # First-fit over existing NICs, fullest first (bin packing).
                candidates.sort(key=lambda i: -len(nics[i]))
                for i in candidates:
                    residents = [arrivals[j] for j in nics[i]] + [arrival]
                    if feasible(residents):
                        nics[i].append(index)
                        placed = True
                        break
            if not placed:
                nics.append([index])

        violations = 0
        resident_lists = [
            [arrivals[j] for j in residents_idx] for residents_idx in nics
        ]
        for residents, drops in zip(
            resident_lists, self._true_drops_many(resident_lists)
        ):
            violations += sum(
                1
                for drop, resident in zip(drops, residents)
                if drop > resident.sla_drop_fraction
            )
        return PlacementOutcome(
            strategy=strategy,
            nics_used=len(nics),
            violations=violations,
            total_nfs=len(arrivals),
            assignments=nics,
        )

    # ------------------------------------------------------------------
    # Oracle packing (wastage reference)
    # ------------------------------------------------------------------
    def oracle_nics(self, arrivals: list[NfArrival]) -> int:
        """Reference packing: best-fit-decreasing with true feasibility.

        Sorted hardest-first (tightest SLA first), each NF goes to the
        fullest NIC that remains truly SLA-feasible; a repacking pass
        then tries to empty the lightest NICs. A lower bound stand-in
        for the paper's exhaustive offline optimum.
        """
        max_per_nic = self._nic.spec.num_cores // _CORES_PER_NF
        order = sorted(
            range(len(arrivals)), key=lambda i: arrivals[i].sla_drop_fraction
        )
        nics: list[list[int]] = []
        for index in order:
            arrival = arrivals[index]
            placed = False
            for residents_idx in sorted(nics, key=len, reverse=True):
                if len(residents_idx) >= max_per_nic:
                    continue
                residents = [arrivals[j] for j in residents_idx] + [arrival]
                if self._true_feasible(residents):
                    residents_idx.append(index)
                    placed = True
                    break
            if not placed:
                nics.append([index])

        # Repacking pass: dissolve the lightest NICs if their residents
        # fit elsewhere.
        improved = True
        while improved:
            improved = False
            nics.sort(key=len)
            if not nics or len(nics[0]) >= max_per_nic:
                break
            light = nics[0]
            rest = nics[1:]
            moved: list[tuple[int, list[int]]] = []
            for index in list(light):
                for residents_idx in rest:
                    if len(residents_idx) >= max_per_nic:
                        continue
                    residents = [arrivals[j] for j in residents_idx] + [
                        arrivals[index]
                    ]
                    if self._true_feasible(residents):
                        residents_idx.append(index)
                        moved.append((index, residents_idx))
                        light.remove(index)
                        break
            if not light:
                nics = rest
                improved = True
            else:
                # Roll back partial moves to keep assignments consistent.
                for index, residents_idx in moved:
                    residents_idx.remove(index)
                    light.append(index)
        return len(nics)

    # ------------------------------------------------------------------
    def evaluate(
        self,
        sequences: list[list[NfArrival]],
        strategies: tuple[str, ...] = ("monopolization", "greedy", "slomo", "yala"),
    ) -> dict[str, SchedulingResult]:
        """Run every strategy over every sequence and aggregate Table 6."""
        wastage: dict[str, list[float]] = {s: [] for s in strategies}
        violations: dict[str, list[float]] = {s: [] for s in strategies}
        for arrivals in sequences:
            oracle = self.oracle_nics(arrivals)
            for strategy in strategies:
                outcome = self.place(arrivals, strategy)
                wastage[strategy].append(outcome.wastage_pct(oracle))
                violations[strategy].append(outcome.violation_rate_pct)
        return {
            s: SchedulingResult(
                strategy=s,
                mean_wastage_pct=float(np.mean(wastage[s])),
                mean_violation_pct=float(np.mean(violations[s])),
                sequences=len(sequences),
            )
            for s in strategies
        }
