"""Performance-bottleneck diagnosis under dynamic traffic (§7.5.2).

The operator co-runs an NF with mem-bench and regex-bench, sweeps the
traffic MTBR while keeping memory contention fixed, and asks *which
resource limits the NF right now?* Ground truth comes from hotspot
analysis (in this reproduction: the simulator's converged stage report);
a predictor identifies the bottleneck as the resource whose
per-resource predicted throughput is lowest.

SLOMO models only the memory subsystem, so it always answers "memory" —
correct exactly when memory really is the bottleneck (FlowStats), wrong
whenever the bottleneck shifts to an accelerator (FlowMonitor, IPComp
Gateway), reproducing Table 7.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.predictor import YalaPredictor
from repro.errors import ConfigurationError
from repro.nf.framework import NetworkFunction
from repro.profiling.collector import ProfilingCollector
from repro.profiling.contention import ContentionLevel
from repro.traffic.profile import TrafficProfile


@dataclass
class DiagnosisOutcome:
    """Per-NF diagnosis accuracy over one MTBR sweep."""

    nf_name: str
    total: int = 0
    yala_correct: int = 0
    slomo_correct: int = 0
    truths: list[str] = field(default_factory=list)
    yala_answers: list[str] = field(default_factory=list)

    @property
    def yala_pct(self) -> float:
        return 100.0 * self.yala_correct / self.total if self.total else 0.0

    @property
    def slomo_pct(self) -> float:
        return 100.0 * self.slomo_correct / self.total if self.total else 0.0


class BottleneckDiagnoser:
    """Runs the Table 7 diagnosis experiment for one NF."""

    def __init__(
        self,
        collector: ProfilingCollector,
        predictor: YalaPredictor,
    ) -> None:
        self._collector = collector
        self._predictor = predictor

    # ------------------------------------------------------------------
    def ground_truth(
        self,
        nf: NetworkFunction,
        contention: ContentionLevel,
        traffic: TrafficProfile,
    ) -> str:
        """Hotspot-analysis stand-in: measured bottleneck resource."""
        return self.ground_truth_many(nf, [(contention, traffic)])[0]

    def ground_truth_many(
        self,
        nf: NetworkFunction,
        points: list[tuple[ContentionLevel, TrafficProfile]],
    ) -> list[str]:
        """Measured bottlenecks of many independent operating points.

        The sweep's what-if co-runs solve in one
        :meth:`SmartNic.run_batch` call (identical labels to per-point
        :meth:`SmartNic.run` calls).
        """
        nic = self._collector.nic
        scenarios = []
        for contention, traffic in points:
            target = nf.demand(traffic)
            benches = contention.benches(nic.spec.num_cores - target.cores)
            scenarios.append([target] + benches)
        return [
            result[nf.name].bottleneck for result in nic.run_batch(scenarios)
        ]

    def yala_answer(
        self, contention: ContentionLevel, traffic: TrafficProfile
    ) -> str:
        """Identify the bottleneck from per-resource predictions.

        Two-step rule: (1) if some resource's contention visibly drags
        the end-to-end prediction below solo, the largest such drop is
        the bottleneck; (2) otherwise the NF is limited by its intrinsic
        solo bottleneck — the accelerator whose solo stage capacity sits
        at (or below) the solo throughput, or the memory subsystem if no
        accelerator does.
        """
        predictor = self._predictor
        solo = predictor.predict_solo(traffic)
        counters = self._collector.bench_counters(contention)
        drops = {
            "memory": max(
                0.0,
                solo
                - predictor.memory_model.predict(
                    counters, traffic, contention.actor_count
                ),
            )
        }
        solo_stage_rates = {}
        for accelerator in predictor.accel_models:
            share = predictor._bench_share(accelerator, contention)
            shares = [share] if share is not None else []
            contended = predictor._accelerator_throughput(
                accelerator, traffic, shares, solo
            )
            drops[accelerator] = max(0.0, solo - contended)
            solo_stage_rates[accelerator] = predictor.accel_models[
                accelerator
            ].solo_rate(traffic)

        threshold = 0.05 * solo
        worst = max(drops, key=drops.get)
        if drops[worst] >= threshold:
            return worst
        # No visible contention drop: the intrinsic solo bottleneck.
        if solo_stage_rates:
            slowest = min(solo_stage_rates, key=solo_stage_rates.get)
            if solo_stage_rates[slowest] <= 1.15 * solo:
                return slowest
        return "memory"

    # ------------------------------------------------------------------
    def sweep(
        self,
        nf: NetworkFunction,
        mtbr_values: list[float],
        memory_contention: ContentionLevel,
        base_traffic: TrafficProfile = TrafficProfile(),
        regex_rate: float = 1.2,
    ) -> DiagnosisOutcome:
        """Sweep MTBR with fixed memory contention and score answers.

        Mirrors §7.5.2: MTBR from 0 to 1100 matches/MB, memory
        contention unchanged, bottleneck may shift between memory and
        the regex accelerator.
        """
        if not mtbr_values:
            raise ConfigurationError("mtbr_values must be non-empty")
        outcome = DiagnosisOutcome(nf_name=nf.name)
        points = []
        for mtbr in mtbr_values:
            traffic = base_traffic.with_attribute("mtbr", mtbr)
            contention = memory_contention.with_regex(regex_rate, mtbr=max(mtbr, 1.0))
            points.append((contention, traffic))
        truths = self.ground_truth_many(nf, points)
        for (contention, traffic), truth in zip(points, truths):
            yala = self.yala_answer(contention, traffic)
            slomo = "memory"  # SLOMO sees only the memory subsystem.
            outcome.total += 1
            outcome.truths.append(truth)
            outcome.yala_answers.append(yala)
            if yala == truth:
                outcome.yala_correct += 1
            if slomo == truth:
                outcome.slomo_correct += 1
        return outcome
