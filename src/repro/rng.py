"""Deterministic random-number utilities.

Every stochastic component in the library draws from a
:class:`numpy.random.Generator` created through :func:`make_rng` so that
experiments are reproducible end to end. Components accept either a seed
or an existing generator; :func:`make_rng` normalises both cases.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

SeedLike = Union[int, np.random.Generator, None]

#: Seed used across the experiment harness when none is supplied.
DEFAULT_SEED = 0x5EED


def make_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    ``seed`` may be an ``int``, an existing generator (returned as-is so
    that callers can share one stream), or ``None`` for the library-wide
    default seed.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if seed is None:
        seed = DEFAULT_SEED
    return np.random.default_rng(seed)


def normalize_seed(seed: SeedLike) -> Optional[int]:
    """Collapse ``seed`` to a concrete int, honouring the full contract.

    Ints pass through, ``None`` stays ``None`` (callers supply their own
    default), and an existing :class:`~numpy.random.Generator` is
    consumed for one draw — so two different generators (or the same
    generator at different points of its stream) yield different
    sub-seeds instead of being silently discarded.
    """
    if isinstance(seed, np.random.Generator):
        return int(seed.integers(0, 2**63 - 1))
    if seed is None:
        return None
    return int(seed)


def spawn(rng: np.random.Generator, count: int) -> list[np.random.Generator]:
    """Split ``rng`` into ``count`` independent child generators.

    Children are derived from seeds drawn from the parent, so a run is
    reproducible even when subcomponents consume different numbers of
    samples.
    """
    seeds = rng.integers(0, 2**63 - 1, size=count)
    return [np.random.default_rng(int(s)) for s in seeds]


def derive_seed(base: int, *components: object) -> int:
    """Derive a stable sub-seed from ``base`` and hashable components.

    Used to give each (NF, contender, traffic-profile) combination its own
    deterministic noise stream regardless of evaluation order.

    The mixing loop runs on plain Python ints (bit-identical to the
    original ``np.uint64``-wrapped arithmetic, ~5x faster): seeding
    measurement noise hashes full workload reprs, which made per-byte
    ``np.uint64`` round-trips the hottest line of simulation sweeps.
    """
    value = int(np.uint64(base))
    for component in components:
        # FNV-1a style mixing over the repr; stable across processes
        # because PYTHONHASHSEED does not affect repr of our value types.
        for byte in repr(component).encode("utf-8"):
            value = ((value ^ byte) * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
    return int(value % (2**63 - 1))
