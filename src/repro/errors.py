"""Exception hierarchy for the repro package.

All library errors derive from :class:`ReproError` so callers can catch a
single base class. Subclasses mark the subsystem that raised the error.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


class ConfigurationError(ReproError):
    """An object was constructed or configured with invalid parameters."""


class SimulationError(ReproError):
    """The SmartNIC simulator could not complete a run."""


class PlacementError(ReproError):
    """An NF could not be placed on a NIC (insufficient resources)."""


class ModelNotFittedError(ReproError):
    """A prediction model was used before it was fitted."""


class ProfilingError(ReproError):
    """Offline profiling failed or was given an inconsistent request."""


class ConvergenceError(SimulationError):
    """The contention fixed-point solver failed to converge."""
