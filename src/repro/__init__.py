"""Yala reproduction: contention- and traffic-aware performance
prediction for on-NIC network functions (ASPLOS 2025).

Layering (bottom-up):

- :mod:`repro.ml` — from-scratch ML substrate (trees, boosting, linear),
- :mod:`repro.nic` — mechanistic SoC SmartNIC simulator,
- :mod:`repro.traffic` — traffic profiles / flows / payloads,
- :mod:`repro.nf` — NF framework, Table-1 catalog, synthetic benches,
- :mod:`repro.profiling` — offline profiling incl. adaptive profiling,
- :mod:`repro.core` — **Yala** itself (per-resource models, composition,
  the predictor) plus the SLOMO baseline,
- :mod:`repro.usecases` — contention-aware scheduling and diagnosis,
- :mod:`repro.experiments` — regenerates every paper table and figure.

Quickstart::

    from repro import quick_predictor
    from repro.traffic import TrafficProfile

    predictor, nic = quick_predictor("flowmonitor")
    prediction = predictor.predict(
        traffic=TrafficProfile(16_000, 1500, 600.0),
        competitors=["nids", "flowstats"],
    )
"""

from repro.errors import (
    ConfigurationError,
    ConvergenceError,
    ModelNotFittedError,
    PlacementError,
    ProfilingError,
    ReproError,
    SimulationError,
)

__version__ = "1.0.0"

__all__ = [
    "ConfigurationError",
    "ConvergenceError",
    "ModelNotFittedError",
    "PlacementError",
    "ProfilingError",
    "ReproError",
    "SimulationError",
    "__version__",
    "quick_predictor",
]


def quick_predictor(nf_name: str, seed: int = 7):
    """Train a Yala predictor for ``nf_name`` with default profiling.

    Convenience wrapper used by the examples; returns
    ``(YalaPredictor, SmartNic)``. Imported lazily to keep package
    import light.
    """
    from repro.core.predictor import YalaPredictor
    from repro.nic import SmartNic, bluefield2_spec

    nic = SmartNic(bluefield2_spec(), seed=seed)
    predictor = YalaPredictor.train_for(nf_name, nic, seed=seed)
    return predictor, nic
