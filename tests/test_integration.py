"""Cross-layer integration tests: the paper's headline stories end to end.

These use the session-scoped trained fixtures, so each test reads like
one of the paper's claims executed against the simulator.
"""

import numpy as np
import pytest

from repro.core.predictor import CompetitorSpec
from repro.core.slomo import SlomoPredictor
from repro.nf.catalog import make_nf
from repro.nic.workload import ExecutionPattern
from repro.profiling.contention import ContentionLevel
from repro.traffic.profile import TrafficProfile

TRAFFIC = TrafficProfile()


class TestMultiResourceStory:
    """§2.2.1: memory-only models fail once accelerators contend."""

    def test_slomo_misses_regex_contention(self, small_system, collector):
        slomo = SlomoPredictor("flowmonitor", seed=4)
        slomo.train(collector, make_nf("flowmonitor"), n_samples=200)
        level = ContentionLevel(
            mem_car=120.0, regex_rate=1.5, regex_mtbr=1000.0
        )
        truth = collector.profile_one(
            make_nf("flowmonitor"), level, TRAFFIC
        ).throughput_mpps
        slomo_pred = slomo.predict(
            collector.bench_counters(level),
            TRAFFIC,
            n_competitors=level.actor_count,
        )
        yala_pred = small_system.predict(
            "flowmonitor", TRAFFIC, [CompetitorSpec.bench(level)]
        )
        slomo_err = abs(slomo_pred - truth) / truth
        yala_err = abs(yala_pred - truth) / truth
        assert yala_err < slomo_err
        assert slomo_err > 0.15  # SLOMO cannot see the regex engine

    def test_yala_accurate_across_contention_grid(self, small_system, collector):
        nf = make_nf("flowmonitor")
        errors = []
        for car in (80.0, 200.0):
            for rate in (0.5, 1.4):
                level = ContentionLevel(
                    mem_car=car, regex_rate=rate, regex_mtbr=800.0
                )
                truth = collector.profile_one(nf, level, TRAFFIC).throughput_mpps
                pred = small_system.predict(
                    "flowmonitor", TRAFFIC, [CompetitorSpec.bench(level)]
                )
                errors.append(abs(pred - truth) / truth)
        assert float(np.mean(errors)) < 0.10


class TestTrafficStory:
    """§2.2.2: fixed-profile models break when traffic shifts."""

    def test_yala_handles_flow_count_shift(self, small_system, collector):
        nf = make_nf("flowstats")
        shifted = TrafficProfile(300_000, 1500, 600.0)
        level = ContentionLevel(mem_car=120.0)
        truth = collector.profile_one(nf, level, shifted).throughput_mpps
        pred = small_system.predict(
            "flowstats", shifted, [CompetitorSpec.bench(level)]
        )
        assert abs(pred - truth) / truth < 0.12

    def test_attribute_pruning_matches_catalog_metadata(self, small_system):
        report = small_system.predictor_of("flowstats").profiling_report
        assert report.kept_attributes == ["flow_count"]


class TestCompositionStory:
    """§4.2: execution pattern decides how drops compose."""

    def test_detected_patterns_match_implementations(self, small_system):
        assert (
            small_system.predictor_of("flowmonitor").pattern
            is ExecutionPattern.PIPELINE
        )
        assert (
            small_system.predictor_of("nids").pattern
            is ExecutionPattern.RUN_TO_COMPLETION
        )

    def test_joint_prediction_conserves_engine_capacity(self, small_system):
        """Two regex NFs can't jointly be predicted above engine rates."""
        rates = small_system.predict_colocation(
            [("flowmonitor", TRAFFIC), ("nids", TRAFFIC)]
        )
        fm = small_system.predictor_of("flowmonitor")
        nd = small_system.predictor_of("nids")
        busy = rates[0] * fm.accel_models["regex"].request_time(TRAFFIC) + rates[
            1
        ] * nd.accel_models["regex"].request_time(TRAFFIC)
        assert busy <= 1.15  # the engine second is the hard budget


class TestQueueModelStory:
    """§4.1.1: the queueing model matches measured equilibria."""

    def test_eq1_matches_measured_equilibrium(self, small_system, collector):
        fm = small_system.predictor_of("flowmonitor")
        model = fm.accel_models["regex"]
        # Saturating bench with known parameters.
        payload, mtbr = 2048.0, 2000.0
        bench_time = 0.010 + payload / 2000.0 + payload * mtbr / 1e6 * 0.250
        level = ContentionLevel(
            regex_rate=50.0, regex_mtbr=mtbr, regex_payload_bytes=payload
        )
        truth = collector.profile_one(
            make_nf("flowmonitor"), level, TRAFFIC
        ).throughput_mpps
        predicted_rate = 1.0 / (model.request_time(TRAFFIC) + bench_time)
        assert predicted_rate == pytest.approx(truth, rel=0.08)


class TestPensandoStory:
    """§8 / Table 9: the model family transfers to another SoC NIC."""

    def test_firewall_predictor_trains_on_pensando(self, pensando_nic):
        from repro.core.predictor import YalaPredictor
        from repro.profiling.collector import ProfilingCollector

        collector = ProfilingCollector(pensando_nic)
        predictor = YalaPredictor(make_nf("firewall"), collector, seed=5)
        predictor.train(quota=150)
        level = ContentionLevel(mem_car=150.0)
        truth = collector.profile_one(
            make_nf("firewall"), level, TRAFFIC
        ).throughput_mpps
        pred = predictor.predict(TRAFFIC, [CompetitorSpec.bench(level)])
        assert abs(pred - truth) / truth < 0.12
