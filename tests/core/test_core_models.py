"""Unit tests for Yala's per-resource models and composition."""

import numpy as np
import pytest

from repro.core.accel_model import (
    AcceleratorShare,
    QueueingAcceleratorModel,
    waterfill_rates,
)
from repro.core.baselines import compose_min, compose_sum
from repro.core.composition import (
    compose,
    detect_execution_pattern,
    pipeline_throughput,
    run_to_completion_throughput,
)
from repro.core.memory_model import MemoryContentionModel
from repro.errors import ConfigurationError, ModelNotFittedError, ProfilingError
from repro.nf.catalog import make_nf
from repro.nic.counters import PerfCounters
from repro.nic.workload import ExecutionPattern
from repro.profiling.adaptive import AdaptiveProfiler
from repro.profiling.contention import ContentionLevel
from repro.traffic.profile import TrafficProfile

TRAFFIC = TrafficProfile()


class TestWaterfillRates:
    def test_two_saturated_clients_split_equally(self):
        shares = [
            AcceleratorShare("a", 1, 0.5),
            AcceleratorShare("b", 1, 0.5),
        ]
        rates = waterfill_rates(shares)
        assert rates["a"] == pytest.approx(rates["b"]) == pytest.approx(1.0)

    def test_matches_eq1_form(self):
        """T_i = n_i / sum_j n_j t_j for saturated clients."""
        shares = [
            AcceleratorShare("a", 2, 0.3),
            AcceleratorShare("b", 1, 0.7),
        ]
        rates = waterfill_rates(shares)
        denom = 2 * 0.3 + 1 * 0.7
        assert rates["a"] == pytest.approx(2 / denom)
        assert rates["b"] == pytest.approx(1 / denom)

    def test_open_loop_client_served_at_offer(self):
        shares = [
            AcceleratorShare("a", 1, 0.5),
            AcceleratorShare("b", 1, 0.5, offered_rate=0.4),
        ]
        rates = waterfill_rates(shares)
        assert rates["b"] == pytest.approx(0.4)
        assert rates["a"] == pytest.approx((1.0 - 0.2) / 0.5)

    def test_empty(self):
        assert waterfill_rates([]) == {}

    def test_share_validation(self):
        with pytest.raises(ConfigurationError):
            AcceleratorShare("a", 0, 0.5)
        with pytest.raises(ConfigurationError):
            AcceleratorShare("a", 1, 0.0)


class TestQueueingAcceleratorModel:
    @pytest.fixture(scope="class")
    def fitted(self, collector):
        model = QueueingAcceleratorModel("flowmonitor", "regex")
        model.fit(collector, make_nf("flowmonitor"))
        return model

    def test_queue_count_inferred_as_one(self, fitted):
        assert fitted.n_queues_ == 1.0

    def test_request_time_close_to_truth(self, fitted):
        # FlowMonitor scans half the payload: true engine time at the
        # default profile is ~0.48us.
        true_time = 0.01 + 0.5 * 1446 / 2000 + 0.5 * 1446 * 600e-6 * 0.25
        assert fitted.request_time(TRAFFIC) == pytest.approx(true_time, rel=0.1)

    def test_request_time_grows_with_mtbr(self, fitted):
        low = fitted.request_time(TrafficProfile(16_000, 1500, 100.0))
        high = fitted.request_time(TrafficProfile(16_000, 1500, 1000.0))
        assert high > low

    def test_contended_rate_below_solo(self, fitted):
        competitor = AcceleratorShare("bench", 1, 0.8, offered_rate=0.6)
        assert fitted.contended_rate(TRAFFIC, [competitor]) < fitted.solo_rate(
            TRAFFIC
        )

    def test_fit_error_small(self, fitted):
        assert fitted.mean_fit_error < 0.10

    def test_unfitted_raises(self):
        model = QueueingAcceleratorModel("nids", "regex")
        with pytest.raises(ModelNotFittedError):
            model.request_time(TRAFFIC)

    def test_unsupported_accelerator(self):
        with pytest.raises(ConfigurationError):
            QueueingAcceleratorModel("nids", "crypto")


class TestMemoryContentionModel:
    @pytest.fixture(scope="class")
    def fitted(self, collector):
        report = AdaptiveProfiler(collector, quota=150, seed=9).profile(
            make_nf("flowstats")
        )
        return MemoryContentionModel("flowstats", seed=9).fit(report.dataset)

    def test_solo_prediction_close(self, fitted, collector):
        truth = collector.solo(make_nf("flowstats"), TRAFFIC).throughput_mpps
        assert fitted.predict_solo(TRAFFIC) == pytest.approx(truth, rel=0.1)

    def test_contended_prediction_below_solo(self, fitted, collector):
        counters = collector.bench_counters(ContentionLevel(mem_car=240.0))
        assert fitted.predict(counters, TRAFFIC) < fitted.predict_solo(TRAFFIC)

    def test_accuracy_on_sweep(self, fitted, collector):
        errors = []
        nf = make_nf("flowstats")
        for car in (60.0, 140.0, 220.0):
            level = ContentionLevel(mem_car=car)
            truth = collector.profile_one(nf, level, TRAFFIC).throughput_mpps
            pred = fitted.predict(collector.bench_counters(level), TRAFFIC)
            errors.append(abs(pred - truth) / truth)
        assert np.mean(errors) < 0.12

    def test_requires_min_samples(self):
        from repro.profiling.dataset import ProfileDataset

        with pytest.raises(ProfilingError):
            MemoryContentionModel("acl").fit(ProfileDataset("acl"))

    def test_wrong_dataset_rejected(self, collector):
        report = AdaptiveProfiler(collector, quota=30, seed=9).profile(make_nf("acl"))
        with pytest.raises(ProfilingError):
            MemoryContentionModel("nat").fit(report.dataset)

    def test_feature_importances_named(self, fitted):
        importances = fitted.feature_importances()
        assert "flow_count" in importances and "l2crd" in importances

    def test_unfitted_predict_raises(self):
        with pytest.raises(ModelNotFittedError):
            MemoryContentionModel("acl").predict(PerfCounters.zero(), TRAFFIC)


class TestComposition:
    def test_pipeline_takes_worst_drop(self):
        assert pipeline_throughput(2.0, [1.5, 1.8]) == pytest.approx(1.5)

    def test_pipeline_no_drop_returns_solo(self):
        assert pipeline_throughput(2.0, [2.5, 3.0]) == pytest.approx(2.0)

    def test_rtc_compounds_drops(self):
        # Eq. 3 with two drops must fall below either single drop.
        combined = run_to_completion_throughput(2.0, [1.5, 1.6])
        assert combined < 1.5

    def test_rtc_matches_eq3_formula(self):
        solo, t1, t2 = 2.0, 1.5, 1.6
        inverse = 1 / t1 + 1 / t2 - 1 / solo
        assert run_to_completion_throughput(solo, [t1, t2]) == pytest.approx(
            1 / inverse
        )

    def test_rtc_single_resource_is_identity(self):
        assert run_to_completion_throughput(2.0, [1.4]) == pytest.approx(1.4)

    def test_pipeline_single_resource_is_identity(self):
        assert pipeline_throughput(2.0, [1.4]) == pytest.approx(1.4)

    def test_compose_dispatch(self):
        per_resource = [1.5, 1.8]
        assert compose(ExecutionPattern.PIPELINE, 2.0, per_resource) == pytest.approx(
            pipeline_throughput(2.0, per_resource)
        )
        assert compose(
            ExecutionPattern.RUN_TO_COMPLETION, 2.0, per_resource
        ) == pytest.approx(run_to_completion_throughput(2.0, per_resource))

    def test_sum_composition_subtracts_all(self):
        assert compose_sum(2.0, [1.5, 1.8]) == pytest.approx(2.0 - 0.5 - 0.2)

    def test_min_composition_equals_pipeline_rule(self):
        assert compose_min(2.0, [1.5, 1.8]) == pytest.approx(
            pipeline_throughput(2.0, [1.5, 1.8])
        )

    def test_sum_composition_floors_at_zero(self):
        assert compose_sum(1.0, [0.2, 0.2]) > 0.0

    def test_rejects_nonpositive_solo(self):
        with pytest.raises(ConfigurationError):
            pipeline_throughput(0.0, [1.0])
        with pytest.raises(ConfigurationError):
            compose_sum(0.0, [1.0])


class TestPatternDetection:
    def test_detects_pipeline_flowmonitor(self, collector):
        result = detect_execution_pattern(collector, make_nf("flowmonitor"))
        assert result.pattern is ExecutionPattern.PIPELINE
        assert result.pipeline_error < result.rtc_error

    def test_detects_rtc_nids(self, collector):
        result = detect_execution_pattern(collector, make_nf("nids"))
        assert result.pattern is ExecutionPattern.RUN_TO_COMPLETION

    def test_memory_only_nf_reports_neutral(self, collector):
        result = detect_execution_pattern(collector, make_nf("flowstats"))
        assert result.pipeline_error == 0.0 and result.rtc_error == 0.0
        assert not result.confident

    def test_synthetic_pattern_pair_detected(self, collector):
        from repro.nf.synthetic import nf1

        pipe = detect_execution_pattern(
            collector, nf1(ExecutionPattern.PIPELINE)
        )
        rtc = detect_execution_pattern(
            collector, nf1(ExecutionPattern.RUN_TO_COMPLETION)
        )
        assert pipe.pattern is ExecutionPattern.PIPELINE
        assert rtc.pattern is ExecutionPattern.RUN_TO_COMPLETION
