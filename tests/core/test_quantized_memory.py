"""Quantized-feature mode of :class:`MemoryContentionModel`.

``quantize_bins=K`` snaps (scaled) features onto a per-feature quantile
grid at fit time so the histogram split finder accelerates continuous
counter matrices. It is an opt-in approximation: the default stays on
the bit-exact vectorized path. The mode must survive pickling (the
predictor travels through worker processes during parallel training)
and keep the batch/single prediction equivalence.
"""

from __future__ import annotations

import pickle
from concurrent.futures import ProcessPoolExecutor

import numpy as np
import pytest

from repro.core.memory_model import MemoryContentionModel
from repro.errors import ConfigurationError
from repro.nf.catalog import make_nf
from repro.profiling.collector import ProfilingCollector
from repro.profiling.contention import ContentionLevel, random_contention
from repro.profiling.dataset import ProfileDataset
from repro.traffic.profile import TrafficProfile


@pytest.fixture(scope="module")
def profile_data(noisy_nic):
    """A small profiling dataset plus probe scenarios."""
    collector = ProfilingCollector(noisy_nic)
    nf = make_nf("flowmonitor")
    dataset = ProfileDataset(nf.name)
    rng = np.random.default_rng(19)
    profiles = [
        TrafficProfile(),
        TrafficProfile(64_000, 512, 300.0),
        TrafficProfile(4_000, 1500, 900.0),
    ]
    for index in range(40):
        contention = (
            ContentionLevel()
            if index < 4
            else random_contention(seed=rng, memory=True)
        )
        dataset.add(
            collector.profile_one(nf, contention, profiles[index % len(profiles)])
        )
    probes = []
    for _ in range(10):
        level = random_contention(seed=rng, memory=True)
        probes.append(
            (
                collector.bench_counters(level),
                TrafficProfile(
                    int(rng.uniform(1_000, 300_000)),
                    int(rng.uniform(64, 1500)),
                    float(rng.uniform(0, 1000)),
                ),
                int(rng.integers(0, 4)),
            )
        )
    return dataset, probes


def _fit_quantized(dataset: ProfileDataset) -> MemoryContentionModel:
    model = MemoryContentionModel(
        dataset.nf_name, n_estimators=40, seed=5, quantize_bins=16
    )
    return model.fit(dataset)


def _fit_in_worker(dataset: ProfileDataset) -> np.ndarray:
    """Worker-process entry point for the parallel-training check."""
    model = _fit_quantized(dataset)
    sample = dataset.samples[0]
    return model.predict_batch(
        [sample.competitor_counters], [sample.traffic], [sample.n_competitors]
    )


class TestQuantizedMode:
    def test_default_stays_bit_exact_vectorized(self):
        model = MemoryContentionModel("acl")
        assert not model.quantized
        assert model._model.split_algorithm == "vectorized"

    def test_quantized_uses_histogram_finder(self, profile_data):
        dataset, probes = profile_data
        model = _fit_quantized(dataset)
        assert model.quantized
        assert model._model.split_algorithm == "histogram"
        predictions = model.predict_batch(*map(list, zip(*probes)))
        assert np.isfinite(predictions).all()
        assert (predictions > 0).all()

    def test_quantized_batch_matches_single_calls(self, profile_data):
        dataset, probes = profile_data
        model = _fit_quantized(dataset)
        batched = model.predict_batch(*map(list, zip(*probes)))
        looped = [model.predict(c, t, n) for c, t, n in probes]
        assert batched.tolist() == looped

    def test_quantized_tracks_exact_mode_on_training_points(self, profile_data):
        # Snapping is lossy, but on its own training grid the quantized
        # model must still fit the measured throughputs about as well as
        # the exact one (it only merges near-identical counter levels).
        dataset, _ = profile_data
        exact = MemoryContentionModel(dataset.nf_name, n_estimators=40, seed=5)
        exact.fit(dataset)
        quantized = _fit_quantized(dataset)
        rows = [
            (s.competitor_counters, s.traffic, s.n_competitors)
            for s in dataset.samples
        ]
        targets = dataset.targets()
        args = [list(column) for column in zip(*rows)]
        exact_err = np.abs(exact.predict_batch(*args) - targets).mean()
        quant_err = np.abs(quantized.predict_batch(*args) - targets).mean()
        assert quant_err <= 3.0 * exact_err + 0.05

    def test_pickle_round_trip(self, profile_data):
        dataset, probes = profile_data
        model = _fit_quantized(dataset)
        clone = pickle.loads(pickle.dumps(model))
        args = [list(column) for column in zip(*probes)]
        assert clone.predict_batch(*args).tolist() == model.predict_batch(
            *args
        ).tolist()

    def test_parallel_training_matches_in_process(self, profile_data):
        dataset, _ = profile_data
        with ProcessPoolExecutor(max_workers=1) as pool:
            from_worker = pool.submit(_fit_in_worker, dataset).result()
        assert from_worker.tolist() == _fit_in_worker(dataset).tolist()

    def test_bad_bin_count_rejected(self):
        with pytest.raises(ConfigurationError):
            MemoryContentionModel("acl", quantize_bins=1)


class TestQuantizeBinsWiring:
    """PR 3: ``quantize_bins`` flows through the training entry points."""

    def test_yala_predictor_train_quantizes_memory_model(self, noisy_nic):
        from repro.core.predictor import YalaPredictor

        predictor = YalaPredictor(
            make_nf("flowstats"), ProfilingCollector(noisy_nic), seed=11
        )
        predictor.train(quota=40, quantize_bins=16)
        assert predictor.memory_model.quantized
        assert predictor.memory_model.quantize_bins == 16
        assert predictor.predict_solo(TrafficProfile()) > 0

    def test_yala_system_threads_quantize_bins(self, noisy_nic):
        from repro.core.predictor import YalaSystem

        system = YalaSystem(noisy_nic, seed=12, quota=40, quantize_bins=8)
        system.train(["flowstats"])
        assert system.predictor_of("flowstats").memory_model.quantized

    def test_default_training_stays_exact(self, noisy_nic):
        from repro.core.predictor import YalaPredictor

        predictor = YalaPredictor(
            make_nf("flowstats"), ProfilingCollector(noisy_nic), seed=13
        )
        predictor.train(quota=40)
        assert not predictor.memory_model.quantized
