"""Tests for the Yala predictor/system and the SLOMO baseline."""

import numpy as np
import pytest

from repro.core.predictor import CompetitorSpec, YalaPredictor
from repro.core.slomo import SlomoPredictor
from repro.errors import ConfigurationError, ModelNotFittedError, ProfilingError
from repro.nf.catalog import make_nf
from repro.nic.counters import PerfCounters
from repro.nic.workload import ExecutionPattern
from repro.profiling.contention import ContentionLevel
from repro.traffic.profile import TrafficProfile

TRAFFIC = TrafficProfile()


class TestCompetitorSpec:
    def test_nf_constructor(self):
        spec = CompetitorSpec.nf("nids")
        assert spec.kind == "nf" and spec.nf_name == "nids"

    def test_bench_constructor(self):
        spec = CompetitorSpec.bench(ContentionLevel(mem_car=10.0))
        assert spec.kind == "bench"

    def test_nf_requires_name(self):
        with pytest.raises(ConfigurationError):
            CompetitorSpec(kind="nf")

    def test_bench_requires_contention(self):
        with pytest.raises(ConfigurationError):
            CompetitorSpec(kind="bench")

    def test_unknown_kind(self):
        with pytest.raises(ConfigurationError):
            CompetitorSpec(kind="vm")


class TestYalaPredictor:
    def test_training_populates_models(self, trained_flowmonitor):
        predictor = trained_flowmonitor
        assert predictor.pattern is ExecutionPattern.PIPELINE
        assert predictor.memory_model is not None
        assert "regex" in predictor.accel_models
        assert predictor.profiling_report is not None

    def test_solo_prediction_accuracy(self, trained_flowmonitor, collector):
        truth = collector.solo(make_nf("flowmonitor"), TRAFFIC).throughput_mpps
        assert trained_flowmonitor.predict_solo(TRAFFIC) == pytest.approx(
            truth, rel=0.08
        )

    def test_bench_contention_prediction(self, trained_flowmonitor, collector):
        level = ContentionLevel(mem_car=150.0, regex_rate=1.0, regex_mtbr=800.0)
        truth = collector.profile_one(
            make_nf("flowmonitor"), level, TRAFFIC
        ).throughput_mpps
        pred = trained_flowmonitor.predict(
            TRAFFIC, [CompetitorSpec.bench(level)]
        )
        assert pred == pytest.approx(truth, rel=0.15)

    def test_prediction_decreases_with_contention(self, trained_flowmonitor):
        light = trained_flowmonitor.predict(
            TRAFFIC,
            [CompetitorSpec.bench(ContentionLevel(mem_car=30.0, regex_rate=0.2))],
        )
        heavy = trained_flowmonitor.predict(
            TRAFFIC,
            [CompetitorSpec.bench(ContentionLevel(mem_car=240.0, regex_rate=1.6))],
        )
        assert heavy < light

    def test_no_competitors_predicts_solo(self, trained_flowmonitor):
        assert trained_flowmonitor.predict(TRAFFIC, []) == pytest.approx(
            trained_flowmonitor.predict_solo(TRAFFIC), rel=0.02
        )

    def test_untrained_predictor_raises(self, collector):
        predictor = YalaPredictor(make_nf("acl"), collector)
        with pytest.raises(ModelNotFittedError):
            predictor.predict(TRAFFIC, [])


class TestYalaSystem:
    def test_trained_names(self, small_system):
        assert small_system.trained_names == ["flowmonitor", "flowstats", "nids"]

    def test_unknown_predictor_raises(self, small_system):
        with pytest.raises(ProfilingError):
            small_system.predictor_of("acl")

    def test_colocation_prediction_accuracy(self, small_system):
        collector = small_system.collector
        truth = collector.co_run_with(
            make_nf("flowmonitor"), TRAFFIC, [(make_nf("nids"), TRAFFIC)]
        ).throughput_mpps
        pred = small_system.predict(
            "flowmonitor", TRAFFIC, [CompetitorSpec.nf("nids", TRAFFIC)]
        )
        assert pred == pytest.approx(truth, rel=0.15)

    def test_joint_prediction_returns_all(self, small_system):
        rates = small_system.predict_colocation(
            [("flowmonitor", TRAFFIC), ("nids", TRAFFIC), ("flowstats", TRAFFIC)]
        )
        assert len(rates) == 3
        assert all(r > 0 for r in rates)

    def test_joint_prediction_below_solo(self, small_system):
        rates = small_system.predict_colocation(
            [("flowmonitor", TRAFFIC), ("nids", TRAFFIC)]
        )
        solo_fm = small_system.predictor_of("flowmonitor").predict_solo(TRAFFIC)
        assert rates[0] <= solo_fm * 1.05

    def test_training_idempotent(self, small_system):
        before = small_system.predictor_of("nids")
        small_system.train(["nids"])
        assert small_system.predictor_of("nids") is before


class TestSlomo:
    @pytest.fixture(scope="class")
    def slomo(self, collector):
        predictor = SlomoPredictor("flowstats", seed=3)
        predictor.train(collector, make_nf("flowstats"), n_samples=150)
        return predictor

    def test_accurate_at_training_traffic(self, slomo, collector):
        nf = make_nf("flowstats")
        errors = []
        for car in (60.0, 150.0, 240.0):
            level = ContentionLevel(mem_car=car)
            truth = collector.profile_one(nf, level, TRAFFIC).throughput_mpps
            pred = slomo.predict(collector.bench_counters(level), TRAFFIC)
            errors.append(abs(pred - truth) / truth)
        assert np.mean(errors) < 0.12

    def test_large_traffic_shift_degrades(self, slomo, collector):
        """SLOMO's extrapolation fails off the training profile (Fig 7b)."""
        nf = make_nf("flowstats")
        shifted = TrafficProfile(400_000, 1500, 600.0)
        level = ContentionLevel(mem_car=100.0)
        truth = collector.profile_one(nf, level, shifted).throughput_mpps
        pred = slomo.predict(collector.bench_counters(level), shifted)
        default_truth = collector.profile_one(nf, level, TRAFFIC).throughput_mpps
        default_pred = slomo.predict(collector.bench_counters(level), TRAFFIC)
        err_shift = abs(pred - truth) / truth
        err_default = abs(default_pred - default_truth) / default_truth
        assert err_shift > err_default

    def test_extrapolation_beats_raw_on_shifted_traffic(self, slomo, collector):
        nf = make_nf("flowstats")
        shifted = TrafficProfile(120_000, 1500, 600.0)
        level = ContentionLevel(mem_car=60.0)
        truth = collector.profile_one(nf, level, shifted).throughput_mpps
        counters = collector.bench_counters(level)
        with_extrapolation = slomo.predict(counters, shifted)
        without = slomo.predict(counters, shifted, extrapolate=False)
        assert abs(with_extrapolation - truth) <= abs(without - truth)

    def test_wrong_nf_rejected(self, collector):
        predictor = SlomoPredictor("nat", seed=3)
        with pytest.raises(ProfilingError):
            predictor.train(collector, make_nf("acl"))

    def test_untrained_raises(self):
        with pytest.raises(ModelNotFittedError):
            SlomoPredictor("acl").predict(PerfCounters.zero())
