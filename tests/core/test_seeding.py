"""Regression tests for seeding correctness in SLOMO and Yala.

Covers two fixed bugs:

- ``SlomoPredictor`` used ``make_rng(seed)`` for both its GBR model and
  its contention sampler, so an int seed handed both components the
  *same* stream (perfectly correlated subsampling and contention
  sweeps).
- ``YalaPredictor`` / ``YalaSystem`` silently discarded any non-int
  ``SeedLike`` (e.g. a passed Generator) and replaced it with a
  name-derived constant.
"""

import numpy as np

from repro.core.predictor import YalaPredictor, YalaSystem
from repro.core.slomo import SlomoPredictor
from repro.nf.catalog import make_nf
from repro.nic.nic import SmartNic
from repro.nic.spec import bluefield2_spec
from repro.profiling.collector import ProfilingCollector
from repro.rng import derive_seed, normalize_seed


class TestNormalizeSeed:
    def test_int_passes_through(self):
        assert normalize_seed(1234) == 1234

    def test_none_stays_none(self):
        assert normalize_seed(None) is None

    def test_generator_is_consumed(self):
        generator = np.random.default_rng(7)
        first = normalize_seed(generator)
        second = normalize_seed(generator)
        assert isinstance(first, int) and isinstance(second, int)
        assert first != second  # the stream advanced

    def test_equal_generators_agree(self):
        assert normalize_seed(np.random.default_rng(7)) == normalize_seed(
            np.random.default_rng(7)
        )


class TestSlomoSeeding:
    def test_model_and_contention_streams_differ(self):
        predictor = SlomoPredictor("flowmonitor", seed=1234)
        gbr_rng = predictor._model._model._rng
        contention_rng = predictor._rng
        # With the old correlated seeding these two draws were equal
        # for every int seed.
        assert gbr_rng.random(8).tolist() != contention_rng.random(8).tolist()

    def test_sub_seeds_are_derived_not_shared(self):
        assert derive_seed(1234, "gbr") != derive_seed(1234, "contention")

    def test_deterministic_given_int_seed(self):
        a = SlomoPredictor("flowmonitor", seed=99)
        b = SlomoPredictor("flowmonitor", seed=99)
        assert a._rng.random(4).tolist() == b._rng.random(4).tolist()

    def test_default_seeds_differ_across_nfs(self):
        a = SlomoPredictor("flowmonitor")
        b = SlomoPredictor("nids")
        assert a._rng.random(4).tolist() != b._rng.random(4).tolist()


class TestYalaSeeding:
    def _collector(self):
        return ProfilingCollector(SmartNic(bluefield2_spec(), seed=1))

    def test_int_seed_honoured(self):
        predictor = YalaPredictor(make_nf("acl"), self._collector(), seed=77)
        assert predictor._seed == 77

    def test_none_defaults_to_name_derived(self):
        predictor = YalaPredictor(make_nf("acl"), self._collector())
        assert predictor._seed == derive_seed(0x1A1A, "acl")

    def test_generator_seed_no_longer_discarded(self):
        collector = self._collector()
        from_generator = YalaPredictor(
            make_nf("acl"), collector, seed=np.random.default_rng(5)
        )
        assert from_generator._seed != derive_seed(0x1A1A, "acl")

    def test_distinct_generator_states_give_distinct_seeds(self):
        collector = self._collector()
        generator = np.random.default_rng(5)
        first = YalaPredictor(make_nf("acl"), collector, seed=generator)
        second = YalaPredictor(make_nf("acl"), collector, seed=generator)
        assert first._seed != second._seed

    def test_system_honours_generator_seed(self):
        nic = SmartNic(bluefield2_spec(), seed=1)
        system = YalaSystem(nic, seed=np.random.default_rng(3))
        assert system._seed != 0x1A1A
        assert YalaSystem(nic)._seed == 0x1A1A


class TestParallelTrainingEquivalence:
    def test_parallel_training_matches_serial(self):
        from repro.traffic.profile import TrafficProfile

        traffic = TrafficProfile()
        serial = YalaSystem(
            SmartNic(bluefield2_spec(), seed=101), seed=909, quota=60
        ).train(["flowmonitor", "nids"])
        parallel = YalaSystem(
            SmartNic(bluefield2_spec(), seed=101), seed=909, quota=60
        ).train(["flowmonitor", "nids"], jobs=2)
        assert serial.trained_names == parallel.trained_names
        assert serial.predict_colocation(
            [("flowmonitor", traffic), ("nids", traffic)]
        ) == parallel.predict_colocation(
            [("flowmonitor", traffic), ("nids", traffic)]
        )
