"""Batch prediction APIs must match their single-call counterparts
bit-for-bit: batching is a throughput optimisation, never a numerical
change."""

import numpy as np
import pytest

from repro.core.memory_model import MemoryContentionModel
from repro.core.predictor import CompetitorSpec
from repro.errors import ModelNotFittedError, ProfilingError
from repro.nf.catalog import make_nf
from repro.nic.counters import PerfCounters
from repro.profiling.collector import ProfilingCollector
from repro.profiling.contention import ContentionLevel, random_contention
from repro.profiling.dataset import ProfileDataset
from repro.traffic.profile import TrafficProfile


@pytest.fixture(scope="module")
def small_memory_model(noisy_nic):
    """A quickly trained traffic-aware memory model."""
    collector = ProfilingCollector(noisy_nic)
    nf = make_nf("flowmonitor")
    dataset = ProfileDataset(nf.name)
    rng = np.random.default_rng(11)
    profiles = [
        TrafficProfile(),
        TrafficProfile(64_000, 512, 300.0),
        TrafficProfile(4_000, 1500, 900.0),
    ]
    for index in range(36):
        contention = (
            ContentionLevel()
            if index < 4
            else random_contention(seed=rng, memory=True)
        )
        dataset.add(
            collector.profile_one(nf, contention, profiles[index % len(profiles)])
        )
    model = MemoryContentionModel("flowmonitor", n_estimators=40, seed=3)
    return model.fit(dataset), collector


class TestMemoryModelBatch:
    def test_batch_matches_looped_predict_bitwise(self, small_memory_model):
        model, collector = small_memory_model
        rng = np.random.default_rng(21)
        counters, traffics, competitors = [], [], []
        for index in range(12):
            level = random_contention(seed=rng, memory=True)
            counters.append(collector.bench_counters(level))
            traffics.append(
                TrafficProfile(
                    int(rng.uniform(1_000, 300_000)),
                    int(rng.uniform(64, 1500)),
                    float(rng.uniform(0, 1000)),
                )
            )
            competitors.append(int(rng.integers(0, 4)))
        batched = model.predict_batch(counters, traffics, competitors)
        looped = [
            model.predict(c, t, n)
            for c, t, n in zip(counters, traffics, competitors)
        ]
        assert batched.tolist() == looped

    def test_empty_batch(self, small_memory_model):
        model, _ = small_memory_model
        assert model.predict_batch([], [], []).shape == (0,)

    def test_mismatched_lengths_rejected(self, small_memory_model):
        model, _ = small_memory_model
        with pytest.raises(ProfilingError):
            model.predict_batch([PerfCounters.zero()], [], [0])

    def test_unfitted_model_rejected(self):
        model = MemoryContentionModel("acl")
        with pytest.raises(ModelNotFittedError):
            model.predict_batch([PerfCounters.zero()], [TrafficProfile()], [0])


class TestPredictorBatch:
    def test_predict_many_matches_looped_predict(self, trained_flowmonitor):
        requests = [
            (TrafficProfile(), []),
            (
                TrafficProfile(64_000, 512, 300.0),
                [CompetitorSpec.bench(ContentionLevel(mem_car=120.0))],
            ),
            (
                TrafficProfile(8_000, 1500, 800.0),
                [
                    CompetitorSpec.bench(
                        ContentionLevel(mem_car=60.0, regex_rate=0.8)
                    )
                ],
            ),
        ]
        batched = trained_flowmonitor.predict_many(requests)
        looped = [
            trained_flowmonitor.predict(traffic, competitors)
            for traffic, competitors in requests
        ]
        assert batched == looped

    def test_predict_many_empty(self, trained_flowmonitor):
        assert trained_flowmonitor.predict_many([]) == []

    def test_joint_prediction_deterministic(self, small_system):
        traffic = TrafficProfile()
        placements = [("flowmonitor", traffic), ("nids", traffic)]
        assert small_system.predict_colocation(
            placements
        ) == small_system.predict_colocation(placements)


class TestSystemBatch:
    """YalaSystem.predict_batch vs looped YalaSystem.predict."""

    def _cases(self):
        default = TrafficProfile()
        other = TrafficProfile(64_000, 512, 300.0)
        return [
            ("flowmonitor", default, [CompetitorSpec.nf("nids", default)]),
            (
                "nids",
                other,
                [
                    CompetitorSpec.nf("flowstats", other),
                    CompetitorSpec.bench(ContentionLevel(mem_car=90.0)),
                ],
            ),
            ("flowstats", default, []),
            (
                "flowmonitor",
                other,
                [CompetitorSpec.bench(ContentionLevel(mem_car=150.0, regex_rate=0.5))],
            ),
        ]

    def test_batch_matches_looped_predict_bitwise(self, small_system):
        cases = self._cases()
        batched = small_system.predict_batch(cases)
        looped = [
            small_system.predict(target, traffic, competitors)
            for target, traffic, competitors in cases
        ]
        assert batched == looped

    def test_colocation_batch_matches_looped_colocation(self, small_system):
        traffic = TrafficProfile()
        requests = [
            ([("flowmonitor", traffic), ("nids", traffic)], None),
            (
                [("flowstats", traffic)],
                [CompetitorSpec.bench(ContentionLevel(mem_car=120.0))],
            ),
        ]
        batched = small_system.predict_colocation_batch(requests)
        looped = [
            small_system.predict_colocation(placements, benches)
            for placements, benches in requests
        ]
        assert batched == looped

    def test_empty_batch(self, small_system):
        assert small_system.predict_batch([]) == []
        assert small_system.predict_colocation_batch([]) == []


class TestSlomoBatch:
    """SlomoPredictor.predict_batch vs looped SlomoPredictor.predict."""

    @pytest.fixture(scope="class")
    def trained_slomo(self, small_system):
        from repro.core.slomo import SlomoPredictor

        predictor = SlomoPredictor("flowmonitor", seed=404)
        predictor.train(
            small_system.collector, make_nf("flowmonitor"), n_samples=60
        )
        return predictor

    def _scenarios(self, collector):
        rng = np.random.default_rng(33)
        counters, traffics, competitors = [], [], []
        for index in range(10):
            level = random_contention(seed=rng, memory=True)
            counters.append(collector.bench_counters(level))
            # Mix training-profile rows (no extrapolation branch) with
            # off-profile rows (extrapolated).
            traffics.append(
                TrafficProfile()
                if index % 2 == 0
                else TrafficProfile(
                    int(rng.uniform(1_000, 300_000)),
                    int(rng.uniform(64, 1500)),
                    float(rng.uniform(0, 1000)),
                )
            )
            competitors.append(int(rng.integers(1, 4)))
        return counters, traffics, competitors

    def test_batch_matches_looped_predict_bitwise(
        self, trained_slomo, small_system
    ):
        counters, traffics, competitors = self._scenarios(small_system.collector)
        batched = trained_slomo.predict_batch(counters, traffics, competitors)
        looped = [
            trained_slomo.predict(c, t, n_competitors=n)
            for c, t, n in zip(counters, traffics, competitors)
        ]
        assert batched == looped

    def test_batch_matches_looped_without_extrapolation(
        self, trained_slomo, small_system
    ):
        counters, traffics, competitors = self._scenarios(small_system.collector)
        batched = trained_slomo.predict_batch(
            counters, traffics, competitors, extrapolate=False
        )
        looped = [
            trained_slomo.predict(c, t, extrapolate=False, n_competitors=n)
            for c, t, n in zip(counters, traffics, competitors)
        ]
        assert batched == looped

    def test_empty_batch(self, trained_slomo):
        assert trained_slomo.predict_batch([], [], []) == []

    def test_mismatched_lengths_rejected(self, trained_slomo):
        with pytest.raises(ProfilingError):
            trained_slomo.predict_batch([PerfCounters.zero()], [], [1])

    def test_untrained_rejected(self):
        from repro.core.slomo import SlomoPredictor

        with pytest.raises(ModelNotFittedError):
            SlomoPredictor("acl").predict_batch(
                [PerfCounters.zero()], [TrafficProfile()], [1]
            )
