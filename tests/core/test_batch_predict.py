"""Batch prediction APIs must match their single-call counterparts
bit-for-bit: batching is a throughput optimisation, never a numerical
change."""

import numpy as np
import pytest

from repro.core.memory_model import MemoryContentionModel
from repro.core.predictor import CompetitorSpec
from repro.errors import ModelNotFittedError, ProfilingError
from repro.nf.catalog import make_nf
from repro.nic.counters import PerfCounters
from repro.profiling.collector import ProfilingCollector
from repro.profiling.contention import ContentionLevel, random_contention
from repro.profiling.dataset import ProfileDataset
from repro.traffic.profile import TrafficProfile


@pytest.fixture(scope="module")
def small_memory_model(noisy_nic):
    """A quickly trained traffic-aware memory model."""
    collector = ProfilingCollector(noisy_nic)
    nf = make_nf("flowmonitor")
    dataset = ProfileDataset(nf.name)
    rng = np.random.default_rng(11)
    profiles = [
        TrafficProfile(),
        TrafficProfile(64_000, 512, 300.0),
        TrafficProfile(4_000, 1500, 900.0),
    ]
    for index in range(36):
        contention = (
            ContentionLevel()
            if index < 4
            else random_contention(seed=rng, memory=True)
        )
        dataset.add(
            collector.profile_one(nf, contention, profiles[index % len(profiles)])
        )
    model = MemoryContentionModel("flowmonitor", n_estimators=40, seed=3)
    return model.fit(dataset), collector


class TestMemoryModelBatch:
    def test_batch_matches_looped_predict_bitwise(self, small_memory_model):
        model, collector = small_memory_model
        rng = np.random.default_rng(21)
        counters, traffics, competitors = [], [], []
        for index in range(12):
            level = random_contention(seed=rng, memory=True)
            counters.append(collector.bench_counters(level))
            traffics.append(
                TrafficProfile(
                    int(rng.uniform(1_000, 300_000)),
                    int(rng.uniform(64, 1500)),
                    float(rng.uniform(0, 1000)),
                )
            )
            competitors.append(int(rng.integers(0, 4)))
        batched = model.predict_batch(counters, traffics, competitors)
        looped = [
            model.predict(c, t, n)
            for c, t, n in zip(counters, traffics, competitors)
        ]
        assert batched.tolist() == looped

    def test_empty_batch(self, small_memory_model):
        model, _ = small_memory_model
        assert model.predict_batch([], [], []).shape == (0,)

    def test_mismatched_lengths_rejected(self, small_memory_model):
        model, _ = small_memory_model
        with pytest.raises(ProfilingError):
            model.predict_batch([PerfCounters.zero()], [], [0])

    def test_unfitted_model_rejected(self):
        model = MemoryContentionModel("acl")
        with pytest.raises(ModelNotFittedError):
            model.predict_batch([PerfCounters.zero()], [TrafficProfile()], [0])


class TestPredictorBatch:
    def test_predict_many_matches_looped_predict(self, trained_flowmonitor):
        requests = [
            (TrafficProfile(), []),
            (
                TrafficProfile(64_000, 512, 300.0),
                [CompetitorSpec.bench(ContentionLevel(mem_car=120.0))],
            ),
            (
                TrafficProfile(8_000, 1500, 800.0),
                [
                    CompetitorSpec.bench(
                        ContentionLevel(mem_car=60.0, regex_rate=0.8)
                    )
                ],
            ),
        ]
        batched = trained_flowmonitor.predict_many(requests)
        looped = [
            trained_flowmonitor.predict(traffic, competitors)
            for traffic, competitors in requests
        ]
        assert batched == looped

    def test_predict_many_empty(self, trained_flowmonitor):
        assert trained_flowmonitor.predict_many([]) == []

    def test_joint_prediction_deterministic(self, small_system):
        traffic = TrafficProfile()
        placements = [("flowmonitor", traffic), ("nids", traffic)]
        assert small_system.predict_colocation(
            placements
        ) == small_system.predict_colocation(placements)
