"""Property-based tests (hypothesis) for the ML substrate."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.ml.linear import LinearRegression
from repro.ml.metrics import mape, r2_score, within_tolerance_accuracy
from repro.ml.preprocessing import StandardScaler
from repro.ml.tree import DecisionTreeRegressor

_finite = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)


@st.composite
def regression_dataset(draw, min_rows=3, max_rows=40, cols=3):
    n = draw(st.integers(min_rows, max_rows))
    x = draw(
        arrays(np.float64, (n, cols), elements=_finite)
    )
    y = draw(arrays(np.float64, (n,), elements=_finite))
    return x, y


class TestTreeProperties:
    @given(regression_dataset())
    @settings(max_examples=25, deadline=None)
    def test_predictions_within_target_range(self, data):
        """Leaf means can never leave the convex hull of the targets."""
        x, y = data
        tree = DecisionTreeRegressor(max_depth=4).fit(x, y)
        predictions = tree.predict(x)
        assert predictions.min() >= y.min() - 1e-9
        assert predictions.max() <= y.max() + 1e-9

    @given(regression_dataset())
    @settings(max_examples=25, deadline=None)
    def test_prediction_is_deterministic(self, data):
        x, y = data
        tree = DecisionTreeRegressor(max_depth=4).fit(x, y)
        assert np.array_equal(tree.predict(x), tree.predict(x))

    @given(regression_dataset(min_rows=5))
    @settings(max_examples=25, deadline=None)
    def test_unbounded_tree_interpolates_unique_rows(self, data):
        """With all-distinct rows an unbounded tree memorises training."""
        x, y = data
        # Make rows unique by adding a distinct ramp column.
        x = np.column_stack([x, np.arange(len(y), dtype=float)])
        tree = DecisionTreeRegressor().fit(x, y)
        assert np.allclose(tree.predict(x), y, atol=1e-6)


class TestScalerProperties:
    @given(regression_dataset(min_rows=2))
    @settings(max_examples=25, deadline=None)
    def test_round_trip(self, data):
        x, _ = data
        scaler = StandardScaler().fit(x)
        back = scaler.inverse_transform(scaler.transform(x))
        assert np.allclose(back, x, rtol=1e-6, atol=1e-6)


class TestMetricProperties:
    @given(
        arrays(
            np.float64,
            st.integers(1, 30),
            elements=st.floats(min_value=0.1, max_value=1e5),
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_perfect_prediction_scores(self, y):
        assert mape(y, y) == 0.0
        assert within_tolerance_accuracy(y, y, 5.0) == 100.0
        assert r2_score(y, y) == 1.0

    @given(
        arrays(
            np.float64,
            st.integers(2, 30),
            elements=st.floats(min_value=0.1, max_value=1e5),
        ),
        st.floats(min_value=0.01, max_value=0.2),
    )
    @settings(max_examples=30, deadline=None)
    def test_tolerance_accuracy_monotone_in_tolerance(self, y, shift):
        predictions = y * (1.0 + shift)
        tight = within_tolerance_accuracy(y, predictions, 5.0)
        loose = within_tolerance_accuracy(y, predictions, 10.0)
        assert loose >= tight


class TestLinearProperties:
    @given(
        st.floats(min_value=-100, max_value=100),
        st.floats(min_value=-100, max_value=100),
    )
    @settings(max_examples=30, deadline=None)
    def test_recovers_any_line(self, slope, intercept):
        x = np.linspace(0, 10, 20).reshape(-1, 1)
        y = slope * x[:, 0] + intercept
        model = LinearRegression().fit(x, y)
        assert np.isclose(model.coef_[0], slope, atol=1e-6)
        assert np.isclose(model.intercept_, intercept, atol=1e-5)
