"""Equivalence tests for the fast split finders in the CART tree.

The ``vectorized`` finder must reproduce the ``reference`` finder
bit-for-bit (same argsort permutations, same floating-point order); the
``histogram`` finder must produce the same trees on realistic data (its
small-node fallback resolves the exactly-tied-gain cases through the
exact kernel).
"""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.ml.tree import DecisionTreeRegressor, HistogramBins


def _tree_signature(tree: DecisionTreeRegressor):
    return (tree._feature, tree._threshold, tree._left, tree._right, tree._value)


def _datasets():
    rng = np.random.default_rng(1234)
    for trial in range(12):
        n = int(rng.integers(4, 250))
        d = int(rng.integers(1, 7))
        if trial % 3 == 0:
            # low-cardinality, tie-heavy features
            features = rng.integers(0, 9, size=(n, d)).astype(float) / 8.0
        else:
            features = rng.uniform(0.0, 1.0, size=(n, d))
        targets = rng.normal(size=n) + 2.0 * features[:, 0]
        if trial % 5 == 0:
            targets = np.full(n, 1.5)  # constant-target nodes
        yield features, targets


PARAMS = [
    {},
    {"max_depth": 3},
    {"max_depth": 3, "min_samples_leaf": 2},
    {"min_samples_leaf": 5},
    {"max_features": 1, "seed": 7},
    {"max_features": 0.5, "seed": 11},
]


class TestVectorizedEquivalence:
    @pytest.mark.parametrize("params", PARAMS)
    def test_same_tree_as_reference(self, params):
        for features, targets in _datasets():
            ref = DecisionTreeRegressor(split_algorithm="reference", **params)
            vec = DecisionTreeRegressor(split_algorithm="vectorized", **params)
            ref.fit(features, targets)
            vec.fit(features, targets)
            assert _tree_signature(ref) == _tree_signature(vec)

    def test_same_predictions_as_reference(self):
        rng = np.random.default_rng(5)
        features = rng.uniform(size=(300, 4))
        targets = np.sin(5 * features[:, 0]) + rng.normal(scale=0.1, size=300)
        probe = rng.uniform(size=(100, 4))
        ref = DecisionTreeRegressor(split_algorithm="reference").fit(
            features, targets
        )
        vec = DecisionTreeRegressor().fit(features, targets)
        assert np.array_equal(ref.predict(probe), vec.predict(probe))

    def test_presorted_fit_matches_plain_fit(self):
        rng = np.random.default_rng(6)
        features = rng.uniform(size=(200, 5))
        targets = rng.normal(size=200)
        presorted = DecisionTreeRegressor.presort(features)
        plain = DecisionTreeRegressor(max_depth=4).fit(features, targets)
        shared = DecisionTreeRegressor(max_depth=4).fit(
            features, targets, presorted=presorted
        )
        assert _tree_signature(plain) == _tree_signature(shared)


class TestHistogramEquivalence:
    @pytest.mark.parametrize("params", PARAMS)
    def test_same_tree_as_reference(self, params):
        for features, targets in _datasets():
            ref = DecisionTreeRegressor(split_algorithm="reference", **params)
            hist = DecisionTreeRegressor(split_algorithm="histogram", **params)
            ref.fit(features, targets)
            hist.fit(features, targets)
            assert _tree_signature(ref) == _tree_signature(hist)

    def test_prebinned_fit_matches_plain_fit(self):
        rng = np.random.default_rng(7)
        features = rng.integers(0, 16, size=(220, 6)).astype(float) / 15.0
        targets = rng.normal(size=220)
        bins = DecisionTreeRegressor.prebin(features)
        plain = DecisionTreeRegressor(
            max_depth=3, split_algorithm="histogram"
        ).fit(features, targets)
        shared = DecisionTreeRegressor(
            max_depth=3, split_algorithm="histogram"
        ).fit(features, targets, prebinned=bins)
        assert _tree_signature(plain) == _tree_signature(shared)

    def test_subset_binning_matches_direct_binning(self):
        rng = np.random.default_rng(8)
        features = rng.integers(0, 12, size=(300, 4)).astype(float)
        targets = rng.normal(size=300)
        rows = rng.choice(300, size=200, replace=False)
        bins = DecisionTreeRegressor.prebin(features)
        via_subset = DecisionTreeRegressor(split_algorithm="histogram").fit(
            features[rows], targets[rows], prebinned=bins.subset(rows)
        )
        direct = DecisionTreeRegressor(split_algorithm="histogram").fit(
            features[rows], targets[rows]
        )
        assert np.array_equal(
            via_subset.predict(features), direct.predict(features)
        )

    def test_prebin_shape(self):
        features = np.array([[0.0, 3.0], [1.0, 3.0], [0.0, 5.0]])
        bins = DecisionTreeRegressor.prebin(features)
        assert isinstance(bins, HistogramBins)
        assert bins.codes.shape == (2, 3)
        assert bins.values.shape[0] == 2


class TestLeafBookkeeping:
    @pytest.mark.parametrize("algorithm", ["reference", "vectorized", "histogram"])
    def test_training_leaf_values_match_predict(self, algorithm):
        rng = np.random.default_rng(9)
        features = rng.uniform(size=(150, 3))
        targets = rng.normal(size=150)
        tree = DecisionTreeRegressor(
            max_depth=4, split_algorithm=algorithm
        ).fit(features, targets)
        assert np.array_equal(
            tree.training_leaf_values(), tree.predict(features)
        )

    def test_apply_returns_leaf_ids(self):
        rng = np.random.default_rng(10)
        features = rng.uniform(size=(80, 2))
        targets = rng.normal(size=80)
        tree = DecisionTreeRegressor(max_depth=3).fit(features, targets)
        leaves = tree.apply(features)
        assert leaves.shape == (80,)
        # Every returned node must actually be a leaf.
        assert all(tree._feature[leaf] == -1 for leaf in leaves)


class TestValidationOfAlgorithms:
    def test_rejects_unknown_algorithm(self):
        with pytest.raises(ConfigurationError):
            DecisionTreeRegressor(split_algorithm="exact")
