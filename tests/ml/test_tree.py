"""Unit tests for the CART regression tree."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, ModelNotFittedError
from repro.ml.tree import DecisionTreeRegressor


def _step_data(n=200, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.uniform(0, 1, size=(n, 2))
    y = np.where(x[:, 0] > 0.5, 2.0, -1.0)
    return x, y


class TestFitBasics:
    def test_fits_constant_target(self):
        x = np.arange(10, dtype=float).reshape(-1, 1)
        y = np.full(10, 3.0)
        tree = DecisionTreeRegressor().fit(x, y)
        assert np.allclose(tree.predict(x), 3.0)

    def test_fits_step_function_exactly(self):
        x, y = _step_data()
        tree = DecisionTreeRegressor().fit(x, y)
        assert np.allclose(tree.predict(x), y)

    def test_single_sample(self):
        tree = DecisionTreeRegressor().fit(np.array([[1.0]]), np.array([5.0]))
        assert tree.predict(np.array([[42.0]]))[0] == 5.0

    def test_depth_zero_predicts_mean(self):
        x, y = _step_data()
        tree = DecisionTreeRegressor(max_depth=0).fit(x, y)
        assert np.allclose(tree.predict(x), y.mean())

    def test_deeper_tree_lower_error(self):
        rng = np.random.default_rng(1)
        x = rng.uniform(0, 1, size=(300, 1))
        y = np.sin(6 * x[:, 0])
        shallow = DecisionTreeRegressor(max_depth=2).fit(x, y)
        deep = DecisionTreeRegressor(max_depth=8).fit(x, y)
        err_shallow = np.mean((shallow.predict(x) - y) ** 2)
        err_deep = np.mean((deep.predict(x) - y) ** 2)
        assert err_deep < err_shallow

    def test_returns_self(self):
        x, y = _step_data(20)
        tree = DecisionTreeRegressor()
        assert tree.fit(x, y) is tree


class TestConstraints:
    def test_max_depth_respected(self):
        x, y = _step_data(400, seed=3)
        tree = DecisionTreeRegressor(max_depth=3).fit(x, y)
        assert tree.depth <= 3

    def test_min_samples_leaf(self):
        x, y = _step_data(50)
        tree = DecisionTreeRegressor(min_samples_leaf=10).fit(x, y)
        # With >=10 samples per leaf, at most 5 leaves exist.
        leaves = sum(1 for f in tree._feature if f == -1)
        assert leaves <= 5

    def test_min_samples_split_blocks_splitting(self):
        x, y = _step_data(10)
        tree = DecisionTreeRegressor(min_samples_split=100).fit(x, y)
        assert tree.node_count == 1

    def test_max_features_subsampling_runs(self):
        x, y = _step_data(100)
        tree = DecisionTreeRegressor(max_features=1, seed=0).fit(x, y)
        assert tree.node_count >= 1

    def test_max_features_fraction(self):
        x, y = _step_data(100)
        tree = DecisionTreeRegressor(max_features=0.5, seed=0).fit(x, y)
        assert tree.node_count >= 1


class TestValidation:
    def test_rejects_negative_depth(self):
        with pytest.raises(ConfigurationError):
            DecisionTreeRegressor(max_depth=-1)

    def test_rejects_bad_min_samples_split(self):
        with pytest.raises(ConfigurationError):
            DecisionTreeRegressor(min_samples_split=1)

    def test_rejects_bad_min_samples_leaf(self):
        with pytest.raises(ConfigurationError):
            DecisionTreeRegressor(min_samples_leaf=0)

    def test_rejects_1d_features(self):
        with pytest.raises(ConfigurationError):
            DecisionTreeRegressor().fit(np.arange(5.0), np.arange(5.0))

    def test_rejects_mismatched_targets(self):
        with pytest.raises(ConfigurationError):
            DecisionTreeRegressor().fit(np.ones((5, 2)), np.ones(4))

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            DecisionTreeRegressor().fit(np.empty((0, 2)), np.empty(0))

    def test_predict_before_fit_raises(self):
        with pytest.raises(ModelNotFittedError):
            DecisionTreeRegressor().predict(np.ones((1, 2)))

    def test_depth_before_fit_raises(self):
        with pytest.raises(ModelNotFittedError):
            DecisionTreeRegressor().depth


class TestIntrospection:
    def test_feature_importances_sum_to_one(self):
        x, y = _step_data(200)
        tree = DecisionTreeRegressor().fit(x, y)
        importances = tree.feature_importances(2)
        assert importances.sum() == pytest.approx(1.0)

    def test_importances_identify_informative_feature(self):
        x, y = _step_data(300)
        tree = DecisionTreeRegressor().fit(x, y)
        importances = tree.feature_importances(2)
        assert importances[0] > importances[1]

    def test_importances_zero_for_stump(self):
        x = np.ones((5, 2))
        y = np.ones(5)
        tree = DecisionTreeRegressor().fit(x, y)
        assert tree.feature_importances(2).sum() == 0.0

    def test_prediction_accepts_single_row(self):
        x, y = _step_data(100)
        tree = DecisionTreeRegressor().fit(x, y)
        single = tree.predict(np.array([0.9, 0.5]))
        assert single.shape == (1,)
        assert single[0] == pytest.approx(2.0)
