"""Unit tests for gradient boosting regression."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, ModelNotFittedError
from repro.ml.gbr import GradientBoostingRegressor


def _smooth_data(n=300, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.uniform(0, 1, size=(n, 4))
    y = 2.0 * x[:, 0] + np.sin(4 * x[:, 1]) + 0.5 * x[:, 2] * x[:, 3]
    return x, y


class TestFitting:
    def test_fits_nonlinear_function(self):
        x, y = _smooth_data()
        model = GradientBoostingRegressor(n_estimators=150, seed=0).fit(x, y)
        rmse = np.sqrt(np.mean((model.predict(x) - y) ** 2))
        assert rmse < 0.1 * y.std()

    def test_training_loss_decreases(self):
        x, y = _smooth_data()
        model = GradientBoostingRegressor(n_estimators=60, seed=0).fit(x, y)
        losses = model.train_losses
        assert losses[-1] < losses[0]

    def test_more_stages_reduce_training_error(self):
        x, y = _smooth_data()
        small = GradientBoostingRegressor(n_estimators=10, seed=0).fit(x, y)
        large = GradientBoostingRegressor(n_estimators=200, seed=0).fit(x, y)
        assert large.train_losses[-1] < small.train_losses[-1]

    def test_generalises_to_held_out_data(self):
        x, y = _smooth_data(600)
        model = GradientBoostingRegressor(n_estimators=200, seed=0).fit(
            x[:500], y[:500]
        )
        rmse = np.sqrt(np.mean((model.predict(x[500:]) - y[500:]) ** 2))
        assert rmse < 0.25 * y.std()

    def test_subsample_stochastic_boosting(self):
        x, y = _smooth_data()
        model = GradientBoostingRegressor(
            n_estimators=50, subsample=0.6, seed=0
        ).fit(x, y)
        assert model.n_stages == 50

    def test_early_stopping_halts(self):
        x, y = _smooth_data(400)
        model = GradientBoostingRegressor(
            n_estimators=500, n_iter_no_change=5, seed=0
        ).fit(x, y)
        assert model.n_stages < 500

    def test_deterministic_given_seed(self):
        x, y = _smooth_data()
        a = GradientBoostingRegressor(n_estimators=30, subsample=0.7, seed=5).fit(x, y)
        b = GradientBoostingRegressor(n_estimators=30, subsample=0.7, seed=5).fit(x, y)
        assert np.allclose(a.predict(x), b.predict(x))


class TestHotPathEquivalence:
    """The optimised boosting paths must be bit-identical to the seed."""

    @pytest.mark.parametrize("subsample", [0.8, 0.995])
    def test_leaf_cache_matches_retraversal(self, subsample):
        # subsample=0.995 rounds the sample size up to n, making rows a
        # full-size *permutation* — regression for a leaf-cache shortcut
        # that mistook it for identity ordering.
        x, y = _smooth_data(100)
        fast = GradientBoostingRegressor(
            n_estimators=40, subsample=subsample, seed=9, reuse_leaf_cache=True
        ).fit(x, y)
        slow = GradientBoostingRegressor(
            n_estimators=40, subsample=subsample, seed=9, reuse_leaf_cache=False
        ).fit(x, y)
        probe = x[:50]
        assert np.array_equal(fast.predict(probe), slow.predict(probe))
        assert fast.train_losses == slow.train_losses

    @pytest.mark.parametrize("subsample", [1.0, 0.8])
    def test_split_algorithms_match_reference(self, subsample):
        x, y = _smooth_data(250)
        models = {
            algorithm: GradientBoostingRegressor(
                n_estimators=30,
                subsample=subsample,
                min_samples_leaf=2,
                seed=4,
                split_algorithm=algorithm,
            ).fit(x, y)
            for algorithm in ("reference", "vectorized", "histogram")
        }
        probe = x[:40]
        expected = models["reference"].predict(probe)
        assert np.array_equal(expected, models["vectorized"].predict(probe))
        assert np.array_equal(expected, models["histogram"].predict(probe))

    def test_packed_predict_matches_per_tree_loop(self):
        x, y = _smooth_data(200)
        model = GradientBoostingRegressor(n_estimators=25, seed=1).fit(x, y)
        probe = np.random.default_rng(2).uniform(size=(60, 4))
        looped = np.full(probe.shape[0], model._base_prediction)
        for tree in model._trees:
            looped += model.learning_rate * tree.predict(probe)
        assert np.array_equal(looped, model.predict(probe))

    def test_batch_predict_matches_single_rows(self):
        x, y = _smooth_data(200)
        model = GradientBoostingRegressor(n_estimators=25, seed=1).fit(x, y)
        probe = np.random.default_rng(3).uniform(size=(30, 4))
        singles = np.array(
            [model.predict(probe[i : i + 1])[0] for i in range(probe.shape[0])]
        )
        assert np.array_equal(singles, model.predict(probe))


class TestEarlyStoppingTruncation:
    def test_ensemble_truncated_to_best_validation_stage(self):
        x, y = _smooth_data(400)
        model = GradientBoostingRegressor(
            n_estimators=500, n_iter_no_change=5, tol=1e-4, seed=0
        ).fit(x, y)
        val_losses = model.val_losses
        assert val_losses, "early stopping must record validation losses"
        # The stale trees fitted after the last tol-sized improvement
        # are gone...
        assert model.n_stages < len(val_losses)
        assert len(model.train_losses) == model.n_stages
        # ...and the kept stage replicates the seed's running-best logic:
        best, stage = np.inf, 0
        for index, loss in enumerate(val_losses):
            if loss < best - 1e-4:
                best, stage = loss, index + 1
        assert model.n_stages == stage

    def test_truncated_model_still_predicts(self):
        x, y = _smooth_data(400)
        model = GradientBoostingRegressor(
            n_estimators=300, n_iter_no_change=3, seed=2
        ).fit(x, y)
        rmse = np.sqrt(np.mean((model.predict(x) - y) ** 2))
        assert rmse < 0.5 * y.std()

    def test_no_early_stopping_keeps_all_stages(self):
        x, y = _smooth_data(100)
        model = GradientBoostingRegressor(n_estimators=20, seed=0).fit(x, y)
        assert model.n_stages == 20
        assert model.val_losses == []


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_estimators": 0},
            {"learning_rate": 0.0},
            {"learning_rate": 1.5},
            {"subsample": 0.0},
            {"subsample": 1.2},
            {"validation_fraction": 1.0},
        ],
    )
    def test_rejects_bad_hyperparameters(self, kwargs):
        with pytest.raises(ConfigurationError):
            GradientBoostingRegressor(**kwargs)

    def test_rejects_single_sample(self):
        with pytest.raises(ConfigurationError):
            GradientBoostingRegressor().fit(np.ones((1, 2)), np.ones(1))

    def test_rejects_mismatched_shapes(self):
        with pytest.raises(ConfigurationError):
            GradientBoostingRegressor().fit(np.ones((5, 2)), np.ones(6))

    def test_predict_before_fit(self):
        with pytest.raises(ModelNotFittedError):
            GradientBoostingRegressor().predict(np.ones((1, 2)))

    def test_staged_predict_before_fit(self):
        with pytest.raises(ModelNotFittedError):
            GradientBoostingRegressor().staged_predict(np.ones((1, 2)))


class TestIntrospection:
    def test_staged_predictions_shape(self):
        x, y = _smooth_data(100)
        model = GradientBoostingRegressor(n_estimators=20, seed=0).fit(x, y)
        stages = model.staged_predict(x[:10], every=5)
        assert stages.shape == (4, 10)

    def test_staged_predictions_converge_to_final(self):
        x, y = _smooth_data(100)
        model = GradientBoostingRegressor(n_estimators=20, seed=0).fit(x, y)
        stages = model.staged_predict(x[:10], every=1)
        assert np.allclose(stages[-1], model.predict(x[:10]))

    def test_feature_importances(self):
        x, y = _smooth_data()
        model = GradientBoostingRegressor(n_estimators=60, seed=0).fit(x, y)
        importances = model.feature_importances(4)
        assert importances.sum() == pytest.approx(1.0)
        # The two main-effect features dominate the weak interaction pair.
        assert importances[0] + importances[1] > importances[2] + importances[3]
