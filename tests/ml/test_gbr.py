"""Unit tests for gradient boosting regression."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, ModelNotFittedError
from repro.ml.gbr import GradientBoostingRegressor


def _smooth_data(n=300, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.uniform(0, 1, size=(n, 4))
    y = 2.0 * x[:, 0] + np.sin(4 * x[:, 1]) + 0.5 * x[:, 2] * x[:, 3]
    return x, y


class TestFitting:
    def test_fits_nonlinear_function(self):
        x, y = _smooth_data()
        model = GradientBoostingRegressor(n_estimators=150, seed=0).fit(x, y)
        rmse = np.sqrt(np.mean((model.predict(x) - y) ** 2))
        assert rmse < 0.1 * y.std()

    def test_training_loss_decreases(self):
        x, y = _smooth_data()
        model = GradientBoostingRegressor(n_estimators=60, seed=0).fit(x, y)
        losses = model.train_losses
        assert losses[-1] < losses[0]

    def test_more_stages_reduce_training_error(self):
        x, y = _smooth_data()
        small = GradientBoostingRegressor(n_estimators=10, seed=0).fit(x, y)
        large = GradientBoostingRegressor(n_estimators=200, seed=0).fit(x, y)
        assert large.train_losses[-1] < small.train_losses[-1]

    def test_generalises_to_held_out_data(self):
        x, y = _smooth_data(600)
        model = GradientBoostingRegressor(n_estimators=200, seed=0).fit(
            x[:500], y[:500]
        )
        rmse = np.sqrt(np.mean((model.predict(x[500:]) - y[500:]) ** 2))
        assert rmse < 0.25 * y.std()

    def test_subsample_stochastic_boosting(self):
        x, y = _smooth_data()
        model = GradientBoostingRegressor(
            n_estimators=50, subsample=0.6, seed=0
        ).fit(x, y)
        assert model.n_stages == 50

    def test_early_stopping_halts(self):
        x, y = _smooth_data(400)
        model = GradientBoostingRegressor(
            n_estimators=500, n_iter_no_change=5, seed=0
        ).fit(x, y)
        assert model.n_stages < 500

    def test_deterministic_given_seed(self):
        x, y = _smooth_data()
        a = GradientBoostingRegressor(n_estimators=30, subsample=0.7, seed=5).fit(x, y)
        b = GradientBoostingRegressor(n_estimators=30, subsample=0.7, seed=5).fit(x, y)
        assert np.allclose(a.predict(x), b.predict(x))


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_estimators": 0},
            {"learning_rate": 0.0},
            {"learning_rate": 1.5},
            {"subsample": 0.0},
            {"subsample": 1.2},
            {"validation_fraction": 1.0},
        ],
    )
    def test_rejects_bad_hyperparameters(self, kwargs):
        with pytest.raises(ConfigurationError):
            GradientBoostingRegressor(**kwargs)

    def test_rejects_single_sample(self):
        with pytest.raises(ConfigurationError):
            GradientBoostingRegressor().fit(np.ones((1, 2)), np.ones(1))

    def test_rejects_mismatched_shapes(self):
        with pytest.raises(ConfigurationError):
            GradientBoostingRegressor().fit(np.ones((5, 2)), np.ones(6))

    def test_predict_before_fit(self):
        with pytest.raises(ModelNotFittedError):
            GradientBoostingRegressor().predict(np.ones((1, 2)))

    def test_staged_predict_before_fit(self):
        with pytest.raises(ModelNotFittedError):
            GradientBoostingRegressor().staged_predict(np.ones((1, 2)))


class TestIntrospection:
    def test_staged_predictions_shape(self):
        x, y = _smooth_data(100)
        model = GradientBoostingRegressor(n_estimators=20, seed=0).fit(x, y)
        stages = model.staged_predict(x[:10], every=5)
        assert stages.shape == (4, 10)

    def test_staged_predictions_converge_to_final(self):
        x, y = _smooth_data(100)
        model = GradientBoostingRegressor(n_estimators=20, seed=0).fit(x, y)
        stages = model.staged_predict(x[:10], every=1)
        assert np.allclose(stages[-1], model.predict(x[:10]))

    def test_feature_importances(self):
        x, y = _smooth_data()
        model = GradientBoostingRegressor(n_estimators=60, seed=0).fit(x, y)
        importances = model.feature_importances(4)
        assert importances.sum() == pytest.approx(1.0)
        # The two main-effect features dominate the weak interaction pair.
        assert importances[0] + importances[1] > importances[2] + importances[3]
