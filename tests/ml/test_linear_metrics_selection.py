"""Unit tests for linear models, metrics, splitting and scaling."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, ModelNotFittedError
from repro.ml.linear import LinearRegression, RidgeRegression
from repro.ml.metrics import (
    absolute_percentage_errors,
    error_box_stats,
    mae,
    mape,
    r2_score,
    rmse,
    within_tolerance_accuracy,
)
from repro.ml.model_selection import KFold, train_test_split
from repro.ml.preprocessing import StandardScaler


class TestLinearRegression:
    def test_recovers_exact_coefficients(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(100, 3))
        y = 2.0 * x[:, 0] - 1.0 * x[:, 1] + 0.5 * x[:, 2] + 3.0
        model = LinearRegression().fit(x, y)
        assert np.allclose(model.coef_, [2.0, -1.0, 0.5])
        assert model.intercept_ == pytest.approx(3.0)

    def test_without_intercept(self):
        x = np.array([[1.0], [2.0], [3.0]])
        y = np.array([2.0, 4.0, 6.0])
        model = LinearRegression(fit_intercept=False).fit(x, y)
        assert model.intercept_ == 0.0
        assert model.coef_[0] == pytest.approx(2.0)

    def test_predict_matches_formula(self):
        x = np.array([[1.0, 2.0], [3.0, 4.0]])
        y = np.array([5.0, 11.0])
        model = LinearRegression().fit(x, y)
        assert np.allclose(model.predict(x), y)

    def test_predict_before_fit(self):
        with pytest.raises(ModelNotFittedError):
            LinearRegression().predict(np.ones((1, 2)))

    def test_rejects_mismatched_rows(self):
        with pytest.raises(ConfigurationError):
            LinearRegression().fit(np.ones((3, 1)), np.ones(4))

    def test_1d_feature_input_accepted(self):
        model = LinearRegression().fit(np.array([[1.0], [2.0]]), np.array([1.0, 2.0]))
        out = model.predict(np.array([[3.0]]))
        assert out[0] == pytest.approx(3.0)


class TestRidge:
    def test_shrinks_towards_zero(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=(50, 2))
        y = 5.0 * x[:, 0] + rng.normal(scale=0.1, size=50)
        plain = LinearRegression().fit(x, y)
        ridge = RidgeRegression(alpha=50.0).fit(x, y)
        assert abs(ridge.coef_[0]) < abs(plain.coef_[0])

    def test_alpha_zero_matches_ols(self):
        rng = np.random.default_rng(2)
        x = rng.normal(size=(50, 2))
        y = x[:, 0] - 2 * x[:, 1] + 1.0
        ols = LinearRegression().fit(x, y)
        ridge = RidgeRegression(alpha=0.0).fit(x, y)
        assert np.allclose(ols.coef_, ridge.coef_, atol=1e-8)

    def test_rejects_negative_alpha(self):
        with pytest.raises(ConfigurationError):
            RidgeRegression(alpha=-1.0)


class TestMetrics:
    def test_mape_simple(self):
        assert mape(np.array([100.0, 200.0]), np.array([110.0, 180.0])) == pytest.approx(10.0)

    def test_mape_zero_truth_rejected(self):
        with pytest.raises(ConfigurationError):
            mape(np.array([0.0]), np.array([1.0]))

    def test_ape_per_sample(self):
        errors = absolute_percentage_errors(np.array([10.0]), np.array([12.0]))
        assert errors[0] == pytest.approx(20.0)

    def test_within_tolerance_accuracy(self):
        truth = np.array([100.0, 100.0, 100.0, 100.0])
        pred = np.array([104.0, 109.0, 89.0, 100.0])
        assert within_tolerance_accuracy(truth, pred, 5.0) == pytest.approx(50.0)
        assert within_tolerance_accuracy(truth, pred, 10.0) == pytest.approx(75.0)

    def test_tolerance_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            within_tolerance_accuracy(np.ones(2), np.ones(2), 0.0)

    def test_mae_rmse(self):
        truth = np.array([1.0, 2.0])
        pred = np.array([2.0, 4.0])
        assert mae(truth, pred) == pytest.approx(1.5)
        assert rmse(truth, pred) == pytest.approx(np.sqrt(2.5))

    def test_r2_perfect(self):
        y = np.array([1.0, 2.0, 3.0])
        assert r2_score(y, y) == pytest.approx(1.0)

    def test_r2_mean_prediction_is_zero(self):
        y = np.array([1.0, 2.0, 3.0])
        assert r2_score(y, np.full(3, 2.0)) == pytest.approx(0.0)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            mape(np.ones(3), np.ones(2))

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            mape(np.empty(0), np.empty(0))

    def test_error_box_stats_keys(self):
        stats = error_box_stats(np.arange(1.0, 101.0))
        assert stats["median"] == pytest.approx(50.5)
        assert stats["min"] == 1.0 and stats["max"] == 100.0
        assert stats["q1"] < stats["median"] < stats["q3"] < stats["p95"]


class TestTrainTestSplit:
    def test_split_sizes(self):
        x = np.arange(20.0).reshape(-1, 1)
        y = np.arange(20.0)
        x_tr, x_te, y_tr, y_te = train_test_split(x, y, test_fraction=0.25, seed=0)
        assert len(x_te) == 5 and len(x_tr) == 15
        assert len(y_te) == 5 and len(y_tr) == 15

    def test_split_partition_preserves_pairs(self):
        x = np.arange(10.0).reshape(-1, 1)
        y = np.arange(10.0) * 2
        x_tr, x_te, y_tr, y_te = train_test_split(x, y, seed=1)
        assert np.allclose(x_tr[:, 0] * 2, y_tr)
        assert np.allclose(x_te[:, 0] * 2, y_te)

    def test_deterministic_given_seed(self):
        x = np.arange(10.0).reshape(-1, 1)
        y = np.arange(10.0)
        a = train_test_split(x, y, seed=7)
        b = train_test_split(x, y, seed=7)
        assert np.allclose(a[1], b[1])

    def test_rejects_bad_fraction(self):
        with pytest.raises(ConfigurationError):
            train_test_split(np.ones((4, 1)), np.ones(4), test_fraction=1.5)

    def test_rejects_single_sample(self):
        with pytest.raises(ConfigurationError):
            train_test_split(np.ones((1, 1)), np.ones(1))


class TestKFold:
    def test_folds_cover_everything_once(self):
        kfold = KFold(n_splits=4, seed=0)
        seen = []
        for train_idx, test_idx in kfold.split(20):
            seen.extend(test_idx.tolist())
            assert set(train_idx).isdisjoint(set(test_idx))
            assert len(train_idx) + len(test_idx) == 20
        assert sorted(seen) == list(range(20))

    def test_rejects_too_few_samples(self):
        with pytest.raises(ConfigurationError):
            list(KFold(n_splits=5).split(3))

    def test_rejects_bad_n_splits(self):
        with pytest.raises(ConfigurationError):
            KFold(n_splits=1)


class TestStandardScaler:
    def test_zero_mean_unit_variance(self):
        rng = np.random.default_rng(3)
        x = rng.normal(loc=5.0, scale=3.0, size=(200, 2))
        scaled = StandardScaler().fit_transform(x)
        assert np.allclose(scaled.mean(axis=0), 0.0, atol=1e-10)
        assert np.allclose(scaled.std(axis=0), 1.0, atol=1e-10)

    def test_constant_column_untouched(self):
        x = np.column_stack([np.ones(10), np.arange(10.0)])
        scaled = StandardScaler().fit_transform(x)
        assert np.allclose(scaled[:, 0], 0.0)
        assert not np.isnan(scaled).any()

    def test_inverse_round_trip(self):
        rng = np.random.default_rng(4)
        x = rng.normal(size=(50, 3))
        scaler = StandardScaler().fit(x)
        assert np.allclose(scaler.inverse_transform(scaler.transform(x)), x)

    def test_transform_before_fit(self):
        with pytest.raises(ModelNotFittedError):
            StandardScaler().transform(np.ones((2, 2)))

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            StandardScaler().fit(np.empty((0, 3)))
