"""Shared fixtures: simulators, collectors and (expensive) trained models.

Training fixtures are session-scoped so the cost is paid once per test
run; tests that need isolation build their own objects.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.predictor import YalaPredictor, YalaSystem
from repro.nf.catalog import make_nf
from repro.nic.nic import SmartNic
from repro.nic.spec import bluefield2_spec, pensando_spec
from repro.profiling.collector import ProfilingCollector
from repro.traffic.profile import TrafficProfile


@pytest.fixture(scope="session")
def bf2_nic() -> SmartNic:
    """A noiseless BlueField-2 simulator (deterministic fixed points)."""
    return SmartNic(bluefield2_spec(), seed=101, noise_std=0.0)


@pytest.fixture(scope="session")
def noisy_nic() -> SmartNic:
    """A BlueField-2 simulator with realistic measurement noise."""
    return SmartNic(bluefield2_spec(), seed=101)


@pytest.fixture(scope="session")
def pensando_nic() -> SmartNic:
    return SmartNic(pensando_spec(), seed=101, noise_std=0.0)


@pytest.fixture(scope="session")
def collector(noisy_nic: SmartNic) -> ProfilingCollector:
    """Session-wide collector (caches solo runs across tests)."""
    return ProfilingCollector(noisy_nic)


@pytest.fixture(scope="session")
def default_traffic() -> TrafficProfile:
    return TrafficProfile()


@pytest.fixture(scope="session")
def trained_flowmonitor(collector: ProfilingCollector) -> YalaPredictor:
    """A trained FlowMonitor predictor (moderate quota, shared)."""
    predictor = YalaPredictor(make_nf("flowmonitor"), collector, seed=707)
    predictor.train(quota=200)
    return predictor


@pytest.fixture(scope="session")
def small_system(noisy_nic: SmartNic) -> YalaSystem:
    """A YalaSystem trained on a small NF set (shared)."""
    system = YalaSystem(noisy_nic, seed=909, quota=200)
    system.train(["flowmonitor", "flowstats", "nids"])
    return system


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(42)
