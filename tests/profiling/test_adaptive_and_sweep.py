"""Equivalence pins for the adaptive profiler's batched region samples,
``ProfilingCollector.solo_many`` and the ``run_batch``-backed sweep
helpers — all must match their looped primitives bit for bit."""

import pytest

from repro.nf.catalog import make_nf
from repro.nic.nic import SmartNic
from repro.nic.spec import bluefield2_spec
from repro.profiling.adaptive import AdaptiveProfiler
from repro.profiling.collector import ProfilingCollector
from repro.profiling.contention import ContentionLevel
from repro.profiling.sweep import colocation_sweep, traffic_sweep
from repro.traffic.profile import TrafficProfile


def _profile(nf_name: str, use_batch: bool):
    """One adaptive profiling run on a fresh collector."""
    nic = SmartNic(bluefield2_spec(), seed=101)
    collector = ProfilingCollector(nic)
    profiler = AdaptiveProfiler(
        collector, quota=100, seed=31, use_batch=use_batch
    )
    return profiler.profile(make_nf(nf_name)), collector


class TestAdaptiveBatchEquivalence:
    @pytest.mark.parametrize("nf_name", ["flowstats", "flowmonitor"])
    def test_batched_regions_match_looped_primitive(self, nf_name):
        looped, looped_collector = _profile(nf_name, use_batch=False)
        batched, batched_collector = _profile(nf_name, use_batch=True)
        # Identical samples in identical order...
        assert batched.dataset.samples == looped.dataset.samples
        # ...identical quota accounting (profiler and collector)...
        assert batched.samples_used == looped.samples_used
        assert batched_collector.profile_count == looped_collector.profile_count
        # ...and identical Algorithm 1 decisions.
        assert batched.kept_attributes == looped.kept_attributes
        assert batched.pruned_attributes == looped.pruned_attributes
        assert batched.regions_split == looped.regions_split

    def test_quota_never_exceeded(self):
        batched, _ = _profile("flowstats", use_batch=True)
        assert batched.samples_used <= batched.quota


class TestSoloMany:
    def test_matches_looped_solo(self, noisy_nic):
        requests = [
            (make_nf(name), TrafficProfile(flows, 1500, 600.0))
            for name in ("flowstats", "nids")
            for flows in (4_000, 16_000, 64_000)
        ]
        looped_collector = ProfilingCollector(noisy_nic)
        looped = [looped_collector.solo(nf, t) for nf, t in requests]
        batched_collector = ProfilingCollector(noisy_nic)
        batched = batched_collector.solo_many(requests)
        assert batched == looped

    def test_duplicates_share_cache_entry(self, noisy_nic):
        collector = ProfilingCollector(noisy_nic)
        nf = make_nf("acl")
        traffic = TrafficProfile()
        first, second = collector.solo_many([(nf, traffic), (nf, traffic)])
        assert first == second
        assert collector.solo(nf, traffic) == first


class TestSweepHelpers:
    def test_traffic_sweep_matches_profile_one(self, noisy_nic):
        contention = ContentionLevel(mem_car=140.0, mem_wss_mb=10.0)
        traffics = [
            TrafficProfile(flows, 1500, 600.0)
            for flows in (2_000, 20_000, 200_000)
        ]
        nf = make_nf("flowstats")
        looped_collector = ProfilingCollector(noisy_nic)
        looped = [
            looped_collector.profile_one(nf, contention, t) for t in traffics
        ]
        swept_collector = ProfilingCollector(noisy_nic)
        swept = traffic_sweep(swept_collector, nf, contention, traffics)
        assert swept == looped
        assert swept_collector.profile_count == looped_collector.profile_count

    def test_colocation_sweep_matches_run_loop(self, noisy_nic):
        traffic = TrafficProfile()
        scenarios = [
            [(make_nf("flowstats"), traffic), (make_nf("nids"), traffic)],
            [(make_nf("acl"), traffic), (make_nf("acl"), traffic)],
            [(make_nf("nat"), traffic)],
        ]
        swept = colocation_sweep(noisy_nic, scenarios)
        for scenario, result in zip(scenarios, swept):
            demands = [
                nf.demand(t, instance=f"{nf.name}#{i}")
                for i, (nf, t) in enumerate(scenario)
            ]
            looped = noisy_nic.run(demands)
            assert looped.workloads == result.workloads
            assert looped.iterations == result.iterations

    def test_colocation_sweep_on_error_return(self, noisy_nic):
        traffic = TrafficProfile()
        over_capacity = [
            (make_nf("flowstats"), traffic) for _ in range(10)
        ]
        fine = [[(make_nf("acl"), traffic)]]
        outcomes = colocation_sweep(
            noisy_nic, [over_capacity] + fine, on_error="return"
        )
        assert isinstance(outcomes[0], Exception)
        assert not isinstance(outcomes[1], Exception)
